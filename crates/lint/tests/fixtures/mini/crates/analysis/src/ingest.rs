//! Ingest gate for the L1 golden case: acquires the shared ingest
//! lock, then rotates the trace journal while still holding it — the
//! `INGEST -> JOURNAL` half of the cross-crate acquisition-order
//! cycle (the other half lives in crates/trace/src/locks.rs).

use magellan_trace::locks::{rotate_journal, INGEST};

/// Admits one batch: takes the ingest gate, then rotates the journal
/// under it. L1 must anchor the cycle at the `gate` acquisition and
/// report both directions with their full chains.
pub fn admit_batch() -> u32 {
    let gate = INGEST.lock();
    let rotated = rotate_journal();
    drop(gate);
    rotated
}
