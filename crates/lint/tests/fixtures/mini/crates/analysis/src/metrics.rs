//! Figure pipeline that leaks hash order *transitively*: the public
//! entry point below never touches a hash collection itself, yet D4
//! must report it with the full chain into `magellan-trace`.

use magellan_graph::scratch::scratch_degrees;
use magellan_trace::store::freshest_reports;

/// Sums report ids in store order — order-dependent through the
/// helper crate (D4, depth 1).
pub fn total_report_id() -> u32 {
    freshest_reports().iter().sum()
}

/// Exact comparison on a computed float (C2).
pub fn is_unit(x: f64) -> bool {
    x == 1.0
}

/// Per-sample boundary sampler — a hot entry point whose allocation
/// sits one crate away, in `magellan-graph` (H2, depth 1).
// lint:hot
pub fn sample_boundary(off: &[usize]) -> usize {
    scratch_degrees(off).len()
}

/// Hot entry that scans the whole slab per call (H3, depth 0).
// lint:hot
pub fn horizon_scan(xs: &[u32]) -> u32 {
    let mut acc = 0;
    for i in 0..xs.len() {
        acc += xs[i];
    }
    acc
}
