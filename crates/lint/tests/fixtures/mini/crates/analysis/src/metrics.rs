//! Figure pipeline that leaks hash order *transitively*: the public
//! entry point below never touches a hash collection itself, yet D4
//! must report it with the full chain into `magellan-trace`.

use magellan_trace::store::freshest_reports;

/// Sums report ids in store order — order-dependent through the
/// helper crate (D4, depth 1).
pub fn total_report_id() -> u32 {
    freshest_reports().iter().sum()
}

/// Exact comparison on a computed float (C2).
pub fn is_unit(x: f64) -> bool {
    x == 1.0
}
