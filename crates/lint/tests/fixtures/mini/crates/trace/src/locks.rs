//! Lock pair for the L1 golden case: the journal side of the
//! cross-crate acquisition-order cycle (`JOURNAL -> INGEST` here;
//! the reverse `INGEST -> JOURNAL` edge lives in
//! crates/analysis/src/ingest.rs).

// lint:allow(P1): fixture — the L1 cycle is under test, not the lock itself
use std::sync::Mutex;

/// Journal rotation guard.
// lint:allow(P1): fixture — the L1 cycle is under test, not the lock itself
pub static JOURNAL: Mutex<u32> = Mutex::new(0);

/// Ingest admission gate, shared with `magellan-analysis`.
// lint:allow(P1): fixture — the L1 cycle is under test, not the lock itself
pub static INGEST: Mutex<u32> = Mutex::new(0);

/// Rotates the journal under `JOURNAL` — the far end of the
/// ingest-side call chain.
pub fn rotate_journal() -> u32 {
    let guard = JOURNAL.lock();
    if let Ok(v) = guard {
        *v
    } else {
        0
    }
}

/// Flushes under `JOURNAL`, then re-checks admission while the guard
/// is still live: `INGEST` acquired under `JOURNAL`, the reverse of
/// the order `admit_batch` uses.
pub fn flush_and_admit() -> u32 {
    let held = JOURNAL.lock();
    let admitted = admit();
    drop(held);
    admitted
}

/// Admission check: acquires `INGEST`.
fn admit() -> u32 {
    let gate = INGEST.lock();
    if let Ok(v) = gate {
        *v
    } else {
        1
    }
}
