//! Mini trace crate (golden fixture). Missing one hygiene header on
//! purpose: H1 must fire exactly once here.
#![forbid(unsafe_code)]

pub mod store;
pub mod locks;
