//! Report store with a deliberate hash-order leak: the taint source
//! end of the cross-crate D4 chain asserted by the golden test.

use std::collections::HashMap;

// lint:allow(D9): names a rule that does not exist, so M1 fires

/// Returns stored report ids in whatever order the map yields them —
/// the seed of the transitive chain reported in `magellan-analysis`.
pub fn freshest_reports() -> Vec<u32> {
    let reports: HashMap<u32, u32> = HashMap::new();
    reports.keys().copied().collect()
}
