//! CSR-style kernel with one unchecked index (C4) and needle-shaped
//! distractors in comments and strings that must stay inert.

/* The needles below live inside a nested block comment:
   /* inner comment: SystemTime::now() and thread::spawn(...) */
   still inside the outer comment: reports.keys().copied()
*/

/// Row length of `off` — the `i + 1` is deliberately unchecked (C4).
pub fn row_len(off: &[usize], i: usize) -> usize {
    off[i + 1] - off[i]
}

/// Raw strings keep their needles: the stripper must blank them, so
/// neither the fake source nor the fake hash iteration fires.
pub fn banner() -> &'static str {
    r#"fake "source": SystemTime::now(); reports.values().count()"#
}
