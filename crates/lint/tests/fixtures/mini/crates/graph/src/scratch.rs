//! Scratch-buffer helpers seeding the hot-path cost fixtures: one
//! allocation reached from a hot entry in `magellan-analysis` (H2
//! lands here with a two-crate chain), one cold allocation and one
//! justified hot allocation that must both stay inert.

/// Fresh degree vector per call — the H2 sink at the end of the
/// two-crate hot chain from `sample_boundary`.
pub fn scratch_degrees(off: &[usize]) -> Vec<usize> {
    off.windows(2).map(|w| w[1] - w[0]).collect()
}

/// Cold path: allocates freely, but no hot entry reaches it, so H2
/// stays silent.
pub fn cold_histogram(vals: &[usize]) -> Vec<usize> {
    vals.to_vec()
}

/// Hot but audited: the allow on the `fn` line waives the body and
/// un-seeds the entry, so H2 stays silent here too.
// lint:hot
pub fn audited_scratch(n: usize) -> Vec<usize> { // lint:allow(H2): startup-only warmup, measured cold
    (0..n).collect()
}
