//! Raw-pointer micro-kernels for the U1 golden case: one `unsafe`
//! block with no contract at all, one with an empty `SAFETY:`, and
//! one properly named contract that satisfies the per-site rule —
//! all three still count against the crate's unsafe budget (0 for
//! magellan-graph, so the ratchet fires too).

/// Sums a slice through its raw pointer (U1: no contract at all).
pub fn raw_sum(xs: &[u64]) -> u64 {
    let mut total = 0;
    let ptr = xs.as_ptr();
    let mut i = 0;
    while i < xs.len() {
        total += unsafe { *ptr.add(i) };
        i += 1;
    }
    total
}

/// Reads the first element unchecked (U1: contract marker present
/// but names no invariant).
pub fn first_unchecked(xs: &[u64]) -> u64 {
    // SAFETY:
    unsafe { *xs.as_ptr() }
}

/// Reads the low byte of a word (contract named — the per-site rule
/// is satisfied; the budget ratchet still counts the site).
pub fn low_byte(x: &u32) -> u8 {
    // SAFETY: a &u32 is four initialized readable bytes on every target
    unsafe { *(x as *const u32).cast::<u8>() }
}
