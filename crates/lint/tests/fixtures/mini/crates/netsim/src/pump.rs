//! Event pump holding a lock in a simulation crate: P1 fires on both
//! the import and the construction site.

use std::sync::Mutex;

/// Shared counter guarded by a lock that belongs in `magellan-par`.
pub fn pump() -> bool {
    let shared: Mutex<u32> = Mutex::new(7);
    shared.lock().is_ok()
}

/// Hot dispatch: the justified lock below is exactly what P2 exists
/// to keep visible — P1 is silenced, the per-tick cost is not.
// lint:hot
pub fn dispatch() -> bool {
    // lint:allow(P1): harness-side counter, never taken on the sim thread
    Mutex::new(1).lock().is_ok()
}
