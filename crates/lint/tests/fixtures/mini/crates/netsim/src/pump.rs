//! Event pump holding a lock in a simulation crate: P1 fires on both
//! the import and the construction site.

use std::sync::Mutex;

/// Shared counter guarded by a lock that belongs in `magellan-par`.
pub fn pump() -> bool {
    let shared: Mutex<u32> = Mutex::new(7);
    shared.lock().is_ok()
}
