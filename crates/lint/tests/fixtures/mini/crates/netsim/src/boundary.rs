//! Pool-boundary hazards for the S1 golden case: a hand-written
//! `Send` claim and a lock guard held across pool dispatch.

use magellan_par::par_map_collect;
// lint:allow(P1): fixture — S1 is under test here, not the lock itself
use std::sync::Mutex;

/// Telemetry sink shared with the pump thread.
// lint:allow(P1): fixture — S1 is under test here, not the lock itself
pub static TELEMETRY: Mutex<u32> = Mutex::new(0);

/// Raw peer slot shipped across the pool boundary.
pub struct PeerSlot(pub *mut u64);

// The compiler can no longer check this claim — S1 must flag it.
// lint:allow(U1): fixture — the S1 finding owns this site
unsafe impl Send for PeerSlot {}

/// Doubles peer ids while (wrongly) holding the telemetry guard
/// across the dispatch: S1 flags the pool call, not the lock.
pub fn degrees_under_guard(n: usize) -> Vec<usize> {
    let sink = TELEMETRY.lock();
    let out = par_map_collect(n, |i| i * 2);
    drop(sink);
    out
}
