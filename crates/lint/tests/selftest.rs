//! Self-test for the lint gate, in three layers:
//!
//! 1. the real workspace must be clean under the default config (this
//!    is the same check CI runs via `scripts/check.sh`);
//! 2. every rule must actually fire when a violation is injected
//!    in-memory — a lint that silently stops matching is worse than no
//!    lint, because it keeps green-lighting regressions;
//! 3. the runtime invariant layer in `magellan-graph` must hold on
//!    generated topologies: the lint gate and the `debug_assert`
//!    invariants are two halves of the same determinism policy, so the
//!    gate's self-test exercises both.

use magellan_lint::{
    default_unsafe_budgets, default_unwrap_budgets, find_workspace_root, lint_sources,
    lint_workspace, Config, SourceFile,
};
use std::path::{Path, PathBuf};

fn parse(path: &str, text: &str) -> SourceFile {
    SourceFile::parse(PathBuf::from(path), text)
}

fn rule_ids(sources: &[SourceFile], config: &Config) -> Vec<String> {
    lint_sources(sources, config)
        .violations
        .into_iter()
        .map(|v| v.rule.id().to_owned())
        .collect()
}

#[test]
fn workspace_is_lint_clean() {
    let manifest_dir = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(manifest_dir).expect("selftest runs inside the workspace");
    let report = lint_workspace(&root, &Config::default()).expect("workspace sources readable");
    assert!(
        report.files_scanned > 50,
        "walker found only {} files",
        report.files_scanned
    );
    let rendered: Vec<String> = report.violations.iter().map(ToString::to_string).collect();
    assert!(
        report.is_clean(),
        "workspace has lint violations:\n{}",
        rendered.join("\n")
    );
}

#[test]
fn injected_hash_iteration_is_detected() {
    let src = parse(
        "crates/overlay/src/injected.rs",
        "use std::collections::HashMap;\npub fn f() -> HashMap<u32, u32> { HashMap::new() }\n",
    );
    let ids = rule_ids(&[src], &Config::default());
    assert!(ids.contains(&"D1".to_owned()), "got {ids:?}");
}

#[test]
fn injected_wall_clock_is_detected() {
    let src = parse(
        "crates/graph/src/injected.rs",
        "pub fn now_ms() -> u128 {\n    std::time::SystemTime::now().elapsed().unwrap().as_millis()\n}\n",
    );
    let ids = rule_ids(&[src], &Config::default());
    assert!(ids.contains(&"D2".to_owned()), "got {ids:?}");
}

#[test]
fn injected_float_equality_is_detected() {
    let src = parse(
        "crates/analysis/src/injected.rs",
        "pub fn is_half(x: f64) -> bool {\n    x == 0.5\n}\n",
    );
    let ids = rule_ids(&[src], &Config::default());
    assert!(ids.contains(&"C2".to_owned()), "got {ids:?}");
}

#[test]
fn injected_lossy_cast_is_detected() {
    let src = parse(
        "crates/graph/src/injected.rs",
        "pub fn small(v: &[u64]) -> u16 {\n    v.len() as u16\n}\n",
    );
    let ids = rule_ids(&[src], &Config::default());
    assert!(ids.contains(&"C3".to_owned()), "got {ids:?}");
}

#[test]
fn injected_budget_overrun_is_detected() {
    let src = parse(
        "crates/lint/src/injected.rs",
        "pub fn f(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n",
    );
    let ids = rule_ids(&[src], &Config::default());
    assert!(ids.contains(&"C1".to_owned()), "got {ids:?}");
}

#[test]
fn injected_transitive_taint_is_detected() {
    // The entry point itself is hash-free; the taint sits in a private
    // helper, so only the call-graph pass (D4) can see it.
    let src = parse(
        "crates/analysis/src/injected.rs",
        "pub fn entry() -> Vec<u32> {\n    helper()\n}\nfn helper() -> Vec<u32> {\n    let m: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();\n    m.keys().copied().collect()\n}\n",
    );
    let ids = rule_ids(&[src], &Config::default());
    assert!(ids.contains(&"D4".to_owned()), "got {ids:?}");
}

#[test]
fn injected_hot_allocation_is_detected_with_chain() {
    // The hot entry itself is allocation-free; the `.collect()` sits in
    // a private helper, so only the forward call-graph pass (H2) can
    // see it — and the finding must carry the full chain.
    let src = parse(
        "crates/overlay/src/injected.rs",
        "// lint:hot: per-tick driver\npub fn drive(xs: &[u32]) -> Vec<u32> {\n    widen(xs)\n}\nfn widen(xs: &[u32]) -> Vec<u32> {\n    xs.iter().map(|x| x + 1).collect()\n}\n",
    );
    let report = lint_sources(&[src], &Config::default());
    let h2: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule.id() == "H2")
        .collect();
    assert_eq!(h2.len(), 1, "{:?}", report.violations);
    assert!(h2[0].message.contains("drive()"), "{}", h2[0].message);
    assert!(h2[0].message.contains("widen()"), "{}", h2[0].message);
}

#[test]
fn injected_hot_scan_is_detected() {
    let src = parse(
        "crates/overlay/src/injected.rs",
        "// lint:hot\npub fn drive(xs: &[u32]) -> u32 {\n    let mut t = 0;\n    for i in 0..xs.len() {\n        t += xs[i];\n    }\n    t\n}\n",
    );
    let ids = rule_ids(&[src], &Config::default());
    assert!(ids.contains(&"H3".to_owned()), "got {ids:?}");
}

#[test]
fn injected_allowed_lock_on_hot_path_is_detected() {
    // A line-level `lint:allow(P1): <why>` silences the line rule; on
    // a hot path, P2 must re-raise the cost anyway.
    let src = parse(
        "crates/netsim/src/injected.rs",
        "// lint:hot\npub fn f() -> bool {\n    // lint:allow(P1): shared with the harness thread\n    std::sync::Mutex::new(0).lock().is_ok()\n}\n",
    );
    let ids = rule_ids(&[src], &Config::default());
    assert!(!ids.contains(&"P1".to_owned()), "got {ids:?}");
    assert!(ids.contains(&"P2".to_owned()), "got {ids:?}");
}

#[test]
fn injected_lock_is_detected() {
    let src = parse(
        "crates/netsim/src/injected.rs",
        "pub fn f() -> bool {\n    let m: std::sync::Mutex<u32> = std::sync::Mutex::new(0);\n    m.lock().is_ok()\n}\n",
    );
    let ids = rule_ids(&[src], &Config::default());
    assert!(ids.contains(&"P1".to_owned()), "got {ids:?}");
}

#[test]
fn injected_lock_order_cycle_is_detected() {
    // Two functions take the same two lock classes in opposite orders;
    // only the lock-order graph (L1) can see the cycle.
    let src = parse(
        "crates/netsim/src/injected.rs",
        "pub fn ab() {\n    let a = ALPHA.lock();\n    let b = BETA.lock();\n    drop(b);\n    drop(a);\n}\n\npub fn ba() {\n    let b = BETA.lock();\n    let a = ALPHA.lock();\n    drop(a);\n    drop(b);\n}\n",
    );
    let report = lint_sources(&[src], &Config::default());
    let l1: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule.id() == "L1")
        .collect();
    assert_eq!(l1.len(), 1, "{:?}", report.violations);
    let m = &l1[0].message;
    assert!(m.contains("`ALPHA` -> `BETA` -> `ALPHA`"), "{m}");
    assert!(m.contains("ab()"), "{m}");
    assert!(m.contains("ba()"), "{m}");
}

#[test]
fn injected_unsafe_without_contract_is_detected() {
    let src = parse(
        "crates/graph/src/injected.rs",
        "pub fn first(xs: &[u32]) -> u32 {\n    unsafe { *xs.as_ptr() }\n}\n",
    );
    let ids = rule_ids(&[src], &Config::default());
    assert!(ids.contains(&"U1".to_owned()), "got {ids:?}");

    // A named contract satisfies the per-site rule; the only remaining
    // U1 is the budget ratchet (magellan-graph's budget is 0).
    let contracted = parse(
        "crates/graph/src/injected.rs",
        "pub fn first(xs: &[u32]) -> u32 {\n    // SAFETY: caller guarantees xs is non-empty\n    unsafe { *xs.as_ptr() }\n}\n",
    );
    let report = lint_sources(&[contracted], &Config::default());
    let u1: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule.id() == "U1")
        .collect();
    assert_eq!(u1.len(), 1, "{u1:?}");
    assert!(u1[0].message.contains("over its audited budget"), "{u1:?}");
}

#[test]
fn injected_guard_across_pool_call_is_detected() {
    let src = parse(
        "crates/analysis/src/injected.rs",
        "pub fn f(n: usize) -> Vec<usize> {\n    let g = STATE.lock();\n    let out = magellan_par::par_map_collect(n, |i| i);\n    drop(g);\n    out\n}\n",
    );
    let report = lint_sources(&[src], &Config::default());
    let s1: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule.id() == "S1")
        .collect();
    assert_eq!(s1.len(), 1, "{:?}", report.violations);
    assert!(
        s1[0].message.contains("guard of `STATE`")
            && s1[0]
                .message
                .contains("held across pool call `par_map_collect`"),
        "{}",
        s1[0].message
    );
}

#[test]
fn injected_manual_send_impl_is_detected() {
    let src = parse(
        "crates/overlay/src/injected.rs",
        "pub struct Slot(pub *mut u8);\n\nunsafe impl Sync for Slot {}\n",
    );
    let ids = rule_ids(&[src], &Config::default());
    assert!(ids.contains(&"S1".to_owned()), "got {ids:?}");
}

#[test]
fn injected_index_arithmetic_is_detected() {
    let src = parse(
        "crates/graph/src/injected.rs",
        "pub fn row(off: &[usize], i: usize) -> usize {\n    off[i + 1]\n}\n",
    );
    let ids = rule_ids(&[src], &Config::default());
    assert!(ids.contains(&"C4".to_owned()), "got {ids:?}");
}

#[test]
fn injected_missing_headers_are_detected() {
    let src = parse("crates/graph/src/lib.rs", "//! Docs.\n\npub mod x;\n");
    let ids = rule_ids(&[src], &Config::default());
    assert!(ids.contains(&"H1".to_owned()), "got {ids:?}");
}

#[test]
fn allow_annotation_suppresses_and_malformed_allow_fires_m1() {
    let allowed = parse(
        "crates/analysis/src/injected.rs",
        "pub fn near_zero(x: f64) -> bool {\n    // lint:allow(C2): exact sentinel comparison\n    x == 0.0\n}\n",
    );
    assert!(
        rule_ids(&[allowed], &Config::default()).is_empty(),
        "justified allow should suppress C2"
    );

    let unjustified = parse(
        "crates/analysis/src/injected.rs",
        "pub fn near_zero(x: f64) -> bool {\n    // lint:allow(C2)\n    x == 0.0\n}\n",
    );
    let ids = rule_ids(&[unjustified], &Config::default());
    assert!(ids.contains(&"M1".to_owned()), "got {ids:?}");
}

#[test]
fn tighter_budget_flags_existing_counts() {
    let mut config = Config::default();
    config.unwrap_budgets.insert("magellan-demo".to_owned(), 1);
    let src = parse(
        "crates/demo/src/injected.rs",
        "pub fn f(v: Option<u32>, w: Option<u32>) -> u32 {\n    v.unwrap() + w.unwrap()\n}\n",
    );
    let report = lint_sources(&[src], &config);
    assert_eq!(report.unwrap_counts.get("magellan-demo"), Some(&2));
    assert!(
        report.violations.iter().any(|v| v.rule.id() == "C1"),
        "2 unwraps over a budget of 1 must fire C1"
    );
}

#[test]
fn default_budgets_cover_every_workspace_crate() {
    let budgets = default_unwrap_budgets();
    for name in [
        "magellan",
        "magellan-analysis",
        "magellan-bench",
        "magellan-graph",
        "magellan-lint",
        "magellan-netsim",
        "magellan-overlay",
        "magellan-trace",
        "magellan-workload",
    ] {
        assert!(budgets.contains_key(name), "no C1 budget for {name}");
    }
    assert_eq!(
        budgets.get("magellan-lint"),
        Some(&0),
        "the lint crate leads by example"
    );
    let unsafe_budgets = default_unsafe_budgets();
    assert_eq!(
        unsafe_budgets.get("magellan-par"),
        Some(&4),
        "the pool's four lifetime-erasure sites"
    );
    assert_eq!(
        unsafe_budgets.get("magellan"),
        Some(&1),
        "the facade's one audited site: the traced drain-signal binding"
    );
    assert!(
        unsafe_budgets
            .iter()
            .all(|(k, v)| matches!(k.as_str(), "magellan-par" | "magellan") || *v == 0),
        "every other crate stays at an unsafe budget of zero: {unsafe_budgets:?}"
    );
}

mod graph_invariants {
    //! Layer 3: the runtime invariant suite holds on generated
    //! topologies across deterministic seeds and arbitrary edge lists.

    use magellan_graph::invariants::{check_all, check_unit_interval};
    use magellan_graph::random::{barabasi_albert, gnm_directed, watts_strogatz};
    use magellan_graph::DiGraph;
    use proptest::prelude::*;

    #[test]
    fn generated_topologies_satisfy_all_invariants() {
        for seed in [1u64, 7, 42, 2006] {
            let g = gnm_directed(60, 240, seed);
            check_all(&g).unwrap_or_else(|v| panic!("gnm seed {seed}: {v}"));
            let g = watts_strogatz(40, 4, 0.2, seed);
            check_all(&g).unwrap_or_else(|v| panic!("watts-strogatz seed {seed}: {v}"));
            let g = barabasi_albert(50, 3, seed);
            check_all(&g).unwrap_or_else(|v| panic!("barabasi-albert seed {seed}: {v}"));
        }
    }

    #[test]
    fn unit_interval_checker_rejects_bad_metrics() {
        assert!(check_unit_interval("r", 0.5).is_ok());
        assert!(check_unit_interval("r", 1.0 + 1e-9).is_err());
        assert!(check_unit_interval("r", f64::NAN).is_err());
    }

    fn arb_graph() -> impl Strategy<Value = DiGraph<u8>> {
        proptest::collection::vec((0u8..16, 0u8..16, 1u64..50), 0..100).prop_map(|edges| {
            let mut g = DiGraph::new();
            for (a, b, w) in edges {
                if a != b {
                    g.add_edge_by_key(a, b, w);
                }
            }
            g
        })
    }

    proptest! {
        #[test]
        fn arbitrary_graphs_never_violate_invariants(g in arb_graph()) {
            if let Err(v) = check_all(&g) {
                return Err(TestCaseError::fail(format!("invariant violated: {v}")));
            }
        }
    }
}
