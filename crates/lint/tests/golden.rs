//! Golden-file tests: the full lint pipeline run over the fixture
//! workspace in `tests/fixtures/mini` and byte-compared against
//! checked-in expected output.
//!
//! The fixture tree seeds one violation per interesting rule — and,
//! critically, the cross-crate transitive D4 chain (a public entry in
//! `magellan-analysis` reaching a hash-ordered iteration in
//! `magellan-trace`) plus raw-string and nested-block-comment
//! distractors that must stay inert. Regenerate the goldens after an
//! intentional output change with:
//!
//! ```text
//! MAGELLAN_LINT_BLESS=1 cargo test -p magellan-lint --test golden
//! ```

use magellan_lint::{
    lint_workspace, lint_workspace_cached, render_human, render_json, render_sarif, Config, RULES,
};
use std::path::{Path, PathBuf};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/mini")
}

fn check_golden(name: &str, actual: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    if std::env::var_os("MAGELLAN_LINT_BLESS").is_some() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden {name} ({e}); bless with MAGELLAN_LINT_BLESS=1")
    });
    assert_eq!(
        expected, actual,
        "{name} drifted — if the change is intentional, rerun with MAGELLAN_LINT_BLESS=1"
    );
}

#[test]
fn human_output_matches_golden() {
    let root = fixture_root();
    let report = lint_workspace(&root, &Config::default()).expect("fixture tree readable");
    check_golden("expected_human.txt", &render_human(&report, &root));
}

#[test]
fn json_output_matches_golden_and_is_byte_stable() {
    let root = fixture_root();
    let a = render_json(&lint_workspace(&root, &Config::default()).expect("first run"));
    let b = render_json(&lint_workspace(&root, &Config::default()).expect("second run"));
    assert_eq!(a, b, "two runs over the same tree must be byte-identical");
    check_golden("expected_report.json", &a);
}

#[test]
fn transitive_d4_chain_crosses_the_crate_boundary() {
    let report = lint_workspace(&fixture_root(), &Config::default()).expect("fixture tree");
    let d4: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule.id() == "D4")
        .collect();
    assert_eq!(d4.len(), 2, "{d4:?}");
    // The cross-crate chain anchors at the analysis entry point...
    let cross = d4
        .iter()
        .find(|v| v.file == Path::new("crates/analysis/src/metrics.rs"))
        .expect("chain must anchor at the entry point");
    let m = &cross.message;
    assert!(m.contains("total_report_id()"), "{m}");
    assert!(m.contains("freshest_reports()"), "{m}");
    assert!(m.contains("crates/trace/src/store.rs:12"), "{m}");
    // ...and the trace crate, itself an entry crate, reports the same sink
    // directly from its own public surface.
    let direct = d4
        .iter()
        .find(|v| v.file == Path::new("crates/trace/src/store.rs"))
        .expect("trace entry crate must report its own public chain");
    assert!(direct.message.contains("freshest_reports"), "{direct:?}");
}

#[test]
fn hot_chain_crosses_the_crate_boundary() {
    let report = lint_workspace(&fixture_root(), &Config::default()).expect("fixture tree");
    let h2: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule.id() == "H2")
        .collect();
    assert_eq!(h2.len(), 1, "{h2:?}");
    let m = &h2[0].message;
    assert!(m.contains("sample_boundary()"), "{m}");
    assert!(m.contains("scratch_degrees()"), "{m}");
    assert!(m.contains("budget 0"), "{m}");
    assert!(
        h2[0].file == Path::new("crates/graph/src/scratch.rs"),
        "H2 must anchor at the sink, got {:?}",
        h2[0].file
    );
    // The cold allocation and the fn-line-justified hot one stay inert.
    assert!(!m.contains("cold_histogram"), "{m}");
    assert!(
        !report
            .violations
            .iter()
            .any(|v| v.message.contains("audited_scratch")),
        "{:?}",
        report.violations
    );
    // H3 anchors at the hot entry's own scan; P2 at the justified lock.
    let h3: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule.id() == "H3")
        .collect();
    assert_eq!(h3.len(), 1, "{h3:?}");
    assert!(
        h3[0].message.contains("horizon_scan()"),
        "{}",
        h3[0].message
    );
    let p2: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule.id() == "P2")
        .collect();
    assert_eq!(p2.len(), 1, "{p2:?}");
    assert!(
        p2[0].message.contains("behind a lint:allow(P1)"),
        "{}",
        p2[0].message
    );
    assert!(
        p2[0].file == Path::new("crates/netsim/src/pump.rs"),
        "{:?}",
        p2[0].file
    );
}

#[test]
fn lock_order_cycle_crosses_the_crate_boundary() {
    let report = lint_workspace(&fixture_root(), &Config::default()).expect("fixture tree");
    let l1: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule.id() == "L1")
        .collect();
    assert_eq!(l1.len(), 1, "{l1:?}");
    let m = &l1[0].message;
    // The cycle ring, named from its lexicographically smallest class.
    assert!(m.contains("`INGEST` -> `JOURNAL` -> `INGEST`"), "{m}");
    // Both directions carry their full chains: the ingest side calls
    // into the trace crate, the journal side re-acquires admission.
    assert!(m.contains("admit_batch()"), "{m}");
    assert!(m.contains("rotate_journal()"), "{m}");
    assert!(m.contains("flush_and_admit()"), "{m}");
    assert!(m.contains("admit()"), "{m}");
    assert!(m.contains("crates/trace/src/locks.rs"), "{m}");
    assert!(
        l1[0].file == Path::new("crates/analysis/src/ingest.rs"),
        "cycle must anchor at the first edge's held acquisition, got {:?}",
        l1[0].file
    );
}

#[test]
fn unsafe_contract_and_budget_findings_fire() {
    let report = lint_workspace(&fixture_root(), &Config::default()).expect("fixture tree");
    let u1: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule.id() == "U1")
        .collect();
    // raw.rs seeds: one missing contract, one empty contract, and a
    // named one that only counts toward the budget (3 sites > 0).
    assert_eq!(u1.len(), 3, "{u1:?}");
    assert!(
        u1.iter()
            .any(|v| v.message.contains("without a safety contract")),
        "{u1:?}"
    );
    assert!(
        u1.iter()
            .any(|v| v.message.contains("empty SAFETY: contract")),
        "{u1:?}"
    );
    assert!(
        u1.iter()
            .any(|v| v.message.contains("3 unsafe site(s)") && v.message.contains("budget of 0")),
        "{u1:?}"
    );
    assert!(
        u1.iter()
            .all(|v| v.file == Path::new("crates/graph/src/raw.rs")),
        "{u1:?}"
    );
}

#[test]
fn pool_boundary_hazards_fire() {
    let report = lint_workspace(&fixture_root(), &Config::default()).expect("fixture tree");
    let s1: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule.id() == "S1")
        .collect();
    assert_eq!(s1.len(), 2, "{s1:?}");
    assert!(
        s1.iter()
            .any(|v| v.message.contains("manual `unsafe impl Send`")),
        "{s1:?}"
    );
    assert!(
        s1.iter().any(|v| {
            v.message.contains("guard of `TELEMETRY`")
                && v.message
                    .contains("held across pool call `par_map_collect`")
        }),
        "{s1:?}"
    );
    assert!(
        s1.iter()
            .all(|v| v.file == Path::new("crates/netsim/src/boundary.rs")),
        "{s1:?}"
    );
}

#[test]
fn distractors_in_strings_and_comments_stay_inert() {
    let report = lint_workspace(&fixture_root(), &Config::default()).expect("fixture tree");
    // kernels.rs carries SystemTime::now / hash iteration text inside
    // a raw string and a nested block comment; only its real C4 may
    // fire, nothing clock- or hash-shaped.
    let kernel_rules: Vec<&str> = report
        .violations
        .iter()
        .filter(|v| v.file.ends_with("kernels.rs"))
        .map(|v| v.rule.id())
        .collect();
    assert_eq!(kernel_rules, ["C4"], "{:?}", report.violations);
}

#[test]
fn sarif_output_has_the_code_scanning_shape() {
    let report = lint_workspace(&fixture_root(), &Config::default()).expect("fixture tree");
    let s = render_sarif(&report);
    assert!(s.contains("\"$schema\""), "{s}");
    assert!(s.contains("sarif-schema-2.1.0.json"), "{s}");
    assert!(s.contains("\"version\": \"2.1.0\""));
    assert!(s.contains("\"name\": \"magellan-lint\""));
    for rule in RULES {
        assert!(s.contains(&format!("\"id\": \"{}\"", rule.id())), "{s}");
    }
    assert!(s.contains("\"ruleId\": \"D4\""), "{s}");
    assert!(s.contains("\"uri\": \"crates/analysis/src/metrics.rs\""));
    // Every result must carry a positive startLine for the uploader.
    assert!(!s.contains("\"startLine\": 0"), "{s}");
}

/// Copies the fixture tree into a scratch directory so the cache test
/// can write `target/` without dirtying the repo.
fn copy_tree(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).expect("mkdir");
    for entry in std::fs::read_dir(from).expect("readdir") {
        let entry = entry.expect("entry");
        let src = entry.path();
        let dst = to.join(entry.file_name());
        if src.is_dir() {
            copy_tree(&src, &dst);
        } else {
            std::fs::copy(&src, &dst).expect("copy");
        }
    }
}

#[test]
fn cold_and_warm_cache_runs_are_identical() {
    let scratch = std::env::temp_dir().join(format!("magellan-lint-golden-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    copy_tree(&fixture_root(), &scratch);

    let cold = lint_workspace_cached(&scratch, &Config::default(), true).expect("cold run");
    assert!(
        scratch.join("target/magellan-lint-cache.v3").is_file(),
        "cold run must persist the cache"
    );
    let warm = lint_workspace_cached(&scratch, &Config::default(), true).expect("warm run");
    assert_eq!(render_json(&cold), render_json(&warm));
    assert_eq!(cold.files_scanned, warm.files_scanned);

    // And the cache must never change the answer vs. an uncached run.
    let uncached = lint_workspace_cached(&scratch, &Config::default(), false).expect("uncached");
    assert_eq!(render_json(&uncached), render_json(&warm));

    let _ = std::fs::remove_dir_all(&scratch);
}

#[test]
fn rule_table_in_design_doc_matches_the_binary() {
    let design = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../DESIGN.md");
    let text = std::fs::read_to_string(design).expect("DESIGN.md at the workspace root");
    // Rows look like `| `D1` | scope | … |` inside §9's rule table.
    let mut documented: Vec<String> = text
        .lines()
        .filter_map(|l| {
            let row = l.strip_prefix("| `")?;
            let id: String = row.chars().take_while(|c| *c != '`').collect();
            let mut chars = id.chars();
            matches!(
                (chars.next(), chars.next(), chars.next()),
                (Some('A'..='Z'), Some('0'..='9'), None)
            )
            .then_some(id)
        })
        .collect();
    documented.sort();
    documented.dedup();
    let mut shipped: Vec<String> = RULES.iter().map(|r| r.id().to_owned()).collect();
    shipped.sort();
    assert_eq!(
        documented, shipped,
        "DESIGN.md §9 rule table and `magellan-lint --list-rules` must agree"
    );
}
