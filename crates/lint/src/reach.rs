//! Reusable workspace call-graph reachability.
//!
//! Rule D4 (determinism taint) and the hot-path cost rules (H2/H3/P2)
//! ask the same structural question with opposite orientations: which
//! functions can reach / be reached from a seed set, and by what
//! chain? This module owns the shared machinery — building the
//! `(crate, fn-name)` call graph out of per-file summaries, resolving
//! call sites through `use` imports and the crate dependency graph,
//! and running a deterministic multi-source BFS in either direction —
//! so each rule only supplies its seed and sink sets.
//!
//! Resolution is name-based (no type inference): same-name functions
//! in one crate share a node, and method calls over-approximate across
//! dependency edges. That errs toward reporting, which is the right
//! direction for a gate whose findings can be waived with a written
//! justification.

use crate::items::{CallSite, UseImport};
use crate::{FileSummary, TargetKind};
use std::collections::{BTreeMap, BTreeSet};

/// Path prefixes that never resolve into the workspace.
const EXTERNAL_ROOTS: [&str; 9] = [
    "std",
    "core",
    "alloc",
    "rand",
    "proptest",
    "serde",
    "bytes",
    "parking_lot",
    "criterion",
];

/// Prelude types usable as a path qualifier without a `use` import.
/// `Vec::new()` must not resolve to a workspace function named `new` —
/// without this list, every such call would edge into the caller
/// crate's `new` node and fabricate reachability chains.
const PRELUDE_TYPES: [&str; 10] = [
    "Vec", "String", "Box", "Option", "Result", "Some", "Ok", "Err", "Arc", "Rc",
];

/// Derivable-trait method names that are never treated as call edges.
/// Nodes merge per `(crate, name)`, so `TickOutcome::default()` would
/// otherwise edge into *every* manual `Default` impl in scope and
/// fabricate chains between unrelated types. The cost is that work
/// hidden inside a manual `Clone`/`Default` impl is invisible to
/// reachability — a documented under-approximation; the impl bodies
/// themselves are still scanned when they are reachable by name.
const TRAIT_DISPATCH: [&str; 9] = [
    "default",
    "clone",
    "fmt",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "drop",
];

/// A call-graph node key: functions are merged per `(crate, name)` —
/// impl blocks are not resolved, so same-name functions in one crate
/// share a node (a documented over-approximation).
pub type FnKey = (String, String);

/// One definition of a node's function, as indices into the file
/// summaries the graph was built from.
#[derive(Debug, Clone, Copy)]
pub struct Def {
    /// Index into the `files` slice.
    pub file: usize,
    /// Index into `files[file].fns`.
    pub fun: usize,
}

/// One call-graph node.
#[derive(Debug, Default)]
pub struct Node {
    /// Every definition merged into this node (non-test, lib targets).
    pub defs: Vec<Def>,
    /// Resolved callees: callee key → `(caller file_idx, call line)`
    /// with the smallest call line, for deterministic chains.
    pub callees: BTreeMap<FnKey, (usize, usize)>,
}

/// Which way reachability propagates from the seeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Toward callers: "who can reach the seeds?" (rule D4 walks from
    /// nondeterminism sources up to public entry points).
    Callers,
    /// Toward callees: "what do the seeds reach?" (rules H2/H3/P2 walk
    /// from hot entry points down to cost sinks).
    Callees,
}

/// The workspace call graph over per-file summaries.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All nodes, keyed by `(crate, fn name)`.
    pub nodes: BTreeMap<FnKey, Node>,
}

impl CallGraph {
    /// Builds the graph from path-sorted per-file summaries, resolving
    /// call sites through imports and `crate_deps` (when empty, calls
    /// resolve across every crate pair — the in-memory fallback).
    pub fn build(files: &[FileSummary], crate_deps: &BTreeMap<String, BTreeSet<String>>) -> Self {
        let workspace_crates: BTreeSet<&str> =
            files.iter().map(|f| f.crate_name.as_str()).collect();

        // Index: simple fn name → set of crates defining it.
        let mut by_name: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for f in files {
            if f.kind != TargetKind::Lib {
                continue;
            }
            for func in &f.fns {
                if !func.in_test {
                    by_name
                        .entry(func.name.as_str())
                        .or_default()
                        .insert(f.crate_name.as_str());
                }
            }
        }

        let mut nodes: BTreeMap<FnKey, Node> = BTreeMap::new();
        for (file_idx, f) in files.iter().enumerate() {
            if f.kind != TargetKind::Lib {
                continue;
            }
            let import_map: BTreeMap<&str, &UseImport> =
                f.uses.iter().map(|u| (u.name.as_str(), u)).collect();
            for (fn_idx, func) in f.fns.iter().enumerate() {
                if func.in_test {
                    continue;
                }
                let key: FnKey = (f.crate_name.clone(), func.name.clone());
                let node = nodes.entry(key).or_default();
                node.defs.push(Def {
                    file: file_idx,
                    fun: fn_idx,
                });
                for call in &func.calls {
                    for callee_crate in resolve_call(
                        call,
                        &f.crate_name,
                        &import_map,
                        &by_name,
                        &workspace_crates,
                        crate_deps,
                    ) {
                        let Some(callee_name) = call.path.last() else {
                            continue;
                        };
                        let callee_key: FnKey = (callee_crate, callee_name.clone());
                        let entry = node
                            .callees
                            .entry(callee_key)
                            .or_insert((file_idx, call.line));
                        if call.line < entry.1 {
                            *entry = (file_idx, call.line);
                        }
                    }
                }
            }
        }
        CallGraph { nodes }
    }

    /// Multi-source BFS from `seeds` in `dir`. Returns, per reached
    /// node, its depth and the deterministic next hop *toward the
    /// nearest seed* (`None` for the seeds themselves) — follow the
    /// hops to reconstruct the chain.
    pub fn reach<'a>(
        &'a self,
        seeds: &[&'a FnKey],
        dir: Direction,
    ) -> BTreeMap<&'a FnKey, (usize, Option<&'a FnKey>)> {
        // Adjacency in the direction of propagation, borrowed from the
        // node map so keys stay comparable.
        let mut adj: BTreeMap<&FnKey, BTreeSet<&FnKey>> = BTreeMap::new();
        for (key, node) in &self.nodes {
            for callee in node.callees.keys() {
                let Some((callee_key, _)) = self.nodes.get_key_value(callee) else {
                    continue;
                };
                match dir {
                    Direction::Callers => adj.entry(callee_key).or_default().insert(key),
                    Direction::Callees => adj.entry(key).or_default().insert(callee_key),
                };
            }
        }
        let mut dist: BTreeMap<&FnKey, (usize, Option<&FnKey>)> = BTreeMap::new();
        let mut frontier: Vec<&FnKey> = seeds.to_vec();
        frontier.sort();
        frontier.dedup();
        for k in &frontier {
            dist.insert(k, (0, None));
        }
        while !frontier.is_empty() {
            let mut next: Vec<&FnKey> = Vec::new();
            for from in frontier {
                let d = dist[&from].0;
                if let Some(ns) = adj.get(&from) {
                    for n in ns {
                        dist.entry(n).or_insert_with(|| {
                            next.push(n);
                            (d + 1, Some(from))
                        });
                    }
                }
            }
            next.sort();
            next.dedup();
            frontier = next;
        }
        dist
    }

    /// The chain of node keys from `start` along the recorded hops to
    /// the nearest seed (inclusive of both ends). Empty when `start`
    /// was not reached.
    pub fn chain<'a>(
        &'a self,
        start: &'a FnKey,
        dist: &BTreeMap<&'a FnKey, (usize, Option<&'a FnKey>)>,
    ) -> Vec<&'a FnKey> {
        let mut out = Vec::new();
        let mut key = match self.nodes.get_key_value(start) {
            Some((k, _)) => k,
            None => return out,
        };
        if !dist.contains_key(key) {
            return out;
        }
        loop {
            out.push(key);
            match dist.get(key).and_then(|&(_, via)| via) {
                Some(next) => key = next,
                None => break,
            }
        }
        out
    }
}

/// Renders one chain hop as `name() (file:line)` using the node's
/// first definition.
pub fn render_hop(key: &FnKey, node: &Node, files: &[FileSummary]) -> String {
    match node.defs.first() {
        Some(d) => format!(
            "{}() ({}:{})",
            key.1,
            files[d.file].path.display(),
            files[d.file].fns[d.fun].def_line
        ),
        None => format!("{}()", key.1),
    }
}

/// Resolves one call site to the set of workspace crates that may
/// define the callee.
fn resolve_call(
    call: &CallSite,
    caller_crate: &str,
    imports: &BTreeMap<&str, &UseImport>,
    by_name: &BTreeMap<&str, BTreeSet<&str>>,
    workspace_crates: &BTreeSet<&str>,
    crate_deps: &BTreeMap<String, BTreeSet<String>>,
) -> Vec<String> {
    let Some(name) = call.path.last().map(String::as_str) else {
        return Vec::new();
    };
    if TRAIT_DISPATCH.contains(&name) {
        return Vec::new();
    }
    let Some(defining) = by_name.get(name) else {
        return Vec::new();
    };
    let visible = |c: &str| {
        c == caller_crate
            || crate_deps.is_empty()
            || crate_deps
                .get(caller_crate)
                .is_some_and(|deps| deps.contains(c))
    };
    // Fully-qualified path or an import naming the first segment.
    let mut path = call.path.clone();
    if path.len() == 1 {
        if let Some(u) = imports.get(name) {
            path = u.path.clone();
        }
    } else if let Some(u) = imports.get(path[0].as_str()) {
        let mut full = u.path.clone();
        full.extend_from_slice(&path[1..]);
        path = full;
    }
    if path.len() > 1 {
        let root = path[0].as_str();
        if EXTERNAL_ROOTS.contains(&root) || PRELUDE_TYPES.contains(&root) {
            return Vec::new();
        }
        let as_crate = root.replace('_', "-");
        if workspace_crates.contains(as_crate.as_str()) {
            return if defining.contains(as_crate.as_str()) && visible(&as_crate) {
                vec![as_crate]
            } else {
                Vec::new()
            };
        }
        if matches!(root, "crate" | "self" | "super" | "Self") {
            return if defining.contains(caller_crate) {
                vec![caller_crate.to_owned()]
            } else {
                Vec::new()
            };
        }
        // Unresolvable qualifier (local module, local type): within
        // the caller's crate only.
        return if defining.contains(caller_crate) {
            vec![caller_crate.to_owned()]
        } else {
            Vec::new()
        };
    }
    // Bare or method call: the caller's crate, plus (for methods) its
    // workspace dependencies — receiver types are not resolved, so
    // method calls over-approximate across the dep edge.
    let mut out: Vec<String> = Vec::new();
    if defining.contains(caller_crate) {
        out.push(caller_crate.to_owned());
    }
    if call.method {
        for &c in defining.iter() {
            if c != caller_crate && visible(c) {
                out.push(c.to_owned());
            }
        }
    }
    out
}
