//! Rules H2/H3/P2: hot-path cost analysis over the workspace call
//! graph.
//!
//! The paper's flash crowds put ~10⁵ concurrent viewers in one
//! channel, so the per-tick and per-sample code paths live or die on
//! per-event cost. The line rules cannot see *where* an allocation or
//! lock sits relative to those paths; this pass can, because it walks
//! the same call graph rule D4 uses ([`crate::reach`]) — just in the
//! opposite direction:
//!
//! 1. **Seed** hot entry points: functions marked with a `lint:hot`
//!    comment (on or above the `fn` line) plus a built-in registry
//!    (`OverlaySim::tick_once`, the per-sample `*_csr` kernel surface,
//!    `analysis::study`'s boundary finalizer) so the gate survives
//!    marker-less refactors.
//! 2. **Propagate** forward over callees: everything a hot entry
//!    reaches is hot.
//! 3. **Report** cost sinks inside hot functions, with the full call
//!    chain from the entry point:
//!    * **H2** — heap allocation: `.collect()`, `.clone()`,
//!      `.to_vec()`, `.to_string()`, `format!`, `Box::new`, plus
//!      collection constructors (`Vec::new`, `with_capacity`,
//!      `vec![`, …) when they sit inside a loop. Governed by
//!      per-crate budgets ([`crate::rules::default_hot_alloc_budgets`]).
//!    * **H3** — whole-collection iteration: `.iter()`/`.keys()`/
//!      `.values()`/`.retain()` over map/set-typed bindings and
//!      `0..len()` range scans — the "no global scans per tick"
//!      invariant the timer-wheel refactor depends on.
//!    * **P2** — lock/channel machinery. Deliberately fires on sites
//!      whose P1 line finding was `lint:allow`ed: a justified lock is
//!      still a per-tick cost, and `.lock()` on a field P1 cannot see
//!      is caught here unconditionally.
//!
//! Suppression: `lint:allow(H2|H3|P2): <why>` on the sink line
//! un-seeds that sink; on a function's `fn` line it exempts every sink
//! in that body; on a hot entry's `fn` line it waives the entry (and
//! with it the whole subtree only that entry makes hot).

use crate::reach::{render_hop, CallGraph, Direction, FnKey};
use crate::rules::{contains_ident, Rule};
use crate::source::{SourceFile, TargetKind};
use crate::taint::{enclosing_fn, iteration_of, typed_names};
use crate::{Config, CostKind, CostSink, FileSummary, Report, Violation};
use std::collections::BTreeMap;

/// Crates whose code can carry cost sinks: the simulation tick path
/// and the per-sample metric surface. `magellan-par` is deliberately
/// absent — its chunk buffers and scoped spawns *are* the sanctioned
/// parallelism cost, proven worthwhile by the bench baselines.
const COST_GOVERNED: [&str; 6] = [
    "magellan-overlay",
    "magellan-netsim",
    "magellan-workload",
    "magellan-graph",
    "magellan-analysis",
    "magellan-trace",
];

/// Built-in hot entry points (`(crate, fn)`), independent of source
/// markers: the per-tick driver, the per-sample study surface, and the
/// Csr kernel surface the study fans out to via `magellan-par`.
const HOT_REGISTRY: [(&str, &str); 19] = [
    ("magellan-overlay", "tick_once"),
    ("magellan-analysis", "finalize_boundary"),
    ("magellan-graph", "local_clustering_csr"),
    ("magellan-graph", "clustering_coefficient_csr"),
    ("magellan-graph", "sampled_clustering_csr"),
    ("magellan-graph", "transitivity_csr"),
    ("magellan-graph", "bfs_distances_csr"),
    ("magellan-graph", "bfs_multi64_csr"),
    ("magellan-graph", "average_path_length_csr"),
    ("magellan-graph", "core_decomposition_csr"),
    ("magellan-graph", "garlaschelli_reciprocity_csr"),
    ("magellan-graph", "weighted_reciprocity_csr"),
    ("magellan-graph", "assess_csr"),
    ("magellan-graph", "apply_delta"),
    ("magellan-graph", "sync_snapshot"),
    // The networked service's per-datagram admission path: every
    // report a client puts on the wire goes through these.
    ("magellan-trace", "ingest_wire"),
    ("magellan-trace", "ingest_payload"),
    // Defense hot paths: the per-report token-bucket admission check
    // and the per-chunk chaos-schedule decision.
    ("magellan-trace", "try_admit"),
    ("magellan-netsim", "next_action"),
];

/// Allocation needles that cost on every execution: method/macro
/// sinks that materialize a fresh heap object.
const ALLOC_ANYWHERE: [(&str, &str); 6] = [
    (".collect()", "`.collect()` materializes a fresh collection"),
    (
        ".collect::<",
        "`.collect()` materializes a fresh collection",
    ),
    (".to_vec()", "`.to_vec()` copies the slice"),
    (".to_string()", "`.to_string()` allocates"),
    ("format!(", "`format!` allocates"),
    ("Box::new(", "`Box::new` allocates"),
];

/// `.clone()` is listed separately so `Rc::clone`-style refcount bumps
/// can be told apart in the message (they still flag — a hot path
/// should not be bumping refcounts either without saying why).
const CLONE_NEEDLE: (&str, &str) = (".clone()", "`.clone()` deep-copies");

/// Constructors that only flag inside a loop: a one-off buffer at fn
/// entry is amortized, the same buffer re-made per iteration is not.
const ALLOC_IN_LOOP: [&str; 10] = [
    "Vec::new(",
    "Vec::with_capacity(",
    "String::new(",
    "String::with_capacity(",
    "VecDeque::new(",
    "BTreeMap::new(",
    "BTreeSet::new(",
    "HashMap::new(",
    "HashSet::new(",
    "vec![",
];

/// Map/set types whose whole-collection iteration is an H3 scan.
const SCAN_TYPES: [&str; 4] = ["BTreeMap", "BTreeSet", "HashMap", "HashSet"];

/// Lock/channel identifiers whose *presence* P1 already reports; P2
/// re-raises them only when the P1 finding was allowed away.
const LOCK_IDENTS: [&str; 4] = ["Mutex", "RwLock", "Condvar", "Barrier"];

/// Detects the cost sinks inside `src`, attributed per function.
///
/// Returns `(fn_index_in_items, sink)` pairs. At most one sink per
/// line and kind, so a line that both clones and collects reads as a
/// single allocation finding.
pub fn detect_sinks(src: &SourceFile, fns: &[crate::items::FnItem]) -> Vec<(usize, CostSink)> {
    if src.kind != TargetKind::Lib || !COST_GOVERNED.contains(&src.crate_name.as_str()) {
        return Vec::new();
    }
    let scan_names = typed_names(src, &SCAN_TYPES);
    let in_loop = mark_loop_lines(&src.code);
    let mut out = Vec::new();
    let mut push = |fn_idx: usize, line: usize, kind: CostKind, what: String| {
        out.push((fn_idx, CostSink { line, kind, what }));
    };
    for (idx, line) in src.code.iter().enumerate() {
        let lineno = idx + 1;
        if src.in_test_module[idx] {
            continue;
        }
        let Some(fn_idx) = enclosing_fn(fns, lineno) else {
            continue;
        };
        // H2 — allocation.
        if !src.is_allowed(lineno, Rule::H2.id()) {
            let anywhere = ALLOC_ANYWHERE
                .iter()
                .find(|(needle, _)| line.contains(needle))
                .map(|&(_, what)| what)
                .or_else(|| line.contains(CLONE_NEEDLE.0).then_some(CLONE_NEEDLE.1));
            let looped = in_loop[idx]
                .then(|| {
                    ALLOC_IN_LOOP
                        .iter()
                        .find(|needle| line.contains(*needle))
                        .map(|n| (*n, "constructor inside a loop allocates per iteration"))
                })
                .flatten();
            if let Some(what) = anywhere {
                push(fn_idx, lineno, CostKind::Alloc, what.to_owned());
            } else if let Some((needle, why)) = looped {
                let ctor = needle.trim_end_matches(['(', '[']);
                push(fn_idx, lineno, CostKind::Alloc, format!("`{ctor}` {why}"));
            }
        }
        // H3 — whole-collection iteration and range scans.
        if !src.is_allowed(lineno, Rule::H3.id()) {
            let mut hit = None;
            for name in &scan_names {
                if let Some(how) = iteration_of(line, name) {
                    hit = Some(format!("whole-collection scan `{how}`"));
                    break;
                }
            }
            if hit.is_none() && is_range_scan(line) {
                hit = Some("range scan over `..len()`".to_owned());
            }
            if let Some(what) = hit {
                push(fn_idx, lineno, CostKind::Scan, what);
            }
        }
        // P2 — lock/channel machinery.
        if !src.is_allowed(lineno, Rule::P2.id()) {
            let p1_allowed = src.is_allowed(lineno, Rule::P1.id());
            let ident_hit = LOCK_IDENTS
                .iter()
                .find(|l| contains_ident(line, l))
                .copied();
            let channel_hit = contains_ident(line, "mpsc") || line.contains("sync_channel(");
            if p1_allowed && (ident_hit.is_some() || channel_hit) {
                let what = match ident_hit {
                    Some(l) => format!("`{l}` behind a lint:allow(P1)"),
                    None => "channel behind a lint:allow(P1)".to_owned(),
                };
                push(fn_idx, lineno, CostKind::Lock, what);
            } else if ident_hit.is_none() && !channel_hit && line.contains(".lock()") {
                // A `.lock()` on a field P1's ident needles cannot see.
                push(
                    fn_idx,
                    lineno,
                    CostKind::Lock,
                    "`.lock()` acquisition".to_owned(),
                );
            }
        }
    }
    out
}

/// Flags every line inside (or opening) a `for`/`while`/`loop` body.
fn mark_loop_lines(code: &[String]) -> Vec<bool> {
    let mut flags = vec![false; code.len()];
    // Brace depths at which a loop body opened.
    let mut loop_stack: Vec<i32> = Vec::new();
    let mut depth: i32 = 0;
    for (idx, line) in code.iter().enumerate() {
        // `impl Trait for Type` also contains the `for` keyword; a real
        // for-loop always carries ` in `, so require it.
        let header = (contains_ident(line, "for")
            && contains_ident(line, "in")
            && !contains_ident(line, "impl"))
            || contains_ident(line, "while")
            || contains_ident(line, "loop");
        flags[idx] = header || !loop_stack.is_empty();
        let mut pending = header;
        for c in line.chars() {
            match c {
                '{' => {
                    if pending {
                        loop_stack.push(depth);
                        pending = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if loop_stack.last() == Some(&depth) {
                        loop_stack.pop();
                    }
                }
                _ => {}
            }
        }
    }
    flags
}

/// `for i in 0..xs.len()`-style whole-slab scans.
fn is_range_scan(line: &str) -> bool {
    let t = line.trim_start();
    t.starts_with("for ")
        && t.find(" in ")
            .map(|p| &t[p + 4..])
            .is_some_and(|tail| tail.contains("..") && tail.contains(".len()"))
}

/// Runs the H2/H3/P2 analysis over the shared call graph and appends
/// violations to `report`.
pub fn check_hot_paths(
    graph: &CallGraph,
    files: &[FileSummary],
    config: &Config,
    report: &mut Report,
) {
    for kind in [CostKind::Alloc, CostKind::Scan, CostKind::Lock] {
        check_kind(graph, files, config, kind, report);
    }
}

/// Whether any definition of the node is a hot entry for `rule`
/// (marker or registry, not waived on its `fn` line).
fn is_hot_seed(node: &crate::reach::Node, key: &FnKey, files: &[FileSummary], rule: Rule) -> bool {
    node.defs.iter().any(|d| {
        let f = &files[d.file].fns[d.fun];
        let marked = f.hot_marked || HOT_REGISTRY.contains(&(key.0.as_str(), key.1.as_str()));
        marked && !rule_waived(f, rule)
    })
}

/// Whether the summary's `fn` line carries `lint:allow(<rule>)`.
fn rule_waived(f: &crate::FnSummary, rule: Rule) -> bool {
    match rule {
        Rule::H2 => f.h2_allowed,
        Rule::H3 => f.h3_allowed,
        Rule::P2 => f.p2_allowed,
        _ => false,
    }
}

fn check_kind(
    graph: &CallGraph,
    files: &[FileSummary],
    config: &Config,
    kind: CostKind,
    report: &mut Report,
) {
    let rule = kind.rule();
    let seeds: Vec<&FnKey> = graph
        .nodes
        .iter()
        .filter(|(k, n)| is_hot_seed(n, k, files, rule))
        .map(|(k, _)| k)
        .collect();
    if seeds.is_empty() {
        return;
    }
    let dist = graph.reach(&seeds, Direction::Callees);

    // Gather findings: every matching sink inside a hot-reachable
    // definition whose `fn` line does not waive the rule.
    let mut found: Vec<(String, Violation)> = Vec::new();
    for (key, node) in &graph.nodes {
        if !dist.contains_key(key) {
            continue;
        }
        for def in &node.defs {
            let f = &files[def.file].fns[def.fun];
            if rule_waived(f, rule) {
                continue;
            }
            for sink in f.sinks.iter().filter(|s| s.kind == kind) {
                let chain = render_chain(graph, key, &dist, files, sink, def.file);
                let crate_name = files[def.file].crate_name.clone();
                found.push((
                    crate_name,
                    Violation {
                        file: files[def.file].path.clone(),
                        line: sink.line,
                        rule,
                        message: message_for(kind, &key.1, &chain),
                    },
                ));
            }
        }
    }

    match kind {
        CostKind::Alloc => {
            // H2 is budgeted per sink crate, mirroring the C1 unwrap
            // ratchet: counts at or under the audited budget are the
            // signed-off residue; one over reports the whole crate.
            let mut per_crate: BTreeMap<String, usize> = BTreeMap::new();
            for (crate_name, _) in &found {
                *per_crate.entry(crate_name.clone()).or_insert(0) += 1;
            }
            for (crate_name, v) in found {
                let count = per_crate[crate_name.as_str()];
                let budget = config
                    .hot_alloc_budgets
                    .get(crate_name.as_str())
                    .copied()
                    .unwrap_or(0);
                if count > budget {
                    report.violations.push(Violation {
                        message: format!(
                            "{} [crate `{crate_name}`: {count} hot allocation(s), budget {budget}]",
                            v.message
                        ),
                        ..v
                    });
                }
            }
        }
        CostKind::Scan | CostKind::Lock => {
            report.violations.extend(found.into_iter().map(|(_, v)| v));
        }
    }
}

/// Renders `entry (file:line) -> … -> sink-fn (file:line) -> what at
/// file:line` — the hops run entry-first, so the chain reads in call
/// order even though the BFS recorded it sink-first.
fn render_chain(
    graph: &CallGraph,
    sink_key: &FnKey,
    dist: &BTreeMap<&FnKey, (usize, Option<&FnKey>)>,
    files: &[FileSummary],
    sink: &CostSink,
    sink_file: usize,
) -> String {
    let mut keys = graph.chain(sink_key, dist);
    keys.reverse(); // entry … sink-fn
    let parts: Vec<String> = keys
        .iter()
        .map(|k| render_hop(k, &graph.nodes[*k], files))
        .collect();
    format!(
        "{} -> {} at {}:{}",
        parts.join(" -> "),
        sink.what,
        files[sink_file].path.display(),
        sink.line
    )
}

fn message_for(kind: CostKind, fn_name: &str, chain: &str) -> String {
    match kind {
        CostKind::Alloc => format!(
            "hot-path allocation in `{fn_name}`: {chain} — hoist the buffer out of the \
             per-tick/per-sample path, reuse scratch storage, or justify with lint:allow(H2)"
        ),
        CostKind::Scan => format!(
            "hot-path whole-collection scan in `{fn_name}`: {chain} — per-tick code must \
             touch only the peers an event names (ROADMAP item 1); index or bucket instead, \
             or justify with lint:allow(H3)"
        ),
        CostKind::Lock => format!(
            "hot-path lock/channel in `{fn_name}`: {chain} — a justified lock is still a \
             per-tick cost; move it off the hot path or justify with lint:allow(P2)"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn summarize(path: &str, text: &str) -> FileSummary {
        let src = SourceFile::parse(PathBuf::from(path), text);
        crate::analyze_file(&src, &crate::Config::default())
    }

    fn hot(files: &[FileSummary]) -> Vec<Violation> {
        let graph = CallGraph::build(files, &BTreeMap::new());
        let mut report = Report::default();
        check_hot_paths(&graph, files, &crate::Config::default(), &mut report);
        report.violations
    }

    #[test]
    fn loop_lines_are_marked() {
        let src = SourceFile::parse(
            PathBuf::from("crates/overlay/src/x.rs"),
            "fn f() {\n    let a = 1;\n    for i in 0..3 {\n        let b = i;\n    }\n    let c = 2;\n}\n",
        );
        let flags = mark_loop_lines(&src.code);
        assert_eq!(flags, vec![false, false, true, true, true, false, false]);
    }

    #[test]
    fn direct_allocation_in_marked_hot_fn_fires() {
        let f = summarize(
            "crates/overlay/src/x.rs",
            "// lint:hot: per-tick driver\npub fn drive(xs: &[u32]) -> Vec<u32> {\n    xs.iter().copied().collect()\n}\n",
        );
        let vs = hot(&[f]);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert_eq!(vs[0].rule, Rule::H2);
        assert!(vs[0].message.contains("drive()"), "{}", vs[0].message);
    }

    #[test]
    fn constructor_outside_loop_is_amortized() {
        let f = summarize(
            "crates/overlay/src/x.rs",
            "// lint:hot\npub fn drive(n: usize) -> usize {\n    let buf: Vec<u32> = Vec::with_capacity(n);\n    buf.capacity()\n}\n",
        );
        assert!(hot(&[f]).is_empty());
    }

    #[test]
    fn constructor_inside_loop_fires() {
        let f = summarize(
            "crates/overlay/src/x.rs",
            "// lint:hot\npub fn drive(n: usize) -> usize {\n    let mut total = 0;\n    for _ in 0..n {\n        let buf: Vec<u32> = Vec::with_capacity(4);\n        total += buf.capacity();\n    }\n    total\n}\n",
        );
        let vs = hot(&[f]);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert_eq!(vs[0].rule, Rule::H2);
        assert_eq!(vs[0].line, 5);
    }

    #[test]
    fn cold_allocation_is_inert() {
        let f = summarize(
            "crates/overlay/src/x.rs",
            "pub fn setup(xs: &[u32]) -> Vec<u32> {\n    xs.to_vec()\n}\n",
        );
        assert!(hot(&[f]).is_empty());
    }

    #[test]
    fn transitive_chain_is_rendered_entry_first() {
        let helper = summarize(
            "crates/graph/src/h.rs",
            "pub fn degree_sequence(off: &[usize]) -> Vec<usize> {\n    off.to_vec()\n}\n",
        );
        let entry = summarize(
            "crates/analysis/src/e.rs",
            "use magellan_graph::h::degree_sequence;\n// lint:hot: per-sample surface\npub fn sample(off: &[usize]) -> usize {\n    degree_sequence(off).len()\n}\n",
        );
        let vs = hot(&[helper, entry]);
        assert_eq!(vs.len(), 1, "{vs:?}");
        let m = &vs[0].message;
        let sample_pos = m.find("sample()").expect("entry hop");
        let helper_pos = m.find("degree_sequence()").expect("sink hop");
        assert!(sample_pos < helper_pos, "{m}");
        assert!(m.contains("crates/graph/src/h.rs:2"), "{m}");
    }

    #[test]
    fn sink_line_allow_suppresses() {
        let f = summarize(
            "crates/overlay/src/x.rs",
            "// lint:hot\npub fn drive(xs: &[u32]) -> Vec<u32> {\n    // lint:allow(H2): bounded by fanout, not population\n    xs.iter().copied().collect()\n}\n",
        );
        assert!(hot(&[f]).is_empty());
    }

    #[test]
    fn entry_fn_allow_waives_the_subtree() {
        let f = summarize(
            "crates/overlay/src/x.rs",
            "// lint:hot\npub fn drive(xs: &[u32]) -> Vec<u32> { // lint:allow(H2): startup-only path measured cold\n    helper(xs)\n}\nfn helper(xs: &[u32]) -> Vec<u32> {\n    xs.to_vec()\n}\n",
        );
        assert!(hot(&[f]).is_empty());
    }

    #[test]
    fn range_scan_fires_h3() {
        let f = summarize(
            "crates/overlay/src/x.rs",
            "// lint:hot\npub fn drive(xs: &[u32]) -> u32 {\n    let mut t = 0;\n    for i in 0..xs.len() {\n        t += xs[i];\n    }\n    t\n}\n",
        );
        let vs = hot(&[f]);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert_eq!(vs[0].rule, Rule::H3);
        assert_eq!(vs[0].line, 4);
    }

    #[test]
    fn map_iteration_fires_h3() {
        let f = summarize(
            "crates/overlay/src/x.rs",
            "// lint:hot\npub fn drive(peers: &std::collections::BTreeMap<u32, u32>) -> u32 {\n    let known: BTreeMap<u32, u32> = peers.clone();\n    // lint:allow(H2): test scaffold\n    known.values().sum()\n}\n",
        );
        let vs = hot(&[f]);
        // line 3: H2 (.clone()); line 5: H3 (values over a map).
        let h3: Vec<_> = vs.iter().filter(|v| v.rule == Rule::H3).collect();
        assert_eq!(h3.len(), 1, "{vs:?}");
        assert_eq!(h3[0].line, 5);
    }

    #[test]
    fn p2_fires_only_behind_p1_allow() {
        // An unallowed Mutex: P1's finding, not P2's.
        let raw = summarize(
            "crates/netsim/src/a.rs",
            "// lint:hot\npub fn pump() -> bool {\n    std::sync::Mutex::new(7).lock().is_ok()\n}\n",
        );
        let vs = hot(&[raw]);
        assert!(vs.iter().all(|v| v.rule != Rule::P2), "{vs:?}");
        // The same lock justified at the line level: P2 takes over.
        let allowed = summarize(
            "crates/netsim/src/b.rs",
            "// lint:hot\npub fn pump() -> bool {\n    // lint:allow(P1): counter shared with the collector thread\n    std::sync::Mutex::new(7).lock().is_ok()\n}\n",
        );
        let vs = hot(&[allowed]);
        let p2: Vec<_> = vs.iter().filter(|v| v.rule == Rule::P2).collect();
        assert_eq!(p2.len(), 1, "{vs:?}");
        assert_eq!(p2[0].line, 4);
    }

    #[test]
    fn blind_field_lock_fires_p2_unconditionally() {
        let f = summarize(
            "crates/netsim/src/c.rs",
            "// lint:hot\npub fn pump(&self) -> bool {\n    self.state.lock().is_ok()\n}\n",
        );
        let vs = hot(&[f]);
        let p2: Vec<_> = vs.iter().filter(|v| v.rule == Rule::P2).collect();
        assert_eq!(p2.len(), 1, "{vs:?}");
        assert_eq!(p2[0].line, 3);
    }

    #[test]
    fn h2_budget_absorbs_audited_residue() {
        let f = summarize(
            "crates/overlay/src/x.rs",
            "// lint:hot\npub fn drive(xs: &[u32]) -> Vec<u32> {\n    xs.to_vec()\n}\n",
        );
        let graph = CallGraph::build(std::slice::from_ref(&f), &BTreeMap::new());
        let mut config = crate::Config::default();
        config
            .hot_alloc_budgets
            .insert("magellan-overlay".to_owned(), 1);
        let mut report = Report::default();
        check_hot_paths(&graph, &[f], &config, &mut report);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn registry_seeds_without_marker() {
        let f = summarize(
            "crates/overlay/src/sim.rs",
            "pub fn tick_once(xs: &[u32]) -> Vec<u32> {\n    xs.to_vec()\n}\n",
        );
        let vs = hot(&[f]);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert_eq!(vs[0].rule, Rule::H2);
    }
}
