//! Rule D4: transitive determinism-taint analysis over the workspace
//! call graph.
//!
//! The line-local rules (D1–D3) catch nondeterminism at the use site,
//! but only inside the crates they govern. A simulation entry point
//! can still reach ambient entropy *through a helper in another
//! crate* — exactly how a hash-ordered `HashSet` in
//! `magellan_graph::random` once leaked into `barabasi_albert`'s
//! output. This module closes that hole:
//!
//! 1. **Seed** taint sources: wall-clock reads, OS entropy, raw thread
//!    spawns, and — the subtle one — *iteration over hash-ordered
//!    collections* (declared `HashMap`/`HashSet` locals and fields
//!    whose `.iter()`/`.keys()`/`.values()`/`.drain()`/`for … in`
//!    sites leak per-process order).
//! 2. **Propagate** reachability backwards over the workspace call
//!    graph ([`crate::reach`] — name-based resolution through `use`
//!    imports and the crate dependency graph, an over-approximation
//!    documented in DESIGN.md §9).
//! 3. **Report** every public entry point in the simulation, metric,
//!    and trace-substrate crates (`overlay`, `netsim`, `workload`,
//!    `graph`, `analysis`, `trace`) that can reach a source, printing
//!    the full call chain from the entry point down to the offending
//!    line.
//!
//! A `lint:allow(D4): <why>` on the *source line* certifies the
//! iteration (or read) as order-insensitive and un-seeds it for every
//! caller; on an *entry point's `fn` line* it waives that one entry.

use crate::reach::{render_hop, CallGraph, Direction, FnKey};
use crate::rules::Rule;
use crate::source::{SourceFile, TargetKind};
use crate::{FileSummary, Report, TaintKind, TaintSource, Violation};
use std::collections::{BTreeMap, BTreeSet};

/// Crates whose public functions are D4 entry points.
const ENTRY_CRATES: [&str; 6] = [
    "magellan-overlay",
    "magellan-netsim",
    "magellan-workload",
    "magellan-graph",
    "magellan-analysis",
    "magellan-trace",
];

/// Crates whose internals never seed taint: the bench harness times
/// things by design, and `magellan-par`'s order-preserving primitives
/// are proven deterministic by the parallel-equivalence tests.
const SEED_EXEMPT: [&str; 2] = ["magellan-bench", "magellan-par"];

/// Sim-path crates where rule D1 already bans hash collections
/// wholesale; depth-0 hash findings there would double-report.
const D1_CRATES: [&str; 3] = ["magellan-overlay", "magellan-netsim", "magellan-workload"];

/// Direct needles: pattern, taint kind, human label.
const NEEDLES: [(&str, TaintKind, &str); 7] = [
    ("SystemTime::now", TaintKind::Clock, "wall-clock read"),
    ("Instant::now", TaintKind::Clock, "wall-clock read"),
    ("thread_rng", TaintKind::Entropy, "ambient OS entropy"),
    ("rand::rng()", TaintKind::Entropy, "ambient OS entropy"),
    ("from_entropy", TaintKind::Entropy, "ambient OS entropy"),
    ("thread::spawn", TaintKind::Spawn, "raw thread spawn"),
    ("thread::Builder", TaintKind::Spawn, "raw thread spawn"),
];

/// Method suffixes whose iteration walks the whole collection.
const ITER_TOKENS: [&str; 10] = [
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain(",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
    ".retain(",
];

/// Detects the taint sources inside `src`, attributed per function.
///
/// Returns `(fn_index_in_items, source)` pairs; sources outside any
/// function (e.g. in `const` initializers) are dropped — they cannot
/// be reached through the call graph anyway.
pub fn detect_sources(src: &SourceFile, fns: &[crate::items::FnItem]) -> Vec<(usize, TaintSource)> {
    if src.kind != TargetKind::Lib || SEED_EXEMPT.contains(&src.crate_name.as_str()) {
        return Vec::new();
    }
    let hash_names = typed_names(src, &["HashMap", "HashSet"]);
    let mut out = Vec::new();
    for (idx, line) in src.code.iter().enumerate() {
        let lineno = idx + 1;
        if src.in_test_module[idx] || src.is_allowed(lineno, Rule::D4.id()) {
            continue;
        }
        let Some(fn_idx) = enclosing_fn(fns, lineno) else {
            continue;
        };
        for (needle, kind, label) in NEEDLES {
            if line.contains(needle) {
                out.push((
                    fn_idx,
                    TaintSource {
                        line: lineno,
                        kind,
                        what: format!("{label} `{needle}`"),
                    },
                ));
            }
        }
        for name in &hash_names {
            if let Some(how) = iteration_of(line, name) {
                out.push((
                    fn_idx,
                    TaintSource {
                        line: lineno,
                        kind: TaintKind::HashOrder,
                        what: format!(
                            "hash-ordered iteration `{how}` — \
                             HashMap/HashSet order varies per process"
                        ),
                    },
                ));
            }
        }
    }
    out
}

/// Collects names bound (or typed) as any of the `markers` collection
/// types anywhere in the file: `let` bindings, struct fields, and
/// parameters. Tracking is file-local by design — a field iterated
/// from another file needs its own binding there to be seen.
pub(crate) fn typed_names(src: &SourceFile, markers: &[&str]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for line in &src.code {
        if !markers.iter().any(|m| line.contains(m)) {
            continue;
        }
        let t = line.trim_start();
        // `let [mut] name ... = HashMap::…` / `let name: HashMap<…>`.
        if let Some(rest) = t.strip_prefix("let ") {
            let rest = rest.strip_prefix("mut ").unwrap_or(rest);
            let name: String = rest
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                names.insert(name);
            }
            continue;
        }
        // `name: HashMap<…>` — struct field or parameter.
        if let Some(colon) = t.find(':') {
            if markers.iter().any(|m| t[colon..].contains(m)) {
                let head = t[..colon].trim();
                let head = head.strip_prefix("pub ").unwrap_or(head);
                let head = head.split_whitespace().last().unwrap_or("");
                if !head.is_empty()
                    && head.chars().all(|c| c.is_alphanumeric() || c == '_')
                    && head
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_lowercase() || c == '_')
                {
                    names.insert(head.to_owned());
                }
            }
        }
    }
    names
}

/// Whether `line` iterates the whole of the binding `name` (directly
/// or through `self.`), returning a `name.method` / `for … in name`
/// description when it does.
pub(crate) fn iteration_of(line: &str, name: &str) -> Option<String> {
    for owner in [name.to_owned(), format!("self.{name}")] {
        for token in ITER_TOKENS {
            let pat = format!("{owner}{token}");
            if let Some(pos) = line.find(&pat) {
                if ident_boundary_before(line, pos) {
                    let method = token.trim_start_matches('.');
                    let method = &method[..method.find(['(', ')']).unwrap_or(method.len())];
                    return Some(format!("{name}.{method}"));
                }
            }
        }
        // `for x in &name` / `for x in name` at statement level.
        if let Some(in_pos) = line.find(" in ") {
            let tail = line[in_pos + 4..].trim_start();
            let tail = tail.strip_prefix("&mut ").unwrap_or(tail);
            let tail = tail.strip_prefix('&').unwrap_or(tail);
            let stripped = tail.strip_prefix(owner.as_str());
            if line.trim_start().starts_with("for ")
                && stripped.is_some_and(|rest| {
                    !rest
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_alphanumeric() || c == '_' || c == '.')
                })
            {
                return Some(format!("for … in {name}"));
            }
        }
    }
    None
}

fn ident_boundary_before(line: &str, pos: usize) -> bool {
    pos == 0
        || !line[..pos]
            .chars()
            .next_back()
            .is_some_and(|c| c.is_alphanumeric() || c == '_' || c == '.')
}

/// The innermost function whose body span covers `lineno`.
pub(crate) fn enclosing_fn(fns: &[crate::items::FnItem], lineno: usize) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (i, f) in fns.iter().enumerate() {
        if f.body_start <= lineno && lineno <= f.body_end {
            let tighter = match best {
                None => true,
                Some(b) => (f.body_end - f.body_start) < (fns[b].body_end - fns[b].body_start),
            };
            if tighter {
                best = Some(i);
            }
        }
    }
    best
}

/// Taint sources inside any definition of `key`'s node, as
/// `(file_idx, source)` pairs in definition order.
fn node_sources<'a>(
    graph: &CallGraph,
    key: &FnKey,
    files: &'a [FileSummary],
) -> Vec<(usize, &'a TaintSource)> {
    let Some(node) = graph.nodes.get(key) else {
        return Vec::new();
    };
    node.defs
        .iter()
        .flat_map(|d| {
            files[d.file].fns[d.fun]
                .sources
                .iter()
                .map(move |s| (d.file, s))
        })
        .collect()
}

/// Runs the D4 analysis over the shared call graph and appends
/// violations to `report`.
pub fn check_taint(graph: &CallGraph, files: &[FileSummary], report: &mut Report) {
    // Seeds: every node containing at least one taint source.
    let seeds: Vec<&FnKey> = graph
        .nodes
        .iter()
        .filter(|(_, n)| {
            n.defs
                .iter()
                .any(|d| !files[d.file].fns[d.fun].sources.is_empty())
        })
        .map(|(k, _)| k)
        .collect();
    let dist = graph.reach(&seeds, Direction::Callers);

    // Report tainted entry points.
    for (key, node) in &graph.nodes {
        let Some(&(d, _)) = dist.get(key) else {
            continue;
        };
        let entry_def = node.defs.iter().find(|def| {
            let f = &files[def.file].fns[def.fun];
            f.is_pub && ENTRY_CRATES.contains(&files[def.file].crate_name.as_str()) && !f.d4_allowed
        });
        let Some(def) = entry_def else {
            continue;
        };
        if d == 0 {
            // Depth 0: the entry contains the source itself. Wall
            // clock, entropy, and spawns are D2/D3's findings; hash
            // iteration in D1-governed crates is D1's. Only
            // hash-order sources in the metric crates are D4's alone.
            let direct_hash = node_sources(graph, key, files).iter().any(|(_, s)| {
                s.kind == TaintKind::HashOrder && !D1_CRATES.contains(&key.0.as_str())
            });
            if !direct_hash {
                continue;
            }
        }
        let chain = render_chain(graph, key, &dist, files);
        report.violations.push(Violation {
            file: files[def.file].path.clone(),
            line: files[def.file].fns[def.fun].def_line,
            rule: Rule::D4,
            message: format!(
                "public entry point `{}` can transitively reach nondeterminism: {chain} — \
                 make the sink order-insensitive (sort / BTree collections / seeded RNG) or \
                 justify the source line with lint:allow(D4)",
                key.1
            ),
        });
    }
}

/// Renders `entry -> hop (file:line) -> … : source at file:line`.
fn render_chain(
    graph: &CallGraph,
    entry: &FnKey,
    dist: &BTreeMap<&FnKey, (usize, Option<&FnKey>)>,
    files: &[FileSummary],
) -> String {
    let keys = graph.chain(entry, dist);
    let parts: Vec<String> = keys
        .iter()
        .map(|k| render_hop(k, &graph.nodes[*k], files))
        .collect();
    // The BFS only reaches nodes whose chain ends at a seeded node, so
    // the last hop has sources; the fallback keeps the walk total.
    let sources = keys
        .last()
        .map(|k| node_sources(graph, k, files))
        .unwrap_or_default();
    let Some(source) = sources.iter().min_by_key(|(f, s)| (*f, s.line)) else {
        return parts.join(" -> ");
    };
    format!(
        "{} -> {} at {}:{}",
        parts.join(" -> "),
        source.1.what,
        files[source.0].path.display(),
        source.1.line
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn summarize(path: &str, text: &str) -> FileSummary {
        let src = SourceFile::parse(PathBuf::from(path), text);
        crate::analyze_file(&src, &crate::Config::default())
    }

    fn d4_with(files: &[FileSummary], deps: &BTreeMap<String, BTreeSet<String>>) -> Vec<Violation> {
        let graph = CallGraph::build(files, deps);
        let mut report = Report::default();
        check_taint(&graph, files, &mut report);
        report.violations
    }

    fn d4(files: &[FileSummary]) -> Vec<Violation> {
        d4_with(files, &BTreeMap::new())
    }

    #[test]
    fn hash_typed_names_are_collected() {
        let src = SourceFile::parse(
            PathBuf::from("crates/analysis/src/x.rs"),
            "struct S {\n    recent: HashMap<u32, u32>,\n}\nfn f() {\n    let mut times: HashMap<u32, u32> = HashMap::new();\n    let seen = HashSet::new();\n    let plain: Vec<u32> = vec![];\n}\n",
        );
        let names = typed_names(&src, &["HashMap", "HashSet"]);
        assert!(names.contains("recent"));
        assert!(names.contains("times"));
        assert!(names.contains("seen"));
        assert!(!names.contains("plain"));
    }

    #[test]
    fn direct_hash_iteration_in_metric_entry_fires_depth_zero() {
        let f = summarize(
            "crates/analysis/src/x.rs",
            "pub fn shares() -> Vec<u32> {\n    let counts: HashMap<u32, u32> = HashMap::new();\n    counts.values().copied().collect()\n}\n",
        );
        let vs = d4(&[f]);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert_eq!(vs[0].rule, Rule::D4);
        assert!(vs[0].message.contains("counts.values"), "{}", vs[0].message);
    }

    #[test]
    fn transitive_chain_across_crates_is_reported_with_path() {
        let helper = summarize(
            "crates/trace/src/helper.rs",
            "pub fn leak() -> Vec<u32> {\n    let m: HashMap<u32, u32> = HashMap::new();\n    m.keys().copied().collect()\n}\n",
        );
        let entry = summarize(
            "crates/analysis/src/entry.rs",
            "use magellan_trace::helper::leak;\npub fn study() -> Vec<u32> {\n    leak()\n}\n",
        );
        let vs = d4(&[helper, entry]);
        // Two findings: `study` transitively, and — since the trace
        // substrate is itself an entry crate — `leak` at depth 1.
        assert_eq!(vs.len(), 2, "{vs:?}");
        let m = vs
            .iter()
            .map(|v| v.message.as_str())
            .find(|m| m.contains("study()"))
            .expect("chain from study");
        assert!(m.contains("leak()"), "{m}");
        assert!(m.contains("crates/trace/src/helper.rs:3"), "{m}");
    }

    #[test]
    fn sorted_after_collect_is_justified_with_allow() {
        let f = summarize(
            "crates/analysis/src/x.rs",
            "pub fn ordered() -> Vec<u32> {\n    let m: HashMap<u32, u32> = HashMap::new();\n    // lint:allow(D4): keys collected then sorted before use\n    let mut v: Vec<u32> = m.keys().copied().collect();\n    v.sort();\n    v\n}\n",
        );
        assert!(d4(&[f]).is_empty());
    }

    #[test]
    fn point_lookups_do_not_seed() {
        let f = summarize(
            "crates/analysis/src/x.rs",
            "pub fn lookup(k: u32) -> bool {\n    let m: HashSet<u32> = HashSet::new();\n    m.contains(&k)\n}\n",
        );
        assert!(d4(&[f]).is_empty());
    }

    #[test]
    fn wall_clock_depth_zero_left_to_d2_but_transitive_fires() {
        // Depth 0: D2's finding, not D4's.
        let direct = summarize(
            "crates/graph/src/x.rs",
            "pub fn t() -> u64 {\n    let _ = std::time::Instant::now();\n    0\n}\n",
        );
        assert!(d4(&[direct]).is_empty());
        // Transitive through a private helper: D4's finding.
        let chained = summarize(
            "crates/graph/src/y.rs",
            "pub fn outer() -> u64 {\n    inner()\n}\nfn inner() -> u64 {\n    let _ = std::time::Instant::now();\n    0\n}\n",
        );
        let vs = d4(&[chained]);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert!(vs[0].message.contains("Instant::now"), "{}", vs[0].message);
    }

    #[test]
    fn dep_graph_gates_method_resolution() {
        let helper = summarize(
            "crates/trace/src/h.rs",
            "pub fn snap(&self) -> u32 {\n    let m: HashMap<u32, u32> = HashMap::new();\n    for v in m.values() { return *v; }\n    0\n}\n",
        );
        let entry = summarize(
            "crates/overlay/src/e.rs",
            "pub fn run(x: &X) -> u32 {\n    x.snap()\n}\n",
        );
        // With overlay -> trace in the dep graph, the method call
        // resolves and the chain fires.
        let mut deps: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        deps.insert(
            "magellan-overlay".into(),
            ["magellan-trace".to_owned()].into_iter().collect(),
        );
        deps.insert("magellan-trace".into(), BTreeSet::new());
        let vs = d4_with(&[helper.clone(), entry.clone()], &deps);
        // `run` fires through the resolved method call; `snap` also
        // fires directly now that trace is an entry crate.
        assert_eq!(vs.len(), 2, "{vs:?}");
        assert!(vs.iter().any(|v| v.message.contains("run()")), "{vs:?}");
        // Without the dep edge, the method call cannot target trace —
        // only trace's own entry point fires.
        let mut no_edge: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        no_edge.insert("magellan-overlay".into(), BTreeSet::new());
        no_edge.insert("magellan-trace".into(), BTreeSet::new());
        let vs = d4_with(&[helper, entry], &no_edge);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert!(!vs[0].message.contains("run()"), "{}", vs[0].message);
    }

    #[test]
    fn entry_allow_waives_one_entry_point() {
        let f = summarize(
            "crates/analysis/src/x.rs",
            "// lint:allow(D4): exposition only, output unordered by contract\npub fn unordered() -> Vec<u32> {\n    let m: HashMap<u32, u32> = HashMap::new();\n    m.values().copied().collect()\n}\n",
        );
        assert!(d4(&[f]).is_empty());
    }

    #[test]
    fn cycles_terminate() {
        let f = summarize(
            "crates/graph/src/x.rs",
            "pub fn a() { b() }\npub fn b() { a(); c() }\nfn c() {\n    let m: HashSet<u32> = HashSet::new();\n    for v in &m { let _ = v; }\n}\n",
        );
        let vs = d4(&[f]);
        assert_eq!(vs.len(), 2, "{vs:?}"); // a and b both tainted
    }
}
