//! Rule D4: transitive determinism-taint analysis over the workspace
//! call graph.
//!
//! The line-local rules (D1–D3) catch nondeterminism at the use site,
//! but only inside the crates they govern. A simulation entry point
//! can still reach ambient entropy *through a helper in another
//! crate* — exactly how a hash-ordered `HashSet` in
//! `magellan_graph::random` once leaked into `barabasi_albert`'s
//! output. This module closes that hole:
//!
//! 1. **Seed** taint sources: wall-clock reads, OS entropy, raw thread
//!    spawns, and — the subtle one — *iteration over hash-ordered
//!    collections* (declared `HashMap`/`HashSet` locals and fields
//!    whose `.iter()`/`.keys()`/`.values()`/`.drain()`/`for … in`
//!    sites leak per-process order).
//! 2. **Propagate** reachability backwards over the workspace call
//!    graph (name-based resolution through `use` imports and the
//!    crate dependency graph — an over-approximation, documented in
//!    DESIGN.md §9).
//! 3. **Report** every public entry point in the simulation and metric
//!    crates (`overlay`, `netsim`, `workload`, `graph`, `analysis`)
//!    that can reach a source, printing the full call chain from the
//!    entry point down to the offending line.
//!
//! A `lint:allow(D4): <why>` on the *source line* certifies the
//! iteration (or read) as order-insensitive and un-seeds it for every
//! caller; on an *entry point's `fn` line* it waives that one entry.

use crate::items::{CallSite, UseImport};
use crate::rules::Rule;
use crate::source::{SourceFile, TargetKind};
use crate::{FileSummary, Report, TaintKind, TaintSource, Violation};
use std::collections::{BTreeMap, BTreeSet};

/// Crates whose public functions are D4 entry points.
const ENTRY_CRATES: [&str; 5] = [
    "magellan-overlay",
    "magellan-netsim",
    "magellan-workload",
    "magellan-graph",
    "magellan-analysis",
];

/// Crates whose internals never seed taint: the bench harness times
/// things by design, and `magellan-par`'s order-preserving primitives
/// are proven deterministic by the parallel-equivalence tests.
const SEED_EXEMPT: [&str; 2] = ["magellan-bench", "magellan-par"];

/// Sim-path crates where rule D1 already bans hash collections
/// wholesale; depth-0 hash findings there would double-report.
const D1_CRATES: [&str; 3] = ["magellan-overlay", "magellan-netsim", "magellan-workload"];

/// Path prefixes that never resolve into the workspace.
const EXTERNAL_ROOTS: [&str; 9] = [
    "std",
    "core",
    "alloc",
    "rand",
    "proptest",
    "serde",
    "bytes",
    "parking_lot",
    "criterion",
];

/// Direct needles: pattern, taint kind, human label.
const NEEDLES: [(&str, TaintKind, &str); 7] = [
    ("SystemTime::now", TaintKind::Clock, "wall-clock read"),
    ("Instant::now", TaintKind::Clock, "wall-clock read"),
    ("thread_rng", TaintKind::Entropy, "ambient OS entropy"),
    ("rand::rng()", TaintKind::Entropy, "ambient OS entropy"),
    ("from_entropy", TaintKind::Entropy, "ambient OS entropy"),
    ("thread::spawn", TaintKind::Spawn, "raw thread spawn"),
    ("thread::Builder", TaintKind::Spawn, "raw thread spawn"),
];

/// Method suffixes whose hash-ordered iteration leaks process order.
const ITER_TOKENS: [&str; 10] = [
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain(",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
    ".retain(",
];

/// Detects the taint sources inside `src`, attributed per function.
///
/// Returns `(fn_index_in_items, source)` pairs; sources outside any
/// function (e.g. in `const` initializers) are dropped — they cannot
/// be reached through the call graph anyway.
pub fn detect_sources(src: &SourceFile, fns: &[crate::items::FnItem]) -> Vec<(usize, TaintSource)> {
    if src.kind != TargetKind::Lib || SEED_EXEMPT.contains(&src.crate_name.as_str()) {
        return Vec::new();
    }
    let hash_names = hash_typed_names(src);
    let mut out = Vec::new();
    for (idx, line) in src.code.iter().enumerate() {
        let lineno = idx + 1;
        if src.in_test_module[idx] || src.is_allowed(lineno, Rule::D4.id()) {
            continue;
        }
        let Some(fn_idx) = enclosing_fn(fns, lineno) else {
            continue;
        };
        for (needle, kind, label) in NEEDLES {
            if line.contains(needle) {
                out.push((
                    fn_idx,
                    TaintSource {
                        line: lineno,
                        kind,
                        what: format!("{label} `{needle}`"),
                    },
                ));
            }
        }
        for name in &hash_names {
            if let Some(what) = hash_iteration_on(line, name) {
                out.push((
                    fn_idx,
                    TaintSource {
                        line: lineno,
                        kind: TaintKind::HashOrder,
                        what,
                    },
                ));
            }
        }
    }
    out
}

/// Collects names bound (or typed) as `HashMap`/`HashSet` anywhere in
/// the file: `let` bindings, struct fields, and parameters. Tracking
/// is file-local by design — a field iterated from another file needs
/// its own binding there to be seen.
fn hash_typed_names(src: &SourceFile) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for line in &src.code {
        if !line.contains("HashMap") && !line.contains("HashSet") {
            continue;
        }
        let t = line.trim_start();
        // `let [mut] name ... = HashMap::…` / `let name: HashMap<…>`.
        if let Some(rest) = t.strip_prefix("let ") {
            let rest = rest.strip_prefix("mut ").unwrap_or(rest);
            let name: String = rest
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                names.insert(name);
            }
            continue;
        }
        // `name: HashMap<…>` — struct field or parameter.
        if let Some(colon) = t.find(':') {
            if t[colon..].contains("HashMap") || t[colon..].contains("HashSet") {
                let head = t[..colon].trim();
                let head = head.strip_prefix("pub ").unwrap_or(head);
                let head = head.split_whitespace().last().unwrap_or("");
                if !head.is_empty()
                    && head.chars().all(|c| c.is_alphanumeric() || c == '_')
                    && head
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_lowercase() || c == '_')
                {
                    names.insert(head.to_owned());
                }
            }
        }
    }
    names
}

/// Whether `line` iterates the hash-typed binding `name` (directly or
/// through `self.`), returning the human description when it does.
fn hash_iteration_on(line: &str, name: &str) -> Option<String> {
    for owner in [name.to_owned(), format!("self.{name}")] {
        for token in ITER_TOKENS {
            let pat = format!("{owner}{token}");
            if let Some(pos) = line.find(&pat) {
                if ident_boundary_before(line, pos) {
                    let method = token.trim_start_matches('.');
                    let method = &method[..method.find(['(', ')']).unwrap_or(method.len())];
                    return Some(format!(
                        "hash-ordered iteration `{name}.{method}` — \
                         HashMap/HashSet order varies per process"
                    ));
                }
            }
        }
        // `for x in &name` / `for x in name` at statement level.
        if let Some(in_pos) = line.find(" in ") {
            let tail = line[in_pos + 4..].trim_start();
            let tail = tail.strip_prefix("&mut ").unwrap_or(tail);
            let tail = tail.strip_prefix('&').unwrap_or(tail);
            let stripped = tail.strip_prefix(owner.as_str());
            if line.trim_start().starts_with("for ")
                && stripped.is_some_and(|rest| {
                    !rest
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_alphanumeric() || c == '_' || c == '.')
                })
            {
                return Some(format!(
                    "hash-ordered iteration `for … in {name}` — \
                     HashMap/HashSet order varies per process"
                ));
            }
        }
    }
    None
}

fn ident_boundary_before(line: &str, pos: usize) -> bool {
    pos == 0
        || !line[..pos]
            .chars()
            .next_back()
            .is_some_and(|c| c.is_alphanumeric() || c == '_' || c == '.')
}

/// The innermost function whose body span covers `lineno`.
fn enclosing_fn(fns: &[crate::items::FnItem], lineno: usize) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (i, f) in fns.iter().enumerate() {
        if f.body_start <= lineno && lineno <= f.body_end {
            let tighter = match best {
                None => true,
                Some(b) => (f.body_end - f.body_start) < (fns[b].body_end - fns[b].body_start),
            };
            if tighter {
                best = Some(i);
            }
        }
    }
    best
}

/// A call-graph node key: functions are merged per `(crate, name)` —
/// impl blocks are not resolved, so same-name functions in one crate
/// share a node (a documented over-approximation).
type FnKey = (String, String);

#[derive(Debug, Default)]
struct Node {
    /// `(file_idx, def_line, is_entry_def, d4_allowed)` per definition.
    defs: Vec<(usize, usize, bool, bool)>,
    /// Taint sources inside any definition: `(file_idx, source)`.
    sources: Vec<(usize, TaintSource)>,
    /// Resolved callees: callee key → smallest call line (with the
    /// caller file) for deterministic chain reconstruction.
    callees: BTreeMap<FnKey, (usize, usize)>,
}

/// Runs the D4 analysis over per-file summaries and appends
/// violations to `report`.
pub fn check_taint(
    files: &[FileSummary],
    crate_deps: &BTreeMap<String, BTreeSet<String>>,
    report: &mut Report,
) {
    let workspace_crates: BTreeSet<&str> = files.iter().map(|f| f.crate_name.as_str()).collect();

    // Index: simple fn name → set of crates defining it.
    let mut by_name: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for f in files {
        if f.kind != TargetKind::Lib {
            continue;
        }
        for func in &f.fns {
            if !func.in_test {
                by_name
                    .entry(func.name.as_str())
                    .or_default()
                    .insert(f.crate_name.as_str());
            }
        }
    }

    // Build nodes.
    let mut nodes: BTreeMap<FnKey, Node> = BTreeMap::new();
    for (file_idx, f) in files.iter().enumerate() {
        if f.kind != TargetKind::Lib {
            continue;
        }
        let import_map: BTreeMap<&str, &UseImport> =
            f.uses.iter().map(|u| (u.name.as_str(), u)).collect();
        for func in &f.fns {
            if func.in_test {
                continue;
            }
            let key: FnKey = (f.crate_name.clone(), func.name.clone());
            let node = nodes.entry(key).or_default();
            let is_entry_def = func.is_pub && ENTRY_CRATES.contains(&f.crate_name.as_str());
            node.defs
                .push((file_idx, func.def_line, is_entry_def, func.d4_allowed));
            for s in &func.sources {
                node.sources.push((file_idx, s.clone()));
            }
            for call in &func.calls {
                for callee_crate in resolve_call(
                    call,
                    &f.crate_name,
                    &import_map,
                    &by_name,
                    &workspace_crates,
                    crate_deps,
                ) {
                    let Some(callee_name) = call.path.last() else {
                        continue;
                    };
                    let callee_key: FnKey = (callee_crate, callee_name.clone());
                    let entry = node
                        .callees
                        .entry(callee_key)
                        .or_insert((file_idx, call.line));
                    if call.line < entry.1 {
                        *entry = (file_idx, call.line);
                    }
                }
            }
        }
    }

    // Reverse adjacency.
    let mut callers: BTreeMap<&FnKey, BTreeSet<&FnKey>> = BTreeMap::new();
    for (key, node) in &nodes {
        for callee in node.callees.keys() {
            if nodes.contains_key(callee) {
                callers.entry(callee).or_default().insert(key);
            }
        }
    }

    // Multi-source BFS from seeded nodes toward callers. `via` records
    // the deterministic next hop toward the nearest source.
    let mut dist: BTreeMap<&FnKey, (usize, Option<&FnKey>)> = BTreeMap::new();
    let mut frontier: Vec<&FnKey> = nodes
        .iter()
        .filter(|(_, n)| !n.sources.is_empty())
        .map(|(k, _)| k)
        .collect();
    for k in &frontier {
        dist.insert(k, (0, None));
    }
    while !frontier.is_empty() {
        let mut next: Vec<&FnKey> = Vec::new();
        for callee in frontier {
            let d = dist[&callee].0;
            if let Some(cs) = callers.get(&callee) {
                for caller in cs {
                    dist.entry(caller).or_insert_with(|| {
                        next.push(caller);
                        (d + 1, Some(callee))
                    });
                }
            }
        }
        next.sort();
        next.dedup();
        frontier = next;
    }

    // Report tainted entry points.
    for (key, node) in &nodes {
        let Some(&(d, _)) = dist.get(key) else {
            continue;
        };
        let entry_defs: Vec<_> = node
            .defs
            .iter()
            .filter(|(_, _, is_entry, allowed)| *is_entry && !allowed)
            .collect();
        let Some(&&(def_file, def_line, _, _)) = entry_defs.first() else {
            continue;
        };
        if d == 0 {
            // Depth 0: the entry contains the source itself. Wall
            // clock, entropy, and spawns are D2/D3's findings; hash
            // iteration in D1-governed crates is D1's. Only
            // hash-order sources in the metric crates are D4's alone.
            let direct_hash = node.sources.iter().any(|(_, s)| {
                s.kind == TaintKind::HashOrder && !D1_CRATES.contains(&key.0.as_str())
            });
            if !direct_hash {
                continue;
            }
        }
        let chain = render_chain(key, node, &nodes, &dist, files);
        report.violations.push(Violation {
            file: files[def_file].path.clone(),
            line: def_line,
            rule: Rule::D4,
            message: format!(
                "public entry point `{}` can transitively reach nondeterminism: {chain} — \
                 make the sink order-insensitive (sort / BTree collections / seeded RNG) or \
                 justify the source line with lint:allow(D4)",
                key.1
            ),
        });
    }
}

/// Renders `entry -> hop (file:line) -> … : source at file:line`.
fn render_chain(
    entry: &FnKey,
    entry_node: &Node,
    nodes: &BTreeMap<FnKey, Node>,
    dist: &BTreeMap<&FnKey, (usize, Option<&FnKey>)>,
    files: &[FileSummary],
) -> String {
    let mut parts: Vec<String> = Vec::new();
    let mut key = entry;
    let mut node = entry_node;
    loop {
        let (file_idx, def_line, _, _) = node.defs[0];
        parts.push(format!(
            "{}() ({}:{})",
            key.1,
            files[file_idx].path.display(),
            def_line
        ));
        match dist.get(key).and_then(|&(_, via)| via) {
            Some(next) => {
                key = next;
                node = &nodes[next];
            }
            None => break,
        }
    }
    // The BFS only reaches nodes whose chain ends at a seeded node, so
    // `sources` is non-empty here; the fallback keeps the walk total.
    let Some(source) = node.sources.iter().min_by_key(|(f, s)| (*f, s.line)) else {
        return parts.join(" -> ");
    };
    format!(
        "{} -> {} at {}:{}",
        parts.join(" -> "),
        source.1.what,
        files[source.0].path.display(),
        source.1.line
    )
}

/// Resolves one call site to the set of workspace crates that may
/// define the callee.
fn resolve_call(
    call: &CallSite,
    caller_crate: &str,
    imports: &BTreeMap<&str, &UseImport>,
    by_name: &BTreeMap<&str, BTreeSet<&str>>,
    workspace_crates: &BTreeSet<&str>,
    crate_deps: &BTreeMap<String, BTreeSet<String>>,
) -> Vec<String> {
    let Some(name) = call.path.last().map(String::as_str) else {
        return Vec::new();
    };
    let Some(defining) = by_name.get(name) else {
        return Vec::new();
    };
    let visible = |c: &str| {
        c == caller_crate
            || crate_deps.is_empty()
            || crate_deps
                .get(caller_crate)
                .is_some_and(|deps| deps.contains(c))
    };
    // Fully-qualified path or an import naming the first segment.
    let mut path = call.path.clone();
    if path.len() == 1 {
        if let Some(u) = imports.get(name) {
            path = u.path.clone();
        }
    } else if let Some(u) = imports.get(path[0].as_str()) {
        let mut full = u.path.clone();
        full.extend_from_slice(&path[1..]);
        path = full;
    }
    if path.len() > 1 {
        let root = path[0].as_str();
        if EXTERNAL_ROOTS.contains(&root) {
            return Vec::new();
        }
        let as_crate = root.replace('_', "-");
        if workspace_crates.contains(as_crate.as_str()) {
            return if defining.contains(as_crate.as_str()) && visible(&as_crate) {
                vec![as_crate]
            } else {
                Vec::new()
            };
        }
        if matches!(root, "crate" | "self" | "super" | "Self") {
            return if defining.contains(caller_crate) {
                vec![caller_crate.to_owned()]
            } else {
                Vec::new()
            };
        }
        // Unresolvable qualifier (local module, local type): within
        // the caller's crate only.
        return if defining.contains(caller_crate) {
            vec![caller_crate.to_owned()]
        } else {
            Vec::new()
        };
    }
    // Bare or method call: the caller's crate, plus (for methods) its
    // workspace dependencies — receiver types are not resolved, so
    // method calls over-approximate across the dep edge.
    let mut out: Vec<String> = Vec::new();
    if defining.contains(caller_crate) {
        out.push(caller_crate.to_owned());
    }
    if call.method {
        for &c in defining.iter() {
            if c != caller_crate && visible(c) {
                out.push(c.to_owned());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn summarize(path: &str, text: &str) -> FileSummary {
        let src = SourceFile::parse(PathBuf::from(path), text);
        crate::analyze_file(&src, &crate::Config::default())
    }

    fn d4(files: &[FileSummary]) -> Vec<Violation> {
        let mut report = Report::default();
        check_taint(files, &BTreeMap::new(), &mut report);
        report.violations
    }

    #[test]
    fn hash_typed_names_are_collected() {
        let src = SourceFile::parse(
            PathBuf::from("crates/analysis/src/x.rs"),
            "struct S {\n    recent: HashMap<u32, u32>,\n}\nfn f() {\n    let mut times: HashMap<u32, u32> = HashMap::new();\n    let seen = HashSet::new();\n    let plain: Vec<u32> = vec![];\n}\n",
        );
        let names = hash_typed_names(&src);
        assert!(names.contains("recent"));
        assert!(names.contains("times"));
        assert!(names.contains("seen"));
        assert!(!names.contains("plain"));
    }

    #[test]
    fn direct_hash_iteration_in_metric_entry_fires_depth_zero() {
        let f = summarize(
            "crates/analysis/src/x.rs",
            "pub fn shares() -> Vec<u32> {\n    let counts: HashMap<u32, u32> = HashMap::new();\n    counts.values().copied().collect()\n}\n",
        );
        let vs = d4(&[f]);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert_eq!(vs[0].rule, Rule::D4);
        assert!(vs[0].message.contains("counts.values"), "{}", vs[0].message);
    }

    #[test]
    fn transitive_chain_across_crates_is_reported_with_path() {
        let helper = summarize(
            "crates/trace/src/helper.rs",
            "pub fn leak() -> Vec<u32> {\n    let m: HashMap<u32, u32> = HashMap::new();\n    m.keys().copied().collect()\n}\n",
        );
        let entry = summarize(
            "crates/analysis/src/entry.rs",
            "use magellan_trace::helper::leak;\npub fn study() -> Vec<u32> {\n    leak()\n}\n",
        );
        let vs = d4(&[helper, entry]);
        assert_eq!(vs.len(), 1, "{vs:?}");
        let m = &vs[0].message;
        assert!(m.contains("study()"), "{m}");
        assert!(m.contains("leak()"), "{m}");
        assert!(m.contains("crates/trace/src/helper.rs:3"), "{m}");
    }

    #[test]
    fn sorted_after_collect_is_justified_with_allow() {
        let f = summarize(
            "crates/analysis/src/x.rs",
            "pub fn ordered() -> Vec<u32> {\n    let m: HashMap<u32, u32> = HashMap::new();\n    // lint:allow(D4): keys collected then sorted before use\n    let mut v: Vec<u32> = m.keys().copied().collect();\n    v.sort();\n    v\n}\n",
        );
        assert!(d4(&[f]).is_empty());
    }

    #[test]
    fn point_lookups_do_not_seed() {
        let f = summarize(
            "crates/analysis/src/x.rs",
            "pub fn lookup(k: u32) -> bool {\n    let m: HashSet<u32> = HashSet::new();\n    m.contains(&k)\n}\n",
        );
        assert!(d4(&[f]).is_empty());
    }

    #[test]
    fn wall_clock_depth_zero_left_to_d2_but_transitive_fires() {
        // Depth 0: D2's finding, not D4's.
        let direct = summarize(
            "crates/graph/src/x.rs",
            "pub fn t() -> u64 {\n    let _ = std::time::Instant::now();\n    0\n}\n",
        );
        assert!(d4(&[direct]).is_empty());
        // Transitive through a private helper: D4's finding.
        let chained = summarize(
            "crates/graph/src/y.rs",
            "pub fn outer() -> u64 {\n    inner()\n}\nfn inner() -> u64 {\n    let _ = std::time::Instant::now();\n    0\n}\n",
        );
        let vs = d4(&[chained]);
        assert_eq!(vs.len(), 1, "{vs:?}");
        assert!(vs[0].message.contains("Instant::now"), "{}", vs[0].message);
    }

    #[test]
    fn dep_graph_gates_method_resolution() {
        let helper = summarize(
            "crates/trace/src/h.rs",
            "pub fn snap(&self) -> u32 {\n    let m: HashMap<u32, u32> = HashMap::new();\n    for v in m.values() { return *v; }\n    0\n}\n",
        );
        let entry = summarize(
            "crates/overlay/src/e.rs",
            "pub fn run(x: &X) -> u32 {\n    x.snap()\n}\n",
        );
        // With overlay -> trace in the dep graph, the method call
        // resolves and the chain fires.
        let mut deps: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        deps.insert(
            "magellan-overlay".into(),
            ["magellan-trace".to_owned()].into_iter().collect(),
        );
        deps.insert("magellan-trace".into(), BTreeSet::new());
        let mut report = Report::default();
        check_taint(&[helper.clone(), entry.clone()], &deps, &mut report);
        assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
        // Without the dep edge, the method call cannot target trace.
        let mut no_edge: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        no_edge.insert("magellan-overlay".into(), BTreeSet::new());
        no_edge.insert("magellan-trace".into(), BTreeSet::new());
        let mut report = Report::default();
        check_taint(&[helper, entry], &no_edge, &mut report);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn entry_allow_waives_one_entry_point() {
        let f = summarize(
            "crates/analysis/src/x.rs",
            "// lint:allow(D4): exposition only, output unordered by contract\npub fn unordered() -> Vec<u32> {\n    let m: HashMap<u32, u32> = HashMap::new();\n    m.values().copied().collect()\n}\n",
        );
        assert!(d4(&[f]).is_empty());
    }

    #[test]
    fn cycles_terminate() {
        let f = summarize(
            "crates/graph/src/x.rs",
            "pub fn a() { b() }\npub fn b() { a(); c() }\nfn c() {\n    let m: HashSet<u32> = HashSet::new();\n    for v in &m { let _ = v; }\n}\n",
        );
        let vs = d4(&[f]);
        assert_eq!(vs.len(), 2, "{vs:?}"); // a and b both tainted
    }
}
