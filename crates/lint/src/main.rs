//! CLI entry point for `magellan-lint`.
//!
//! Usage:
//!
//! ```text
//! cargo run -p magellan-lint             # lint the workspace, exit 1 on findings
//! cargo run -p magellan-lint -- --counts # dump per-crate unwrap counts (C1 budgets)
//! cargo run -p magellan-lint -- --list-rules
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::Path;
use std::process::ExitCode;

use magellan_lint::{find_workspace_root, lint_workspace, Config, RULES};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_help();
        return ExitCode::SUCCESS;
    }
    if let Some(unknown) = args
        .iter()
        .find(|a| !matches!(a.as_str(), "--counts" | "--list-rules"))
    {
        eprintln!("magellan-lint: unknown argument `{unknown}`");
        print_help();
        return ExitCode::FAILURE;
    }
    if args.iter().any(|a| a == "--list-rules") {
        for rule in RULES {
            println!("{:3} {}", rule.id(), rule.describe());
        }
        return ExitCode::SUCCESS;
    }

    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("magellan-lint: cannot read current directory: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(root) = find_workspace_root(&cwd) else {
        eprintln!("magellan-lint: no workspace root (Cargo.toml with [workspace]) above {cwd:?}");
        return ExitCode::FAILURE;
    };

    let config = Config::default();
    let report = match lint_workspace(&root, &config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("magellan-lint: walk failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    if args.iter().any(|a| a == "--counts") {
        println!("non-test unwrap()/expect( per crate (rule C1 input):");
        for (krate, count) in &report.unwrap_counts {
            let budget = config.unwrap_budgets.get(krate).copied().unwrap_or(0);
            println!("  {krate:20} {count:4}  (budget {budget})");
        }
        return ExitCode::SUCCESS;
    }

    print_report(&root, &report)
}

fn print_report(root: &Path, report: &magellan_lint::Report) -> ExitCode {
    for v in &report.violations {
        println!("{v}");
    }
    if report.is_clean() {
        println!(
            "magellan-lint: {} files clean ({})",
            report.files_scanned,
            root.display()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "magellan-lint: {} violation(s) in {} files — fix them or annotate with \
             `// lint:allow(<rule>): <justification>`",
            report.violations.len(),
            report.files_scanned
        );
        ExitCode::FAILURE
    }
}

fn print_help() {
    println!(
        "magellan-lint — determinism & invariant static-analysis gate\n\
         \n\
         USAGE:\n\
         \x20   magellan-lint [--counts | --list-rules | --help]\n\
         \n\
         Exits 0 when the workspace is clean, 1 when violations are found.\n\
         Waive a finding with `// lint:allow(<rule>): <justification>` on the\n\
         offending line or the line above it."
    );
}
