//! CLI entry point for `magellan-lint`.
//!
//! Usage:
//!
//! ```text
//! cargo run -p magellan-lint                         # lint, exit 1 on findings
//! cargo run -p magellan-lint -- --format json        # stable machine report
//! cargo run -p magellan-lint -- --format sarif --output lint.sarif
//! cargo run -p magellan-lint -- --write-baseline     # grandfather current findings
//! cargo run -p magellan-lint -- --counts             # per-crate unwrap counts
//! cargo run -p magellan-lint -- --list-rules
//! cargo run -p magellan-lint -- --explain L1         # rationale + fix guidance
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

use magellan_lint::{
    find_workspace_root, lint_workspace_cached, load_baseline, render_human, render_json,
    render_sarif, Baseline, Config, BASELINE_FILE, RULES,
};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Human,
    Json,
    Sarif,
}

struct Cli {
    format: Format,
    output: Option<PathBuf>,
    counts: bool,
    list_rules: bool,
    explain: Option<String>,
    no_baseline: bool,
    write_baseline: bool,
    no_cache: bool,
}

fn parse_args(args: &[String]) -> Result<Option<Cli>, String> {
    let mut cli = Cli {
        format: Format::Human,
        output: None,
        counts: false,
        list_rules: false,
        explain: None,
        no_baseline: false,
        write_baseline: false,
        no_cache: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--counts" => cli.counts = true,
            "--list-rules" => cli.list_rules = true,
            "--explain" => {
                let value = it.next().ok_or("--explain needs a rule id (e.g. L1)")?;
                cli.explain = Some(value.clone());
            }
            "--no-baseline" => cli.no_baseline = true,
            "--write-baseline" => cli.write_baseline = true,
            "--no-cache" => cli.no_cache = true,
            "--format" => {
                let value = it.next().ok_or("--format needs a value")?;
                cli.format = match value.as_str() {
                    "human" => Format::Human,
                    "json" => Format::Json,
                    "sarif" => Format::Sarif,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--output" => {
                let value = it.next().ok_or("--output needs a path")?;
                cli.output = Some(PathBuf::from(value));
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Some(cli))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(Some(cli)) => cli,
        Ok(None) => {
            print_help();
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("magellan-lint: {e}");
            print_help();
            return ExitCode::FAILURE;
        }
    };
    if cli.list_rules {
        for rule in RULES {
            println!("{:3} {}", rule.id(), rule.describe());
        }
        return ExitCode::SUCCESS;
    }
    if let Some(wanted) = &cli.explain {
        let wanted = wanted.to_ascii_uppercase();
        let Some(rule) = RULES.iter().find(|r| r.id() == wanted) else {
            eprintln!("magellan-lint: unknown rule `{wanted}` — see --list-rules for the table");
            return ExitCode::FAILURE;
        };
        println!("{} — {}", rule.id(), rule.describe());
        println!();
        println!("Fix: {}", rule.fix_guidance());
        return ExitCode::SUCCESS;
    }

    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("magellan-lint: cannot read current directory: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(root) = find_workspace_root(&cwd) else {
        eprintln!("magellan-lint: no workspace root (Cargo.toml with [workspace]) above {cwd:?}");
        return ExitCode::FAILURE;
    };

    let config = Config::default();
    let mut report = match lint_workspace_cached(&root, &config, !cli.no_cache) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("magellan-lint: walk failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    if cli.counts {
        println!("non-test unwrap()/expect( per crate (rule C1 input):");
        for (krate, count) in &report.unwrap_counts {
            let budget = config.unwrap_budgets.get(krate).copied().unwrap_or(0);
            println!("  {krate:20} {count:4}  (budget {budget})");
        }
        return ExitCode::SUCCESS;
    }

    if cli.write_baseline {
        let path = root.join(BASELINE_FILE);
        if let Err(e) = magellan_lint::atomic_write(&path, Baseline::render(&report).as_bytes()) {
            eprintln!("magellan-lint: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "magellan-lint: baselined {} finding(s) into {}",
            report.violations.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    if !cli.no_baseline {
        load_baseline(&root).apply(&mut report);
    }

    let rendered = match cli.format {
        Format::Human => render_human(&report, &root),
        Format::Json => render_json(&report),
        Format::Sarif => render_sarif(&report),
    };
    match &cli.output {
        Some(path) => {
            // Write the machine report to the file and keep the human
            // view on stdout, so one CI invocation does both jobs.
            if let Err(e) = magellan_lint::atomic_write(path, rendered.as_bytes()) {
                eprintln!("magellan-lint: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            print!("{}", render_human(&report, &root));
        }
        None => print!("{rendered}"),
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "magellan-lint: {} violation(s) in {} files — fix them or annotate with \
             `// lint:allow(<rule>): <justification>`",
            report.violations.len(),
            report.files_scanned
        );
        ExitCode::FAILURE
    }
}

fn print_help() {
    println!(
        "magellan-lint — determinism & invariant static-analysis gate\n\
         \n\
         USAGE:\n\
         \x20   magellan-lint [OPTIONS]\n\
         \n\
         OPTIONS:\n\
         \x20   --format <human|json|sarif>  report format (default human)\n\
         \x20   --output <path>              write the report to a file, keep human\n\
         \x20                                output on stdout\n\
         \x20   --no-baseline                ignore {baseline}\n\
         \x20   --write-baseline             grandfather all current findings\n\
         \x20   --no-cache                   ignore and skip the incremental cache\n\
         \x20   --counts                     dump per-crate unwrap counts (C1 budgets)\n\
         \x20   --list-rules                 print the rule table\n\
         \x20   --explain <RULE>             print one rule's rationale + fix guidance\n\
         \x20   --help                       this text\n\
         \n\
         Exits 0 when the workspace is clean, 1 when violations are found.\n\
         Waive a finding with `// lint:allow(<rule>): <justification>` on the\n\
         offending line or the line above it. Mark a hot entry point for the\n\
         H2/H3/P2 hot-path cost pass with `// lint:hot` on or above its `fn`\n\
         line; the built-in registry seeds the tick/sample surface regardless.",
        baseline = BASELINE_FILE
    );
}
