//! Report rendering (human / JSON / SARIF) and the baseline file.
//!
//! Both machine formats are emitted by hand (the workspace vendors no
//! JSON library) with a fixed field order and no timestamps, so two
//! runs over the same tree produce byte-identical output — a property
//! the golden-file tests assert. The JSON schema is versioned as
//! `magellan-lint-report/1`; SARIF follows the 2.1.0 schema that
//! GitHub code scanning ingests.
//!
//! The baseline file (`.magellan-lint-baseline` at the workspace root)
//! grandfathers known findings: one fingerprint per line, where a
//! fingerprint is the FNV-1a 64 hash of `rule|file|message` (line
//! numbers are deliberately excluded so unrelated edits above a
//! finding do not invalidate it). Suppressed findings are counted in
//! [`Report::suppressed_baseline`], never silently dropped from the
//! totals.

use crate::{Report, Violation, RULES};
use std::path::Path;

/// Baseline file name, resolved against the workspace root.
pub const BASELINE_FILE: &str = ".magellan-lint-baseline";

/// FNV-1a 64-bit — tiny, stable, dependency-free.
pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The stable fingerprint of one violation for baseline matching.
pub fn violation_fingerprint(v: &Violation) -> String {
    let key = format!("{}|{}|{}", v.rule.id(), v.file.display(), v.message);
    format!("{:016x}", fnv64(key.as_bytes()))
}

/// A loaded set of grandfathered finding fingerprints.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    /// Fingerprints from the baseline file, in file order.
    pub entries: Vec<String>,
}

impl Baseline {
    /// Removes baselined findings from `report.violations`, counting
    /// them in `report.suppressed_baseline`.
    pub fn apply(&self, report: &mut Report) {
        if self.entries.is_empty() {
            return;
        }
        let before = report.violations.len();
        report
            .violations
            .retain(|v| !self.entries.iter().any(|e| *e == violation_fingerprint(v)));
        report.suppressed_baseline += before - report.violations.len();
    }

    /// Renders a baseline file covering every violation in `report`,
    /// with the human-readable finding as a trailing comment.
    pub fn render(report: &Report) -> String {
        let mut out = String::from(
            "# magellan-lint baseline — grandfathered findings, one fingerprint per line.\n\
             # Regenerate with `magellan-lint --write-baseline`; shrink it, never grow it.\n",
        );
        for v in &report.violations {
            out.push_str(&format!("{}  # {v}\n", violation_fingerprint(v)));
        }
        out
    }
}

/// Loads the baseline at `root/.magellan-lint-baseline`. A missing
/// file is an empty baseline; `#` comments and blank lines are
/// ignored, and inline `# …` trailers are stripped.
pub fn load_baseline(root: &Path) -> Baseline {
    let Ok(text) = std::fs::read_to_string(root.join(BASELINE_FILE)) else {
        return Baseline::default();
    };
    let entries = text
        .lines()
        .map(|l| l.split('#').next().unwrap_or("").trim().to_owned())
        .filter(|l| !l.is_empty())
        .collect();
    Baseline { entries }
}

/// Renders the human report body (one violation per line plus the
/// summary trailer main() prints today).
pub fn render_human(report: &Report, root: &Path) -> String {
    let mut out = String::new();
    for v in &report.violations {
        out.push_str(&v.to_string());
        out.push('\n');
    }
    if report.is_clean() {
        out.push_str(&format!(
            "magellan-lint: {} files clean ({})",
            report.files_scanned,
            root.display()
        ));
        if report.suppressed_baseline > 0 {
            out.push_str(&format!(
                " [{} baselined finding(s) suppressed]",
                report.suppressed_baseline
            ));
        }
        out.push('\n');
    }
    out
}

/// Escapes `s` for a JSON string literal (RFC 8259).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Paths in reports always use `/`, regardless of host separator.
fn json_path(p: &Path) -> String {
    let s = p.display().to_string();
    json_escape(&s.replace('\\', "/"))
}

/// Renders the stable JSON report (schema `magellan-lint-report/1`).
///
/// Field order, indentation, and ordering of violations are all fixed;
/// the output carries no timestamps or absolute paths, so consecutive
/// runs over the same tree are byte-identical.
pub fn render_json(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"magellan-lint-report/1\",\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    out.push_str(&format!(
        "  \"suppressed_baseline\": {},\n",
        report.suppressed_baseline
    ));
    out.push_str("  \"violations\": [");
    for (i, v) in report.violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\n");
        out.push_str(&format!("      \"file\": \"{}\",\n", json_path(&v.file)));
        out.push_str(&format!("      \"line\": {},\n", v.line));
        out.push_str(&format!("      \"rule\": \"{}\",\n", v.rule.id()));
        out.push_str(&format!(
            "      \"message\": \"{}\"\n",
            json_escape(&v.message)
        ));
        out.push_str("    }");
    }
    if report.violations.is_empty() {
        out.push_str("]\n");
    } else {
        out.push_str("\n  ]\n");
    }
    out.push_str("}\n");
    out
}

/// Renders a SARIF 2.1.0 log (the subset GitHub code scanning loads):
/// one run, the full rule table on the driver, one result per
/// violation with a physical location relative to the repo root.
pub fn render_sarif(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n",
    );
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"magellan-lint\",\n");
    out.push_str("          \"informationUri\": \"https://example.invalid/magellan\",\n");
    out.push_str(&format!(
        "          \"version\": \"{}\",\n",
        env!("CARGO_PKG_VERSION")
    ));
    out.push_str("          \"rules\": [");
    for (i, rule) in RULES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n            {\n");
        out.push_str(&format!("              \"id\": \"{}\",\n", rule.id()));
        out.push_str(&format!(
            "              \"shortDescription\": {{ \"text\": \"{}\" }},\n",
            json_escape(rule.describe())
        ));
        out.push_str(&format!(
            "              \"help\": {{ \"text\": \"{}\" }}\n",
            json_escape(rule.fix_guidance())
        ));
        out.push_str("            }");
    }
    out.push_str("\n          ]\n        }\n      },\n");
    out.push_str("      \"results\": [");
    for (i, v) in report.violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n        {\n");
        out.push_str(&format!("          \"ruleId\": \"{}\",\n", v.rule.id()));
        out.push_str(&format!(
            "          \"ruleIndex\": {},\n",
            RULES.iter().position(|r| *r == v.rule).unwrap_or_default()
        ));
        out.push_str("          \"level\": \"error\",\n");
        out.push_str(&format!(
            "          \"message\": {{ \"text\": \"{}\" }},\n",
            json_escape(&v.message)
        ));
        out.push_str("          \"locations\": [\n            {\n");
        out.push_str("              \"physicalLocation\": {\n");
        out.push_str(&format!(
            "                \"artifactLocation\": {{ \"uri\": \"{}\" }},\n",
            json_path(&v.file)
        ));
        out.push_str(&format!(
            "                \"region\": {{ \"startLine\": {} }}\n",
            v.line.max(1)
        ));
        out.push_str("              }\n            }\n          ]\n");
        out.push_str("        }");
    }
    if report.violations.is_empty() {
        out.push_str("]\n");
    } else {
        out.push_str("\n      ]\n");
    }
    out.push_str("    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rule;
    use std::path::PathBuf;

    fn sample_report() -> Report {
        Report {
            violations: vec![
                Violation {
                    file: PathBuf::from("crates/overlay/src/a.rs"),
                    line: 3,
                    rule: Rule::D1,
                    message: "HashMap in a simulation path — say \"no\"".to_owned(),
                },
                Violation {
                    file: PathBuf::from("crates/graph/src/b.rs"),
                    line: 9,
                    rule: Rule::C4,
                    message: "unchecked arithmetic in index `[u + 1]`".to_owned(),
                },
            ],
            files_scanned: 2,
            unwrap_counts: Default::default(),
            suppressed_baseline: 0,
        }
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let r = sample_report();
        let a = render_json(&r);
        let b = render_json(&r);
        assert_eq!(a, b);
        assert!(a.contains("\"schema\": \"magellan-lint-report/1\""));
        assert!(a.contains("say \\\"no\\\""), "{a}");
        assert!(a.ends_with("}\n"));
    }

    #[test]
    fn empty_report_renders_empty_array() {
        let r = Report {
            files_scanned: 5,
            ..Report::default()
        };
        let j = render_json(&r);
        assert!(j.contains("\"violations\": []"), "{j}");
        let s = render_sarif(&r);
        assert!(s.contains("\"results\": []"), "{s}");
    }

    #[test]
    fn sarif_carries_rules_and_locations() {
        let s = render_sarif(&sample_report());
        assert!(s.contains("\"version\": \"2.1.0\""));
        for rule in RULES {
            assert!(s.contains(&format!("\"id\": \"{}\"", rule.id())), "{s}");
            assert!(
                s.contains(&json_escape(rule.fix_guidance())),
                "rule {} must ship its fix guidance as SARIF help text",
                rule.id()
            );
        }
        assert!(s.contains("\"uri\": \"crates/overlay/src/a.rs\""));
        assert!(s.contains("\"startLine\": 3"));
        assert!(s.contains("\"ruleId\": \"D1\""));
    }

    #[test]
    fn baseline_roundtrip_suppresses() {
        let mut r = sample_report();
        let rendered = Baseline::render(&r);
        let entries: Vec<String> = rendered
            .lines()
            .map(|l| l.split('#').next().unwrap_or("").trim().to_owned())
            .filter(|l| !l.is_empty())
            .collect();
        assert_eq!(entries.len(), 2);
        let baseline = Baseline { entries };
        baseline.apply(&mut r);
        assert!(r.violations.is_empty());
        assert_eq!(r.suppressed_baseline, 2);
    }

    #[test]
    fn fingerprint_ignores_line_numbers() {
        let mut v = sample_report().violations[0].clone();
        let a = violation_fingerprint(&v);
        v.line = 99;
        assert_eq!(a, violation_fingerprint(&v));
        v.message.push('!');
        assert_ne!(a, violation_fingerprint(&v));
    }
}
