//! Source-file model: comment/string stripping and region
//! classification.
//!
//! Rules match against a *code-only* rendering of each line, in which
//! comments and string/char literal contents are blanked out with
//! spaces (preserving columns), so `"thread_rng"` in a message or a
//! doc comment never trips rule D2. `lint:allow` annotations live in
//! comments, so they are read from the raw text instead.

use std::path::PathBuf;

/// Which kind of target a file belongs to, derived from its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetKind {
    /// Library code (`src/` of a crate) — every rule applies.
    Lib,
    /// Tests, benches, examples, build scripts — only hygiene rules.
    TestLike,
}

/// A parsed workspace source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path relative to the workspace root.
    pub path: PathBuf,
    /// The crate this file belongs to (e.g. `magellan-overlay`;
    /// `magellan` for the root package).
    pub crate_name: String,
    /// Lib vs. test-like target.
    pub kind: TargetKind,
    /// Raw lines as read.
    pub raw: Vec<String>,
    /// Code-only lines: comments and literal contents blanked.
    pub code: Vec<String>,
    /// Comment-only lines: everything but comment text blanked.
    /// `lint:allow` annotations are read from here, so a string
    /// literal mentioning the syntax never parses as one.
    pub comments: Vec<String>,
    /// Per-line flag: inside a `#[cfg(test)]` module.
    pub in_test_module: Vec<bool>,
}

impl SourceFile {
    /// Parses `text` (already read from `path`, relative to the
    /// workspace root).
    pub fn parse(path: PathBuf, text: &str) -> SourceFile {
        let crate_name = crate_of(&path);
        let kind = kind_of(&path);
        let raw: Vec<String> = text.lines().map(str::to_owned).collect();
        let (code, comments) = strip_to_code(text);
        let in_test_module = mark_test_modules(&code);
        SourceFile {
            path,
            crate_name,
            kind,
            raw,
            code,
            comments,
            in_test_module,
        }
    }

    /// Whether the given 1-based line carries (or is directly followed
    /// by, for the line above) a `lint:allow(<rule>)` with a
    /// justification for `rule_id`.
    pub fn is_allowed(&self, line: usize, rule_id: &str) -> bool {
        let here = self.comments.get(line.wrapping_sub(1)).map(String::as_str);
        // The line-above form only counts when that line is a
        // standalone comment — a trailing allow belongs to its own
        // line, not the one below it.
        let above = if line >= 2 {
            self.comments
                .get(line - 2)
                .filter(|_| {
                    self.raw
                        .get(line - 2)
                        .is_some_and(|l| l.trim_start().starts_with("//"))
                })
                .map(String::as_str)
        } else {
            None
        };
        [here, above]
            .into_iter()
            .flatten()
            .any(|l| allow_of(l).is_some_and(|(id, just)| id == rule_id && justified(just)))
    }

    /// Whether the given 1-based line (a function definition line) is
    /// marked as a hot entry point via a `lint:hot` comment, either
    /// trailing on the line itself or on a standalone comment line
    /// directly above.
    pub fn is_hot_marked(&self, line: usize) -> bool {
        let here = self.comments.get(line.wrapping_sub(1)).map(String::as_str);
        let above = if line >= 2 {
            self.comments
                .get(line - 2)
                .filter(|_| {
                    self.raw
                        .get(line - 2)
                        .is_some_and(|l| l.trim_start().starts_with("//"))
                })
                .map(String::as_str)
        } else {
            None
        };
        [here, above].into_iter().flatten().any(is_hot_comment)
    }
}

/// Whether a `lint:allow` justification actually says something: at
/// least one alphanumeric character. Rejects the empty string,
/// whitespace, and delimiter debris like `*/` or `--`, so
/// `lint:allow(RULE):` with no real rationale never waives a rule.
pub fn justified(justification: &str) -> bool {
    justification.chars().any(|c| c.is_ascii_alphanumeric())
}

/// Whether a comment line carries the `lint:hot` marker. The token
/// must end the line or be followed by `:`/whitespace, so prose like
/// "lint:hotness" never registers an entry point.
fn is_hot_comment(comment_line: &str) -> bool {
    let Some(start) = comment_line.find("lint:hot") else {
        return false;
    };
    matches!(
        comment_line[start + "lint:hot".len()..].chars().next(),
        None | Some(':') | Some(' ') | Some('\t')
    )
}

/// Extracts `(rule_id, justification)` from a `lint:allow` annotation,
/// if the line carries one. The justification is everything after an
/// optional `:` following the closing parenthesis, trimmed. Only
/// id-shaped contents (an uppercase letter followed by a digit) parse
/// as annotations, so prose like ``lint:allow(<rule>)`` in docs is
/// ignored rather than reported as naming an unknown rule.
pub fn allow_of(comment_line: &str) -> Option<(&str, &str)> {
    let start = comment_line.find("lint:allow(")?;
    let rest = &comment_line[start + "lint:allow(".len()..];
    let close = rest.find(')')?;
    let id = rest[..close].trim();
    let mut chars = id.chars();
    let id_shaped = matches!(
        (chars.next(), chars.next(), chars.next()),
        (Some('A'..='Z'), Some('0'..='9'), None)
    );
    if !id_shaped {
        return None;
    }
    let tail = rest[close + 1..].trim_start();
    let justification = tail.strip_prefix(':').map(str::trim).unwrap_or("");
    Some((id, justification))
}

fn crate_of(path: &std::path::Path) -> String {
    let mut parts = path.components().map(|c| c.as_os_str().to_string_lossy());
    match parts.next().as_deref() {
        Some("crates") => match parts.next() {
            Some(dir) => format!("magellan-{dir}"),
            None => "magellan".to_owned(),
        },
        _ => "magellan".to_owned(),
    }
}

fn kind_of(path: &std::path::Path) -> TargetKind {
    let is_lib = path
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .any(|p| p == "src");
    if is_lib {
        TargetKind::Lib
    } else {
        TargetKind::TestLike
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Renders `text` twice, preserving line structure and column
/// positions: a code-only view (comments and literal contents blanked
/// to spaces) and a comment-only view (everything else blanked).
fn strip_to_code(text: &str) -> (Vec<String>, Vec<String>) {
    let mut code_out: Vec<String> = Vec::new();
    let mut cmt_out: Vec<String> = Vec::new();
    let mut code = String::new();
    let mut cmt = String::new();
    let mut mode = Mode::Code;
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    // Pushes `n` source chars starting at `i` into one view, blanking
    // the other.
    macro_rules! emit {
        (code, $n:expr) => {{
            for k in 0..$n {
                code.push(chars.get(i + k).copied().unwrap_or(' '));
                cmt.push(' ');
            }
            i += $n;
        }};
        (comment, $n:expr) => {{
            for k in 0..$n {
                cmt.push(chars.get(i + k).copied().unwrap_or(' '));
                code.push(' ');
            }
            i += $n;
        }};
        (blank, $n:expr) => {{
            for _ in 0..$n {
                code.push(' ');
                cmt.push(' ');
            }
            i += $n;
        }};
    }
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        if c == '\n' {
            if mode == Mode::LineComment {
                mode = Mode::Code;
            }
            code_out.push(std::mem::take(&mut code));
            cmt_out.push(std::mem::take(&mut cmt));
            i += 1;
            continue;
        }
        match mode {
            Mode::Code => match c {
                '/' if next == Some('/') => {
                    mode = Mode::LineComment;
                    emit!(comment, 2);
                }
                '/' if next == Some('*') => {
                    mode = Mode::BlockComment(1);
                    emit!(comment, 2);
                }
                '"' => {
                    mode = Mode::Str;
                    emit!(code, 1);
                }
                'r' | 'b' if is_raw_string_start(&chars, i) => {
                    let (hashes, consumed) = raw_string_open(&chars, i);
                    mode = Mode::RawStr(hashes);
                    emit!(blank, consumed);
                }
                '\'' if is_char_literal(&chars, i) => {
                    mode = Mode::Char;
                    emit!(code, 1);
                }
                _ => emit!(code, 1),
            },
            Mode::LineComment => emit!(comment, 1),
            Mode::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    mode = if depth == 1 {
                        Mode::Code
                    } else {
                        Mode::BlockComment(depth - 1)
                    };
                    emit!(comment, 2);
                } else if c == '/' && next == Some('*') {
                    mode = Mode::BlockComment(depth + 1);
                    emit!(comment, 2);
                } else {
                    emit!(comment, 1);
                }
            }
            Mode::Str => match c {
                // A line-continuation backslash must not swallow the
                // newline — eating it would shift every later line
                // number, detaching `lint:allow` comments from their
                // lines.
                '\\' if next == Some('\n') => emit!(blank, 1),
                '\\' => emit!(blank, 2),
                '"' => {
                    mode = Mode::Code;
                    emit!(code, 1);
                }
                _ => emit!(blank, 1),
            },
            Mode::RawStr(hashes) => {
                if c == '"' && closes_raw_string(&chars, i, hashes) {
                    mode = Mode::Code;
                    emit!(blank, 1 + hashes as usize);
                } else {
                    emit!(blank, 1);
                }
            }
            Mode::Char => match c {
                '\\' => emit!(blank, 2),
                '\'' => {
                    mode = Mode::Code;
                    emit!(code, 1);
                }
                _ => emit!(blank, 1),
            },
        }
    }
    // Mirror `str::lines`: no phantom final line after a trailing
    // newline, so both views stay index-aligned with `raw`.
    if !code.is_empty() || (!text.is_empty() && !text.ends_with('\n')) {
        code_out.push(code);
        cmt_out.push(cmt);
    }
    (code_out, cmt_out)
}

fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    // r", r#", br", br#" — conservatively require the quote within 4
    // chars so identifiers like `radius` are untouched.
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    let mut hashes = 0;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
        if hashes > 8 {
            return false;
        }
    }
    chars.get(j) == Some(&'"')
}

fn raw_string_open(chars: &[char], i: usize) -> (u32, usize) {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    j += 1; // the `r`
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    j += 1; // opening quote
    (hashes, j - i)
}

fn closes_raw_string(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

fn is_char_literal(chars: &[char], i: usize) -> bool {
    // 'x' or '\n' — otherwise it is a lifetime.
    match chars.get(i + 1) {
        Some('\\') => true,
        Some(_) => chars.get(i + 2) == Some(&'\''),
        None => false,
    }
}

/// Flags every line that lies inside a `#[cfg(test)] mod … { … }`.
fn mark_test_modules(code: &[String]) -> Vec<bool> {
    let mut flags = vec![false; code.len()];
    let mut pending_cfg = false;
    let mut depth: i32 = 0;
    let mut in_test = false;
    for (idx, line) in code.iter().enumerate() {
        if in_test {
            flags[idx] = true;
            depth += brace_delta(line);
            if depth <= 0 {
                in_test = false;
            }
            continue;
        }
        if line.contains("#[cfg(test)]") {
            if line.contains("mod ") {
                flags[idx] = true;
                depth = brace_delta(line);
                in_test = depth > 0;
            } else {
                pending_cfg = true;
            }
            continue;
        }
        if pending_cfg {
            if line.trim().is_empty() || line.trim_start().starts_with("#[") {
                continue;
            }
            if line.contains("mod ") {
                flags[idx] = true;
                in_test = true;
                depth = brace_delta(line);
                if depth <= 0 && line.contains('{') {
                    in_test = false;
                }
            }
            pending_cfg = false;
        }
    }
    flags
}

fn brace_delta(line: &str) -> i32 {
    let mut d = 0;
    for c in line.chars() {
        match c {
            '{' => d += 1,
            '}' => d -= 1,
            _ => {}
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> SourceFile {
        SourceFile::parse(PathBuf::from("crates/overlay/src/x.rs"), text)
    }

    #[test]
    fn strings_and_comments_are_blanked() {
        let src =
            parse("let x = \"thread_rng\"; // SystemTime::now\n/* Instant::now */ let y = 1;\n");
        assert!(!src.code[0].contains("thread_rng"));
        assert!(!src.code[0].contains("SystemTime"));
        assert!(!src.code[1].contains("Instant"));
        assert!(src.code[1].contains("let y = 1;"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let src = parse("let p = r#\"HashMap<\"#; let q = HashMap::new();\n");
        assert_eq!(src.code[0].matches("HashMap").count(), 1);
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let src = parse("fn f<'a>(x: &'a str) -> char { 'y' }\n");
        assert!(src.code[0].contains("fn f<'a>(x: &'a str)"));
        assert!(!src.code[0].contains("'y'"));
    }

    #[test]
    fn escaped_quote_in_string() {
        let src = parse("let s = \"a\\\"b\"; let t = HashMap::new();\n");
        assert!(src.code[0].contains("HashMap::new()"));
    }

    #[test]
    fn string_line_continuation_keeps_line_numbering() {
        // A `\` at the end of a string-literal line continues the
        // literal on the next source line; both source lines must
        // survive in every view or later annotations detach.
        let text = "let s = \"one \\\n         two\";\nlet m = Mutex::new(());\n";
        let src = parse(text);
        assert_eq!(src.raw.len(), 3);
        assert_eq!(src.code.len(), 3, "continuation swallowed a line");
        assert!(src.code[2].contains("Mutex::new"));
    }

    #[test]
    fn test_modules_are_marked() {
        let text =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn lib2() {}\n";
        let src = parse(text);
        assert_eq!(
            src.in_test_module,
            vec![false, false, true, true, true, false]
        );
    }

    #[test]
    fn allow_annotations_parse() {
        assert_eq!(
            allow_of("x(); // lint:allow(D1): keys sorted below"),
            Some(("D1", "keys sorted below"))
        );
        assert_eq!(allow_of("// lint:allow(C1)"), Some(("C1", "")));
        assert_eq!(allow_of("// nothing here"), None);
    }

    #[test]
    fn allowed_lines_require_justification() {
        let text = "a(); // lint:allow(D2): uses seeded stream\nb(); // lint:allow(D2)\n";
        let src = parse(text);
        assert!(src.is_allowed(1, "D2"));
        assert!(!src.is_allowed(2, "D2"));
        assert!(!src.is_allowed(1, "D1"));
    }

    #[test]
    fn delimiter_debris_is_not_a_justification() {
        // An annotation inside a block comment leaves `*/` as the
        // parsed justification; alphanumeric-free tails never waive.
        assert!(!justified("*/"));
        assert!(!justified("--"));
        assert!(!justified("   "));
        assert!(!justified(""));
        assert!(justified("bounded by fanout"));
        let src = parse("a(); /* lint:allow(D2): */\n");
        assert!(!src.is_allowed(1, "D2"));
    }

    #[test]
    fn allow_on_previous_line_applies() {
        let text = "// lint:allow(C2): exact sentinel comparison\nif x == 0.0 {}\n";
        let src = parse(text);
        assert!(src.is_allowed(2, "C2"));
    }

    #[test]
    fn crate_and_kind_classification() {
        let s = SourceFile::parse(PathBuf::from("crates/graph/src/lib.rs"), "");
        assert_eq!(s.crate_name, "magellan-graph");
        assert_eq!(s.kind, TargetKind::Lib);
        let t = SourceFile::parse(PathBuf::from("tests/end_to_end.rs"), "");
        assert_eq!(t.crate_name, "magellan");
        assert_eq!(t.kind, TargetKind::TestLike);
        let b = SourceFile::parse(PathBuf::from("crates/bench/benches/fig1.rs"), "");
        assert_eq!(b.crate_name, "magellan-bench");
        assert_eq!(b.kind, TargetKind::TestLike);
    }
}
