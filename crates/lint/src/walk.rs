//! Workspace discovery: which files get linted and where the root is.

use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::{Path, PathBuf};

/// Directories never descended into, wherever they appear. `fixtures`
/// holds the lint suite's golden-file trees, which contain deliberate
/// violations and must never be scanned as workspace code.
const SKIP_DIRS: [&str; 5] = ["target", ".git", "vendor", "node_modules", "fixtures"];

/// Walks the workspace and returns every lintable `.rs` path, sorted,
/// relative to `root`.
///
/// Covered: `crates/*` and the root package's `src/`, `examples/`,
/// `tests/`, and `benches/`. Excluded: `vendor/` (third-party API
/// stubs), `target/`, and VCS metadata.
///
/// # Errors
///
/// Returns an error when a directory cannot be read.
pub fn collect_workspace_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for top in ["crates", "src", "examples", "tests", "benches"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk_dir(&dir, root, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk_dir(dir: &Path, root: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk_dir(&path, root, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .map(Path::to_path_buf)
                .unwrap_or(path);
            out.push(rel);
        }
    }
    Ok(())
}

/// Finds the workspace root by walking up from `start` until a
/// directory containing a `Cargo.toml` with a `[workspace]` table is
/// found.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Parses the workspace crate dependency graph (`crate -> direct
/// magellan-* deps`) from `crates/*/Cargo.toml` plus the root
/// manifest's `[dependencies]` (the `magellan` facade package).
///
/// Line-based on purpose: the manifests are workspace-controlled and
/// rustfmt-regular, and a missing edge only makes rule D4 *miss* a
/// cross-crate resolution, never false-positive. Unreadable manifests
/// are skipped (the caller falls back to fully connected resolution
/// when the map comes back empty).
pub fn parse_crate_deps(root: &Path) -> BTreeMap<String, BTreeSet<String>> {
    let mut deps: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut manifests: Vec<(String, PathBuf)> =
        vec![("magellan".to_owned(), root.join("Cargo.toml"))];
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        let mut dirs: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for dir in dirs {
            let name = dir
                .file_name()
                .map(|n| format!("magellan-{}", n.to_string_lossy()))
                .unwrap_or_default();
            manifests.push((name, dir.join("Cargo.toml")));
        }
    }
    for (crate_name, manifest) in manifests {
        let Ok(text) = std::fs::read_to_string(&manifest) else {
            continue;
        };
        let entry = deps.entry(crate_name).or_default();
        let mut in_deps = false;
        for line in text.lines() {
            let t = line.trim();
            if t.starts_with('[') {
                in_deps = t == "[dependencies]" || t == "[dev-dependencies]";
                continue;
            }
            if !in_deps || !t.starts_with("magellan") {
                continue;
            }
            let dep: String = t
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '-' || *c == '_')
                .collect();
            if !dep.is_empty() {
                entry.insert(dep);
            }
        }
    }
    deps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_this_workspace() {
        let here = std::env::current_dir().expect("cwd");
        let root = find_workspace_root(&here).expect("workspace root above test cwd");
        assert!(root.join("crates").is_dir(), "{}", root.display());
    }

    #[test]
    fn walk_skips_vendor_and_sorts() {
        let here = std::env::current_dir().expect("cwd");
        let root = find_workspace_root(&here).expect("workspace root");
        let files = collect_workspace_sources(&root).expect("walk");
        assert!(files.iter().all(|p| !p.starts_with("vendor")));
        assert!(files.iter().all(|p| !p.starts_with("target")));
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted);
        assert!(files.iter().any(|p| p.ends_with("crates/lint/src/walk.rs")));
    }

    #[test]
    fn dep_graph_has_known_edges() {
        let here = std::env::current_dir().expect("cwd");
        let root = find_workspace_root(&here).expect("workspace root");
        let deps = parse_crate_deps(&root);
        let analysis = deps.get("magellan-analysis").expect("analysis crate");
        assert!(analysis.contains("magellan-trace"), "{analysis:?}");
        assert!(analysis.contains("magellan-graph"), "{analysis:?}");
        // No back-edge: the graph crate never depends on analysis.
        let graph = deps.get("magellan-graph").expect("graph crate");
        assert!(!graph.contains("magellan-analysis"), "{graph:?}");
    }
}
