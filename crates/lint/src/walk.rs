//! Workspace discovery: which files get linted and where the root is.

use std::io;
use std::path::{Path, PathBuf};

/// Directories never descended into, wherever they appear.
const SKIP_DIRS: [&str; 4] = ["target", ".git", "vendor", "node_modules"];

/// Walks the workspace and returns every lintable `.rs` path, sorted,
/// relative to `root`.
///
/// Covered: `crates/*` and the root package's `src/`, `examples/`,
/// `tests/`, and `benches/`. Excluded: `vendor/` (third-party API
/// stubs), `target/`, and VCS metadata.
///
/// # Errors
///
/// Returns an error when a directory cannot be read.
pub fn collect_workspace_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for top in ["crates", "src", "examples", "tests", "benches"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk_dir(&dir, root, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk_dir(dir: &Path, root: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk_dir(&path, root, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .map(Path::to_path_buf)
                .unwrap_or(path);
            out.push(rel);
        }
    }
    Ok(())
}

/// Finds the workspace root by walking up from `start` until a
/// directory containing a `Cargo.toml` with a `[workspace]` table is
/// found.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_this_workspace() {
        let here = std::env::current_dir().expect("cwd");
        let root = find_workspace_root(&here).expect("workspace root above test cwd");
        assert!(root.join("crates").is_dir(), "{}", root.display());
    }

    #[test]
    fn walk_skips_vendor_and_sorts() {
        let here = std::env::current_dir().expect("cwd");
        let root = find_workspace_root(&here).expect("workspace root");
        let files = collect_workspace_sources(&root).expect("walk");
        assert!(files.iter().all(|p| !p.starts_with("vendor")));
        assert!(files.iter().all(|p| !p.starts_with("target")));
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted);
        assert!(files.iter().any(|p| p.ends_with("crates/lint/src/walk.rs")));
    }
}
