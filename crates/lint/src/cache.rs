//! Incremental cache: per-file analysis summaries keyed by
//! mtime+size with an FNV-1a content-hash fallback.
//!
//! The cache stores exactly the per-file products of
//! [`crate::analyze_file`] — line-local violations, the unwrap count,
//! and the call-graph fragment (functions, calls, taint sources,
//! cost sinks, imports). The *global* phases (C1 budgets, D4 taint
//! propagation, H2/H3/P2 hot-path cost) are cheap and always recompute
//! from the summaries, so a cached file still participates fully in
//! cross-file analysis.
//!
//! Invalidation is layered: the whole cache is dropped when the
//! ruleset/config fingerprint changes (new rules via
//! [`crate::RULES_VERSION`], changed budgets, changed dep graph, new
//! crate version); a single entry is reused
//! when mtime+size match, or — when only the mtime moved — when the
//! re-hashed content matches. The file lives under `target/`, which
//! the workspace walker already skips.

use crate::output::fnv64;
use crate::{
    CallSite, Config, CostKind, CostSink, FileSummary, FnSummary, LockAcquire, TaintKind,
    TaintSource, UseImport, Violation, RULES, RULES_VERSION,
};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::time::UNIX_EPOCH;

/// Cache location relative to the workspace root. The `.v3` suffix
/// changed with the concurrency pass (lock records, unsafe counts,
/// wider `K` records) so older caches are never even opened.
pub const CACHE_FILE: &str = "target/magellan-lint-cache.v3";

/// Freshness stamp for one file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileStamp {
    /// Modification time in nanoseconds since the epoch (0 when the
    /// filesystem reports none).
    pub mtime_ns: u128,
    /// File size in bytes.
    pub size: u64,
    /// FNV-1a 64 of the contents; 0 until [`full_stamp`] fills it.
    pub hash: u64,
}

/// Reads the cheap (metadata-only) stamp of `path`.
///
/// # Errors
///
/// Propagates metadata read failures.
pub fn file_stamp(path: &Path) -> io::Result<FileStamp> {
    let meta = std::fs::metadata(path)?;
    let mtime_ns = meta
        .modified()
        .ok()
        .and_then(|t| t.duration_since(UNIX_EPOCH).ok())
        .map(|d| d.as_nanos())
        .unwrap_or(0);
    Ok(FileStamp {
        mtime_ns,
        size: meta.len(),
        hash: 0,
    })
}

/// Completes a metadata stamp with the content hash.
pub fn full_stamp(stamp: FileStamp, text: &str) -> FileStamp {
    FileStamp {
        hash: fnv64(text.as_bytes()),
        ..stamp
    }
}

/// Whether a cached entry is still valid for the file at `abs`:
/// mtime+size fast path, content re-hash when only the mtime moved.
///
/// # Errors
///
/// Propagates read failures from the re-hash path.
pub fn stamp_fresh(entry: &FileStamp, now: &FileStamp, abs: &Path) -> io::Result<bool> {
    if entry.size != now.size {
        return Ok(false);
    }
    if entry.mtime_ns == now.mtime_ns {
        return Ok(true);
    }
    if entry.hash == 0 {
        return Ok(false);
    }
    let text = std::fs::read_to_string(abs)?;
    Ok(fnv64(text.as_bytes()) == entry.hash)
}

/// Fingerprint over everything that invalidates the whole cache: the
/// rule set (ids *and* [`RULES_VERSION`], so behavior changes inside
/// an existing rule also bust warm caches), the budgets, the dep
/// graph, and the crate version.
fn config_fingerprint(config: &Config) -> String {
    format!("{:016x}", fnv64(fingerprint_key(config).as_bytes()))
}

/// The unhashed fingerprint key: crate version, rules version, rule
/// ids, budgets, and the crate dependency graph. Any drift in these
/// invalidates every cache entry.
fn fingerprint_key(config: &Config) -> String {
    let mut key = String::from(env!("CARGO_PKG_VERSION"));
    key.push_str(&format!("|rv{RULES_VERSION}"));
    for rule in RULES {
        key.push('|');
        key.push_str(rule.id());
    }
    for (k, v) in &config.unwrap_budgets {
        key.push_str(&format!("|{k}={v}"));
    }
    for (k, v) in &config.hot_alloc_budgets {
        key.push_str(&format!("|hot:{k}={v}"));
    }
    for (k, v) in &config.unsafe_budgets {
        key.push_str(&format!("|unsafe:{k}={v}"));
    }
    for (k, deps) in &config.crate_deps {
        key.push_str(&format!("|{k}->"));
        for d in deps {
            key.push_str(d);
            key.push(',');
        }
    }
    key
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

fn kind_tag(kind: crate::TargetKind) -> &'static str {
    match kind {
        crate::TargetKind::Lib => "lib",
        crate::TargetKind::TestLike => "test",
    }
}

fn kind_from_tag(tag: &str) -> Option<crate::TargetKind> {
    match tag {
        "lib" => Some(crate::TargetKind::Lib),
        "test" => Some(crate::TargetKind::TestLike),
        _ => None,
    }
}

/// Serializes cache entries to the versioned line format.
fn render(config: &Config, entries: &[(PathBuf, FileStamp, FileSummary)]) -> String {
    let mut out = format!("magellan-lint-cache/3 {}\n", config_fingerprint(config));
    for (path, stamp, s) in entries {
        out.push_str(&format!(
            "F {} {} {:016x} {}\n",
            stamp.mtime_ns,
            stamp.size,
            stamp.hash,
            path.display()
        ));
        out.push_str(&format!(
            "K {} {} {} {}\n",
            kind_tag(s.kind),
            s.unwrap_count,
            s.unsafe_count,
            s.crate_name
        ));
        for v in &s.violations {
            out.push_str(&format!(
                "V {} {} {}\n",
                v.line,
                v.rule.id(),
                escape(&v.message)
            ));
        }
        for u in &s.uses {
            out.push_str(&format!("I {} {}\n", u.name, u.path.join("::")));
        }
        for f in &s.fns {
            out.push_str(&format!(
                "N {} {} {} {} {} {} {} {} {}\n",
                f.def_line,
                u8::from(f.is_pub),
                u8::from(f.in_test),
                u8::from(f.d4_allowed),
                u8::from(f.hot_marked),
                u8::from(f.h2_allowed),
                u8::from(f.h3_allowed),
                u8::from(f.p2_allowed),
                f.name
            ));
            for c in &f.calls {
                out.push_str(&format!(
                    "C {} {} {}\n",
                    c.line,
                    u8::from(c.method),
                    c.path.join("::")
                ));
            }
            for src in &f.sources {
                out.push_str(&format!(
                    "S {} {} {}\n",
                    src.line,
                    src.kind.id(),
                    escape(&src.what)
                ));
            }
            for sink in &f.sinks {
                out.push_str(&format!(
                    "T {} {} {}\n",
                    sink.line,
                    sink.kind.id(),
                    escape(&sink.what)
                ));
            }
            for l in &f.locks {
                out.push_str(&format!(
                    "L {} {} {} {}\n",
                    l.line,
                    l.until,
                    u8::from(l.l1_allowed),
                    l.class
                ));
            }
        }
    }
    out
}

/// Parses the cache text. Any malformed line drops the remainder of
/// its file entry (never the whole cache); a fingerprint mismatch
/// drops everything.
fn parse(text: &str, config: &Config) -> BTreeMap<PathBuf, (FileStamp, FileSummary)> {
    let mut lines = text.lines();
    let expected = format!("magellan-lint-cache/3 {}", config_fingerprint(config));
    if lines.next() != Some(expected.as_str()) {
        return BTreeMap::new();
    }
    let mut out: BTreeMap<PathBuf, (FileStamp, FileSummary)> = BTreeMap::new();
    let mut current: Option<(PathBuf, FileStamp, FileSummary)> = None;
    for line in lines {
        let (tag, rest) = match line.split_once(' ') {
            Some(t) => t,
            None => continue,
        };
        if tag == "F" {
            if let Some((p, st, s)) = current.take() {
                out.insert(p, (st, s));
            }
            let mut parts = rest.splitn(4, ' ');
            let (Some(mtime), Some(size), Some(hash), Some(path)) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                continue;
            };
            let (Ok(mtime_ns), Ok(size), Ok(hash)) = (
                mtime.parse::<u128>(),
                size.parse::<u64>(),
                u64::from_str_radix(hash, 16),
            ) else {
                continue;
            };
            let path = PathBuf::from(path);
            current = Some((
                path.clone(),
                FileStamp {
                    mtime_ns,
                    size,
                    hash,
                },
                FileSummary {
                    path,
                    crate_name: String::new(),
                    kind: crate::TargetKind::TestLike,
                    violations: Vec::new(),
                    unwrap_count: 0,
                    unsafe_count: 0,
                    fns: Vec::new(),
                    uses: Vec::new(),
                },
            ));
            continue;
        }
        let Some((_, _, summary)) = current.as_mut() else {
            continue;
        };
        match tag {
            "K" => {
                let mut parts = rest.splitn(4, ' ');
                let (Some(kind), Some(count), Some(unsafe_count), Some(name)) =
                    (parts.next(), parts.next(), parts.next(), parts.next())
                else {
                    current = None;
                    continue;
                };
                let (Some(kind), Ok(count), Ok(unsafe_count)) = (
                    kind_from_tag(kind),
                    count.parse::<usize>(),
                    unsafe_count.parse::<usize>(),
                ) else {
                    current = None;
                    continue;
                };
                summary.kind = kind;
                summary.unwrap_count = count;
                summary.unsafe_count = unsafe_count;
                summary.crate_name = name.to_owned();
            }
            "V" => {
                let mut parts = rest.splitn(3, ' ');
                let (Some(line_no), Some(rule), Some(msg)) =
                    (parts.next(), parts.next(), parts.next())
                else {
                    current = None;
                    continue;
                };
                let (Ok(line_no), Some(rule)) = (
                    line_no.parse::<usize>(),
                    RULES.iter().copied().find(|r| r.id() == rule),
                ) else {
                    current = None;
                    continue;
                };
                summary.violations.push(Violation {
                    file: summary.path.clone(),
                    line: line_no,
                    rule,
                    message: unescape(msg),
                });
            }
            "I" => {
                let Some((name, path)) = rest.split_once(' ') else {
                    current = None;
                    continue;
                };
                summary.uses.push(UseImport {
                    name: name.to_owned(),
                    path: path.split("::").map(str::to_owned).collect(),
                });
            }
            "N" => {
                let mut parts = rest.splitn(9, ' ');
                let (
                    Some(def),
                    Some(p),
                    Some(t),
                    Some(a),
                    Some(h),
                    Some(h2),
                    Some(h3),
                    Some(p2),
                    Some(name),
                ) = (
                    parts.next(),
                    parts.next(),
                    parts.next(),
                    parts.next(),
                    parts.next(),
                    parts.next(),
                    parts.next(),
                    parts.next(),
                    parts.next(),
                )
                else {
                    current = None;
                    continue;
                };
                let Ok(def_line) = def.parse::<usize>() else {
                    current = None;
                    continue;
                };
                summary.fns.push(FnSummary {
                    name: name.to_owned(),
                    def_line,
                    is_pub: p == "1",
                    in_test: t == "1",
                    d4_allowed: a == "1",
                    hot_marked: h == "1",
                    h2_allowed: h2 == "1",
                    h3_allowed: h3 == "1",
                    p2_allowed: p2 == "1",
                    calls: Vec::new(),
                    sources: Vec::new(),
                    sinks: Vec::new(),
                    locks: Vec::new(),
                });
            }
            "C" => {
                let mut parts = rest.splitn(3, ' ');
                let (Some(line_no), Some(method), Some(path)) =
                    (parts.next(), parts.next(), parts.next())
                else {
                    current = None;
                    continue;
                };
                let (Ok(line_no), Some(f)) = (line_no.parse::<usize>(), summary.fns.last_mut())
                else {
                    current = None;
                    continue;
                };
                f.calls.push(CallSite {
                    line: line_no,
                    method: method == "1",
                    path: path.split("::").map(str::to_owned).collect(),
                });
            }
            "S" => {
                let mut parts = rest.splitn(3, ' ');
                let (Some(line_no), Some(kind), Some(what)) =
                    (parts.next(), parts.next(), parts.next())
                else {
                    current = None;
                    continue;
                };
                let (Ok(line_no), Some(kind), Some(f)) = (
                    line_no.parse::<usize>(),
                    TaintKind::from_id(kind),
                    summary.fns.last_mut(),
                ) else {
                    current = None;
                    continue;
                };
                f.sources.push(TaintSource {
                    line: line_no,
                    kind,
                    what: unescape(what),
                });
            }
            "T" => {
                let mut parts = rest.splitn(3, ' ');
                let (Some(line_no), Some(kind), Some(what)) =
                    (parts.next(), parts.next(), parts.next())
                else {
                    current = None;
                    continue;
                };
                let (Ok(line_no), Some(kind), Some(f)) = (
                    line_no.parse::<usize>(),
                    CostKind::from_id(kind),
                    summary.fns.last_mut(),
                ) else {
                    current = None;
                    continue;
                };
                f.sinks.push(CostSink {
                    line: line_no,
                    kind,
                    what: unescape(what),
                });
            }
            "L" => {
                let mut parts = rest.splitn(4, ' ');
                let (Some(line_no), Some(until), Some(allowed), Some(class)) =
                    (parts.next(), parts.next(), parts.next(), parts.next())
                else {
                    current = None;
                    continue;
                };
                let (Ok(line_no), Ok(until), Some(f)) = (
                    line_no.parse::<usize>(),
                    until.parse::<usize>(),
                    summary.fns.last_mut(),
                ) else {
                    current = None;
                    continue;
                };
                f.locks.push(LockAcquire {
                    line: line_no,
                    class: class.to_owned(),
                    until,
                    l1_allowed: allowed == "1",
                });
            }
            _ => {}
        }
    }
    if let Some((p, st, s)) = current.take() {
        out.insert(p, (st, s));
    }
    out
}

/// Loads the cache under `root/target/`; any failure or fingerprint
/// mismatch yields an empty map (a cold run).
pub fn load_cache(root: &Path, config: &Config) -> BTreeMap<PathBuf, (FileStamp, FileSummary)> {
    match std::fs::read_to_string(root.join(CACHE_FILE)) {
        Ok(text) => parse(&text, config),
        Err(_) => BTreeMap::new(),
    }
}

/// Writes the cache under `root/target/`.
///
/// # Errors
///
/// Propagates directory-creation and write failures (callers treat
/// them as non-fatal).
pub fn store_cache(
    root: &Path,
    config: &Config,
    entries: &[(PathBuf, FileStamp, FileSummary)],
) -> io::Result<()> {
    let path = root.join(CACHE_FILE);
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    atomic_write(&path, render(config, entries).as_bytes())
}

/// Writes `bytes` to `path` through a sibling temp file and an atomic
/// rename, so an interrupted run never leaves a torn artifact (a
/// half-written cache or baseline would silently skew the next run).
/// Local stand-in for `magellan_trace::atomic_write` — the lint gate
/// stays dependency-free so it builds before anything else does.
///
/// # Errors
///
/// Propagates creation, write, sync, and rename failures.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    use std::io::Write as _;
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SourceFile;

    fn sample_entry() -> (PathBuf, FileStamp, FileSummary) {
        let src = SourceFile::parse(
            PathBuf::from("crates/analysis/src/x.rs"),
            "use magellan_trace::helper::leak;\npub fn study() -> Vec<u32> {\n    let m: HashMap<u32, u32> = HashMap::new();\n    for v in m.values() { leak(); }\n    vec![]\n}\n",
        );
        let summary = crate::analyze_file(&src, &Config::default());
        (
            src.path.clone(),
            FileStamp {
                mtime_ns: 123,
                size: 456,
                hash: 789,
            },
            summary,
        )
    }

    #[test]
    fn roundtrip_preserves_summaries() {
        let config = Config::default();
        let entry = sample_entry();
        let text = render(&config, std::slice::from_ref(&entry));
        let parsed = parse(&text, &config);
        let (stamp, summary) = parsed.get(&entry.0).expect("entry survives");
        assert_eq!(stamp, &entry.1);
        assert_eq!(summary.crate_name, entry.2.crate_name);
        assert_eq!(summary.kind, entry.2.kind);
        assert_eq!(summary.unwrap_count, entry.2.unwrap_count);
        assert_eq!(summary.violations, entry.2.violations);
        assert_eq!(summary.uses, entry.2.uses);
        assert_eq!(summary.fns, entry.2.fns);
    }

    #[test]
    fn fingerprint_mismatch_drops_cache() {
        let config = Config::default();
        let entry = sample_entry();
        let text = render(&config, std::slice::from_ref(&entry));
        let mut other = config.clone();
        other.unwrap_budgets.insert("magellan-lint".to_owned(), 99);
        assert!(parse(&text, &other).is_empty());
        assert!(!parse(&text, &config).is_empty());
    }

    #[test]
    fn garbage_is_ignored_not_fatal() {
        let config = Config::default();
        let text = format!(
            "magellan-lint-cache/3 {}\nF not numbers at all\nV 1 D1 orphan\n",
            super::config_fingerprint(&config)
        );
        assert!(parse(&text, &config).is_empty());
    }

    #[test]
    fn hot_budget_change_drops_cache() {
        let config = Config::default();
        let entry = sample_entry();
        let text = render(&config, std::slice::from_ref(&entry));
        let mut other = config.clone();
        other
            .hot_alloc_budgets
            .insert("magellan-overlay".to_owned(), 7);
        assert!(parse(&text, &other).is_empty());
    }

    /// A warm cache from an older rule set must not mask findings from
    /// rules added since: the prior-format header parses to nothing,
    /// and the fingerprint hashes the `|rv{RULES_VERSION}` component so
    /// a behavior bump inside an existing rule also forces a cold run.
    #[test]
    fn stale_rules_version_forces_cold_run() {
        let config = Config::default();
        let entry = sample_entry();
        let current = render(&config, std::slice::from_ref(&entry));
        let doctored = current.replacen("magellan-lint-cache/3", "magellan-lint-cache/2", 1);
        assert!(parse(&doctored, &config).is_empty(), "old header rejected");
        assert!(
            fingerprint_key(&config).contains(&format!("|rv{RULES_VERSION}")),
            "fingerprint key must carry the rules version"
        );
    }

    #[test]
    fn stamp_freshness_paths() {
        let dir = std::env::temp_dir().join("magellan-lint-stamp-test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let file = dir.join("probe.rs");
        std::fs::write(&file, "fn probe() {}\n").expect("write");
        let now = file_stamp(&file).expect("stamp");
        let full = full_stamp(now.clone(), "fn probe() {}\n");
        // Identical metadata: fresh.
        assert!(stamp_fresh(&full, &now, &file).expect("fresh"));
        // Moved mtime, same content: hash path says fresh.
        let moved = FileStamp {
            mtime_ns: full.mtime_ns.wrapping_add(1),
            ..full.clone()
        };
        assert!(stamp_fresh(&moved, &now, &file).expect("hash fresh"));
        // Different size: stale.
        let resized = FileStamp {
            size: full.size + 1,
            ..full
        };
        assert!(!stamp_fresh(&resized, &now, &file).expect("stale"));
        std::fs::remove_file(&file).ok();
    }
}
