//! Item extraction: the lightweight per-file Rust parser behind the
//! call-graph rules.
//!
//! Built on the comment/string-stripped view from [`crate::source`],
//! this module recognizes just enough structure for a workspace call
//! graph: `fn` definitions with their body extents, `use` imports
//! (so cross-crate calls resolve), and call sites attributed to the
//! innermost enclosing function. It is deliberately not a full Rust
//! parser — macro-generated items and trait dispatch are invisible —
//! which is why rule D4 over-approximates by resolving calls by name
//! (see [`crate::taint`]) and offers the `lint:allow(D4): <why>` hatch.

use crate::source::SourceFile;

/// One `fn` definition found in a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    /// The function's bare name (impl/trait qualification is not
    /// recorded; same-name functions in one crate share a call-graph
    /// node).
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub def_line: usize,
    /// 1-based inclusive line span of the body (signature line through
    /// the closing brace). Declarations without bodies are skipped.
    pub body_start: usize,
    /// End of the body span (inclusive).
    pub body_end: usize,
    /// Whether the definition is `pub` (any visibility qualifier).
    pub is_pub: bool,
    /// Whether the definition sits inside a `#[cfg(test)]` module.
    pub in_test: bool,
    /// Call sites inside this function's body.
    pub calls: Vec<CallSite>,
}

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// 1-based line of the call.
    pub line: usize,
    /// Whether the call is a method call (`receiver.name(...)`).
    pub method: bool,
    /// Path segments as written (`["magellan_graph", "random",
    /// "watts_strogatz"]`, or just `["helper"]` for a bare call).
    pub path: Vec<String>,
}

/// One `use` import: the name it binds mapped to its full path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseImport {
    /// The bound name (the last segment, or the `as` alias).
    pub name: String,
    /// Full path segments, ending with the imported item.
    pub path: Vec<String>,
}

/// Everything extracted from one file.
#[derive(Debug, Clone, Default)]
pub struct FileItems {
    /// Function definitions in source order.
    pub fns: Vec<FnItem>,
    /// `use` imports (glob imports are ignored).
    pub uses: Vec<UseImport>,
}

/// Keywords that look like call heads but never are.
const NON_CALL_KEYWORDS: [&str; 16] = [
    "if", "while", "for", "match", "loop", "return", "break", "continue", "move", "in", "as", "fn",
    "let", "else", "where", "impl",
];

/// Parses the item structure of `src`.
pub fn parse_items(src: &SourceFile) -> FileItems {
    let mut items = FileItems::default();
    parse_uses(src, &mut items);
    parse_fns(src, &mut items);
    items
}

fn parse_uses(src: &SourceFile, items: &mut FileItems) {
    let mut pending = String::new();
    for line in &src.code {
        let t = line.trim();
        if pending.is_empty() {
            if let Some(rest) = t.strip_prefix("use ") {
                pending.push_str(rest);
            } else if let Some(rest) = t.strip_prefix("pub use ") {
                pending.push_str(rest);
            } else {
                continue;
            }
        } else {
            pending.push(' ');
            pending.push_str(t);
        }
        if pending.contains(';') {
            let stmt = pending
                .split(';')
                .next()
                .unwrap_or_default()
                .trim()
                .to_owned();
            pending.clear();
            expand_use(&stmt, &mut items.uses);
        }
    }
}

/// Expands one `use` statement body (without the `use`/`;`) into flat
/// imports. Handles one level of `{...}` grouping and `as` aliases;
/// glob imports are skipped.
fn expand_use(stmt: &str, out: &mut Vec<UseImport>) {
    let stmt = stmt.trim();
    if let Some(open) = stmt.find('{') {
        let prefix = stmt[..open].trim_end_matches("::").trim();
        let Some(close) = stmt.rfind('}') else {
            return;
        };
        for part in split_top_level(&stmt[open + 1..close]) {
            let joined = if prefix.is_empty() {
                part.trim().to_owned()
            } else {
                format!("{prefix}::{}", part.trim())
            };
            expand_use(&joined, out);
        }
        return;
    }
    if stmt.ends_with('*') || stmt.is_empty() {
        return;
    }
    let (path_part, alias) = match stmt.split_once(" as ") {
        Some((p, a)) => (p.trim(), Some(a.trim())),
        None => (stmt, None),
    };
    let path: Vec<String> = path_part
        .split("::")
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .collect();
    let Some(last) = path.last() else {
        return;
    };
    let name = alias.unwrap_or(last).to_owned();
    if name == "self" {
        // `use a::b::{self}` binds `b`.
        if path.len() >= 2 {
            let bound = path[path.len() - 2].clone();
            out.push(UseImport {
                name: bound,
                path: path[..path.len() - 1].to_vec(),
            });
        }
        return;
    }
    out.push(UseImport { name, path });
}

/// Splits a brace-group body on top-level commas (nested `{}` groups
/// stay intact and recurse through [`expand_use`]).
fn split_top_level(s: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    for c in s.chars() {
        match c {
            '{' => {
                depth += 1;
                cur.push(c);
            }
            '}' => {
                depth = depth.saturating_sub(1);
                cur.push(c);
            }
            ',' if depth == 0 => {
                parts.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        parts.push(cur);
    }
    parts
}

/// A function currently open during the scan.
struct OpenFn {
    item: FnItem,
    /// Brace depth at which the body opened; the body closes when the
    /// running depth returns to this value.
    open_depth: i32,
}

/// A signature seen but whose body brace has not opened yet.
struct PendingFn {
    item: FnItem,
}

fn parse_fns(src: &SourceFile, items: &mut FileItems) {
    let mut depth: i32 = 0;
    let mut open: Vec<OpenFn> = Vec::new();
    let mut pending: Option<PendingFn> = None;

    for (idx, line) in src.code.iter().enumerate() {
        let lineno = idx + 1;
        // Resolve a pending signature: its body opens at the first
        // `{`, or it turns out to be a bodyless trait declaration.
        if let Some(p) = pending.take() {
            if let Some(brace_col) = line.find('{') {
                if line[..brace_col].contains(';') {
                    // declaration only
                    pending = None;
                } else {
                    open.push(OpenFn {
                        item: p.item,
                        open_depth: depth,
                    });
                }
            } else if line.contains(';') {
                // declaration only
            } else {
                pending = Some(p);
            }
        }

        // New fn definitions on this line.
        if let Some(mut item) = fn_def_on_line(line, lineno, src) {
            // Does the body open on the same line (after the name)?
            let after_name = line.find("fn ").map(|p| p + 3).unwrap_or(0);
            let rest = &line[after_name..];
            if let Some(brace_rel) = rest.find('{') {
                if !rest[..brace_rel].contains(';') {
                    item.body_start = lineno;
                    // Depth *before* this line's braces are counted is
                    // the open depth; we add this line's delta below.
                    open.push(OpenFn {
                        item,
                        open_depth: depth,
                    });
                } // `fn f(); { ... }` — declaration, ignore
            } else if rest.contains(';') {
                // bodyless declaration
            } else {
                item.body_start = lineno;
                pending = Some(PendingFn { item });
            }
        }

        // Call sites on this line belong to the innermost open fn.
        if let Some(inner) = open.last_mut() {
            if !line.trim_start().starts_with("#[") {
                collect_calls(line, lineno, &mut inner.item.calls);
            }
        }

        // Update depth and close any fns whose body ends here.
        depth += brace_delta(line);
        while let Some(top) = open.last() {
            if depth <= top.open_depth {
                let Some(popped) = open.pop() else {
                    break;
                };
                let mut done = popped.item;
                done.body_end = lineno;
                // Inner fns' calls also belong to callers?  No —
                // nested fns own their calls; the outer fn merely
                // *defines* them. Keep attribution exact.
                items.fns.push(done);
            } else {
                break;
            }
        }
    }
    // Unclosed fns at EOF (truncated input): close at the last line.
    while let Some(top) = open.pop() {
        let mut done = top.item;
        done.body_end = src.code.len();
        items.fns.push(done);
    }
    items.fns.sort_by_key(|f| f.def_line);
}

/// Recognizes `fn name` on a code line, returning a skeleton item.
fn fn_def_on_line(line: &str, lineno: usize, src: &SourceFile) -> Option<FnItem> {
    let mut search = 0usize;
    while let Some(pos) = line[search..].find("fn ") {
        let abs = search + pos;
        search = abs + 3;
        // Word boundary before `fn`.
        if abs > 0 {
            let before = line[..abs].chars().next_back();
            if before.is_some_and(|c| c.is_alphanumeric() || c == '_') {
                continue;
            }
        }
        let rest = line[abs + 3..].trim_start();
        let name: String = rest
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if name.is_empty() {
            continue; // `fn(` pointer type
        }
        let is_pub = line[..abs].contains("pub");
        return Some(FnItem {
            name,
            def_line: lineno,
            body_start: lineno,
            body_end: lineno,
            is_pub,
            in_test: src.in_test_module.get(lineno - 1).copied().unwrap_or(false),
            calls: Vec::new(),
        });
    }
    None
}

/// Extracts call heads from one code line.
fn collect_calls(line: &str, lineno: usize, out: &mut Vec<CallSite>) {
    let bytes = line.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'(' {
            continue;
        }
        // Back-scan the path: identifiers and `::` separators.
        let mut j = i;
        while j > 0 {
            let c = bytes[j - 1];
            if c.is_ascii_alphanumeric() || c == b'_' || c == b':' {
                j -= 1;
            } else {
                break;
            }
        }
        let head = &line[j..i];
        if head.is_empty() || head.starts_with(':') {
            continue;
        }
        // Macro invocation (`println!(`) or keyword head.
        if j > 0 && bytes[j - 1] == b'!' {
            continue;
        }
        // Definition, not a call: `fn name(`.
        let before = line[..j].trim_end();
        if before.ends_with("fn")
            && !before
                .chars()
                .rev()
                .nth(2)
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
        {
            continue;
        }
        let segments: Vec<String> = head.split("::").map(str::to_owned).collect();
        if segments.iter().any(String::is_empty) {
            continue;
        }
        let Some(last) = segments.last() else {
            continue;
        };
        // Types, tuple structs, and enum variants are capitalized;
        // function calls in this workspace are snake_case.
        if !last.chars().next().is_some_and(|c| c.is_ascii_lowercase()) {
            continue;
        }
        if segments.len() == 1 && NON_CALL_KEYWORDS.contains(&last.as_str()) {
            continue;
        }
        let method = j > 0 && bytes[j - 1] == b'.' && segments.len() == 1;
        out.push(CallSite {
            line: lineno,
            method,
            path: segments,
        });
    }
}

fn brace_delta(line: &str) -> i32 {
    let mut d = 0;
    for c in line.chars() {
        match c {
            '{' => d += 1,
            '}' => d -= 1,
            _ => {}
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn items(text: &str) -> FileItems {
        let src = SourceFile::parse(PathBuf::from("crates/graph/src/x.rs"), text);
        parse_items(&src)
    }

    #[test]
    fn fn_definitions_and_spans() {
        let text = "pub fn outer(x: u32) -> u32 {\n    helper(x)\n}\n\nfn helper(x: u32) -> u32 {\n    x + 1\n}\n";
        let fi = items(text);
        assert_eq!(fi.fns.len(), 2);
        assert_eq!(fi.fns[0].name, "outer");
        assert!(fi.fns[0].is_pub);
        assert_eq!((fi.fns[0].body_start, fi.fns[0].body_end), (1, 3));
        assert_eq!(fi.fns[1].name, "helper");
        assert!(!fi.fns[1].is_pub);
        assert_eq!(fi.fns[0].calls.len(), 1);
        assert_eq!(fi.fns[0].calls[0].path, vec!["helper"]);
        assert!(!fi.fns[0].calls[0].method);
    }

    #[test]
    fn multiline_signature_and_trait_decl() {
        let text = "pub fn long(\n    a: u32,\n    b: u32,\n) -> u32 {\n    a\n}\ntrait T {\n    fn decl(&self) -> u32;\n}\n";
        let fi = items(text);
        assert_eq!(fi.fns.len(), 1, "{:?}", fi.fns);
        assert_eq!(fi.fns[0].name, "long");
        assert_eq!(fi.fns[0].body_end, 6);
    }

    #[test]
    fn method_and_qualified_calls() {
        let text = "fn f(g: &G) {\n    let v = g.und(x);\n    magellan_graph::random::watts_strogatz(10, 2, 0.1, 7);\n    Csr::from_digraph(g);\n    Some(1);\n    println!(\"no\");\n}\n";
        let fi = items(text);
        let calls = &fi.fns[0].calls;
        let paths: Vec<&Vec<String>> = calls.iter().map(|c| &c.path).collect();
        assert!(paths.iter().any(|p| p.as_slice() == ["und"]));
        assert!(paths
            .iter()
            .any(|p| p.as_slice() == ["magellan_graph", "random", "watts_strogatz"]));
        assert!(paths
            .iter()
            .any(|p| p.as_slice() == ["Csr", "from_digraph"]));
        // `Some(` (variant) and `println!(` (macro) are not calls.
        assert!(!paths.iter().any(|p| p.last().unwrap() == "println"));
        assert!(!paths.iter().any(|p| p.last().unwrap() == "Some"));
        let und = calls.iter().find(|c| c.path == ["und"]).unwrap();
        assert!(und.method);
    }

    #[test]
    fn nested_fn_owns_its_calls() {
        let text = "fn outer() {\n    fn inner() {\n        deep();\n    }\n    shallow();\n}\n";
        let fi = items(text);
        let outer = fi.fns.iter().find(|f| f.name == "outer").unwrap();
        let inner = fi.fns.iter().find(|f| f.name == "inner").unwrap();
        assert_eq!(outer.calls.len(), 1);
        assert_eq!(outer.calls[0].path, vec!["shallow"]);
        assert_eq!(inner.calls.len(), 1);
        assert_eq!(inner.calls[0].path, vec!["deep"]);
    }

    #[test]
    fn use_imports_flat_grouped_aliased() {
        let text = "use magellan_graph::random::watts_strogatz;\nuse magellan_trace::{TraceStore, snapshot::SnapshotBuilder};\nuse std::collections::HashMap as Map;\nuse magellan_graph::smallworld;\n";
        let fi = items(text);
        let find = |n: &str| fi.uses.iter().find(|u| u.name == n);
        assert_eq!(
            find("watts_strogatz").unwrap().path,
            vec!["magellan_graph", "random", "watts_strogatz"]
        );
        assert_eq!(
            find("SnapshotBuilder").unwrap().path,
            vec!["magellan_trace", "snapshot", "SnapshotBuilder"]
        );
        assert_eq!(
            find("Map").unwrap().path,
            vec!["std", "collections", "HashMap"]
        );
        assert_eq!(
            find("smallworld").unwrap().path,
            vec!["magellan_graph", "smallworld"]
        );
    }

    #[test]
    fn test_module_fns_are_marked() {
        let text = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { lib(); }\n}\n";
        let fi = items(text);
        let t = fi.fns.iter().find(|f| f.name == "t").unwrap();
        assert!(t.in_test);
        let l = fi.fns.iter().find(|f| f.name == "lib").unwrap();
        assert!(!l.in_test);
    }

    #[test]
    fn strings_do_not_create_calls() {
        let text = "fn f() {\n    let s = \"call_me(now)\";\n}\n";
        let fi = items(text);
        assert!(fi.fns[0].calls.is_empty(), "{:?}", fi.fns[0].calls);
    }
}
