//! The rule set: what each rule scans for and where it applies.

use crate::source::{allow_of, SourceFile, TargetKind};
use crate::{Config, FileSummary, Report, Violation};
use std::collections::BTreeMap;

/// Identifier and metadata for one lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Hash-order iteration hazard in simulation paths.
    D1,
    /// Ambient entropy / wall-clock reads in simulation code.
    D2,
    /// Raw `thread::spawn` outside the deterministic fork-join crate.
    D3,
    /// Entry point transitively reaching a nondeterminism source.
    D4,
    /// Shared-state concurrency primitives outside `magellan-par`.
    P1,
    /// Lock/channel machinery reachable from a hot entry point.
    P2,
    /// Cycle in the static lock-acquisition-order graph.
    L1,
    /// Unsound type or guard crossing the `magellan-par` pool boundary.
    S1,
    /// `unwrap()`/`expect(` beyond the per-crate budget.
    C1,
    /// Float `==`/`!=` comparisons in metric code.
    C2,
    /// Lossy `as` casts in metric code.
    C3,
    /// Unchecked index arithmetic in metric kernels.
    C4,
    /// Missing crate hygiene headers.
    H1,
    /// Heap allocation reachable from a hot entry point.
    H2,
    /// Whole-collection iteration reachable from a hot entry point.
    H3,
    /// `unsafe` site without a structured `SAFETY:` contract, or a
    /// crate over its unsafe-site budget.
    U1,
    /// Malformed `lint:allow` annotation.
    M1,
}

/// Every rule, in reporting order.
pub const RULES: [Rule; 17] = [
    Rule::D1,
    Rule::D2,
    Rule::D3,
    Rule::D4,
    Rule::P1,
    Rule::P2,
    Rule::L1,
    Rule::S1,
    Rule::C1,
    Rule::C2,
    Rule::C3,
    Rule::C4,
    Rule::H1,
    Rule::H2,
    Rule::H3,
    Rule::U1,
    Rule::M1,
];

/// Semantic version of the rule *internals* (needle sets, the hot
/// entry-point registry, chain rendering). Folded into the cache
/// fingerprint so a warm cache never silently applies a stale rule
/// set — adding a rule id already busts the cache, but tightening an
/// existing rule would not without this. Bump on any behavior change.
pub const RULES_VERSION: u32 = 6;

impl Rule {
    /// The short id used in reports and `lint:allow(...)`.
    pub fn id(self) -> &'static str {
        match self {
            Rule::D1 => "D1",
            Rule::D2 => "D2",
            Rule::D3 => "D3",
            Rule::D4 => "D4",
            Rule::P1 => "P1",
            Rule::P2 => "P2",
            Rule::L1 => "L1",
            Rule::S1 => "S1",
            Rule::C1 => "C1",
            Rule::C2 => "C2",
            Rule::C3 => "C3",
            Rule::C4 => "C4",
            Rule::H1 => "H1",
            Rule::H2 => "H2",
            Rule::H3 => "H3",
            Rule::U1 => "U1",
            Rule::M1 => "M1",
        }
    }

    /// One-line description for `--list-rules`.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::D1 => {
                "HashMap/HashSet in simulation crates: iteration order varies per process; \
                 use BTreeMap/BTreeSet or sort explicitly"
            }
            Rule::D2 => {
                "thread_rng()/rand::rng()/SystemTime::now()/Instant::now() in library code: \
                 all randomness must come from the seeded RngFactory, all time from SimTime"
            }
            Rule::D3 => {
                "raw thread::spawn in simulation/metric crates: scheduling-dependent results \
                 break parallel equivalence; use magellan-par's deterministic primitives"
            }
            Rule::D4 => {
                "public entry point in overlay/netsim/workload/graph/analysis that transitively \
                 reaches a nondeterminism source through the workspace call graph; the violation \
                 prints the full call chain"
            }
            Rule::P1 => {
                "locks, channels, or non-SeqCst atomic orderings in simulation/metric crates: \
                 shared-state concurrency belongs in magellan-par's order-preserving primitives"
            }
            Rule::P2 => {
                "lock acquisition or channel machinery transitively reachable from a hot entry \
                 point (lint:hot marker or built-in registry); fires even when the site itself \
                 carries lint:allow(P1) — a justified lock is still a per-tick cost"
            }
            Rule::L1 => {
                "cycle in the static lock-acquisition-order graph: some function acquires lock \
                 class B while a guard of class A is held (directly or through the workspace \
                 call graph) and some other path acquires A while holding B — a potential \
                 deadlock; the violation prints both full chains"
            }
            Rule::S1 => {
                "unsound surface at the magellan-par pool boundary: a manual `unsafe impl \
                 Send/Sync`, an interior-mutability type (Cell/RefCell/UnsafeCell) in a \
                 function that dispatches to the pool, or a lock guard held across a pool \
                 call (a panicking chunk would poison or deadlock under the guard)"
            }
            Rule::C1 => {
                "unwrap()/expect( in non-test library code beyond the per-crate budget: \
                 return typed errors instead"
            }
            Rule::C2 => "float == / != comparison in metric code: compare against a tolerance",
            Rule::C3 => "lossy `as` cast in metric code: narrow-width target or len()-truncation",
            Rule::C4 => {
                "unchecked `+`/`*` arithmetic inside an index expression in metric code: \
                 debug builds panic on overflow where release wraps; use checked/saturating \
                 ops or a guarded helper"
            }
            Rule::H1 => {
                "crate root missing #![forbid(unsafe_code)] and #![deny(missing_docs)] \
                 (magellan-par may deny instead of forbid unsafe: its worker pool opts one \
                 audited module back in)"
            }
            Rule::H2 => {
                "heap allocation (collect/clone/to_vec/format!/Box::new, or a constructor \
                 inside a loop) transitively reachable from a hot entry point, beyond the \
                 per-crate budget; the violation prints the full call chain from the entry"
            }
            Rule::H3 => {
                "whole-collection iteration (iter()/keys()/values()/retain on a map or set, \
                 or a 0..len() range scan) transitively reachable from a hot entry point: \
                 per-tick code must touch only the peers an event names, never the population"
            }
            Rule::U1 => {
                "`unsafe` block/impl/fn without a structured safety contract (a `// SAFETY:` \
                 comment naming the invariant, or a `# Safety` doc section on an `unsafe fn`), \
                 or a crate holding more unsafe sites than its audited budget"
            }
            Rule::M1 => "lint:allow annotation without a rule id or justification",
        }
    }

    /// Fix guidance for `--explain` and the SARIF `help` field: what to
    /// do when the rule fires, as opposed to [`Rule::describe`]'s what
    /// and why.
    pub fn fix_guidance(self) -> &'static str {
        match self {
            Rule::D1 => {
                "Switch the collection to BTreeMap/BTreeSet, or sort before iterating. If \
                 only point lookups ever touch it, annotate the line with lint:allow(D1) \
                 and say so."
            }
            Rule::D2 => {
                "Thread a seeded rng (RngFactory fork) or SimTime value into the function \
                 instead of reading ambient entropy or the wall clock."
            }
            Rule::D3 => {
                "Express the parallelism as magellan_par::par_map_collect or join; those \
                 primitives are order-preserving, so outputs stay byte-identical at every \
                 thread count."
            }
            Rule::D4 => {
                "Follow the printed chain to the source line and make the sink \
                 order-insensitive (sort, BTree collections, seeded RNG). lint:allow(D4) on \
                 the source line certifies it for every caller; on the entry's fn line it \
                 waives that one entry point."
            }
            Rule::P1 => {
                "Move the shared state behind magellan-par's primitives, or keep the lock \
                 and write lint:allow(P1): <why the interleaving cannot reach an output>."
            }
            Rule::P2 => {
                "Move the lock/channel off the hot path (hoist it out of the per-tick \
                 subtree), or justify the per-tick cost with lint:allow(P2): <why>."
            }
            Rule::L1 => {
                "Make every path acquire the two lock classes in the same order (usually by \
                 narrowing the first guard's scope with drop(guard) or a block before taking \
                 the second), or merge the locks. If the cycle is a false positive from \
                 conflated receiver names, rename one lock or waive the acquisition site \
                 with lint:allow(L1): <why the order is safe>."
            }
            Rule::S1 => {
                "Drop the guard before dispatching to the pool (clone the data out or use a \
                 block scope); replace Cell/RefCell near the boundary with owned values per \
                 chunk; delete the manual Send/Sync impl or justify its invariant with \
                 lint:allow(S1): <why>."
            }
            Rule::C1 => {
                "Return a typed error (TransferError, SimError, GraphError) instead of \
                 unwrapping, or annotate an invariant-guarded site with lint:allow(C1): \
                 <why the invariant holds>. Budgets only ratchet down."
            }
            Rule::C2 => {
                "Compare |a - b| against an explicit tolerance, or lint:allow(C2) an exact \
                 sentinel comparison."
            }
            Rule::C3 => {
                "Use try_from with an explicit error path, widen the target type, or guard \
                 the bound and justify with lint:allow(C3)."
            }
            Rule::C4 => {
                "Use checked_add/checked_mul (or saturating ops) for the index computation, \
                 or centralize it behind one audited, justified helper like Csr::row."
            }
            Rule::H1 => {
                "Add #![forbid(unsafe_code)] and #![deny(missing_docs)] to the crate root \
                 (magellan-par may deny unsafe instead of forbidding it)."
            }
            Rule::H2 => {
                "Hoist the buffer out of the per-tick/per-sample path and reuse scratch \
                 storage; a constructor at function entry is amortized and exempt. \
                 lint:allow(H2) on the sink waives one site; on the fn line, the body."
            }
            Rule::H3 => {
                "Index or bucket so per-tick code touches only the peers an event names; \
                 whole-population scans belong at sample boundaries, not in the tick loop."
            }
            Rule::U1 => {
                "Write the invariant down: `// SAFETY: <why this cannot violate memory \
                 safety>` on or above the unsafe site (a `# Safety` doc section for an \
                 unsafe fn). Over-budget crates need the new site removed or the audited \
                 budget consciously raised in default_unsafe_budgets."
            }
            Rule::M1 => {
                "Write lint:allow(<RULE>): <reason> with a real rule id and a non-empty \
                 justification — an escape hatch without a reason is a suppressed warning, \
                 not a decision."
            }
        }
    }
}

/// Crates whose internals drive the simulation and therefore must not
/// iterate hash-ordered collections (rule D1).
const SIM_PATH_CRATES: [&str; 3] = ["magellan-overlay", "magellan-netsim", "magellan-workload"];

/// Crates exempt from determinism rules: the bench harness measures
/// wall time by design, and vendor stubs are third-party API mirrors.
const DETERMINISM_EXEMPT: [&str; 1] = ["magellan-bench"];

/// Default per-crate `unwrap()`/`expect(` budgets (rule C1). Budgets
/// reflect the current audited count of invariant-guarding uses; new
/// code must not raise them — prefer typed errors, or annotate the
/// line with `lint:allow(C1): <why the invariant holds>`.
pub fn default_unwrap_budgets() -> BTreeMap<String, usize> {
    // Ratchet values: the audited count at the time the budget was
    // last reviewed, plus at most two of slack. Lower them as crates
    // migrate to typed errors; never raise one without an audit.
    let mut m = BTreeMap::new();
    m.insert("magellan-graph".to_owned(), 18);
    m.insert("magellan-par".to_owned(), 0);
    m.insert("magellan-analysis".to_owned(), 12);
    m.insert("magellan-trace".to_owned(), 6);
    m.insert("magellan-netsim".to_owned(), 6);
    m.insert("magellan-overlay".to_owned(), 2);
    m.insert("magellan-workload".to_owned(), 2);
    m.insert("magellan".to_owned(), 2);
    m.insert("magellan-bench".to_owned(), 18);
    m.insert("magellan-lint".to_owned(), 0);
    m
}

/// Default per-crate budgets for hot-path allocation sinks (rule H2).
/// Same ratchet discipline as the unwrap budgets: the value is the
/// audited count of *justified-by-design* allocations reachable from a
/// hot entry point. The policy default is zero — a per-tick or
/// per-sample allocation is either hoisted out of the hot path or
/// carries an individual `lint:allow(H2): <why>`; budget slack is for
/// crates where an audit has signed off a stable residue wholesale.
pub fn default_hot_alloc_budgets() -> BTreeMap<String, usize> {
    let mut m = BTreeMap::new();
    m.insert("magellan-overlay".to_owned(), 0);
    m.insert("magellan-netsim".to_owned(), 0);
    m.insert("magellan-workload".to_owned(), 0);
    m.insert("magellan-graph".to_owned(), 0);
    m.insert("magellan-analysis".to_owned(), 0);
    m
}

/// Default per-crate budgets for `unsafe` sites (rule U1). The policy
/// is zero everywhere: the workspace is safe Rust by construction
/// (rule H1 forbids `unsafe` at every crate root). The one audited
/// exception is `magellan-par`, whose worker pool erases a job-box
/// borrow lifetime behind a scoped-thread-style completion contract —
/// exactly four sites (the erasing fn, its transmute, and the two
/// submit call sites), each carrying a written contract. The facade
/// crate `magellan` carries one audited site: the `magellan-traced`
/// drain handler binds ISO C `signal(2)` directly (no signal crate in
/// the approved dependency set) to flip an `AtomicBool` — the sole
/// async-signal-safe operation it performs. A new unsafe site
/// anywhere is a conscious budget decision, never a drive-by.
pub fn default_unsafe_budgets() -> BTreeMap<String, usize> {
    let mut m = BTreeMap::new();
    m.insert("magellan-par".to_owned(), 4);
    m.insert("magellan".to_owned(), 1);
    m
}

fn push(report: &mut Report, src: &SourceFile, line: usize, rule: Rule, message: String) {
    if src.is_allowed(line, rule.id()) {
        return;
    }
    report.violations.push(Violation {
        file: src.path.clone(),
        line,
        rule,
        message,
    });
}

/// Runs every per-file rule over `src`.
pub fn check_file(src: &SourceFile, config: &Config, report: &mut Report) {
    check_allow_annotations(src, report);
    check_hash_iteration(src, report);
    check_wall_clock_and_entropy(src, report);
    check_raw_thread_spawn(src, report);
    check_concurrency_primitives(src, report);
    check_float_equality(src, report);
    check_lossy_casts(src, report);
    check_index_arithmetic(src, report);
    check_crate_headers(src, report);
    count_unwraps(src, config, report);
}

/// M1: every `lint:allow` must name a known rule and justify itself.
fn check_allow_annotations(src: &SourceFile, report: &mut Report) {
    for (idx, comment) in src.comments.iter().enumerate() {
        let Some((id, justification)) = allow_of(comment) else {
            continue;
        };
        let known = RULES.iter().any(|r| r.id() == id);
        if !known {
            report.violations.push(Violation {
                file: src.path.clone(),
                line: idx + 1,
                rule: Rule::M1,
                message: format!("lint:allow names unknown rule `{id}`"),
            });
        } else if !crate::source::justified(justification) {
            report.violations.push(Violation {
                file: src.path.clone(),
                line: idx + 1,
                rule: Rule::M1,
                message: format!(
                    "lint:allow({id}) has no justification — write `lint:allow({id}): <why>`"
                ),
            });
        }
    }
}

/// D1: hash-ordered collections in simulation crates.
fn check_hash_iteration(src: &SourceFile, report: &mut Report) {
    if !SIM_PATH_CRATES.contains(&src.crate_name.as_str()) || src.kind != TargetKind::Lib {
        return;
    }
    for (idx, line) in src.code.iter().enumerate() {
        if src.in_test_module[idx] {
            continue;
        }
        for needle in ["HashMap", "HashSet"] {
            if contains_ident(line, needle) {
                push(
                    report,
                    src,
                    idx + 1,
                    Rule::D1,
                    format!(
                        "{needle} in a simulation path — iteration order is \
                         nondeterministic across processes; use BTree{} or sort \
                         before iterating",
                        &needle[4..]
                    ),
                );
            }
        }
    }
}

/// D2: ambient entropy and wall-clock reads.
fn check_wall_clock_and_entropy(src: &SourceFile, report: &mut Report) {
    if DETERMINISM_EXEMPT.contains(&src.crate_name.as_str()) || src.kind != TargetKind::Lib {
        return;
    }
    const FORBIDDEN: [(&str, &str); 5] = [
        (
            "thread_rng",
            "ambient OS entropy breaks seed reproducibility",
        ),
        (
            "rand::rng()",
            "ambient OS entropy breaks seed reproducibility",
        ),
        (
            "SystemTime::now",
            "wall-clock reads do not replay; use SimTime",
        ),
        (
            "Instant::now",
            "wall-clock reads do not replay; use SimTime",
        ),
        (
            "from_entropy",
            "ambient OS entropy breaks seed reproducibility",
        ),
    ];
    for (idx, line) in src.code.iter().enumerate() {
        if src.in_test_module[idx] {
            continue;
        }
        for (needle, why) in FORBIDDEN {
            if line.contains(needle) {
                push(
                    report,
                    src,
                    idx + 1,
                    Rule::D2,
                    format!("`{needle}` in simulation code — {why}"),
                );
            }
        }
    }
}

/// D3: raw thread spawns outside magellan-par.
///
/// Applies to the simulation and metric crates: ad-hoc threads make
/// results depend on the scheduler, which breaks the parallel
/// equivalence guarantee (same bytes at every thread count). All
/// parallelism must go through `magellan-par`'s deterministic
/// primitives — whose own scoped spawns (`scope.spawn`) the needle
/// deliberately does not match.
fn check_raw_thread_spawn(src: &SourceFile, report: &mut Report) {
    let governed = SIM_PATH_CRATES.contains(&src.crate_name.as_str())
        || metric_crate(&src.crate_name)
        || src.crate_name == "magellan-trace"
        || src.crate_name == "magellan";
    if !governed
        || DETERMINISM_EXEMPT.contains(&src.crate_name.as_str())
        || src.kind != TargetKind::Lib
    {
        return;
    }
    for (idx, line) in src.code.iter().enumerate() {
        if src.in_test_module[idx] {
            continue;
        }
        if line.contains("thread::spawn") || line.contains("thread::Builder") {
            push(
                report,
                src,
                idx + 1,
                Rule::D3,
                "raw thread spawn in a simulation/metric crate — route parallelism \
                 through magellan-par so results stay identical at every thread count"
                    .to_owned(),
            );
        }
    }
}

/// P1: shared-state concurrency primitives outside magellan-par.
///
/// Locks introduce acquisition-order nondeterminism, channels
/// interleave by scheduler whim, and any atomic ordering weaker than
/// SeqCst permits observably different interleavings across runs.
/// `magellan-par` is the one sanctioned home for such machinery (its
/// primitives are proven order-preserving by the parallel-equivalence
/// tests); everywhere else in the sim/metric path they need a written
/// `lint:allow(P1): <why>` justification.
fn check_concurrency_primitives(src: &SourceFile, report: &mut Report) {
    let governed = SIM_PATH_CRATES.contains(&src.crate_name.as_str())
        || metric_crate(&src.crate_name)
        || src.crate_name == "magellan-trace"
        || src.crate_name == "magellan";
    if !governed
        || DETERMINISM_EXEMPT.contains(&src.crate_name.as_str())
        || src.kind != TargetKind::Lib
    {
        return;
    }
    const LOCKS: [&str; 4] = ["Mutex", "RwLock", "Condvar", "Barrier"];
    const ORDERINGS: [&str; 4] = [
        "Ordering::Relaxed",
        "Ordering::Acquire",
        "Ordering::Release",
        "Ordering::AcqRel",
    ];
    for (idx, line) in src.code.iter().enumerate() {
        if src.in_test_module[idx] {
            continue;
        }
        for lock in LOCKS {
            if contains_ident(line, lock) {
                push(
                    report,
                    src,
                    idx + 1,
                    Rule::P1,
                    format!(
                        "`{lock}` in a simulation/metric crate — lock acquisition order is \
                         scheduler-dependent; route shared state through magellan-par or \
                         justify with lint:allow(P1)"
                    ),
                );
            }
        }
        if contains_ident(line, "mpsc") || line.contains("sync_channel(") {
            push(
                report,
                src,
                idx + 1,
                Rule::P1,
                "channel in a simulation/metric crate — message interleaving is \
                 scheduler-dependent; use magellan-par's order-preserving primitives"
                    .to_owned(),
            );
        }
        for ord in ORDERINGS {
            if line.contains(ord) {
                push(
                    report,
                    src,
                    idx + 1,
                    Rule::P1,
                    format!(
                        "atomic `{ord}` — orderings weaker than SeqCst admit per-run \
                         interleaving differences; use SeqCst or justify with lint:allow(P1)"
                    ),
                );
            }
        }
    }
}

/// C2: float equality in metric crates.
fn check_float_equality(src: &SourceFile, report: &mut Report) {
    if !metric_crate(&src.crate_name) || src.kind != TargetKind::Lib {
        return;
    }
    for (idx, line) in src.code.iter().enumerate() {
        if src.in_test_module[idx] {
            continue;
        }
        if has_float_equality(line) {
            push(
                report,
                src,
                idx + 1,
                Rule::C2,
                "float == / != comparison — compare |a - b| against a tolerance".to_owned(),
            );
        }
    }
}

/// C3: lossy casts in metric crates.
fn check_lossy_casts(src: &SourceFile, report: &mut Report) {
    if !metric_crate(&src.crate_name) || src.kind != TargetKind::Lib {
        return;
    }
    for (idx, line) in src.code.iter().enumerate() {
        if src.in_test_module[idx] {
            continue;
        }
        for narrow in [" as u8", " as u16", " as i8", " as i16", " as f32"] {
            if let Some(pos) = line.find(narrow) {
                let after = line[pos + narrow.len()..].chars().next();
                if !after.is_some_and(|c| c.is_alphanumeric() || c == '_') {
                    push(
                        report,
                        src,
                        idx + 1,
                        Rule::C3,
                        format!("narrowing cast `{}` — use try_from or widen", narrow.trim()),
                    );
                }
            }
        }
        if line.contains("len() as u32") || line.contains("len() as u16") {
            push(
                report,
                src,
                idx + 1,
                Rule::C3,
                "length truncated by `as` — guard the bound explicitly".to_owned(),
            );
        }
    }
}

/// C4: unchecked `+`/`*` arithmetic inside index brackets in metric
/// kernels.
///
/// `off[u.index() + 1]` panics on overflow in debug builds but wraps
/// in release — the two profiles would disagree exactly when an
/// invariant is already broken, which is the worst time for the gate
/// to diverge. Hot CSR loops must use checked/saturating arithmetic
/// or a guarded row helper.
fn check_index_arithmetic(src: &SourceFile, report: &mut Report) {
    if !metric_crate(&src.crate_name) || src.kind != TargetKind::Lib {
        return;
    }
    for (idx, line) in src.code.iter().enumerate() {
        if src.in_test_module[idx] {
            continue;
        }
        for expr in index_arithmetic_exprs(line) {
            push(
                report,
                src,
                idx + 1,
                Rule::C4,
                format!(
                    "unchecked arithmetic in index `[{expr}]` — debug overflow panics \
                     where release wraps; use checked/saturating ops or a guarded helper"
                ),
            );
        }
    }
}

/// The bracketed index expressions on `line` containing a `+` or a
/// binary `*`. Only genuine indexing counts: the character before `[`
/// must close an expression (identifier, `)`, or `]`), which excludes
/// macros (`vec![`), slice types (`&[`), and array literals.
fn index_arithmetic_exprs(line: &str) -> Vec<String> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] != b'[' {
            i += 1;
            continue;
        }
        let indexing = i > 0
            && (bytes[i - 1].is_ascii_alphanumeric() || matches!(bytes[i - 1], b'_' | b')' | b']'));
        // Find the matching `]` on this line (nesting-aware).
        let mut depth = 1usize;
        let mut j = i + 1;
        while j < bytes.len() && depth > 0 {
            match bytes[j] {
                b'[' => depth += 1,
                b']' => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        let end = if depth == 0 { j - 1 } else { bytes.len() };
        if indexing {
            let inner = &line[i + 1..end];
            if has_unchecked_arithmetic(inner) {
                out.push(inner.to_owned());
            }
        }
        i += 1; // nested brackets get their own look
    }
    out
}

/// Whether `expr` contains a `+` or a *binary* `*` (a `*` whose
/// preceding non-space character ends an operand; leading `*` is a
/// deref).
fn has_unchecked_arithmetic(expr: &str) -> bool {
    let bytes = expr.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'+' => {
                // `+=` never appears in an index; any `+` counts.
                return true;
            }
            b'*' => {
                let prev = expr[..i].trim_end().as_bytes().last().copied();
                if prev
                    .is_some_and(|c| c.is_ascii_alphanumeric() || matches!(c, b'_' | b')' | b']'))
                {
                    return true;
                }
            }
            _ => {}
        }
    }
    false
}

/// H1: hygiene headers on crate roots.
fn check_crate_headers(src: &SourceFile, report: &mut Report) {
    let name = src.path.file_name().map(|f| f.to_string_lossy());
    if name.as_deref() != Some("lib.rs") || src.kind != TargetKind::Lib {
        return;
    }
    // `magellan-par` is the one crate allowed to downgrade the unsafe
    // header to `deny`: its worker pool erases a borrow lifetime in a
    // single `#[allow(unsafe_code)]` module, and `deny` at the root
    // still rejects unsafe everywhere that module-level opt-in is
    // absent.
    let unsafe_ok = |l: &String| {
        l.contains("#![forbid(unsafe_code)]")
            || (src.crate_name == "magellan-par" && l.contains("#![deny(unsafe_code)]"))
    };
    if !src.code.iter().any(unsafe_ok) {
        push(
            report,
            src,
            1,
            Rule::H1,
            "crate root is missing `#![forbid(unsafe_code)]`".to_owned(),
        );
    }
    if !src
        .code
        .iter()
        .any(|l| l.contains("#![deny(missing_docs)]"))
    {
        push(
            report,
            src,
            1,
            Rule::H1,
            "crate root is missing `#![deny(missing_docs)]`".to_owned(),
        );
    }
}

/// C1 phase 1: count non-test, non-allowed unwraps per crate.
fn count_unwraps(src: &SourceFile, _config: &Config, report: &mut Report) {
    if src.kind != TargetKind::Lib {
        return;
    }
    let mut n = 0usize;
    for (idx, line) in src.code.iter().enumerate() {
        if src.in_test_module[idx] {
            continue;
        }
        let hits = line.matches(".unwrap()").count() + line.matches(".expect(").count();
        if hits > 0 && !src.is_allowed(idx + 1, "C1") {
            n += hits;
        }
    }
    *report
        .unwrap_counts
        .entry(src.crate_name.clone())
        .or_insert(0) += n;
}

/// C1 phase 2: compare the counts against the budgets.
pub fn check_unwrap_budgets(summaries: &[FileSummary], config: &Config, report: &mut Report) {
    for (crate_name, &count) in &report.unwrap_counts.clone() {
        let budget = config.unwrap_budgets.get(crate_name).copied().unwrap_or(0);
        if count > budget {
            // Anchor the violation at the crate root for a stable path.
            let anchor = summaries
                .iter()
                .find(|s| {
                    s.crate_name == *crate_name && s.path.file_name().is_some_and(|f| f == "lib.rs")
                })
                .map(|s| s.path.clone())
                .unwrap_or_else(|| std::path::PathBuf::from(crate_name.clone()));
            report.violations.push(Violation {
                file: anchor,
                line: 1,
                rule: Rule::C1,
                message: format!(
                    "{crate_name} has {count} unwrap()/expect( calls in non-test library \
                     code, over its budget of {budget} — convert to typed errors or \
                     annotate invariant-guarding sites with lint:allow(C1)"
                ),
            });
        }
    }
}

fn metric_crate(name: &str) -> bool {
    name == "magellan-graph" || name == "magellan-analysis"
}

/// Whether `line` contains `needle` as a standalone identifier
/// (not a substring of a longer identifier).
pub(crate) fn contains_ident(line: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = line[start..].find(needle) {
        let abs = start + pos;
        let before_ok = abs == 0
            || !line[..abs]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = line[abs + needle.len()..].chars().next();
        let after_ok = !after.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = abs + needle.len();
    }
    false
}

/// Detects `== 1.0`, `0.5 !=`, `== 1e-9` style comparisons against
/// float literals, leaving `<=`, `>=`, and integer comparisons alone.
fn has_float_equality(line: &str) -> bool {
    let bytes = line.as_bytes();
    for (i, w) in bytes.windows(2).enumerate() {
        let op = matches!(w, b"==" | b"!=");
        if !op {
            continue;
        }
        // Exclude `<=`, `>=`, `!==`-like runs handled naturally: `<=`
        // and `>=` never match the `==`/`!=` windows at this offset
        // unless preceded by `<`/`>`/`=`/`!`.
        if i > 0 && matches!(bytes[i - 1], b'<' | b'>' | b'=' | b'!') {
            continue;
        }
        if bytes.get(i + 2) == Some(&b'=') {
            continue;
        }
        let left = line[..i].trim_end();
        let right = line[i + 2..].trim_start();
        if float_literal_at_end(left) || float_literal_at_start(right) {
            return true;
        }
    }
    false
}

fn float_literal_at_start(s: &str) -> bool {
    let s = s.strip_prefix('-').unwrap_or(s);
    let mut digits = false;
    let mut dot = false;
    let mut exp = false;
    for c in s.chars() {
        match c {
            '0'..='9' | '_' => digits = true,
            '.' if digits && !dot => dot = true,
            'e' | 'E' if digits && !exp => exp = true,
            '-' | '+' if exp => {}
            _ => break,
        }
    }
    digits && (dot || exp) || s.starts_with("f64::") || s.starts_with("f32::")
}

fn float_literal_at_end(s: &str) -> bool {
    let tail: String = s
        .chars()
        .rev()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '_' | 'e' | 'E' | '-' | '+'))
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    let t = tail.trim_start_matches(['-', '+']);
    t.contains('.') && t.chars().next().is_some_and(|c| c.is_ascii_digit())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn lint_one(path: &str, text: &str) -> Vec<Violation> {
        let src = SourceFile::parse(PathBuf::from(path), text);
        let config = Config::default();
        crate::lint_sources(&[src], &config).violations
    }

    fn ids(vs: &[Violation]) -> Vec<&'static str> {
        vs.iter().map(|v| v.rule.id()).collect()
    }

    const CLEAN_HEADER: &str = "#![forbid(unsafe_code)]\n#![deny(missing_docs)]\n";

    #[test]
    fn d1_fires_in_sim_crates_only() {
        let bad = "use std::collections::HashMap;\n";
        assert!(ids(&lint_one("crates/overlay/src/x.rs", bad)).contains(&"D1"));
        assert!(ids(&lint_one("crates/netsim/src/x.rs", bad)).contains(&"D1"));
        assert!(!ids(&lint_one("crates/graph/src/x.rs", bad)).contains(&"D1"));
        assert!(!ids(&lint_one("crates/overlay/tests/x.rs", bad)).contains(&"D1"));
    }

    #[test]
    fn d1_allow_with_justification_suppresses() {
        let ok = "use std::collections::HashMap; // lint:allow(D1): only point lookups\n";
        assert!(lint_one("crates/overlay/src/x.rs", ok).is_empty());
        let noreason = "use std::collections::HashMap; // lint:allow(D1)\n";
        let vs = lint_one("crates/overlay/src/x.rs", noreason);
        assert!(ids(&vs).contains(&"M1"), "{vs:?}");
        assert!(ids(&vs).contains(&"D1"), "{vs:?}");
    }

    #[test]
    fn d2_fires_on_clock_and_entropy() {
        for bad in [
            "let t = std::time::Instant::now();\n",
            "let t = SystemTime::now();\n",
            "let mut r = rand::rng();\n",
            "let mut r = thread_rng();\n",
        ] {
            let vs = lint_one("crates/workload/src/x.rs", bad);
            assert!(ids(&vs).contains(&"D2"), "{bad:?} -> {vs:?}");
        }
        // Doc comments and strings do not trip the rule.
        let doc = "//! Never call `thread_rng` here.\nconst X: &str = \"Instant::now\";\n";
        assert!(!ids(&lint_one("crates/workload/src/x.rs", doc)).contains(&"D2"));
        // The bench harness may time things.
        let bench = "let t = std::time::Instant::now();\n";
        assert!(lint_one("crates/bench/src/x.rs", bench).is_empty());
    }

    #[test]
    fn d3_fires_on_raw_thread_spawn_in_governed_crates() {
        for bad in [
            "let h = std::thread::spawn(move || work());\n",
            "let h = thread::spawn(f);\n",
            "let b = thread::Builder::new();\n",
        ] {
            for file in [
                "crates/overlay/src/x.rs",
                "crates/graph/src/x.rs",
                "crates/analysis/src/x.rs",
                "crates/trace/src/x.rs",
                "src/lib.rs",
            ] {
                let vs = lint_one(file, bad);
                assert!(ids(&vs).contains(&"D3"), "{file} {bad:?} -> {vs:?}");
            }
        }
    }

    #[test]
    fn d3_spares_magellan_par_tests_and_the_escape_hatch() {
        let spawn = "let h = std::thread::spawn(f);\n";
        // magellan-par is the sanctioned home of spawns (its own scoped
        // `scope.spawn` calls would not match the needle anyway).
        assert!(!ids(&lint_one("crates/par/src/lib.rs", spawn)).contains(&"D3"));
        // The bench harness is determinism-exempt; test modules are free.
        assert!(!ids(&lint_one("crates/bench/src/x.rs", spawn)).contains(&"D3"));
        let in_test = format!("#[cfg(test)]\nmod tests {{\n{spawn}}}\n");
        assert!(!ids(&lint_one("crates/graph/src/x.rs", &in_test)).contains(&"D3"));
        // Annotated escape with justification.
        let allowed =
            "let h = std::thread::spawn(f); // lint:allow(D3): detached IO thread, output unused\n";
        assert!(!ids(&lint_one("crates/graph/src/x.rs", allowed)).contains(&"D3"));
        // scope.spawn (the magellan-par implementation idiom) is fine.
        let scoped = "let h = scope.spawn(f);\n";
        assert!(!ids(&lint_one("crates/graph/src/x.rs", scoped)).contains(&"D3"));
    }

    #[test]
    fn c1_budget_is_enforced_per_crate() {
        // magellan-lint has budget 0, so one unwrap in lib code trips C1.
        let bad = format!("{CLEAN_HEADER}fn f() {{ x.unwrap(); }}\n");
        let vs = lint_one("crates/lint/src/lib.rs", &bad);
        assert!(ids(&vs).contains(&"C1"), "{vs:?}");
        // Inside #[cfg(test)] it is free.
        let test_only =
            format!("{CLEAN_HEADER}#[cfg(test)]\nmod tests {{\n fn t() {{ x.unwrap(); }}\n}}\n");
        assert!(lint_one("crates/lint/src/lib.rs", &test_only).is_empty());
        // An allow-annotated site does not count against the budget.
        let allowed = format!(
            "{CLEAN_HEADER}fn f() {{ x.unwrap(); // lint:allow(C1): index checked above\n}}\n"
        );
        assert!(lint_one("crates/lint/src/lib.rs", &allowed).is_empty());
    }

    #[test]
    fn c2_fires_on_float_equality_only() {
        let bad = "if x == 0.0 { }\n";
        assert!(ids(&lint_one("crates/graph/src/x.rs", bad)).contains(&"C2"));
        let bad2 = "if 1.5 != y { }\n";
        assert!(ids(&lint_one("crates/analysis/src/x.rs", bad2)).contains(&"C2"));
        for ok in [
            "if x <= 0.5 { }\n",
            "if x >= 1.0 { }\n",
            "if (a - b).abs() < 1e-9 { }\n",
            "if n == 0 { }\n",
            "if version == 10 { }\n",
        ] {
            let vs = lint_one("crates/graph/src/x.rs", ok);
            assert!(!ids(&vs).contains(&"C2"), "{ok:?} -> {vs:?}");
        }
    }

    #[test]
    fn c3_fires_on_narrowing_casts() {
        let bad = "let x = big as u16;\n";
        assert!(ids(&lint_one("crates/graph/src/x.rs", bad)).contains(&"C3"));
        let bad2 = "let n = v.len() as u32;\n";
        assert!(ids(&lint_one("crates/analysis/src/x.rs", bad2)).contains(&"C3"));
        let ok = "let x = small as u64;\nlet y = n as f64;\nlet z = w as usize;\n";
        assert!(!ids(&lint_one("crates/graph/src/x.rs", ok)).contains(&"C3"));
    }

    #[test]
    fn h1_requires_both_headers() {
        let vs = lint_one("crates/graph/src/lib.rs", "#![forbid(unsafe_code)]\n");
        assert_eq!(ids(&vs), vec!["H1"]);
        assert!(lint_one("crates/graph/src/lib.rs", CLEAN_HEADER).is_empty());
        // Non-root files need no headers.
        assert!(lint_one("crates/graph/src/degree.rs", "fn f() {}\n").is_empty());
    }

    #[test]
    fn m1_fires_on_unknown_rule() {
        let vs = lint_one("crates/graph/src/x.rs", "// lint:allow(Z9): whatever\n");
        assert_eq!(ids(&vs), vec!["M1"]);
    }

    #[test]
    fn violations_are_sorted_and_displayed() {
        let src_a = SourceFile::parse(
            PathBuf::from("crates/overlay/src/a.rs"),
            "use std::collections::HashSet;\n",
        );
        let src_b = SourceFile::parse(
            PathBuf::from("crates/overlay/src/b.rs"),
            "use std::collections::HashMap;\n",
        );
        let report = crate::lint_sources(&[src_b, src_a], &Config::default());
        assert_eq!(report.violations.len(), 2);
        assert!(report.violations[0].file < report.violations[1].file);
        let shown = report.violations[0].to_string();
        assert!(shown.contains("crates/overlay/src/a.rs:1: D1"), "{shown}");
    }
}
