//! `magellan-lint` — the workspace's determinism and invariant
//! static-analysis gate.
//!
//! Magellan's findings (non-power-law degree mix, ISP clustering,
//! reciprocity) must *emerge* from simulated protocol dynamics, so any
//! hidden nondeterminism — unseeded RNG, hash-order iteration,
//! wall-clock reads — silently corrupts reproduced figures the same
//! way measurement artifacts distorted early crawler studies. This
//! crate is a fast, dependency-light (line-based, no `syn`) pass over
//! every workspace `.rs` file that enforces the policy *before* code
//! lands:
//!
//! | Rule | Scope | What it catches |
//! |------|-------|-----------------|
//! | `D1` | sim crates (`overlay`, `netsim`, `workload`) | `HashMap`/`HashSet` use — iteration order is seed-hostile; use `BTreeMap`/`BTreeSet` or sort |
//! | `D2` | all lib crates | `thread_rng`, `rand::rng()`, `SystemTime::now`, `Instant::now` — ambient entropy / wall clock in simulation code |
//! | `C1` | all lib crates | `unwrap()` / `expect(` in non-test library code beyond the per-crate budget |
//! | `C2` | metric crates (`graph`, `analysis`) | float `==` / `!=` comparisons |
//! | `C3` | metric crates (`graph`, `analysis`) | lossy `as` casts: narrow widths (`u8`/`u16`/`i8`/`i16`/`f32`) and `len() as u32`-style truncations |
//! | `H1` | every workspace crate | missing `#![forbid(unsafe_code)]` / `#![deny(missing_docs)]` crate header |
//! | `M1` | everywhere | malformed `lint:allow` (missing rule id or justification) |
//!
//! Any finding can be waived *with a written justification* by
//! annotating the offending line (or the line above it):
//!
//! ```text
//! let order = peers.keys().collect(); // lint:allow(D1): keys are sorted two lines below
//! ```
//!
//! String literals and comments are stripped before rules run, so
//! mentioning `thread_rng` in a doc comment is fine; the allow
//! annotations themselves are read from the raw comment text.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

mod rules;
mod source;
mod walk;

pub use rules::{default_unwrap_budgets, Rule, RULES};
pub use source::SourceFile;
pub use walk::{collect_workspace_sources, find_workspace_root};

/// One finding: a rule violated at a specific file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Path relative to the workspace root.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable description of this occurrence.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} {}",
            self.file.display(),
            self.line,
            self.rule.id(),
            self.message
        )
    }
}

/// Lint configuration: scopes and budgets.
#[derive(Debug, Clone)]
pub struct Config {
    /// Per-crate `unwrap()`/`expect(` budgets for rule C1. Crates not
    /// listed have budget 0.
    pub unwrap_budgets: BTreeMap<String, usize>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            unwrap_budgets: rules::default_unwrap_budgets(),
        }
    }
}

/// Outcome of a whole-workspace lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// All violations found, in path order.
    pub violations: Vec<Violation>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Per-crate non-test `unwrap()`/`expect(` counts (rule C1 input).
    pub unwrap_counts: BTreeMap<String, usize>,
}

impl Report {
    /// Whether the run found no violations.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Lints every workspace source under `root` with `config`.
///
/// # Errors
///
/// Returns an error when the tree cannot be walked or a file cannot be
/// read.
pub fn lint_workspace(root: &Path, config: &Config) -> std::io::Result<Report> {
    let paths = collect_workspace_sources(root)?;
    let mut sources = Vec::with_capacity(paths.len());
    for path in paths {
        let text = std::fs::read_to_string(root.join(&path))?;
        sources.push(SourceFile::parse(path, &text));
    }
    Ok(lint_sources(&sources, config))
}

/// Lints pre-parsed sources (the in-memory entry point self-tests use).
pub fn lint_sources(sources: &[SourceFile], config: &Config) -> Report {
    let mut report = Report {
        files_scanned: sources.len(),
        ..Report::default()
    };
    for src in sources {
        rules::check_file(src, config, &mut report);
    }
    rules::check_unwrap_budgets(sources, config, &mut report);
    report
        .violations
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    report
}
