//! `magellan-lint` — the workspace's determinism and invariant
//! static-analysis gate.
//!
//! Magellan's findings (non-power-law degree mix, ISP clustering,
//! reciprocity) must *emerge* from simulated protocol dynamics, so any
//! hidden nondeterminism — unseeded RNG, hash-order iteration,
//! wall-clock reads — silently corrupts reproduced figures the same
//! way measurement artifacts distorted early crawler studies. This
//! crate is a fast, dependency-light (no `syn`) pass over every
//! workspace `.rs` file that enforces the policy *before* code lands:
//!
//! | Rule | Scope | What it catches |
//! |------|-------|-----------------|
//! | `D1` | sim crates (`overlay`, `netsim`, `workload`) | `HashMap`/`HashSet` use — iteration order is seed-hostile; use `BTreeMap`/`BTreeSet` or sort |
//! | `D2` | all lib crates | `thread_rng`, `rand::rng()`, `SystemTime::now`, `Instant::now` — ambient entropy / wall clock in simulation code |
//! | `D3` | sim + metric crates | raw `thread::spawn` outside `magellan-par` |
//! | `D4` | entry crates (`overlay`, `netsim`, `workload`, `graph`, `analysis`) | public entry point that *transitively* reaches a nondeterminism source through the workspace call graph |
//! | `P1` | sim + metric crates | locks, channels, non-SeqCst atomic orderings outside `magellan-par` |
//! | `C1` | all lib crates | `unwrap()` / `expect(` in non-test library code beyond the per-crate budget |
//! | `C2` | metric crates (`graph`, `analysis`) | float `==` / `!=` comparisons |
//! | `C3` | metric crates (`graph`, `analysis`) | lossy `as` casts: narrow widths (`u8`/`u16`/`i8`/`i16`/`f32`) and `len() as u32`-style truncations |
//! | `C4` | metric crates (`graph`, `analysis`) | unchecked `+`/`*` arithmetic inside index brackets — debug overflow panics where release wraps |
//! | `H1` | every workspace crate | missing `#![forbid(unsafe_code)]` / `#![deny(missing_docs)]` crate header |
//! | `M1` | everywhere | malformed `lint:allow` (missing rule id or justification) |
//!
//! The line-local rules run per file; `D4` is the semantic pass — it
//! parses `fn` items, `use` imports, and call sites out of every file
//! ([`items`]), links them into a workspace call graph, and propagates
//! taint from nondeterminism sources back to public entry points
//! ([`taint`]), printing the full call chain in the violation.
//!
//! Any finding can be waived *with a written justification* by
//! annotating the offending line (or the line above it):
//!
//! ```text
//! let order = peers.keys().collect(); // lint:allow(D1): keys are sorted two lines below
//! ```
//!
//! String literals and comments are stripped before rules run, so
//! mentioning `thread_rng` in a doc comment is fine; the allow
//! annotations themselves are read from the raw comment text.
//!
//! Reports render as human text, `--format json` (stable,
//! byte-reproducible schema `magellan-lint-report/1`), or `--format
//! sarif` (SARIF 2.1.0, loadable by GitHub code scanning); a
//! checked-in baseline file can grandfather known findings, and an
//! mtime+hash cache under `target/` keeps warm runs fast.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};

mod cache;
mod items;
mod output;
mod rules;
mod source;
mod taint;
mod walk;

pub use cache::{atomic_write, load_cache, store_cache, FileStamp, CACHE_FILE};
pub use items::{parse_items, CallSite, FileItems, FnItem, UseImport};
pub use output::{
    load_baseline, render_human, render_json, render_sarif, violation_fingerprint, Baseline,
    BASELINE_FILE,
};
pub use rules::{default_unwrap_budgets, Rule, RULES};
pub use source::{SourceFile, TargetKind};
pub use walk::{collect_workspace_sources, find_workspace_root, parse_crate_deps};

/// One finding: a rule violated at a specific file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Path relative to the workspace root.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable description of this occurrence.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} {}",
            self.file.display(),
            self.line,
            self.rule.id(),
            self.message
        )
    }
}

/// Lint configuration: scopes and budgets.
#[derive(Debug, Clone)]
pub struct Config {
    /// Per-crate `unwrap()`/`expect(` budgets for rule C1. Crates not
    /// listed have budget 0.
    pub unwrap_budgets: BTreeMap<String, usize>,
    /// Workspace crate dependency edges (`crate -> deps`), used to
    /// gate D4 call resolution. When empty (in-memory runs), calls
    /// resolve across every crate pair — a fully connected fallback.
    pub crate_deps: BTreeMap<String, BTreeSet<String>>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            unwrap_budgets: rules::default_unwrap_budgets(),
            crate_deps: BTreeMap::new(),
        }
    }
}

/// What kind of nondeterminism a taint source introduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TaintKind {
    /// Wall-clock reads (`SystemTime::now`, `Instant::now`).
    Clock,
    /// Ambient OS entropy (`thread_rng`, `from_entropy`, …).
    Entropy,
    /// Raw thread spawns (scheduler-dependent interleaving).
    Spawn,
    /// Iteration over hash-ordered collections.
    HashOrder,
}

impl TaintKind {
    /// Stable identifier used in the cache serialization.
    pub fn id(self) -> &'static str {
        match self {
            TaintKind::Clock => "clock",
            TaintKind::Entropy => "entropy",
            TaintKind::Spawn => "spawn",
            TaintKind::HashOrder => "hash",
        }
    }

    /// Inverse of [`TaintKind::id`].
    pub fn from_id(s: &str) -> Option<Self> {
        match s {
            "clock" => Some(TaintKind::Clock),
            "entropy" => Some(TaintKind::Entropy),
            "spawn" => Some(TaintKind::Spawn),
            "hash" => Some(TaintKind::HashOrder),
            _ => None,
        }
    }
}

/// One nondeterminism source seeded inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaintSource {
    /// 1-based line of the source.
    pub line: usize,
    /// Source category.
    pub kind: TaintKind,
    /// Human description (`"wall-clock read `Instant::now`"`).
    pub what: String,
}

/// Per-function analysis product: everything rule D4 needs, detached
/// from the source text so it can be cached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnSummary {
    /// Bare function name (call-graph node key within its crate).
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub def_line: usize,
    /// Whether the definition carries a visibility qualifier.
    pub is_pub: bool,
    /// Whether the definition sits inside a `#[cfg(test)]` module.
    pub in_test: bool,
    /// Whether the `fn` line carries a `lint:allow(D4): <why>`
    /// annotation (waives this entry point).
    pub d4_allowed: bool,
    /// Call sites inside the body.
    pub calls: Vec<CallSite>,
    /// Nondeterminism sources inside the body.
    pub sources: Vec<TaintSource>,
}

/// Per-file analysis product: line-local violations plus the call
/// graph fragment. The cache stores these; the global phases (C1
/// budgets, D4 taint) always recompute from them.
#[derive(Debug, Clone)]
pub struct FileSummary {
    /// Path relative to the workspace root.
    pub path: PathBuf,
    /// Owning crate.
    pub crate_name: String,
    /// Library code vs test-like target.
    pub kind: TargetKind,
    /// Line-local violations (already `lint:allow`-filtered).
    pub violations: Vec<Violation>,
    /// Non-test, non-allowed `unwrap()`/`expect(` count (C1 input).
    pub unwrap_count: usize,
    /// Function definitions with calls and taint sources.
    pub fns: Vec<FnSummary>,
    /// `use` imports (D4 call resolution input).
    pub uses: Vec<UseImport>,
}

/// Outcome of a whole-workspace lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// All violations found, in path order.
    pub violations: Vec<Violation>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Per-crate non-test `unwrap()`/`expect(` counts (rule C1 input).
    pub unwrap_counts: BTreeMap<String, usize>,
    /// Findings suppressed by the baseline file (not in `violations`).
    pub suppressed_baseline: usize,
}

impl Report {
    /// Whether the run found no violations.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs every line-local rule and the item/taint-source extraction
/// over one file. Pure per-file work — this is the unit the cache
/// stores.
pub fn analyze_file(src: &SourceFile, config: &Config) -> FileSummary {
    let mut scratch = Report::default();
    rules::check_file(src, config, &mut scratch);
    let unwrap_count = scratch.unwrap_counts.values().sum();
    let items = if src.kind == TargetKind::Lib {
        items::parse_items(src)
    } else {
        FileItems::default()
    };
    let sources = taint::detect_sources(src, &items.fns);
    let fns = items
        .fns
        .iter()
        .enumerate()
        .map(|(i, f)| FnSummary {
            name: f.name.clone(),
            def_line: f.def_line,
            is_pub: f.is_pub,
            in_test: f.in_test,
            d4_allowed: src.is_allowed(f.def_line, Rule::D4.id()),
            calls: f.calls.clone(),
            sources: sources
                .iter()
                .filter(|(idx, _)| *idx == i)
                .map(|(_, s)| s.clone())
                .collect(),
        })
        .collect();
    FileSummary {
        path: src.path.clone(),
        crate_name: src.crate_name.clone(),
        kind: src.kind,
        violations: scratch.violations,
        unwrap_count,
        fns,
        uses: items.uses,
    }
}

/// Runs the global phases (C1 budgets, D4 taint) over per-file
/// summaries and assembles the sorted report. `summaries` must be
/// path-sorted for deterministic chain rendering.
pub fn finalize(summaries: &[FileSummary], config: &Config) -> Report {
    let mut report = Report {
        files_scanned: summaries.len(),
        ..Report::default()
    };
    for s in summaries {
        report.violations.extend(s.violations.iter().cloned());
        *report
            .unwrap_counts
            .entry(s.crate_name.clone())
            .or_insert(0) += s.unwrap_count;
    }
    rules::check_unwrap_budgets(summaries, config, &mut report);
    taint::check_taint(summaries, &config.crate_deps, &mut report);
    report.violations.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
    });
    report
}

/// Lints pre-parsed sources (the in-memory entry point self-tests use).
pub fn lint_sources(sources: &[SourceFile], config: &Config) -> Report {
    let mut summaries: Vec<FileSummary> = sources.iter().map(|s| analyze_file(s, config)).collect();
    summaries.sort_by(|a, b| a.path.cmp(&b.path));
    finalize(&summaries, config)
}

/// Lints every workspace source under `root` with `config`.
///
/// Reads the crate dependency graph from the workspace `Cargo.toml`s
/// when `config.crate_deps` is empty, and (with `use_cache`) reuses
/// per-file summaries from `target/` for unchanged files.
///
/// # Errors
///
/// Returns an error when the tree cannot be walked or a file cannot be
/// read. Cache read/write failures are non-fatal (cold run).
pub fn lint_workspace_cached(
    root: &Path,
    config: &Config,
    use_cache: bool,
) -> std::io::Result<Report> {
    let mut config = config.clone();
    if config.crate_deps.is_empty() {
        config.crate_deps = parse_crate_deps(root);
    }
    let mut paths = collect_workspace_sources(root)?;
    paths.sort();
    let cached = if use_cache {
        load_cache(root, &config)
    } else {
        BTreeMap::new()
    };
    let mut summaries = Vec::with_capacity(paths.len());
    let mut entries = Vec::with_capacity(paths.len());
    for path in paths {
        let abs = root.join(&path);
        let stamp = cache::file_stamp(&abs)?;
        if let Some((entry_stamp, summary)) = cached.get(&path) {
            if cache::stamp_fresh(entry_stamp, &stamp, &abs)? {
                entries.push((path, entry_stamp.clone(), summary.clone()));
                summaries.push(summary.clone());
                continue;
            }
        }
        let text = std::fs::read_to_string(&abs)?;
        let stamp = cache::full_stamp(stamp, &text);
        let summary = analyze_file(&SourceFile::parse(path.clone(), &text), &config);
        entries.push((path, stamp, summary.clone()));
        summaries.push(summary);
    }
    if use_cache {
        // Best-effort: a read-only target/ just means cold runs.
        let _ = store_cache(root, &config, &entries);
    }
    Ok(finalize(&summaries, &config))
}

/// Lints every workspace source under `root` with `config` (no cache).
///
/// # Errors
///
/// Returns an error when the tree cannot be walked or a file cannot be
/// read.
pub fn lint_workspace(root: &Path, config: &Config) -> std::io::Result<Report> {
    lint_workspace_cached(root, config, false)
}
