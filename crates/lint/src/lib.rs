//! `magellan-lint` — the workspace's determinism and invariant
//! static-analysis gate.
//!
//! Magellan's findings (non-power-law degree mix, ISP clustering,
//! reciprocity) must *emerge* from simulated protocol dynamics, so any
//! hidden nondeterminism — unseeded RNG, hash-order iteration,
//! wall-clock reads — silently corrupts reproduced figures the same
//! way measurement artifacts distorted early crawler studies. This
//! crate is a fast, dependency-light (no `syn`) pass over every
//! workspace `.rs` file that enforces the policy *before* code lands:
//!
//! | Rule | Scope | What it catches |
//! |------|-------|-----------------|
//! | `D1` | sim crates (`overlay`, `netsim`, `workload`) | `HashMap`/`HashSet` use — iteration order is seed-hostile; use `BTreeMap`/`BTreeSet` or sort |
//! | `D2` | all lib crates | `thread_rng`, `rand::rng()`, `SystemTime::now`, `Instant::now` — ambient entropy / wall clock in simulation code |
//! | `D3` | sim + metric crates | raw `thread::spawn` outside `magellan-par` |
//! | `D4` | entry crates (`overlay`, `netsim`, `workload`, `graph`, `analysis`) | public entry point that *transitively* reaches a nondeterminism source through the workspace call graph |
//! | `P1` | sim + metric crates | locks, channels, non-SeqCst atomic orderings outside `magellan-par` |
//! | `P2` | hot-path crates (`overlay`, `netsim`, `workload`, `graph`, `analysis`) | lock/channel machinery *transitively reachable from a hot entry point* — fires even when the site's P1 finding was `lint:allow`ed |
//! | `L1` | all lib crates | cycle in the static lock-acquisition-order graph: some path acquires class `B` while holding `A` (directly or through the call graph) and another acquires `A` while holding `B` — a potential deadlock, reported with both full chains |
//! | `S1` | all lib crates | unsound surface at the `magellan-par` pool boundary: manual `unsafe impl Send`/`Sync`, interior mutability in a dispatching function, or a lock guard held across a pool call |
//! | `C1` | all lib crates | `unwrap()` / `expect(` in non-test library code beyond the per-crate budget |
//! | `C2` | metric crates (`graph`, `analysis`) | float `==` / `!=` comparisons |
//! | `C3` | metric crates (`graph`, `analysis`) | lossy `as` casts: narrow widths (`u8`/`u16`/`i8`/`i16`/`f32`) and `len() as u32`-style truncations |
//! | `C4` | metric crates (`graph`, `analysis`) | unchecked `+`/`*` arithmetic inside index brackets — debug overflow panics where release wraps |
//! | `H1` | every workspace crate | missing `#![forbid(unsafe_code)]` / `#![deny(missing_docs)]` crate header (`magellan-par` may `deny` unsafe instead — its pool opts one audited module back in) |
//! | `H2` | hot-path crates | heap allocation (collect/clone/to_vec/format!/`Box::new`, or a constructor in a loop) reachable from a hot entry point, beyond the per-crate budget |
//! | `H3` | hot-path crates | whole-collection iteration (map/set `.iter()`/`.keys()`/`.values()`/`.retain()`, `0..len()` range scans) reachable from a hot entry point |
//! | `U1` | all lib crates | `unsafe` block/impl/fn without a structured `// SAFETY:` contract (or `# Safety` doc section), or a crate over its audited per-crate unsafe-site budget |
//! | `M1` | everywhere | malformed `lint:allow` (missing rule id or justification) |
//!
//! The line-local rules run per file; `D4` and `H2`/`H3`/`P2` are the
//! semantic passes — they parse `fn` items, `use` imports, and call
//! sites out of every file ([`items`]), link them into a workspace
//! call graph ([`reach`]), and propagate reachability: `D4` walks
//! *backwards* from nondeterminism sources to public entry points
//! ([`taint`]); the hot-path cost pass walks *forward* from `lint:hot`
//! entry points (plus a built-in registry) to allocation, scan, and
//! lock sinks ([`hotpath`]). Both print the full call chain in the
//! violation.
//!
//! Any finding can be waived *with a written justification* by
//! annotating the offending line (or the line above it):
//!
//! ```text
//! let order = peers.keys().collect(); // lint:allow(D1): keys are sorted two lines below
//! ```
//!
//! String literals and comments are stripped before rules run, so
//! mentioning `thread_rng` in a doc comment is fine; the allow
//! annotations themselves are read from the raw comment text.
//!
//! Reports render as human text, `--format json` (stable,
//! byte-reproducible schema `magellan-lint-report/1`), or `--format
//! sarif` (SARIF 2.1.0, loadable by GitHub code scanning); a
//! checked-in baseline file can grandfather known findings, and an
//! mtime+hash cache under `target/` keeps warm runs fast.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};

mod cache;
mod concurrency;
mod hotpath;
mod items;
mod output;
mod reach;
mod rules;
mod source;
mod taint;
mod walk;

pub use cache::{atomic_write, load_cache, store_cache, FileStamp, CACHE_FILE};
pub use items::{parse_items, CallSite, FileItems, FnItem, UseImport};
pub use output::{
    load_baseline, render_human, render_json, render_sarif, violation_fingerprint, Baseline,
    BASELINE_FILE,
};
pub use reach::{CallGraph, Direction, FnKey};
pub use rules::{
    default_hot_alloc_budgets, default_unsafe_budgets, default_unwrap_budgets, Rule, RULES,
    RULES_VERSION,
};
pub use source::{SourceFile, TargetKind};
pub use walk::{collect_workspace_sources, find_workspace_root, parse_crate_deps};

/// One finding: a rule violated at a specific file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Path relative to the workspace root.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable description of this occurrence.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} {}",
            self.file.display(),
            self.line,
            self.rule.id(),
            self.message
        )
    }
}

/// Lint configuration: scopes and budgets.
#[derive(Debug, Clone)]
pub struct Config {
    /// Per-crate `unwrap()`/`expect(` budgets for rule C1. Crates not
    /// listed have budget 0.
    pub unwrap_budgets: BTreeMap<String, usize>,
    /// Per-crate budgets for hot-path allocation sinks (rule H2).
    /// Crates not listed have budget 0.
    pub hot_alloc_budgets: BTreeMap<String, usize>,
    /// Per-crate budgets for audited `unsafe` sites (rule U1). Crates
    /// not listed have budget 0.
    pub unsafe_budgets: BTreeMap<String, usize>,
    /// Workspace crate dependency edges (`crate -> deps`), used to
    /// gate call resolution in the semantic passes (D4, H2/H3/P2).
    /// When empty (in-memory runs), calls resolve across every crate
    /// pair — a fully connected fallback.
    pub crate_deps: BTreeMap<String, BTreeSet<String>>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            unwrap_budgets: rules::default_unwrap_budgets(),
            hot_alloc_budgets: rules::default_hot_alloc_budgets(),
            unsafe_budgets: rules::default_unsafe_budgets(),
            crate_deps: BTreeMap::new(),
        }
    }
}

/// What kind of nondeterminism a taint source introduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TaintKind {
    /// Wall-clock reads (`SystemTime::now`, `Instant::now`).
    Clock,
    /// Ambient OS entropy (`thread_rng`, `from_entropy`, …).
    Entropy,
    /// Raw thread spawns (scheduler-dependent interleaving).
    Spawn,
    /// Iteration over hash-ordered collections.
    HashOrder,
}

impl TaintKind {
    /// Stable identifier used in the cache serialization.
    pub fn id(self) -> &'static str {
        match self {
            TaintKind::Clock => "clock",
            TaintKind::Entropy => "entropy",
            TaintKind::Spawn => "spawn",
            TaintKind::HashOrder => "hash",
        }
    }

    /// Inverse of [`TaintKind::id`].
    pub fn from_id(s: &str) -> Option<Self> {
        match s {
            "clock" => Some(TaintKind::Clock),
            "entropy" => Some(TaintKind::Entropy),
            "spawn" => Some(TaintKind::Spawn),
            "hash" => Some(TaintKind::HashOrder),
            _ => None,
        }
    }
}

/// One nondeterminism source seeded inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaintSource {
    /// 1-based line of the source.
    pub line: usize,
    /// Source category.
    pub kind: TaintKind,
    /// Human description (`"wall-clock read `Instant::now`"`).
    pub what: String,
}

/// What kind of hot-path cost a sink incurs (rules H2/H3/P2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CostKind {
    /// Heap allocation (rule H2).
    Alloc,
    /// Whole-collection iteration / range scan (rule H3).
    Scan,
    /// Lock acquisition or channel machinery (rule P2).
    Lock,
}

impl CostKind {
    /// Stable identifier used in the cache serialization.
    pub fn id(self) -> &'static str {
        match self {
            CostKind::Alloc => "alloc",
            CostKind::Scan => "scan",
            CostKind::Lock => "lock",
        }
    }

    /// Inverse of [`CostKind::id`].
    pub fn from_id(s: &str) -> Option<Self> {
        match s {
            "alloc" => Some(CostKind::Alloc),
            "scan" => Some(CostKind::Scan),
            "lock" => Some(CostKind::Lock),
            _ => None,
        }
    }

    /// The rule that reports this sink kind.
    pub fn rule(self) -> Rule {
        match self {
            CostKind::Alloc => Rule::H2,
            CostKind::Scan => Rule::H3,
            CostKind::Lock => Rule::P2,
        }
    }
}

/// One hot-path cost sink inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostSink {
    /// 1-based line of the sink.
    pub line: usize,
    /// Cost category.
    pub kind: CostKind,
    /// Human description (`"`.collect()` materializes a fresh collection"`).
    pub what: String,
}

/// One lock acquisition inside a function body (rules L1/S1 input).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockAcquire {
    /// 1-based acquisition line.
    pub line: usize,
    /// Lock class: the receiver's final identifier
    /// (`self.inner.lock()` → `inner`), deliberately unqualified so
    /// same-named locks conflate across crates (a conservative
    /// over-approximation).
    pub class: String,
    /// Last 1-based line (inclusive) on which the guard is held: the
    /// end of the enclosing block for a `let`-bound guard (or an
    /// explicit `drop`), the acquisition line for a temporary.
    pub until: usize,
    /// Whether the acquisition line carries a `lint:allow(L1): <why>`
    /// annotation (drops it from the lock-order graph).
    pub l1_allowed: bool,
}

/// Per-function analysis product: everything rule D4 needs, detached
/// from the source text so it can be cached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnSummary {
    /// Bare function name (call-graph node key within its crate).
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub def_line: usize,
    /// Whether the definition carries a visibility qualifier.
    pub is_pub: bool,
    /// Whether the definition sits inside a `#[cfg(test)]` module.
    pub in_test: bool,
    /// Whether the `fn` line carries a `lint:allow(D4): <why>`
    /// annotation (waives this entry point).
    pub d4_allowed: bool,
    /// Whether the `fn` line (or the line above) carries a `lint:hot`
    /// marker declaring a hot entry point.
    pub hot_marked: bool,
    /// Whether the `fn` line carries a `lint:allow(H2): <why>`
    /// annotation — exempts every allocation sink in this body (and,
    /// on a hot entry, waives its subtree).
    pub h2_allowed: bool,
    /// Whether the `fn` line carries a `lint:allow(H3): <why>`
    /// annotation (scan analogue of `h2_allowed`).
    pub h3_allowed: bool,
    /// Whether the `fn` line carries a `lint:allow(P2): <why>`
    /// annotation (lock analogue of `h2_allowed`).
    pub p2_allowed: bool,
    /// Call sites inside the body.
    pub calls: Vec<CallSite>,
    /// Nondeterminism sources inside the body.
    pub sources: Vec<TaintSource>,
    /// Hot-path cost sinks inside the body.
    pub sinks: Vec<CostSink>,
    /// Lock acquisitions inside the body (rules L1/S1 input).
    pub locks: Vec<LockAcquire>,
}

/// Per-file analysis product: line-local violations plus the call
/// graph fragment. The cache stores these; the global phases (C1
/// budgets, D4 taint) always recompute from them.
#[derive(Debug, Clone)]
pub struct FileSummary {
    /// Path relative to the workspace root.
    pub path: PathBuf,
    /// Owning crate.
    pub crate_name: String,
    /// Library code vs test-like target.
    pub kind: TargetKind,
    /// Line-local violations (already `lint:allow`-filtered).
    pub violations: Vec<Violation>,
    /// Non-test, non-allowed `unwrap()`/`expect(` count (C1 input).
    pub unwrap_count: usize,
    /// Non-test, non-allowed `unsafe` site count (U1 budget input).
    pub unsafe_count: usize,
    /// Function definitions with calls and taint sources.
    pub fns: Vec<FnSummary>,
    /// `use` imports (D4 call resolution input).
    pub uses: Vec<UseImport>,
}

/// Outcome of a whole-workspace lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// All violations found, in path order.
    pub violations: Vec<Violation>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Per-crate non-test `unwrap()`/`expect(` counts (rule C1 input).
    pub unwrap_counts: BTreeMap<String, usize>,
    /// Findings suppressed by the baseline file (not in `violations`).
    pub suppressed_baseline: usize,
}

impl Report {
    /// Whether the run found no violations.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs every line-local rule and the item/taint-source extraction
/// over one file. Pure per-file work — this is the unit the cache
/// stores.
pub fn analyze_file(src: &SourceFile, config: &Config) -> FileSummary {
    let mut scratch = Report::default();
    rules::check_file(src, config, &mut scratch);
    let unwrap_count = scratch.unwrap_counts.values().sum();
    let items = if src.kind == TargetKind::Lib {
        items::parse_items(src)
    } else {
        FileItems::default()
    };
    let sources = taint::detect_sources(src, &items.fns);
    let sinks = hotpath::detect_sinks(src, &items.fns);
    let locks = concurrency::detect_locks(src, &items.fns);
    let unsafe_count = if src.kind == TargetKind::Lib {
        let n = concurrency::check_unsafe_contracts(src, &mut scratch);
        concurrency::check_pool_boundary(src, &items.fns, &items.uses, &locks, &mut scratch);
        n
    } else {
        0
    };
    let fns = items
        .fns
        .iter()
        .enumerate()
        .map(|(i, f)| FnSummary {
            name: f.name.clone(),
            def_line: f.def_line,
            is_pub: f.is_pub,
            in_test: f.in_test,
            d4_allowed: src.is_allowed(f.def_line, Rule::D4.id()),
            hot_marked: src.is_hot_marked(f.def_line),
            h2_allowed: src.is_allowed(f.def_line, Rule::H2.id()),
            h3_allowed: src.is_allowed(f.def_line, Rule::H3.id()),
            p2_allowed: src.is_allowed(f.def_line, Rule::P2.id()),
            calls: f.calls.clone(),
            sources: sources
                .iter()
                .filter(|(idx, _)| *idx == i)
                .map(|(_, s)| s.clone())
                .collect(),
            sinks: sinks
                .iter()
                .filter(|(idx, _)| *idx == i)
                .map(|(_, s)| s.clone())
                .collect(),
            locks: locks
                .iter()
                .filter(|(idx, _)| *idx == i)
                .map(|(_, l)| l.clone())
                .collect(),
        })
        .collect();
    FileSummary {
        path: src.path.clone(),
        crate_name: src.crate_name.clone(),
        kind: src.kind,
        violations: scratch.violations,
        unwrap_count,
        unsafe_count,
        fns,
        uses: items.uses,
    }
}

/// Runs the global phases (C1/U1 budgets, D4 taint, H2/H3/P2 hot-path
/// cost, L1 lock order) over per-file summaries and assembles the
/// sorted report.
/// `summaries` must be path-sorted for deterministic chain rendering.
pub fn finalize(summaries: &[FileSummary], config: &Config) -> Report {
    let mut report = Report {
        files_scanned: summaries.len(),
        ..Report::default()
    };
    for s in summaries {
        report.violations.extend(s.violations.iter().cloned());
        *report
            .unwrap_counts
            .entry(s.crate_name.clone())
            .or_insert(0) += s.unwrap_count;
    }
    rules::check_unwrap_budgets(summaries, config, &mut report);
    concurrency::check_unsafe_budgets(summaries, config, &mut report);
    let graph = CallGraph::build(summaries, &config.crate_deps);
    taint::check_taint(&graph, summaries, &mut report);
    hotpath::check_hot_paths(&graph, summaries, config, &mut report);
    concurrency::check_lock_order(&graph, summaries, &mut report);
    report.violations.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
    });
    report
}

/// Lints pre-parsed sources (the in-memory entry point self-tests use).
pub fn lint_sources(sources: &[SourceFile], config: &Config) -> Report {
    let mut summaries: Vec<FileSummary> = sources.iter().map(|s| analyze_file(s, config)).collect();
    summaries.sort_by(|a, b| a.path.cmp(&b.path));
    finalize(&summaries, config)
}

/// Lints every workspace source under `root` with `config`.
///
/// Reads the crate dependency graph from the workspace `Cargo.toml`s
/// when `config.crate_deps` is empty, and (with `use_cache`) reuses
/// per-file summaries from `target/` for unchanged files.
///
/// # Errors
///
/// Returns an error when the tree cannot be walked or a file cannot be
/// read. Cache read/write failures are non-fatal (cold run).
pub fn lint_workspace_cached(
    root: &Path,
    config: &Config,
    use_cache: bool,
) -> std::io::Result<Report> {
    let mut config = config.clone();
    if config.crate_deps.is_empty() {
        config.crate_deps = parse_crate_deps(root);
    }
    let mut paths = collect_workspace_sources(root)?;
    paths.sort();
    let cached = if use_cache {
        load_cache(root, &config)
    } else {
        BTreeMap::new()
    };
    let mut summaries = Vec::with_capacity(paths.len());
    let mut entries = Vec::with_capacity(paths.len());
    for path in paths {
        let abs = root.join(&path);
        let stamp = cache::file_stamp(&abs)?;
        if let Some((entry_stamp, summary)) = cached.get(&path) {
            if cache::stamp_fresh(entry_stamp, &stamp, &abs)? {
                entries.push((path, entry_stamp.clone(), summary.clone()));
                summaries.push(summary.clone());
                continue;
            }
        }
        let text = std::fs::read_to_string(&abs)?;
        let stamp = cache::full_stamp(stamp, &text);
        let summary = analyze_file(&SourceFile::parse(path.clone(), &text), &config);
        entries.push((path, stamp, summary.clone()));
        summaries.push(summary);
    }
    if use_cache {
        // Best-effort: a read-only target/ just means cold runs.
        let _ = store_cache(root, &config, &entries);
    }
    Ok(finalize(&summaries, &config))
}

/// Lints every workspace source under `root` with `config` (no cache).
///
/// # Errors
///
/// Returns an error when the tree cannot be walked or a file cannot be
/// read.
pub fn lint_workspace(root: &Path, config: &Config) -> std::io::Result<Report> {
    lint_workspace_cached(root, config, false)
}
