//! The concurrency-soundness pass: rules L1, U1, and S1.
//!
//! P1/P2 can say that a lock *exists* (and what it costs on a hot
//! path); this module asks whether the locking is *sound* before the
//! trace layer grows sharded ingestion locks and the workspace carries
//! more `unsafe` code:
//!
//! * **L1 — lock-order cycles.** [`detect_locks`] resolves lock/guard
//!   creation sites per function: every `.lock()` call (plus `.read()`/
//!   `.write()` on receivers whose declaration names `RwLock`) becomes
//!   an acquisition of a *lock class* — the receiver's final
//!   identifier (`self.inner.lock()` → class `inner`). A `let`-bound
//!   guard is held from its acquisition to the end of the enclosing
//!   block (or an explicit `drop(guard)`); a temporary is held for its
//!   line. [`check_lock_order`] then builds a directed graph over lock
//!   classes: an edge `A -> B` means some path acquires `B` while a
//!   guard of `A` is held — either directly in one body, or through
//!   the workspace call graph (a call inside `A`'s held region to a
//!   function that can transitively reach an acquisition of `B`). Any
//!   cycle (including a self-loop: re-reaching a class while holding
//!   it, which self-deadlocks on a non-reentrant mutex) is a potential
//!   deadlock, reported once with every edge's full chain. Classes are
//!   receiver identifiers, deliberately unqualified: same-named locks
//!   in different crates conservatively conflate (a shared lock
//!   reached through another crate's API *is* the same class), and a
//!   false conflation is waived at the acquisition site with
//!   `lint:allow(L1): <why>`.
//!
//! * **U1 — unsafe contracts.** Every `unsafe` block, `unsafe impl`,
//!   and `unsafe fn` in non-test library code must carry a structured
//!   safety contract: a `// SAFETY: <invariant>` comment on the site
//!   or in the contiguous comment block above it (an `unsafe fn` may
//!   use a `# Safety` doc section instead). Empty contracts are
//!   rejected exactly like empty `lint:allow` justifications. On top
//!   of the per-site rule, each crate has an audited unsafe-site
//!   *budget* (C1-style ratchet, default 0; `magellan-par`'s pool is
//!   the one audited exception) so new unsafe is a conscious decision.
//!
//! * **S1 — pool-boundary audit.** Arguments captured by
//!   `magellan-par`'s lifetime-erased job boxes must be honestly
//!   `Send`: manual `unsafe impl Send`/`Sync` declarations are flagged
//!   anywhere, interior-mutability types (`Cell`, `RefCell`,
//!   `UnsafeCell`) are flagged in functions that dispatch to the pool,
//!   and a lock guard held across a pool call is flagged as a
//!   panic-safety hazard (a panicking chunk unwinds under the guard).
//!
//! Everything here is an over-approximation by design — name-based,
//! flow-insensitive, resolved through the same call graph as D4 — and
//! every finding is waivable with a written justification.

use crate::items::{CallSite, FnItem, UseImport};
use crate::reach::{render_hop, CallGraph, Direction, FnKey};
use crate::rules::contains_ident;
use crate::source::{justified, SourceFile};
use crate::taint::{enclosing_fn, typed_names};
use crate::{Config, FileSummary, LockAcquire, Report, Rule, Violation};
use std::collections::{BTreeMap, BTreeSet};

/// Pool-boundary dispatch names unique enough to match anywhere.
/// `join` is deliberately absent — the name is too common
/// (`JoinHandle::join`, `Path::join`, `[str]::join`) — and only
/// matches when resolved through a `magellan_par` import or path.
const POOL_DISPATCH: [&str; 4] = [
    "par_map_collect",
    "par_map_collect_grained",
    "run_chunks",
    "run_pair",
];

/// Receivers whose `.lock()` is a std stream handle, not a mutex.
const STREAM_RECEIVERS: [&str; 3] = ["stdout", "stderr", "stdin"];

/// Finds every lock acquisition in `src`, attributed to the enclosing
/// function: `(fn index, acquisition)` pairs in line order.
pub fn detect_locks(src: &SourceFile, fns: &[FnItem]) -> Vec<(usize, LockAcquire)> {
    let rw_names = typed_names(src, &["RwLock"]);
    let mut out = Vec::new();
    for (idx, line) in src.code.iter().enumerate() {
        if src.in_test_module[idx] {
            continue;
        }
        let lineno = idx + 1;
        let Some(fn_idx) = enclosing_fn(fns, lineno) else {
            continue;
        };
        for pat in [".lock()", ".read()", ".write()"] {
            let mut from = 0usize;
            while let Some(pos) = line[from..].find(pat) {
                let at = from + pos;
                from = at + pat.len();
                let Some(class) = receiver_ident(line, at) else {
                    continue;
                };
                if STREAM_RECEIVERS.contains(&class.as_str()) {
                    continue;
                }
                // `.read()`/`.write()` only count on declared RwLocks;
                // `.lock()` is unambiguous.
                if pat != ".lock()" && !rw_names.contains(&class) {
                    continue;
                }
                out.push((
                    fn_idx,
                    LockAcquire {
                        line: lineno,
                        class,
                        until: held_until(src, fns, fn_idx, idx, line),
                        l1_allowed: src.is_allowed(lineno, Rule::L1.id()),
                    },
                ));
            }
        }
    }
    out
}

/// The final identifier of the receiver path ending at byte `at` (the
/// `.` of `.lock()`): `self.inner.lock()` → `inner`. `None` when the
/// receiver is not a plain path tail (a call or index result), whose
/// guard is an unnameable temporary.
fn receiver_ident(line: &str, at: usize) -> Option<String> {
    let head: Vec<char> = line[..at]
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    let ident: String = head.into_iter().rev().collect();
    if ident.is_empty() || ident.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        None
    } else {
        Some(ident)
    }
}

/// The last line (1-based, inclusive) on which the guard acquired at
/// 0-based line `idx` is still held. A `let`-bound guard lives to the
/// end of its enclosing block, an explicit `drop(<guard>)`, or the
/// function body end, whichever comes first; anything else is a
/// statement temporary held for its own line.
fn held_until(src: &SourceFile, fns: &[FnItem], fn_idx: usize, idx: usize, line: &str) -> usize {
    let trimmed = line.trim_start();
    let Some(rest) = trimmed.strip_prefix("let ") else {
        return idx + 1;
    };
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let guard: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    let body_end = fns[fn_idx].body_end;
    // Brace-depth walk from the acquisition statement: the guard dies
    // when its block closes (depth sinks below the statement level).
    let mut depth: i64 = 0;
    for b in line.bytes() {
        match b {
            b'{' => depth += 1,
            b'}' => depth -= 1,
            _ => {}
        }
    }
    if depth < 0 {
        return idx + 1;
    }
    for (j, later) in src.code.iter().enumerate().skip(idx + 1) {
        let lineno = j + 1;
        if lineno > body_end {
            return body_end;
        }
        if !guard.is_empty() && later.contains("drop(") && contains_ident(later, &guard) {
            return lineno;
        }
        for b in later.bytes() {
            match b {
                b'{' => depth += 1,
                b'}' => depth -= 1,
                _ => {}
            }
            if depth < 0 {
                return lineno;
            }
        }
    }
    body_end
}

/// U1 per-site pass: every `unsafe` site needs a written contract.
/// Returns the number of non-test, non-allowed unsafe sites (the
/// crate-budget input).
pub fn check_unsafe_contracts(src: &SourceFile, report: &mut Report) -> usize {
    let mut count = 0usize;
    for (idx, line) in src.code.iter().enumerate() {
        if src.in_test_module[idx] || !contains_ident(line, "unsafe") {
            continue;
        }
        let lineno = idx + 1;
        if src.is_allowed(lineno, Rule::U1.id()) {
            continue;
        }
        count += 1;
        let is_fn = line.contains("unsafe fn");
        let what = if line.contains("unsafe impl") {
            "`unsafe impl`"
        } else if is_fn {
            "`unsafe fn`"
        } else {
            "`unsafe` block"
        };
        match safety_contract(src, idx, is_fn) {
            Contract::Named => {}
            Contract::Empty => report.violations.push(Violation {
                file: src.path.clone(),
                line: lineno,
                rule: Rule::U1,
                message: format!(
                    "{what} has an empty SAFETY: contract — name the invariant the \
                     unsafe code relies on (an empty contract is a suppressed \
                     obligation, not an audit)"
                ),
            }),
            Contract::Missing => report.violations.push(Violation {
                file: src.path.clone(),
                line: lineno,
                rule: Rule::U1,
                message: format!(
                    "{what} without a safety contract — write `// SAFETY: <invariant>` \
                     on or directly above the site{}",
                    if is_fn {
                        " (or a `# Safety` doc section)"
                    } else {
                        ""
                    }
                ),
            }),
        }
    }
    count
}

/// Outcome of looking for a safety contract on an unsafe site.
enum Contract {
    /// A contract naming a non-empty invariant.
    Named,
    /// A `SAFETY:` marker with no invariant after it.
    Empty,
    /// No contract at all.
    Missing,
}

/// Looks for a `SAFETY:` contract on 0-based line `idx` or in the
/// contiguous comment/attribute block directly above it; `unsafe fn`
/// sites may carry a `# Safety` doc section instead.
fn safety_contract(src: &SourceFile, idx: usize, is_fn: bool) -> Contract {
    let mut best = Contract::Missing;
    let mut consider = |comment: &str| {
        if let Some(pos) = comment.find("SAFETY:") {
            if justified(&comment[pos + "SAFETY:".len()..]) {
                best = Contract::Named;
            } else if matches!(best, Contract::Missing) {
                best = Contract::Empty;
            }
        }
        if is_fn && comment.contains("# Safety") {
            best = Contract::Named;
        }
    };
    if let Some(comment) = src.comments.get(idx) {
        consider(comment);
    }
    let mut above = idx;
    while above > 0 {
        above -= 1;
        let raw = src.raw.get(above).map(|l| l.trim_start()).unwrap_or("");
        // The contract may sit anywhere in the contiguous run of
        // comment-only (or attribute) lines directly above the site.
        if !(raw.starts_with("//") || raw.starts_with("#[")) {
            break;
        }
        if let Some(comment) = src.comments.get(above) {
            consider(comment);
        }
    }
    best
}

/// S1 per-file pass: manual `Send`/`Sync` impls, interior mutability
/// near the pool boundary, and guards held across pool dispatch.
pub fn check_pool_boundary(
    src: &SourceFile,
    fns: &[FnItem],
    uses: &[UseImport],
    locks: &[(usize, LockAcquire)],
    report: &mut Report,
) {
    // (a) Manual Send/Sync impls: the compiler can no longer prove the
    // type is safe to move across the pool boundary — a human claims it.
    for (idx, line) in src.code.iter().enumerate() {
        if src.in_test_module[idx] || !line.contains("unsafe impl") {
            continue;
        }
        for marker in ["Send", "Sync"] {
            if contains_ident(line, marker) && line.contains(" for ") {
                push_s1(
                    report,
                    src,
                    idx + 1,
                    format!(
                        "manual `unsafe impl {marker}` — the compiler no longer checks \
                         what crosses the magellan-par pool boundary; derive the bound \
                         structurally or justify the invariant with lint:allow(S1)"
                    ),
                );
            }
        }
    }

    let par_imports_join = uses
        .iter()
        .any(|u| u.name == "join" && u.path.first().is_some_and(|p| p == "magellan_par"));
    for (fn_idx, f) in fns.iter().enumerate() {
        if f.in_test {
            continue;
        }
        let pool_sites: Vec<(usize, &str)> = f
            .calls
            .iter()
            .filter_map(|c| pool_call(c, par_imports_join).map(|n| (c.line, n)))
            .collect();
        if pool_sites.is_empty() {
            continue;
        }
        // (b) Interior mutability in a dispatching function: the chunk
        // closures would share unsynchronized mutable state.
        for lineno in f.body_start..=f.body_end {
            let Some(line) = src.code.get(lineno - 1) else {
                continue;
            };
            if src.in_test_module[lineno - 1] {
                continue;
            }
            for cell in ["RefCell", "UnsafeCell", "Cell"] {
                if contains_ident(line, cell) {
                    push_s1(
                        report,
                        src,
                        lineno,
                        format!(
                            "interior-mutability type `{cell}` in `{}`, which dispatches \
                             to the magellan-par pool — chunk closures must not share \
                             unsynchronized mutable state; pass owned per-chunk values \
                             or justify with lint:allow(S1)",
                            f.name
                        ),
                    );
                }
            }
        }
        // (c) A guard held across the dispatch: a panicking chunk
        // unwinds under the held lock.
        for (lock_fn, acq) in locks {
            if *lock_fn != fn_idx {
                continue;
            }
            for (call_line, call_name) in &pool_sites {
                if acq.line < *call_line && *call_line <= acq.until {
                    push_s1(
                        report,
                        src,
                        *call_line,
                        format!(
                            "lock guard of `{}` (taken at {}:{}) is held across pool \
                             call `{call_name}` — a panicking chunk unwinds under the \
                             guard (poison/deadlock hazard); drop the guard before \
                             dispatching or justify with lint:allow(S1)",
                            acq.class,
                            src.path.display(),
                            acq.line
                        ),
                    );
                }
            }
        }
    }
}

/// Whether a call site dispatches work to the `magellan-par` pool,
/// returning the dispatch name.
fn pool_call(call: &CallSite, par_imports_join: bool) -> Option<&str> {
    let name = call.path.last()?;
    if POOL_DISPATCH.contains(&name.as_str()) {
        return Some(name);
    }
    if name != "join" {
        return None;
    }
    let qualified = call.path.len() > 1
        && call
            .path
            .first()
            .is_some_and(|p| p == "magellan_par" || p == "pool");
    let bare_imported = !call.method && call.path.len() == 1 && par_imports_join;
    (qualified || bare_imported).then_some("join")
}

fn push_s1(report: &mut Report, src: &SourceFile, line: usize, message: String) {
    if src.is_allowed(line, Rule::S1.id()) {
        return;
    }
    report.violations.push(Violation {
        file: src.path.clone(),
        line,
        rule: Rule::S1,
        message,
    });
}

/// U1 budget phase: per-crate unsafe-site counts against the audited
/// ratchet, anchored at the first file in the crate holding a site.
pub fn check_unsafe_budgets(summaries: &[FileSummary], config: &Config, report: &mut Report) {
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for s in summaries {
        *counts.entry(s.crate_name.as_str()).or_insert(0) += s.unsafe_count;
    }
    for (crate_name, count) in counts {
        let budget = config.unsafe_budgets.get(crate_name).copied().unwrap_or(0);
        if count <= budget {
            continue;
        }
        let anchor = summaries
            .iter()
            .find(|s| s.crate_name == crate_name && s.unsafe_count > 0)
            .map(|s| s.path.clone())
            .unwrap_or_else(|| std::path::PathBuf::from(crate_name));
        report.violations.push(Violation {
            file: anchor,
            line: 1,
            rule: Rule::U1,
            message: format!(
                "{crate_name} has {count} unsafe site(s) in non-test library code, over \
                 its audited budget of {budget} — the workspace is safe Rust by \
                 construction; remove the site or consciously raise \
                 default_unsafe_budgets after an audit"
            ),
        });
    }
}

/// One edge of the lock-order graph: how a guard of one class came to
/// be live while another class was acquired.
struct LockEdge<'a> {
    /// The function holding the guard.
    holder: &'a FnKey,
    /// File index of the holder definition.
    holder_file: usize,
    /// Acquisition line of the held guard.
    held_line: usize,
    /// For an intra-function edge, the line of the nested acquisition;
    /// for a cross-function edge, the call line leaving the holder.
    via_line: usize,
    /// For a cross-function edge, the callee whose subtree reaches the
    /// acquisition (`None` for intra-function edges).
    callee: Option<&'a FnKey>,
}

/// L1 phase: builds the lock-order graph over classes and reports
/// every cycle once, with the full chain of each edge on the cycle.
pub fn check_lock_order(graph: &CallGraph, files: &[FileSummary], report: &mut Report) {
    // Direct acquisitions per call-graph node, and the seed set per class.
    let mut direct: BTreeMap<&FnKey, Vec<(usize, usize, &LockAcquire)>> = BTreeMap::new();
    let mut class_seeds: BTreeMap<&str, Vec<&FnKey>> = BTreeMap::new();
    for (key, node) in &graph.nodes {
        for d in &node.defs {
            for acq in &files[d.file].fns[d.fun].locks {
                if acq.l1_allowed {
                    continue;
                }
                direct.entry(key).or_default().push((d.file, d.fun, acq));
                class_seeds.entry(acq.class.as_str()).or_default().push(key);
            }
        }
    }
    if class_seeds.is_empty() {
        return;
    }
    // Per class: which nodes can transitively reach an acquisition of it.
    let reachers: BTreeMap<&str, BTreeMap<&FnKey, (usize, Option<&FnKey>)>> = class_seeds
        .iter()
        .map(|(class, seeds)| (*class, graph.reach(seeds, Direction::Callers)))
        .collect();

    // Edges, keeping the first (deterministic) witness per class pair.
    let mut edges: BTreeMap<(&str, &str), LockEdge> = BTreeMap::new();
    for (key, acqs) in &direct {
        for &(file_idx, fun_idx, acq) in acqs {
            // Intra-function: a second class acquired inside the held
            // region of this guard (same definition only).
            for &(other_file, other_fun, other) in acqs {
                if other_file == file_idx
                    && other_fun == fun_idx
                    && acq.line < other.line
                    && other.line <= acq.until
                {
                    edges
                        .entry((acq.class.as_str(), other.class.as_str()))
                        .or_insert(LockEdge {
                            holder: key,
                            holder_file: file_idx,
                            held_line: acq.line,
                            via_line: other.line,
                            callee: None,
                        });
                }
            }
            // Cross-function: a call inside the held region whose
            // callee subtree reaches another class.
            let Some(node) = graph.nodes.get(*key) else {
                continue;
            };
            for call in &files[file_idx].fns[fun_idx].calls {
                if !(acq.line < call.line && call.line <= acq.until) {
                    continue;
                }
                let Some(call_name) = call.path.last() else {
                    continue;
                };
                for callee in node.callees.keys() {
                    if callee.1 != *call_name {
                        continue;
                    }
                    let Some((callee_key, _)) = graph.nodes.get_key_value(callee) else {
                        continue;
                    };
                    for (class, dist) in &reachers {
                        if !dist.contains_key(callee_key) {
                            continue;
                        }
                        edges
                            .entry((acq.class.as_str(), class))
                            .or_insert(LockEdge {
                                holder: key,
                                holder_file: file_idx,
                                held_line: acq.line,
                                via_line: call.line,
                                callee: Some(callee_key),
                            });
                    }
                }
            }
        }
    }

    // Cycle detection over the class graph: report each cycle once,
    // keyed by its lexicographically smallest class.
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (held, acquired) in edges.keys() {
        adj.entry(held).or_default().insert(acquired);
    }
    for start in adj.keys().copied().collect::<Vec<_>>() {
        let Some(cycle) = shortest_cycle(&adj, start) else {
            continue;
        };
        if cycle.iter().any(|c| *c < start) {
            continue; // reported from the cycle's smallest class
        }
        let mut parts = Vec::new();
        let mut anchor: Option<&LockEdge> = None;
        for pair in cycle.windows(2) {
            if let Some(edge) = edges.get(&(pair[0], pair[1])) {
                parts.push(render_edge(edge, pair[0], pair[1], graph, files));
                anchor.get_or_insert(edge);
            }
        }
        let Some(first) = anchor else { continue };
        let ring = cycle.iter().map(|c| format!("`{c}`")).collect::<Vec<_>>();
        report.violations.push(Violation {
            file: files[first.holder_file].path.clone(),
            line: first.held_line,
            rule: Rule::L1,
            message: format!(
                "potential deadlock: lock acquisition order cycle {}: {} — make every \
                 path take these lock classes in one order (narrow the first guard's \
                 scope before taking the second), or justify an acquisition site with \
                 lint:allow(L1)",
                ring.join(" -> "),
                parts.join("; meanwhile ")
            ),
        });
    }
}

/// The shortest cycle through `start`, as `[start, …, start]`
/// (consecutive elements are edges; a self-loop yields
/// `[start, start]`). `None` when no edge path returns to `start`.
fn shortest_cycle<'a>(
    adj: &BTreeMap<&'a str, BTreeSet<&'a str>>,
    start: &'a str,
) -> Option<Vec<&'a str>> {
    let mut parent: BTreeMap<&str, &str> = BTreeMap::new();
    let mut visited: BTreeSet<&str> = BTreeSet::new();
    visited.insert(start);
    let mut frontier: Vec<&str> = vec![start];
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for from in frontier {
            let Some(ns) = adj.get(from) else { continue };
            for n in ns {
                if *n == start {
                    // Close the ring: walk parents back up to start.
                    let mut rev = vec![from];
                    let mut cur = from;
                    while let Some(p) = parent.get(cur) {
                        rev.push(p);
                        cur = p;
                    }
                    rev.reverse();
                    rev.push(start);
                    return Some(rev);
                }
                if visited.insert(n) {
                    parent.insert(n, from);
                    next.push(*n);
                }
            }
        }
        frontier = next;
    }
    None
}

/// Renders one lock-order edge (`held` acquired first, `acquired`
/// taken under it) with its full chain.
fn render_edge(
    edge: &LockEdge,
    held: &str,
    acquired: &str,
    graph: &CallGraph,
    files: &[FileSummary],
) -> String {
    let file = files[edge.holder_file].path.display();
    let holder = &edge.holder.1;
    let Some(callee) = edge.callee else {
        return format!(
            "guard of `{held}` (taken at {file}:{}) is held in {holder}() while \
             `{acquired}` is acquired at {file}:{}",
            edge.held_line, edge.via_line
        );
    };
    // Chain from the callee down to the nearest acquisition of the
    // target class, via the Callers-direction parent pointers.
    let seeds: Vec<&FnKey> = graph
        .nodes
        .iter()
        .filter(|(_, node)| {
            node.defs.iter().any(|d| {
                files[d.file].fns[d.fun]
                    .locks
                    .iter()
                    .any(|a| !a.l1_allowed && a.class == acquired)
            })
        })
        .map(|(k, _)| k)
        .collect();
    let dist = graph.reach(&seeds, Direction::Callers);
    let chain = graph.chain(callee, &dist);
    let mut hops: Vec<String> = vec![format!("{holder}() ({file}:{})", edge.held_line)];
    for key in &chain {
        if let Some(node) = graph.nodes.get(*key) {
            hops.push(render_hop(key, node, files));
        }
    }
    let site = chain
        .last()
        .and_then(|k| graph.nodes.get(*k))
        .and_then(|node| {
            node.defs.iter().find_map(|d| {
                files[d.file].fns[d.fun]
                    .locks
                    .iter()
                    .find(|a| !a.l1_allowed && a.class == acquired)
                    .map(|a| format!("{}:{}", files[d.file].path.display(), a.line))
            })
        })
        .unwrap_or_default();
    format!(
        "guard of `{held}` (taken at {file}:{}) is held across the call at {file}:{}: \
         {} -> `{acquired}` acquired at {site}",
        edge.held_line,
        edge.via_line,
        hops.join(" -> ")
    )
}
