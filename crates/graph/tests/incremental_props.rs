//! Property tests for the incremental snapshot engine: under *any*
//! sequence of deltas or snapshots — empty deltas, edge re-adds, node
//! churn, weight growth — the incrementally maintained state must be
//! indistinguishable from a from-scratch rebuild, and every metric it
//! answers must be byte-identical between the two.

use magellan_graph::{CsrDelta, IncrementalTopology};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// Reference model: the naive materialization of the same tolerant
/// delta semantics the engine documents, with none of the maintained
/// counters — ground truth is always a fresh `from_snapshot` of it.
#[derive(Debug, Clone, Default)]
struct Model {
    nodes: BTreeSet<u32>,
    edges: BTreeMap<(u32, u32), u64>,
}

impl Model {
    fn apply(&mut self, d: &CsrDelta) {
        // Mirror the engine's application order exactly.
        for &k in &d.added_nodes {
            self.nodes.insert(k);
        }
        for &(u, v) in &d.removed {
            self.edges.remove(&(u, v));
        }
        for &(u, v, w) in d.added.iter().chain(&d.reweighted) {
            if u != v {
                self.nodes.insert(u);
                self.nodes.insert(v);
                self.edges.insert((u, v), w);
            }
        }
        for &k in &d.removed_nodes {
            if self.nodes.remove(&k) {
                self.edges.retain(|&(u, v), _| u != k && v != k);
            }
        }
    }

    fn snapshot(&self) -> (Vec<u32>, Vec<(u32, u32, u64)>) {
        let nodes: Vec<u32> = self.nodes.iter().copied().collect();
        let edges: Vec<(u32, u32, u64)> =
            self.edges.iter().map(|(&(u, v), &w)| (u, v, w)).collect();
        (nodes, edges)
    }
}

/// Strategy: one arbitrary delta over a small key space (so re-adds,
/// removals of absent edges, and node churn all actually collide).
fn arb_delta() -> impl Strategy<Value = CsrDelta> {
    (
        proptest::collection::vec(0u32..16, 0..4),
        proptest::collection::vec(0u32..16, 0..3),
        proptest::collection::vec((0u32..16, 0u32..16, 1u64..50), 0..12),
        proptest::collection::vec((0u32..16, 0u32..16), 0..8),
        proptest::collection::vec((0u32..16, 0u32..16, 1u64..50), 0..6),
    )
        .prop_map(
            |(added_nodes, removed_nodes, added, removed, reweighted)| CsrDelta {
                added_nodes,
                removed_nodes,
                added,
                removed,
                reweighted,
            },
        )
}

/// Strategy: one arbitrary normalized snapshot (duplicate edge pairs
/// collapse last-write-wins; self-loops dropped; endpoints closed).
fn arb_snapshot() -> impl Strategy<Value = Model> {
    (
        proptest::collection::vec(0u32..16, 0..6),
        proptest::collection::vec((0u32..16, 0u32..16, 1u64..50), 0..40),
    )
        .prop_map(|(extra, raw)| {
            let mut m = Model::default();
            m.nodes.extend(extra);
            for (u, v, w) in raw {
                if u != v {
                    m.nodes.insert(u);
                    m.nodes.insert(v);
                    m.edges.insert((u, v), w);
                }
            }
            m
        })
}

/// Asserts the engine is indistinguishable from a fresh build of the
/// model's current snapshot — structural state and every metric byte.
fn assert_matches_rebuild(topo: &IncrementalTopology, model: &Model) -> Result<(), TestCaseError> {
    let (nodes, edges) = model.snapshot();
    let fresh = IncrementalTopology::from_snapshot(&nodes, &edges);
    prop_assert!(*topo == fresh, "engine state diverged from rebuild");
    prop_assert_eq!(
        topo.clustering_coefficient().to_bits(),
        fresh.clustering_coefficient().to_bits()
    );
    prop_assert_eq!(topo.simple_reciprocity(), fresh.simple_reciprocity());
    prop_assert_eq!(
        topo.garlaschelli_reciprocity(),
        fresh.garlaschelli_reciprocity()
    );
    prop_assert_eq!(topo.weighted_reciprocity(), fresh.weighted_reciprocity());
    prop_assert_eq!(topo.out_degree_histogram(), fresh.out_degree_histogram());
    prop_assert_eq!(topo.in_degree_histogram(), fresh.in_degree_histogram());
    prop_assert_eq!(topo.und_degree_histogram(), fresh.und_degree_histogram());
    Ok(())
}

proptest! {
    /// Any sequence of arbitrary deltas leaves the engine equal to a
    /// rebuild of the reference model after every single step.
    #[test]
    fn delta_sequences_match_full_rebuild(deltas in proptest::collection::vec(arb_delta(), 0..8)) {
        let mut topo = IncrementalTopology::new();
        let mut model = Model::default();
        for d in &deltas {
            topo.apply_delta(d);
            model.apply(d);
            assert_matches_rebuild(&topo, &model)?;
        }
    }

    /// Syncing through any sequence of unrelated snapshots (arbitrary
    /// churn, including total turnover and shrink-to-empty) always
    /// lands on rebuild-identical state.
    #[test]
    fn snapshot_sync_sequences_match_rebuild(models in proptest::collection::vec(arb_snapshot(), 1..6)) {
        let mut topo = IncrementalTopology::new();
        for model in &models {
            let (nodes, edges) = model.snapshot();
            topo.sync_snapshot(&nodes, &edges);
            assert_matches_rebuild(&topo, model)?;
        }
    }

    /// The empty delta is the identity on any engine state.
    #[test]
    fn empty_delta_is_identity(model in arb_snapshot()) {
        let (nodes, edges) = model.snapshot();
        let mut topo = IncrementalTopology::from_snapshot(&nodes, &edges);
        let before = topo.clone();
        topo.apply_delta(&CsrDelta::default());
        prop_assert!(topo == before);
        // diff against the identical snapshot must also be empty.
        let d = CsrDelta::diff_snapshot(&topo, &nodes, &edges);
        prop_assert!(d.is_empty());
    }

    /// diff + apply transports the engine between any two snapshots:
    /// the delta path and the rebuild path are interchangeable.
    #[test]
    fn diff_then_apply_reaches_any_target(a in arb_snapshot(), b in arb_snapshot()) {
        let (an, ae) = a.snapshot();
        let mut topo = IncrementalTopology::from_snapshot(&an, &ae);
        let (bn, be) = b.snapshot();
        let delta = CsrDelta::diff_snapshot(&topo, &bn, &be);
        topo.apply_delta(&delta);
        assert_matches_rebuild(&topo, &b)?;
    }

    /// Re-adding every present edge (same or different weight) is
    /// structurally inert: only weight counters may move.
    #[test]
    fn edge_readds_are_reweights(model in arb_snapshot(), bump in 0u64..5) {
        let (nodes, edges) = model.snapshot();
        let mut topo = IncrementalTopology::from_snapshot(&nodes, &edges);
        let readds: Vec<(u32, u32, u64)> =
            edges.iter().map(|&(u, v, w)| (u, v, w + bump)).collect();
        topo.apply_delta(&CsrDelta { added: readds, ..CsrDelta::default() });
        let mut bumped = model.clone();
        for w in bumped.edges.values_mut() {
            *w += bump;
        }
        assert_matches_rebuild(&topo, &bumped)?;
        prop_assert_eq!(topo.edge_count(), edges.len());
    }
}
