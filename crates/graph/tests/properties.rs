//! Property-based tests for the graph substrate: structural
//! invariants that must hold for *any* graph, not just hand-picked
//! fixtures.

use magellan_graph::clustering::{clustering_coefficient, local_clustering_csr};
use magellan_graph::degree::{degree_sequence, DegreeKind};
use magellan_graph::paths::{bfs_distances, bfs_distances_csr, PathTreatment, UNREACHABLE};
use magellan_graph::reciprocity::{garlaschelli_reciprocity, simple_reciprocity};
use magellan_graph::subgraph::induced_by_nodes;
use magellan_graph::{Csr, DegreeHistogram, DiGraph};
use proptest::prelude::*;

/// Strategy: a directed graph on up to 12 nodes from an arbitrary edge
/// list (self-loops filtered out by construction).
fn arb_graph() -> impl Strategy<Value = DiGraph<u8>> {
    proptest::collection::vec((0u8..12, 0u8..12, 1u64..100), 0..120).prop_map(|edges| {
        let mut g = DiGraph::new();
        for (a, b, w) in edges {
            if a != b {
                g.add_edge_by_key(a, b, w);
            }
        }
        g
    })
}

proptest! {
    #[test]
    fn degree_sums_equal_edge_count(g in arb_graph()) {
        let out_sum: usize = degree_sequence(&g, DegreeKind::Out).into_iter().sum();
        let in_sum: usize = degree_sequence(&g, DegreeKind::In).into_iter().sum();
        prop_assert_eq!(out_sum, g.edge_count());
        prop_assert_eq!(in_sum, g.edge_count());
    }

    #[test]
    fn undirected_degree_matches_neighbor_list(g in arb_graph()) {
        for id in g.node_ids() {
            prop_assert_eq!(g.undirected_degree(id), g.undirected_neighbors(id).len());
        }
    }

    #[test]
    fn undirected_neighbors_are_symmetric(g in arb_graph()) {
        for id in g.node_ids() {
            for v in g.undirected_neighbors(id) {
                prop_assert!(g.undirected_neighbors(v).contains(&id));
            }
        }
    }

    #[test]
    fn undirected_edge_count_bounds(g in arb_graph()) {
        let und = g.undirected_edge_count();
        prop_assert!(und <= g.edge_count());
        prop_assert!(und * 2 >= g.edge_count());
    }

    #[test]
    fn simple_reciprocity_in_unit_interval(g in arb_graph()) {
        let r = simple_reciprocity(&g);
        prop_assert!((0.0..=1.0).contains(&r));
    }

    #[test]
    fn rho_in_closed_interval(g in arb_graph()) {
        if let Ok(rho) = garlaschelli_reciprocity(&g) {
            prop_assert!(rho <= 1.0 + 1e-12, "rho = {rho}");
            // Lower bound: rho >= -a/(1-a) >= -1 only when a <= 1/2;
            // in general rho >= -a/(1-a), so just check it is finite.
            prop_assert!(rho.is_finite());
        }
    }

    #[test]
    fn symmetrized_graph_is_fully_reciprocal(g in arb_graph()) {
        let mut s = g.clone();
        let edges: Vec<_> = g.edges().collect();
        for e in &edges {
            s.add_edge(e.to, e.from, e.weight);
        }
        if s.edge_count() > 0 {
            prop_assert!((simple_reciprocity(&s) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn clustering_in_unit_interval(g in arb_graph()) {
        let c = clustering_coefficient(&g);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&c));
        let csr = Csr::from_digraph(&g);
        for id in g.node_ids() {
            let ci = local_clustering_csr(&csr, id);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&ci));
        }
    }

    #[test]
    fn induced_subgraph_is_contained(g in arb_graph(), keep_mask in proptest::collection::vec(any::<bool>(), 12)) {
        let sub = induced_by_nodes(&g, |_, key| keep_mask.get(*key as usize).copied().unwrap_or(false));
        prop_assert!(sub.node_count() <= g.node_count());
        prop_assert!(sub.edge_count() <= g.edge_count());
        for e in sub.edges() {
            let from_key = sub.key(e.from);
            let to_key = sub.key(e.to);
            let gf = g.node_id(from_key).expect("node exists in parent");
            let gt = g.node_id(to_key).expect("node exists in parent");
            prop_assert_eq!(g.edge_weight(gf, gt), Some(e.weight));
        }
    }

    #[test]
    fn bfs_neighbors_at_distance_one(g in arb_graph()) {
        for id in g.node_ids().take(4) {
            let dist = bfs_distances(&g, id, PathTreatment::Directed);
            prop_assert_eq!(dist[id.index()], 0);
            for v in g.out_neighbors(id) {
                prop_assert!(dist[v.index()] == 1 || v == id);
            }
        }
    }

    #[test]
    fn bfs_undirected_is_symmetric(g in arb_graph()) {
        // d(u, v) == d(v, u) under the undirected treatment. One CSR
        // view serves every source.
        let csr = Csr::from_digraph(&g);
        let ids: Vec<_> = g.node_ids().collect();
        for &u in ids.iter().take(3) {
            let du = bfs_distances_csr(&csr, u, PathTreatment::Undirected);
            for &v in ids.iter().take(3) {
                let dv = bfs_distances_csr(&csr, v, PathTreatment::Undirected);
                prop_assert_eq!(du[v.index()], dv[u.index()]);
            }
        }
    }

    #[test]
    fn csr_view_mirrors_digraph(g in arb_graph()) {
        let csr = Csr::from_digraph(&g);
        prop_assert_eq!(csr.node_count(), g.node_count());
        prop_assert_eq!(csr.edge_count(), g.edge_count());
        prop_assert_eq!(csr.und_edge_count(), g.undirected_edge_count());
        for u in g.node_ids() {
            let out: Vec<_> = g.out_neighbors(u).collect();
            prop_assert_eq!(csr.out(u), &out[..]);
            let inn: Vec<_> = g.in_neighbors(u).collect();
            prop_assert_eq!(csr.inn(u), &inn[..]);
            prop_assert_eq!(csr.und(u), &g.undirected_neighbors(u)[..]);
        }
    }

    #[test]
    fn bfs_unreachable_is_marked(g in arb_graph()) {
        for id in g.node_ids().take(2) {
            let dist = bfs_distances(&g, id, PathTreatment::Directed);
            for (i, &d) in dist.iter().enumerate() {
                if d != UNREACHABLE {
                    prop_assert!(d as usize <= g.node_count());
                } else {
                    prop_assert!(i != id.index());
                }
            }
        }
    }

    #[test]
    fn histogram_mass_conservation(samples in proptest::collection::vec(0usize..200, 0..300)) {
        let h: DegreeHistogram = samples.iter().copied().collect();
        prop_assert_eq!(h.total(), samples.len() as u64);
        if !samples.is_empty() {
            let mass: f64 = h.pmf().iter().map(|p| p.fraction).sum();
            prop_assert!((mass - 1.0).abs() < 1e-9);
            let mean: f64 = samples.iter().sum::<usize>() as f64 / samples.len() as f64;
            prop_assert!((h.mean() - mean).abs() < 1e-9);
        }
    }

    #[test]
    fn histogram_quantile_is_monotone(samples in proptest::collection::vec(0usize..50, 1..100)) {
        let h: DegreeHistogram = samples.iter().copied().collect();
        let q1 = h.quantile(0.25).unwrap();
        let q2 = h.quantile(0.5).unwrap();
        let q3 = h.quantile(0.75).unwrap();
        prop_assert!(q1 <= q2 && q2 <= q3);
    }

    #[test]
    fn density_in_unit_interval(g in arb_graph()) {
        let d = g.density();
        prop_assert!((0.0..=1.0).contains(&d));
    }
}

mod structural_extensions {
    use magellan_graph::assortativity::{assortativity, AssortKind};
    use magellan_graph::export::{from_edge_list, to_edge_list};
    use magellan_graph::kcore::core_decomposition;
    use magellan_graph::{DiGraph, NodeId};
    use proptest::prelude::*;

    fn arb_graph() -> impl Strategy<Value = DiGraph<u32>> {
        proptest::collection::vec((0u32..20, 0u32..20, 1u64..50), 0..150).prop_map(|edges| {
            let mut g = DiGraph::new();
            for (a, b, w) in edges {
                if a != b {
                    g.add_edge_by_key(a, b, w);
                }
            }
            g
        })
    }

    proptest! {
        #[test]
        fn core_number_bounded_by_degree(g in arb_graph()) {
            let d = core_decomposition(&g);
            for id in g.node_ids() {
                prop_assert!(d.core_of(id) as usize <= g.undirected_degree(id));
            }
            let max_deg = g.node_ids().map(|i| g.undirected_degree(i)).max().unwrap_or(0);
            prop_assert!(d.degeneracy() as usize <= max_deg);
        }

        #[test]
        fn core_sizes_are_monotone(g in arb_graph()) {
            let d = core_decomposition(&g);
            for k in 0..d.degeneracy() {
                prop_assert!(d.core_size(k) >= d.core_size(k + 1));
            }
            prop_assert_eq!(d.core_size(0), g.node_count());
        }

        #[test]
        fn kcore_members_have_k_neighbors_in_core(g in arb_graph()) {
            // Defining property of the k-core at k = degeneracy.
            let d = core_decomposition(&g);
            let k = d.degeneracy();
            if k == 0 { return Ok(()); }
            let members: Vec<NodeId> = g
                .node_ids()
                .filter(|&id| d.core_of(id) >= k)
                .collect();
            for &v in &members {
                let inside = g
                    .undirected_neighbors(v)
                    .into_iter()
                    .filter(|u| d.core_of(*u) >= k)
                    .count();
                prop_assert!(
                    inside >= k as usize,
                    "node {v} has {inside} in-core neighbors < k = {k}"
                );
            }
        }

        #[test]
        fn assortativity_is_bounded_when_defined(g in arb_graph()) {
            for kind in [AssortKind::Undirected, AssortKind::OutIn] {
                if let Ok(r) = assortativity(&g, kind) {
                    prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "r = {r}");
                }
            }
        }

        #[test]
        fn edge_list_roundtrips_any_graph(g in arb_graph()) {
            let text = to_edge_list(&g);
            let back: DiGraph<u32> = from_edge_list(&text).unwrap();
            prop_assert_eq!(back.node_count(), g.edges().flat_map(|e| [e.from, e.to]).collect::<std::collections::HashSet<_>>().len());
            prop_assert_eq!(back.edge_count(), g.edge_count());
            for e in g.edges() {
                let f = back.node_id(g.key(e.from)).expect("node");
                let t = back.node_id(g.key(e.to)).expect("node");
                prop_assert_eq!(back.edge_weight(f, t), Some(e.weight));
            }
        }
    }
}
