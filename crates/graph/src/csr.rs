//! Compressed-sparse-row snapshot view of a [`DiGraph`].
//!
//! The Magellan study loop recomputes clustering, sampled path
//! lengths, k-core, and reciprocity on every snapshot of the study
//! window. Those kernels are traversal-bound, and the `DiGraph`'s
//! `Vec<Vec<…>>` adjacency pays one pointer chase plus one potential
//! cache miss per row. [`Csr`] is the flat alternative: built once per
//! snapshot (`O(n + m)`), it packs the out-, in-, and
//! undirected-projection adjacency into contiguous `offsets`/`targets`
//! arrays that BFS, triangle counting, peeling, and reciprocity merges
//! can stream through linearly. It is also `Send + Sync` with no
//! generic key parameter, so the fork-join kernels in `magellan-par`
//! can share one snapshot across worker threads.
//!
//! The view is immutable by construction — mutate the `DiGraph`, then
//! rebuild.

use crate::{DiGraph, NodeId};
use std::hash::Hash;

/// Flat adjacency arrays for one graph snapshot.
///
/// Row `u` of each projection lives at `targets[offsets[u] ..
/// offsets[u + 1]]`; every row is sorted ascending, matching the
/// `DiGraph` invariant it was built from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    n: usize,
    edge_count: usize,
    out_off: Vec<usize>,
    out_tgt: Vec<NodeId>,
    out_w: Vec<u64>,
    in_off: Vec<usize>,
    in_tgt: Vec<NodeId>,
    und_off: Vec<usize>,
    und_tgt: Vec<NodeId>,
}

/// The half-open row range `off[i]..off[i + 1]` of one CSR offset
/// array. The single place index arithmetic happens in the hot
/// accessors, so the overflow reasoning lives on one line.
fn row(off: &[usize], i: usize) -> std::ops::Range<usize> {
    // lint:allow(C4): off.len() == n + 1 with n ≤ u32::MAX (u32-backed NodeId), so i + 1 ≤ n never overflows usize
    off[i]..off[i + 1]
}

impl Csr {
    /// Builds the flat view of `g` in one `O(n + m)` pass.
    pub fn from_digraph<N: Eq + Hash + Clone>(g: &DiGraph<N>) -> Csr {
        let n = g.node_count();
        let m = g.edge_count();
        let mut out_off = Vec::with_capacity(n + 1);
        let mut out_tgt = Vec::with_capacity(m);
        let mut out_w = Vec::with_capacity(m);
        let mut in_off = Vec::with_capacity(n + 1);
        let mut in_tgt = Vec::with_capacity(m);
        let mut und_off = Vec::with_capacity(n + 1);
        let mut und_tgt = Vec::with_capacity(m); // lower bound; grows on one-way-heavy graphs
        out_off.push(0);
        in_off.push(0);
        und_off.push(0);
        for u in g.node_ids() {
            let out_row = g.out_row(u);
            let in_row = g.in_row(u);
            out_tgt.extend(out_row.iter().map(|&(t, _)| t));
            out_w.extend(out_row.iter().map(|&(_, w)| w));
            in_tgt.extend_from_slice(in_row);
            // Undirected projection: linear merge of the two sorted
            // rows, deduplicating bilateral partners.
            let (mut i, mut j) = (0, 0);
            while i < out_row.len() && j < in_row.len() {
                let (x, y) = (out_row[i].0, in_row[j]);
                match x.cmp(&y) {
                    std::cmp::Ordering::Less => {
                        und_tgt.push(x);
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        und_tgt.push(y);
                        j += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        und_tgt.push(x);
                        i += 1;
                        j += 1;
                    }
                }
            }
            und_tgt.extend(out_row[i..].iter().map(|&(t, _)| t));
            und_tgt.extend_from_slice(&in_row[j..]);
            out_off.push(out_tgt.len());
            in_off.push(in_tgt.len());
            und_off.push(und_tgt.len());
        }
        Csr {
            n,
            edge_count: m,
            out_off,
            out_tgt,
            out_w,
            in_off,
            in_tgt,
            und_off,
            und_tgt,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Whether the snapshot has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Sorted out-neighbors of `u`.
    pub fn out(&self, u: NodeId) -> &[NodeId] {
        &self.out_tgt[row(&self.out_off, u.index())]
    }

    /// Weights aligned with [`Csr::out`].
    pub fn out_weights(&self, u: NodeId) -> &[u64] {
        &self.out_w[row(&self.out_off, u.index())]
    }

    /// Sorted in-neighbors of `u`.
    pub fn inn(&self, u: NodeId) -> &[NodeId] {
        &self.in_tgt[row(&self.in_off, u.index())]
    }

    /// Sorted, deduplicated neighbors of `u` in the undirected
    /// projection.
    pub fn und(&self, u: NodeId) -> &[NodeId] {
        &self.und_tgt[row(&self.und_off, u.index())]
    }

    /// Out-degree of `u`.
    pub fn out_degree(&self, u: NodeId) -> usize {
        row(&self.out_off, u.index()).len()
    }

    /// In-degree of `u`.
    pub fn in_degree(&self, u: NodeId) -> usize {
        row(&self.in_off, u.index()).len()
    }

    /// Degree of `u` in the undirected projection.
    pub fn und_degree(&self, u: NodeId) -> usize {
        row(&self.und_off, u.index()).len()
    }

    /// Number of edges in the undirected projection (each bilateral
    /// pair collapsed to one link). Total undirected row length counts
    /// every link twice.
    pub fn und_edge_count(&self) -> usize {
        self.und_tgt.len() / 2
    }

    /// Directed edge density `ā = M / (N (N − 1))`; 0.0 below two
    /// nodes.
    pub fn density(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        self.edge_count as f64 / (self.n as f64 * (self.n as f64 - 1.0))
    }

    /// Whether the directed edge `from -> to` exists (`O(log d)`).
    pub fn has_edge(&self, from: NodeId, to: NodeId) -> bool {
        self.out(from).binary_search(&to).is_ok()
    }

    /// Weight of `from -> to`, when present (`O(log d)`).
    pub fn edge_weight(&self, from: NodeId, to: NodeId) -> Option<u64> {
        self.out(from)
            .binary_search(&to)
            .ok()
            .map(|pos| self.out_weights(from)[pos])
    }

    /// Iterates over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        // lint:allow(C3): DiGraph::intern guarantees node count fits in u32
        (0..self.n as u32).map(NodeId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DiGraph<u32> {
        // 0 <-> 1, 0 -> 2, 3 -> 0, 2 -> 3 (weights distinguishable).
        let mut g = DiGraph::new();
        let ids: Vec<NodeId> = (0..4u32).map(|k| g.intern(k)).collect();
        g.add_edge(ids[0], ids[1], 5);
        g.add_edge(ids[1], ids[0], 7);
        g.add_edge(ids[0], ids[2], 1);
        g.add_edge(ids[3], ids[0], 2);
        g.add_edge(ids[2], ids[3], 9);
        g
    }

    #[test]
    fn mirrors_digraph_adjacency_exactly() {
        let g = sample();
        let c = Csr::from_digraph(&g);
        assert_eq!(c.node_count(), g.node_count());
        assert_eq!(c.edge_count(), g.edge_count());
        for u in g.node_ids() {
            let out: Vec<NodeId> = g.out_neighbors(u).collect();
            assert_eq!(c.out(u), &out[..], "out row of {u}");
            let inn: Vec<NodeId> = g.in_neighbors(u).collect();
            assert_eq!(c.inn(u), &inn[..], "in row of {u}");
            assert_eq!(c.und(u), &g.undirected_neighbors(u)[..], "und row of {u}");
            assert_eq!(c.out_degree(u), g.out_degree(u));
            assert_eq!(c.in_degree(u), g.in_degree(u));
            assert_eq!(c.und_degree(u), g.undirected_degree(u));
            let weights: Vec<u64> = g.out_edges(u).map(|(_, w)| w).collect();
            assert_eq!(c.out_weights(u), &weights[..]);
        }
    }

    #[test]
    fn edge_queries_match() {
        let g = sample();
        let c = Csr::from_digraph(&g);
        for u in g.node_ids() {
            for v in g.node_ids() {
                if u == v {
                    continue;
                }
                assert_eq!(c.has_edge(u, v), g.has_edge(u, v));
                assert_eq!(c.edge_weight(u, v), g.edge_weight(u, v));
            }
        }
    }

    #[test]
    fn undirected_edge_count_collapses_bilateral() {
        let g = sample();
        let c = Csr::from_digraph(&g);
        assert_eq!(c.und_edge_count(), g.undirected_edge_count());
        assert!((c.density() - g.density()).abs() < 1e-15);
    }

    #[test]
    fn empty_graph_yields_empty_view() {
        let g: DiGraph<u32> = DiGraph::new();
        let c = Csr::from_digraph(&g);
        assert!(c.is_empty());
        assert_eq!(c.node_count(), 0);
        assert_eq!(c.edge_count(), 0);
        assert_eq!(c.und_edge_count(), 0);
        assert_eq!(c.density(), 0.0);
    }

    #[test]
    fn isolated_nodes_have_empty_rows() {
        let mut g: DiGraph<u32> = DiGraph::new();
        let a = g.intern(0);
        let b = g.intern(1);
        g.intern(2); // isolated
        g.add_edge(a, b, 1);
        let c = Csr::from_digraph(&g);
        let iso = NodeId::from_index(2);
        assert!(c.out(iso).is_empty());
        assert!(c.inn(iso).is_empty());
        assert!(c.und(iso).is_empty());
    }
}
