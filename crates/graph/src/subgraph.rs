//! Subgraph extraction.
//!
//! The Magellan study repeatedly restricts the topology: stable peers
//! only, peers of one ISP (Fig. 7B), intra-ISP links and their
//! incident peers, or inter-ISP links and theirs (Fig. 8B). Two
//! extractors cover all of these:
//!
//! * [`induced_by_nodes`] — keep a node subset and all edges among it;
//! * [`filtered_by_edges`] — keep an edge subset and the nodes those
//!   edges touch.

use crate::{DiGraph, EdgeRef, NodeId};
use std::hash::Hash;

/// The subgraph induced by the nodes matching `pred`: matching nodes
/// are kept (with their keys), and every edge whose endpoints both
/// match survives.
pub fn induced_by_nodes<N, F>(g: &DiGraph<N>, mut pred: F) -> DiGraph<N>
where
    N: Eq + Hash + Clone,
    F: FnMut(NodeId, &N) -> bool,
{
    let keep: Vec<bool> = g.nodes().map(|(id, key)| pred(id, key)).collect(); // lint:allow(H2): one keep-mask per subgraph build, itself a per-sample operation
    let mut sub = DiGraph::new();
    for (id, key) in g.nodes() {
        if keep[id.index()] {
            sub.intern(key.clone()); // lint:allow(H2): the subgraph owns its node keys; one clone per kept node
        }
    }
    for e in g.edges() {
        if keep[e.from.index()] && keep[e.to.index()] {
            let f = sub.node_id(g.key(e.from)).expect("kept node interned");
            let t = sub.node_id(g.key(e.to)).expect("kept node interned");
            sub.add_edge(f, t, e.weight);
        }
    }
    sub
}

/// The subgraph made of the edges matching `pred` plus their incident
/// nodes (the paper's construction for intra-/inter-ISP link
/// topologies in Fig. 8B).
pub fn filtered_by_edges<N, F>(g: &DiGraph<N>, mut pred: F) -> DiGraph<N>
where
    N: Eq + Hash + Clone,
    F: FnMut(&DiGraph<N>, EdgeRef) -> bool,
{
    let mut sub = DiGraph::new();
    for e in g.edges() {
        if pred(g, e) {
            let f = sub.intern(g.key(e.from).clone()); // lint:allow(H2): the subgraph owns its node keys; one clone per kept edge endpoint
            let t = sub.intern(g.key(e.to).clone()); // lint:allow(H2): the subgraph owns its node keys; one clone per kept edge endpoint
            sub.add_edge(f, t, e.weight);
        }
    }
    sub
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DiGraph<&'static str> {
        let mut g = DiGraph::new();
        let a = g.intern("a");
        let b = g.intern("b");
        let c = g.intern("c");
        let d = g.intern("d");
        g.add_edge(a, b, 1);
        g.add_edge(b, a, 2);
        g.add_edge(b, c, 3);
        g.add_edge(c, d, 4);
        g
    }

    #[test]
    fn induced_keeps_internal_edges_only() {
        let g = sample();
        let sub = induced_by_nodes(&g, |_, key| matches!(*key, "a" | "b" | "c"));
        assert_eq!(sub.node_count(), 3);
        assert_eq!(sub.edge_count(), 3); // a<->b and b->c; c->d dropped
        assert!(sub.node_id(&"d").is_none());
        let b = sub.node_id(&"b").unwrap();
        let c = sub.node_id(&"c").unwrap();
        assert_eq!(sub.edge_weight(b, c), Some(3));
    }

    #[test]
    fn induced_with_no_matches_is_empty() {
        let g = sample();
        let sub = induced_by_nodes(&g, |_, _| false);
        assert!(sub.is_empty());
        assert_eq!(sub.edge_count(), 0);
    }

    #[test]
    fn induced_preserves_weights() {
        let g = sample();
        let sub = induced_by_nodes(&g, |_, _| true);
        assert_eq!(sub.edge_count(), g.edge_count());
        let a = sub.node_id(&"a").unwrap();
        let b = sub.node_id(&"b").unwrap();
        assert_eq!(sub.edge_weight(b, a), Some(2));
    }

    #[test]
    fn edge_filter_keeps_incident_nodes() {
        let g = sample();
        // Keep only heavy edges (weight >= 3).
        let sub = filtered_by_edges(&g, |_, e| e.weight >= 3);
        assert_eq!(sub.edge_count(), 2);
        assert_eq!(sub.node_count(), 3); // b, c, d — a not incident
        assert!(sub.node_id(&"a").is_none());
    }

    #[test]
    fn edge_filter_predicate_can_inspect_keys() {
        let g = sample();
        // Keep edges whose source sorts before their target ("intra" toy rule).
        let sub = filtered_by_edges(&g, |g, e| g.key(e.from) < g.key(e.to));
        assert_eq!(sub.edge_count(), 3); // a->b, b->c, c->d
        assert!(sub.node_id(&"a").is_some());
    }

    #[test]
    fn subgraph_node_set_is_subset() {
        let g = sample();
        let sub = induced_by_nodes(&g, |_, key| *key != "b");
        for (_, key) in sub.nodes() {
            assert!(g.node_id(key).is_some());
        }
    }
}
