//! k-core decomposition.
//!
//! Another standard instrument of the overlay-characterization
//! literature (the Gnutella and AS-topology work the paper engages
//! with): the k-core is the maximal subgraph in which every node has
//! at least `k` neighbors, and a node's *core number* is the largest
//! `k` whose core contains it. Streaming meshes built around a
//! capacity backbone show a deep, densely-populated core; trees and
//! stars shed almost everything at k = 2.
//!
//! Computed on the undirected projection with the linear-time
//! peeling algorithm (Batagelj–Zaveršnik), streaming over a flat
//! [`Csr`] view so the peel touches contiguous memory. Peeling is
//! inherently sequential (each removal changes later degrees), so this
//! kernel gains from the layout, not from threads.

use crate::csr::Csr;
use crate::{DiGraph, NodeId};
use std::hash::Hash;

/// Core numbers indexed by [`NodeId::index`], plus summary accessors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreDecomposition {
    cores: Vec<u32>,
}

impl CoreDecomposition {
    /// The core number of one node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for the decomposed graph.
    pub fn core_of(&self, id: NodeId) -> u32 {
        self.cores[id.index()]
    }

    /// All core numbers, indexed by node index.
    pub fn cores(&self) -> &[u32] {
        &self.cores
    }

    /// The maximum core number (graph degeneracy), 0 for an empty
    /// graph.
    pub fn degeneracy(&self) -> u32 {
        self.cores.iter().copied().max().unwrap_or(0)
    }

    /// Number of nodes with core number at least `k`.
    pub fn core_size(&self, k: u32) -> usize {
        self.cores.iter().filter(|&&c| c >= k).count()
    }
}

/// Computes the k-core decomposition of the undirected projection.
pub fn core_decomposition<N: Eq + Hash + Clone>(g: &DiGraph<N>) -> CoreDecomposition {
    core_decomposition_csr(&Csr::from_digraph(g))
}

/// [`core_decomposition`] over a prebuilt [`Csr`] snapshot.
pub fn core_decomposition_csr(csr: &Csr) -> CoreDecomposition {
    let n = csr.node_count();
    let mut degree: Vec<usize> = (0..n)
        .map(|i| csr.und_degree(NodeId::from_index(i)))
        .collect(); // lint:allow(H2): Batagelj-Zaversnik working array, allocated once per decomposition
    let max_deg = degree.iter().copied().max().unwrap_or(0);
    // Bucket sort nodes by degree (Batagelj–Zaveršnik).
    let mut bins: Vec<usize> = vec![0; max_deg + 1];
    for &d in &degree {
        bins[d] += 1;
    }
    let mut start = 0;
    for b in bins.iter_mut() {
        let count = *b;
        *b = start;
        start += count;
    }
    let mut order: Vec<usize> = vec![0; n]; // nodes sorted by degree
    let mut pos: Vec<usize> = vec![0; n]; // position of node in `order`
    {
        let mut next = bins.clone(); // lint:allow(H2): second bucket-cursor array, allocated once per decomposition
        for v in 0..n {
            let d = degree[v];
            order[next[d]] = v;
            pos[v] = next[d];
            next[d] += 1;
        }
    }
    let mut cores = vec![0u32; n];
    for i in 0..n {
        let v = order[i];
        cores[v] = degree[v] as u32;
        for &u in csr.und(NodeId::from_index(v)) {
            let u = u.index();
            if degree[u] > degree[v] {
                // Move u one bucket down: swap it with the first
                // element of its current bucket.
                let du = degree[u];
                let pu = pos[u];
                let pw = bins[du];
                let w = order[pw];
                if u != w {
                    order.swap(pu, pw);
                    pos[u] = pw;
                    pos[w] = pu;
                }
                bins[du] += 1;
                degree[u] -= 1;
            }
        }
    }
    CoreDecomposition { cores }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::{barabasi_albert, watts_strogatz};

    fn graph(n: u32, edges: &[(u32, u32)]) -> DiGraph<u32> {
        let mut g = DiGraph::new();
        let ids: Vec<NodeId> = (0..n).map(|k| g.intern(k)).collect();
        for &(a, b) in edges {
            g.add_edge(ids[a as usize], ids[b as usize], 1);
        }
        g
    }

    #[test]
    fn empty_graph() {
        let g: DiGraph<u32> = DiGraph::new();
        let d = core_decomposition(&g);
        assert_eq!(d.degeneracy(), 0);
        assert_eq!(d.core_size(1), 0);
    }

    #[test]
    fn path_is_one_core() {
        let g = graph(4, &[(0, 1), (1, 2), (2, 3)]);
        let d = core_decomposition(&g);
        assert!(d.cores().iter().all(|&c| c == 1));
        assert_eq!(d.degeneracy(), 1);
    }

    #[test]
    fn triangle_with_pendant() {
        // Triangle 0-1-2, pendant 3 on 0: triangle is 2-core, pendant 1-core.
        let g = graph(4, &[(0, 1), (1, 2), (2, 0), (0, 3)]);
        let d = core_decomposition(&g);
        assert_eq!(d.core_of(NodeId::from_index(0)), 2);
        assert_eq!(d.core_of(NodeId::from_index(1)), 2);
        assert_eq!(d.core_of(NodeId::from_index(2)), 2);
        assert_eq!(d.core_of(NodeId::from_index(3)), 1);
        assert_eq!(d.core_size(2), 3);
        assert_eq!(d.core_size(1), 4);
    }

    #[test]
    fn complete_graph_core_is_n_minus_one() {
        let mut g: DiGraph<u32> = DiGraph::new();
        let ids: Vec<NodeId> = (0..6u32).map(|k| g.intern(k)).collect();
        for i in 0..6 {
            for j in (i + 1)..6 {
                g.add_edge(ids[i], ids[j], 1);
            }
        }
        let d = core_decomposition(&g);
        assert!(d.cores().iter().all(|&c| c == 5));
    }

    #[test]
    fn star_sheds_to_one_core() {
        let mut g: DiGraph<u32> = DiGraph::new();
        let hub = g.intern(0);
        for k in 1..=20u32 {
            let leaf = g.intern(k);
            g.add_edge(hub, leaf, 1);
        }
        let d = core_decomposition(&g);
        assert_eq!(d.degeneracy(), 1);
        assert_eq!(d.core_of(hub), 1);
    }

    #[test]
    fn reciprocal_edges_do_not_inflate_cores() {
        // A bidirectional path still has undirected degree ≤ 2.
        let g = graph(3, &[(0, 1), (1, 0), (1, 2), (2, 1)]);
        let d = core_decomposition(&g);
        assert_eq!(d.degeneracy(), 1);
    }

    #[test]
    fn ws_lattice_core_equals_half_k() {
        // Ring lattice with k = 6: every node sits in the 3-core... in
        // fact the k-core of a k-regular ring is k/2-ish; peeling a
        // 6-regular ring removes nothing until degree 6, so the core
        // number is bounded by the degree. Verify the decomposition is
        // uniform and positive, and matches the known degeneracy of a
        // ring lattice (k/2 after peeling the ends never applies on a
        // cycle: all nodes stay at 6 -> core 6? No: peeling at k=4
        // removes nothing either. The ring lattice is 6-regular and
        // 4-connected; its degeneracy is 4 for k=6? Assert the
        // invariant that matters: uniform cores on a vertex-transitive
        // graph.
        let g = watts_strogatz(40, 6, 0.0, 1);
        let d = core_decomposition(&g);
        let first = d.cores()[0];
        assert!(d.cores().iter().all(|&c| c == first), "non-uniform cores");
        assert!(first >= 3, "ring-lattice core {first} too shallow");
    }

    #[test]
    fn ba_core_structure_is_deep() {
        let g = barabasi_albert(500, 3, 5);
        let d = core_decomposition(&g);
        // Preferential attachment with m = 3 yields degeneracy exactly 3
        // (each new node arrives with 3 edges).
        assert_eq!(d.degeneracy(), 3);
        assert!(d.core_size(3) > 400, "core too small: {}", d.core_size(3));
    }

    #[test]
    fn core_monotone_in_k() {
        let g = barabasi_albert(200, 2, 9);
        let d = core_decomposition(&g);
        for k in 0..d.degeneracy() {
            assert!(d.core_size(k) >= d.core_size(k + 1));
        }
    }
}
