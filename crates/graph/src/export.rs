//! Graph export for external tools.
//!
//! Topology snapshots are most useful when they can leave the
//! process: [`to_edge_list`] writes the whitespace format every graph
//! toolkit ingests (networkx, igraph, SNAP), [`to_dot`] writes
//! Graphviz DOT with optional node grouping (e.g. color by ISP), and
//! [`from_edge_list`] reads the former back for round-trips.

use crate::{DiGraph, NodeId};
use std::fmt::Display;
use std::hash::Hash;
use std::str::FromStr;

/// Serializes the graph as `source target weight` lines, one edge per
/// line, using the `Display` form of the node keys.
pub fn to_edge_list<N: Eq + Hash + Clone + Display>(g: &DiGraph<N>) -> String {
    let mut out = String::new();
    for e in g.edges() {
        out.push_str(&format!("{} {} {}\n", g.key(e.from), g.key(e.to), e.weight));
    }
    out
}

/// Parses an edge list produced by [`to_edge_list`].
///
/// Empty lines and `#` comments are skipped. A missing weight column
/// defaults to 1. Self-loops are skipped (the graph type rejects
/// them).
///
/// # Errors
///
/// Returns a message naming the offending 1-based line on malformed
/// input.
pub fn from_edge_list<N>(text: &str) -> Result<DiGraph<N>, String>
where
    N: Eq + Hash + Clone + FromStr,
{
    let mut g = DiGraph::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let a = parts
            .next()
            .ok_or_else(|| format!("line {}: missing source", i + 1))?;
        let b = parts
            .next()
            .ok_or_else(|| format!("line {}: missing target", i + 1))?;
        let w: u64 = match parts.next() {
            Some(w) => w
                .parse()
                .map_err(|_| format!("line {}: bad weight '{w}'", i + 1))?,
            None => 1,
        };
        let a: N = a
            .parse()
            .map_err(|_| format!("line {}: bad source '{a}'", i + 1))?;
        let b: N = b
            .parse()
            .map_err(|_| format!("line {}: bad target '{b}'", i + 1))?;
        g.add_edge_by_key(a, b, w);
    }
    Ok(g)
}

/// Serializes the graph as Graphviz DOT. `group_of` assigns each node
/// a group label rendered as a fill color class (pass `|_, _| None`
/// for no grouping); groups map to a fixed palette cycling by first
/// appearance.
pub fn to_dot<N, F>(g: &DiGraph<N>, name: &str, mut group_of: F) -> String
where
    N: Eq + Hash + Clone + Display,
    F: FnMut(NodeId, &N) -> Option<String>,
{
    const PALETTE: [&str; 8] = [
        "lightblue",
        "lightcoral",
        "lightgreen",
        "plum",
        "orange",
        "khaki",
        "lightgray",
        "cyan",
    ];
    let mut groups: Vec<String> = Vec::new();
    let mut out = format!("digraph \"{}\" {{\n", name.replace('"', "'"));
    out.push_str("  node [shape=circle, style=filled, fillcolor=white];\n");
    for (id, key) in g.nodes() {
        match group_of(id, key) {
            Some(grp) => {
                let gi = match groups.iter().position(|x| *x == grp) {
                    Some(i) => i,
                    None => {
                        groups.push(grp.clone());
                        groups.len() - 1
                    }
                };
                out.push_str(&format!(
                    "  \"{key}\" [fillcolor={}, comment=\"{grp}\"];\n",
                    PALETTE[gi % PALETTE.len()]
                ));
            }
            None => out.push_str(&format!("  \"{key}\";\n")),
        }
    }
    for e in g.edges() {
        out.push_str(&format!(
            "  \"{}\" -> \"{}\" [weight={}];\n",
            g.key(e.from),
            g.key(e.to),
            e.weight
        ));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DiGraph<u32> {
        let mut g = DiGraph::new();
        let a = g.intern(1);
        let b = g.intern(2);
        let c = g.intern(3);
        g.add_edge(a, b, 5);
        g.add_edge(b, c, 1);
        g.add_edge(c, a, 7);
        g
    }

    #[test]
    fn edge_list_roundtrip() {
        let g = sample();
        let text = to_edge_list(&g);
        let back: DiGraph<u32> = from_edge_list(&text).unwrap();
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.edge_count(), g.edge_count());
        for e in g.edges() {
            let f = back.node_id(g.key(e.from)).unwrap();
            let t = back.node_id(g.key(e.to)).unwrap();
            assert_eq!(back.edge_weight(f, t), Some(e.weight));
        }
    }

    #[test]
    fn edge_list_defaults_weight_and_skips_comments() {
        let text = "# a comment\n1 2\n\n2 3 9\n";
        let g: DiGraph<u32> = from_edge_list(text).unwrap();
        assert_eq!(g.edge_count(), 2);
        let a = g.node_id(&1).unwrap();
        let b = g.node_id(&2).unwrap();
        assert_eq!(g.edge_weight(a, b), Some(1));
    }

    #[test]
    fn edge_list_errors_name_the_line() {
        let err = from_edge_list::<u32>("1 2\nbroken\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = from_edge_list::<u32>("1 2 notaweight\n").unwrap_err();
        assert!(err.contains("bad weight"), "{err}");
    }

    #[test]
    fn edge_list_skips_self_loops() {
        let g: DiGraph<u32> = from_edge_list("1 1 3\n1 2 1\n").unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn dot_structure() {
        let g = sample();
        let dot = to_dot(&g, "test", |_, &k| {
            Some(if k % 2 == 0 { "even" } else { "odd" }.to_owned())
        });
        assert!(dot.starts_with("digraph \"test\" {"));
        assert!(dot.trim_end().ends_with('}'));
        assert_eq!(dot.matches("->").count(), 3);
        // Two groups → two distinct fill colors.
        assert!(dot.contains("lightblue"));
        assert!(dot.contains("lightcoral"));
    }

    #[test]
    fn dot_without_groups() {
        let g = sample();
        let dot = to_dot(&g, "plain", |_, _| None);
        assert!(!dot.contains("lightcoral"));
        assert_eq!(dot.matches("->").count(), 3);
    }

    #[test]
    fn empty_graph_exports() {
        let g: DiGraph<u32> = DiGraph::new();
        assert_eq!(to_edge_list(&g), "");
        let dot = to_dot(&g, "empty", |_, _| None);
        assert!(dot.contains("digraph"));
        let back: DiGraph<u32> = from_edge_list("").unwrap();
        assert!(back.is_empty());
    }
}
