//! Power-law fitting and hypothesis checking for degree data.
//!
//! Earlier P2P topology studies reported power-law degree
//! distributions; Magellan argues (§4.2.1) that streaming overlays do
//! *not* follow a power law — their distributions carry a spike near
//! the protocol's operating point. This module provides the machinery
//! to make that argument quantitative: a discrete power-law MLE in the
//! style of Clauset–Shalizi–Newman, the Kolmogorov–Smirnov distance of
//! the data from the fit, and a pragmatic plausibility verdict.
//!
//! The verdict uses the one-sample KS critical value `1.36 / √n_tail`
//! (α = 0.05). With fitted parameters this is a *lenient* threshold —
//! it under-rejects — which makes it conservative in the direction the
//! paper argues: when even the lenient test rejects, the distribution
//! is clearly not a power law.

use crate::GraphError;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A fitted discrete power law `p(x) ∝ x^(−α)` for `x ≥ x_min`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawFit {
    /// Fitted exponent `α`.
    pub alpha: f64,
    /// Lower cutoff of the power-law regime.
    pub xmin: usize,
    /// Kolmogorov–Smirnov distance between the tail data and the fit.
    pub ks: f64,
    /// Number of samples at or above `xmin`.
    pub n_tail: usize,
}

/// Outcome of the power-law plausibility assessment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawVerdict {
    /// The best fit found (KS-optimal over scanned `x_min`).
    pub fit: PowerLawFit,
    /// KS threshold used for the verdict.
    pub threshold: f64,
    /// Whether the power-law hypothesis survives (`ks <= threshold`).
    pub plausible: bool,
}

/// Generalized zeta `Σ_{k = xmin}^∞ k^(−α)`, via direct summation with
/// an integral tail correction. Accurate to ~1e-8 for `α > 1`.
fn hurwitz_zeta(alpha: f64, xmin: usize) -> f64 {
    debug_assert!(alpha > 1.0);
    let cutoff = 10_000usize.max(xmin + 1000);
    let mut sum = 0.0;
    for k in xmin..cutoff {
        sum += (k as f64).powf(-alpha);
    }
    // Euler–Maclaurin tail: ∫_{cutoff-1/2}^∞ x^-α dx.
    sum + (cutoff as f64 - 0.5).powf(1.0 - alpha) / (alpha - 1.0)
}

/// Fits `α` by the discrete MLE approximation
/// `α ≈ 1 + n / Σ ln(x_i / (x_min − 1/2))` and computes the KS
/// distance of the tail data against the fitted discrete CDF.
///
/// # Errors
///
/// Returns [`GraphError::InsufficientSamples`] when fewer than 10
/// samples lie at or above `xmin` (an MLE on fewer is noise), and
/// [`GraphError::EmptyGraph`] when `xmin` is 0.
pub fn fit_with_xmin(samples: &[usize], xmin: usize) -> Result<PowerLawFit, GraphError> {
    if xmin == 0 {
        return Err(GraphError::EmptyGraph);
    }
    let tail: Vec<usize> = samples.iter().copied().filter(|&x| x >= xmin).collect(); // lint:allow(H2): tail slice per candidate xmin, bounded by MAX_CANDIDATES per fit
    const MIN_TAIL: usize = 10;
    if tail.len() < MIN_TAIL {
        return Err(GraphError::InsufficientSamples {
            got: tail.len(),
            need: MIN_TAIL,
        });
    }
    let n = tail.len() as f64;
    let denom: f64 = tail
        .iter()
        .map(|&x| (x as f64 / (xmin as f64 - 0.5)).ln())
        .sum();
    // All samples equal to xmin would give denom near 0; guard.
    let alpha = if denom <= 1e-9 {
        f64::INFINITY
    } else {
        1.0 + n / denom
    };
    let ks = if alpha.is_finite() {
        ks_distance(&tail, alpha, xmin)
    } else {
        // Degenerate fit: all mass at xmin. KS distance is the CDF gap
        // at xmin under any proper power law; report 1.0 (worst).
        1.0
    };
    Ok(PowerLawFit {
        alpha,
        xmin,
        ks,
        n_tail: tail.len(),
    })
}

/// KS distance between the empirical CDF of `tail` (all `>= xmin`)
/// and the fitted discrete power-law CDF.
fn ks_distance(tail: &[usize], alpha: f64, xmin: usize) -> f64 {
    let mut data = tail.to_vec(); // lint:allow(H2): KS needs a sorted copy; the tail is already truncated
    data.sort_unstable();
    let n = data.len() as f64;
    let z = hurwitz_zeta(alpha, xmin);
    let max_x = *data.last().expect("non-empty tail");
    // Model CDF over [xmin, max_x].
    let mut model_cdf = Vec::with_capacity(max_x - xmin + 2);
    let mut acc = 0.0;
    for x in xmin..=max_x {
        acc += (x as f64).powf(-alpha) / z;
        model_cdf.push(acc.min(1.0));
    }
    let mut ks = 0.0f64;
    let mut i = 0usize;
    for x in xmin..=max_x {
        while i < data.len() && data[i] <= x {
            i += 1;
        }
        let emp = i as f64 / n;
        let model = model_cdf[x - xmin];
        ks = ks.max((emp - model).abs());
    }
    ks
}

/// Fits a power law scanning `x_min` over the distinct sample values
/// (Clauset's procedure): the fit minimizing the KS distance wins.
///
/// Only cutoffs leaving at least 10 tail samples are considered, and
/// at most `max_xmin_candidates` distinct values are scanned (the
/// smallest ones — large cutoffs with tiny tails overfit).
///
/// # Errors
///
/// Returns [`GraphError::InsufficientSamples`] when no cutoff leaves
/// enough tail data.
pub fn fit(samples: &[usize]) -> Result<PowerLawFit, GraphError> {
    const MAX_CANDIDATES: usize = 50;
    let mut distinct: Vec<usize> = samples.iter().copied().filter(|&x| x >= 1).collect(); // lint:allow(H2): distinct-degree candidate list, one per fit
    distinct.sort_unstable();
    distinct.dedup();
    let mut best: Option<PowerLawFit> = None;
    for &xmin in distinct.iter().take(MAX_CANDIDATES) {
        match fit_with_xmin(samples, xmin) {
            Ok(f) => {
                if best.map_or(true, |b| f.ks < b.ks) {
                    best = Some(f);
                }
            }
            Err(GraphError::InsufficientSamples { .. }) => break,
            Err(e) => return Err(e),
        }
    }
    best.ok_or(GraphError::InsufficientSamples {
        got: samples.len(),
        need: 10,
    })
}

/// Runs the full assessment: scan-fit, then compare the KS distance
/// against the `1.36 / √n_tail` critical value.
///
/// # Errors
///
/// Propagates fitting errors (insufficient samples).
pub fn assess(samples: &[usize]) -> Result<PowerLawVerdict, GraphError> {
    let fit = fit(samples)?;
    let threshold = 1.36 / (fit.n_tail as f64).sqrt();
    Ok(PowerLawVerdict {
        fit,
        threshold,
        plausible: fit.ks <= threshold,
    })
}

/// Draws `n` samples from a discrete power law with exponent `alpha`
/// and cutoff `xmin`, via the continuous inverse-CDF approximation
/// `x = ⌊(x_min − 1/2)(1 − u)^(−1/(α−1)) + 1/2⌋`.
///
/// # Panics
///
/// Panics if `alpha <= 1` or `xmin == 0`.
pub fn sample_discrete_power_law(alpha: f64, xmin: usize, n: usize, seed: u64) -> Vec<usize> {
    assert!(alpha > 1.0, "alpha must exceed 1, got {alpha}");
    assert!(xmin >= 1, "xmin must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let u: f64 = rng.random_range(0.0..1.0);
            let x = (xmin as f64 - 0.5) * (1.0 - u).powf(-1.0 / (alpha - 1.0)) + 0.5;
            // Cap to avoid astronomically large outliers overflowing usize.
            x.min(1e12).floor() as usize
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_synthetic_power_law_exponent() {
        let samples = sample_discrete_power_law(2.5, 2, 20_000, 42);
        let fit = fit_with_xmin(&samples, 2).unwrap();
        assert!(
            (fit.alpha - 2.5).abs() < 0.1,
            "alpha = {} should be near 2.5",
            fit.alpha
        );
    }

    #[test]
    fn synthetic_power_law_is_plausible() {
        let samples = sample_discrete_power_law(2.2, 1, 5_000, 7);
        let verdict = assess(&samples).unwrap();
        assert!(
            verdict.plausible,
            "true power law rejected: ks = {} threshold = {}",
            verdict.fit.ks, verdict.threshold
        );
    }

    #[test]
    fn spiked_distribution_is_rejected() {
        // A sharp Gaussian-ish spike around 10, like the UUSee partner
        // distributions: clearly not a power law.
        let mut samples = Vec::new();
        for _ in 0..2_000 {
            samples.extend_from_slice(&[8, 9, 10, 10, 10, 11, 12]);
        }
        let verdict = assess(&samples).unwrap();
        assert!(
            !verdict.plausible,
            "spiked distribution accepted as power law (ks = {}, thr = {})",
            verdict.fit.ks, verdict.threshold
        );
    }

    #[test]
    fn uniform_distribution_is_rejected() {
        let samples: Vec<usize> = (0..5_000).map(|i| 1 + (i % 50)).collect();
        let verdict = assess(&samples).unwrap();
        assert!(!verdict.plausible);
    }

    #[test]
    fn insufficient_tail_is_an_error() {
        let samples = vec![1, 2, 3];
        assert!(matches!(
            fit_with_xmin(&samples, 1),
            Err(GraphError::InsufficientSamples { got: 3, need: 10 })
        ));
    }

    #[test]
    fn xmin_zero_is_an_error() {
        let samples = vec![1; 100];
        assert!(fit_with_xmin(&samples, 0).is_err());
    }

    #[test]
    fn degenerate_all_equal_samples_fit_poorly() {
        // All mass at one value: the MLE drives alpha very high (the
        // -1/2 shift keeps it finite) and the KS distance stays large,
        // so the fit is visibly bad.
        let samples = vec![5usize; 100];
        let fit = fit_with_xmin(&samples, 5).unwrap();
        assert!(fit.alpha > 5.0, "alpha = {}", fit.alpha);
        assert!(fit.ks > 0.1, "ks = {}", fit.ks);
    }

    #[test]
    fn scan_fit_prefers_true_xmin_region() {
        // Power law with xmin = 5, polluted below with uniform noise.
        let mut samples = sample_discrete_power_law(2.4, 5, 10_000, 3);
        samples.extend((0..2_000).map(|i| 1 + (i % 4)));
        let fit = fit(&samples).unwrap();
        assert!(
            fit.xmin >= 3 && fit.xmin <= 8,
            "scan chose xmin = {}",
            fit.xmin
        );
        assert!((fit.alpha - 2.4).abs() < 0.25, "alpha = {}", fit.alpha);
    }

    #[test]
    fn zeta_matches_reference_values() {
        // ζ(2) = π²/6.
        let z = hurwitz_zeta(2.0, 1);
        assert!((z - std::f64::consts::PI.powi(2) / 6.0).abs() < 1e-6);
        // ζ(3) ≈ 1.2020569.
        let z3 = hurwitz_zeta(3.0, 1);
        assert!((z3 - 1.2020569).abs() < 1e-6);
    }

    #[test]
    fn sampler_respects_xmin() {
        let samples = sample_discrete_power_law(2.0, 7, 1_000, 9);
        assert!(samples.iter().all(|&x| x >= 7));
    }

    #[test]
    fn sampler_is_deterministic() {
        let a = sample_discrete_power_law(2.0, 1, 100, 5);
        let b = sample_discrete_power_law(2.0, 1, 100, 5);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn sampler_rejects_bad_alpha() {
        let _ = sample_discrete_power_law(1.0, 1, 10, 0);
    }
}
