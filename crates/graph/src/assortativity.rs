//! Degree assortativity (Newman's degree–degree correlation).
//!
//! Not a figure of the Magellan paper itself, but a standard
//! companion metric in the P2P-topology literature it engages with
//! (Gnutella studies report strong disassortativity from their
//! ultrapeer hierarchy). Exposed here so topology reports can place
//! the streaming overlay on the same axis: Pearson correlation of the
//! degrees at either end of an edge, in `[-1, 1]` — positive when
//! high-degree nodes attach to high-degree nodes.

use crate::{DiGraph, GraphError};
use std::hash::Hash;

/// Which degrees to correlate across directed edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssortKind {
    /// Undirected-projection degree at both ends (the common choice).
    Undirected,
    /// Source out-degree vs target in-degree.
    OutIn,
}

/// Degree assortativity over the edges of `g`.
///
/// # Errors
///
/// Returns [`GraphError::EmptyGraph`] when the graph has no edges,
/// and [`GraphError::InsufficientSamples`] when every edge sees the
/// same degree pair (zero variance; correlation undefined — e.g. a
/// perfect ring).
pub fn assortativity<N: Eq + Hash + Clone>(
    g: &DiGraph<N>,
    kind: AssortKind,
) -> Result<f64, GraphError> {
    if g.edge_count() == 0 {
        return Err(GraphError::EmptyGraph);
    }
    let mut sx = 0.0;
    let mut sy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    let mut sxy = 0.0;
    let mut m = 0.0;
    let mut push = |x: f64, y: f64| {
        sx += x;
        sy += y;
        sxx += x * x;
        syy += y * y;
        sxy += x * y;
        m += 1.0;
    };
    for e in g.edges() {
        match kind {
            AssortKind::Undirected => {
                // The undirected correlation must be orientation-free:
                // count each stored edge in both directions, as
                // Newman's estimator does.
                let x = g.undirected_degree(e.from) as f64;
                let y = g.undirected_degree(e.to) as f64;
                push(x, y);
                push(y, x);
            }
            AssortKind::OutIn => {
                push(g.out_degree(e.from) as f64, g.in_degree(e.to) as f64);
            }
        }
    }
    let var_x = sxx / m - (sx / m).powi(2);
    let var_y = syy / m - (sy / m).powi(2);
    if var_x <= 1e-12 || var_y <= 1e-12 {
        return Err(GraphError::InsufficientSamples { got: 1, need: 2 });
    }
    let cov = sxy / m - (sx / m) * (sy / m);
    Ok(cov / (var_x * var_y).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::{barabasi_albert, gnm_undirected};
    use crate::NodeId;

    fn star(n: u32) -> DiGraph<u32> {
        let mut g = DiGraph::new();
        let hub = g.intern(0);
        for k in 1..=n {
            let leaf = g.intern(k);
            g.add_edge(hub, leaf, 1);
        }
        g
    }

    #[test]
    fn star_is_maximally_disassortative() {
        // Every edge joins the hub (degree n) to a leaf (degree 1).
        // With a single (x, y) pair the variance is zero along each
        // axis... except x is always n and y always 1, so variance is
        // zero -> degenerate. Add one leaf-leaf edge to break it.
        let mut g = star(6);
        let a = g.node_id(&1).unwrap();
        let b = g.node_id(&2).unwrap();
        g.add_edge(a, b, 1);
        let r = assortativity(&g, AssortKind::Undirected).unwrap();
        assert!(r < -0.4, "star-ish r = {r}");
    }

    #[test]
    fn ba_is_near_neutral_er_is_neutral() {
        // Newman (2002): the BA model is asymptotically neutral, with
        // a slight negative finite-size bias.
        let ba = barabasi_albert(2_000, 3, 1);
        let r_ba = assortativity(&ba, AssortKind::Undirected).unwrap();
        assert!((-0.3..0.05).contains(&r_ba), "BA r = {r_ba}");

        let er = gnm_undirected(2_000, 8_000, 2);
        let r_er = assortativity(&er, AssortKind::Undirected).unwrap();
        assert!(r_er.abs() < 0.06, "ER r = {r_er}");
    }

    #[test]
    fn empty_graph_errors() {
        let g: DiGraph<u32> = DiGraph::new();
        assert_eq!(
            assortativity(&g, AssortKind::Undirected),
            Err(GraphError::EmptyGraph)
        );
    }

    #[test]
    fn zero_variance_errors() {
        // Directed 3-cycle: every endpoint degree is 2.
        let mut g: DiGraph<u32> = DiGraph::new();
        let ids: Vec<NodeId> = (0..3u32).map(|k| g.intern(k)).collect();
        g.add_edge(ids[0], ids[1], 1);
        g.add_edge(ids[1], ids[2], 1);
        g.add_edge(ids[2], ids[0], 1);
        assert!(matches!(
            assortativity(&g, AssortKind::Undirected),
            Err(GraphError::InsufficientSamples { .. })
        ));
    }

    #[test]
    fn out_in_variant_runs() {
        let ba = barabasi_albert(500, 2, 7);
        let r = assortativity(&ba, AssortKind::OutIn).unwrap();
        assert!((-1.0..=1.0).contains(&r));
    }

    #[test]
    fn result_bounded_by_one() {
        let er = gnm_undirected(300, 900, 9);
        let r = assortativity(&er, AssortKind::Undirected).unwrap();
        assert!((-1.0..=1.0).contains(&r));
    }
}
