//! Shortest-path metrics: BFS distances, average pairwise path length
//! (exact or source-sampled), diameter bounds, and connected
//! components.
//!
//! Magellan reports the average pairwise shortest path length `L_g` of
//! stable-peer graphs and compares it with the random-graph baseline
//! (§4.3, Fig. 7). Snapshots can be large, so alongside the exact
//! all-pairs BFS a seeded source-sampling estimator is provided; the
//! `ablation_estimators` bench quantifies the accuracy/cost trade-off.
//!
//! The hot kernels traverse a flat [`Csr`] snapshot view instead of
//! the `DiGraph`'s nested rows. [`average_path_length_csr`] packs its
//! sources into 64-wide batches and advances all wavefronts of a batch
//! simultaneously with the bit-parallel [`bfs_multi64_csr`] kernel —
//! one traversal per 64 sources instead of 64 — then fans the batches
//! across cores with [`magellan_par::par_map_collect_grained`]. The
//! source list is fixed (and any sampling RNG drawn) *before* the
//! fan-out, and the per-batch partial sums are integers reduced in
//! batch order, so the result is bit-identical for every thread count
//! *and* for every batching of the same source list.

use crate::csr::Csr;
use crate::{DiGraph, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::VecDeque;
use std::hash::Hash;

/// Marker for unreachable nodes in a distance vector.
pub const UNREACHABLE: u32 = u32::MAX;

/// Whether to follow edge directions during traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PathTreatment {
    /// Follow edges only from source to target.
    Directed,
    /// Treat every edge as bidirectional (the paper's choice: path
    /// lengths are about connectivity, not flow direction).
    Undirected,
}

/// How many BFS sources to use for the average-path-length estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PathSampling {
    /// BFS from every node: exact (`O(n · m)`).
    Exact,
    /// BFS from `count` uniformly sampled nodes, seeded for
    /// reproducibility. Unbiased for the mean over reachable pairs.
    Sources {
        /// Number of BFS sources.
        count: usize,
        /// RNG seed.
        seed: u64,
    },
}

/// Result of an average-path-length computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathLengthStats {
    /// Mean shortest-path length over reachable ordered pairs.
    pub mean: f64,
    /// Largest shortest-path distance seen (the diameter when exact
    /// and the graph is connected; a lower bound otherwise).
    pub diameter_lower_bound: u32,
    /// Number of reachable ordered pairs inspected.
    pub reachable_pairs: u64,
    /// Number of BFS sources used.
    pub sources: usize,
    /// Whether this is the exact value (all sources).
    pub exact: bool,
}

/// BFS distances from `src` to every node.
///
/// Unreachable nodes get [`UNREACHABLE`]. Builds a one-shot [`Csr`]
/// view; callers running many BFS passes over the same graph should
/// build the view once and call [`bfs_distances_csr`].
pub fn bfs_distances<N: Eq + Hash + Clone>(
    g: &DiGraph<N>,
    src: NodeId,
    treatment: PathTreatment,
) -> Vec<u32> {
    bfs_distances_csr(&Csr::from_digraph(g), src, treatment)
}

/// BFS distances from `src` over a prebuilt [`Csr`] snapshot.
///
/// Unreachable nodes get [`UNREACHABLE`]. The frontier is an index
/// cursor over a flat visit vector — no per-step deque shuffling —
/// and each popped node streams through one contiguous adjacency row.
pub fn bfs_distances_csr(csr: &Csr, src: NodeId, treatment: PathTreatment) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; csr.node_count()];
    let mut queue: Vec<NodeId> = Vec::with_capacity(csr.node_count().min(1024));
    dist[src.index()] = 0;
    queue.push(src);
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        let du = dist[u.index()];
        let row = match treatment {
            PathTreatment::Directed => csr.out(u),
            // The undirected row is the deduplicated union of out- and
            // in-neighbors, so one pass covers both directions.
            PathTreatment::Undirected => csr.und(u),
        };
        for &v in row {
            if dist[v.index()] == UNREACHABLE {
                dist[v.index()] = du + 1;
                queue.push(v);
            }
        }
    }
    dist
}

/// Aggregate BFS distance statistics for up to 64 sources at once,
/// advanced bit-parallel over one shared traversal.
///
/// Each source owns one bit of a per-node `u64` word: `seen[v]` holds
/// the sources that have reached `v`, `frontier[v]` the sources whose
/// wavefront sits on `v` this level. One level advances *every*
/// wavefront with a single sweep of the active adjacency rows —
/// `frontier[u] & !seen[v]` is the set of sources discovering `v`
/// through `u` — so a batch costs roughly one traversal of the graph
/// per BFS *level* instead of one full BFS per source.
///
/// Returns `(sum, pairs, far)` over the batch: the summed shortest-path
/// distances from each source to every node it reaches (excluding
/// itself), the count of such reachable ordered pairs, and the largest
/// finite distance seen. These are exactly the values accumulating
/// [`bfs_distances_csr`] per source would produce — integer partials,
/// so any batching of a source list reduces to identical totals.
///
/// # Panics
///
/// Panics if `sources` holds more than 64 ids (one bit each).
pub fn bfs_multi64_csr(csr: &Csr, sources: &[NodeId], treatment: PathTreatment) -> (u64, u64, u32) {
    assert!(
        sources.len() <= 64,
        "bfs_multi64_csr batches at most 64 sources, got {}",
        sources.len()
    );
    let n = csr.node_count();
    // `seen` and `next` interleaved per node ([0] = seen, [1] = next):
    // the inner sweep reads one and writes the other for the same
    // random node, so pairing them halves the cache lines it touches.
    let mut words = vec![[0u64; 2]; n];
    let mut frontier = vec![0u64; n];
    let mut cur: Vec<NodeId> = Vec::with_capacity(sources.len());
    for (b, &s) in sources.iter().enumerate() {
        let bit = 1u64 << b;
        if frontier[s.index()] == 0 {
            cur.push(s);
        }
        frontier[s.index()] |= bit;
        words[s.index()][0] |= bit;
    }
    cur.sort_unstable();
    cur.dedup();
    let (mut sum, mut pairs, mut far) = (0u64, 0u64, 0u32);
    let mut depth = 0u32;
    while !cur.is_empty() {
        depth += 1;
        for &u in &cur {
            let wave = frontier[u.index()];
            let row = match treatment {
                PathTreatment::Directed => csr.out(u),
                PathTreatment::Undirected => csr.und(u),
            };
            for &v in row {
                // Sources on `u`'s wavefront that have not reached `v`
                // yet: they all discover `v` now, at this depth.
                let w = &mut words[v.index()];
                let add = wave & !w[0];
                if add != 0 {
                    w[1] |= add;
                }
            }
        }
        for &u in &cur {
            frontier[u.index()] = 0;
        }
        cur.clear();
        // Commit the level with one sequential pass: every bit that
        // landed on `v` is a source whose shortest path to `v` has
        // length `depth`. The pass also rebuilds the frontier list in
        // ascending node order, which keeps the next sweep's adjacency
        // rows and frontier clears sequential in memory.
        for (vi, w) in words.iter_mut().enumerate() {
            let newly = w[1];
            if newly != 0 {
                w[0] |= newly;
                w[1] = 0;
                frontier[vi] = newly;
                cur.push(NodeId::from_index(vi));
                let found = u64::from(newly.count_ones());
                sum += u64::from(depth) * found;
                pairs += found;
            }
        }
        if !cur.is_empty() {
            far = depth;
        }
    }
    (sum, pairs, far)
}

/// Average pairwise shortest-path length `L_g`.
///
/// Averages over *reachable* ordered pairs `(s, t)` with `s != t`,
/// which matches the usual convention for graphs that are not fully
/// connected. Returns `None` when no pair is reachable (empty or
/// edgeless graph).
pub fn average_path_length<N: Eq + Hash + Clone>(
    g: &DiGraph<N>,
    treatment: PathTreatment,
    sampling: PathSampling,
) -> Option<PathLengthStats> {
    average_path_length_csr(&Csr::from_digraph(g), treatment, sampling)
}

/// [`average_path_length`] over a prebuilt [`Csr`] snapshot.
///
/// Sources are packed into 64-wide bit-parallel batches
/// ([`bfs_multi64_csr`]) and the batches fan out across cores — with a
/// grain of one, because a batch is a whole multi-source traversal and
/// always outweighs one pool dispatch. The source list (including any
/// seeded sampling shuffle) is fixed before the fan-out and the
/// per-batch integer partials are reduced in batch order, keeping the
/// result bit-identical for every thread count and batch split —
/// including the scalar one-BFS-per-source path this replaced.
pub fn average_path_length_csr(
    csr: &Csr,
    treatment: PathTreatment,
    sampling: PathSampling,
) -> Option<PathLengthStats> {
    let n = csr.node_count();
    if n < 2 {
        return None;
    }
    let (sources, exact): (Vec<NodeId>, bool) = match sampling {
        PathSampling::Exact => (csr.node_ids().collect(), true), // lint:allow(H2): owned BFS source list, one per kernel call
        PathSampling::Sources { count, seed } => {
            if count >= n {
                (csr.node_ids().collect(), true) // lint:allow(H2): owned BFS source list, one per kernel call
            } else {
                let mut ids: Vec<NodeId> = csr.node_ids().collect(); // lint:allow(H2): owned, shuffleable source sample, one per kernel call
                let mut rng = StdRng::seed_from_u64(seed);
                ids.shuffle(&mut rng);
                ids.truncate(count.max(1));
                (ids, false)
            }
        }
    };
    // Per-batch partials, in batch order. The totals are sums/maxima
    // of integers, so they are identical for any batching.
    let batches: Vec<&[NodeId]> = sources.chunks(64).collect(); // lint:allow(H2): owned batch list, one per kernel call
    let partials: Vec<(u64, u64, u32)> =
        magellan_par::par_map_collect_grained(batches.len(), 1, |k| {
            bfs_multi64_csr(csr, batches[k], treatment)
        });
    let mut sum = 0u64;
    let mut pairs = 0u64;
    let mut diameter = 0u32;
    for &(s, p, f) in &partials {
        sum += s;
        pairs += p;
        diameter = diameter.max(f);
    }
    if pairs == 0 {
        return None;
    }
    Some(PathLengthStats {
        mean: sum as f64 / pairs as f64,
        diameter_lower_bound: diameter,
        reachable_pairs: pairs,
        sources: sources.len(),
        exact,
    })
}

/// Weakly connected components, each as a sorted list of node ids.
/// Components are ordered by descending size (ties by smallest id).
pub fn weakly_connected_components<N: Eq + Hash + Clone>(g: &DiGraph<N>) -> Vec<Vec<NodeId>> {
    let n = g.node_count();
    let mut seen = vec![false; n];
    let mut comps: Vec<Vec<NodeId>> = Vec::new();
    for start in g.node_ids() {
        if seen[start.index()] {
            continue;
        }
        let mut comp = Vec::new();
        let mut queue = VecDeque::new();
        seen[start.index()] = true;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            comp.push(u);
            for v in g.out_neighbors(u).chain(g.in_neighbors(u)) {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    queue.push_back(v);
                }
            }
        }
        comp.sort();
        comps.push(comp);
    }
    comps.sort_by(|a, b| b.len().cmp(&a.len()).then(a[0].cmp(&b[0])));
    comps
}

/// Node ids of the largest weakly connected component (empty for an
/// empty graph).
pub fn largest_component<N: Eq + Hash + Clone>(g: &DiGraph<N>) -> Vec<NodeId> {
    weakly_connected_components(g)
        .into_iter()
        .next()
        .unwrap_or_default()
}

/// Fraction of nodes inside the largest weakly connected component.
pub fn largest_component_fraction<N: Eq + Hash + Clone>(g: &DiGraph<N>) -> f64 {
    let n = g.node_count();
    if n == 0 {
        return 0.0;
    }
    largest_component(g).len() as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Directed path 0 -> 1 -> 2 -> 3.
    fn path4() -> DiGraph<u32> {
        let mut g = DiGraph::new();
        let ids: Vec<_> = (0..4u32).map(|k| g.intern(k)).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], 1);
        }
        g
    }

    #[test]
    fn bfs_directed_respects_direction() {
        let g = path4();
        let src = g.node_id(&0).unwrap();
        let d = bfs_distances(&g, src, PathTreatment::Directed);
        assert_eq!(d, vec![0, 1, 2, 3]);
        let end = g.node_id(&3).unwrap();
        let d2 = bfs_distances(&g, end, PathTreatment::Directed);
        assert_eq!(d2[0], UNREACHABLE);
        assert_eq!(d2[3], 0);
    }

    #[test]
    fn bfs_undirected_ignores_direction() {
        let g = path4();
        let end = g.node_id(&3).unwrap();
        let d = bfs_distances(&g, end, PathTreatment::Undirected);
        assert_eq!(d, vec![3, 2, 1, 0]);
    }

    #[test]
    fn exact_average_path_on_path4_undirected() {
        let g = path4();
        // Ordered reachable pairs: distances 1,2,3 each appear twice,
        // distance 1 appears 2*3? Enumerate: pairs (i,j), i!=j, |i-j| sums:
        // sum over ordered pairs of |i-j| = 2*(1*3 + 2*2 + 3*1) = 20; pairs = 12.
        let s = average_path_length(&g, PathTreatment::Undirected, PathSampling::Exact).unwrap();
        assert!((s.mean - 20.0 / 12.0).abs() < 1e-12);
        assert_eq!(s.diameter_lower_bound, 3);
        assert_eq!(s.reachable_pairs, 12);
        assert!(s.exact);
    }

    #[test]
    fn directed_average_counts_only_reachable() {
        let g = path4();
        let s = average_path_length(&g, PathTreatment::Directed, PathSampling::Exact).unwrap();
        // Reachable ordered pairs: (0,1)(0,2)(0,3)(1,2)(1,3)(2,3): 1+2+3+1+2+1 = 10 over 6.
        assert!((s.mean - 10.0 / 6.0).abs() < 1e-12);
        assert_eq!(s.reachable_pairs, 6);
    }

    #[test]
    fn no_edges_means_none() {
        let mut g: DiGraph<u32> = DiGraph::new();
        g.intern(0);
        g.intern(1);
        assert!(average_path_length(&g, PathTreatment::Undirected, PathSampling::Exact).is_none());
    }

    #[test]
    fn single_node_means_none() {
        let mut g: DiGraph<u32> = DiGraph::new();
        g.intern(0);
        assert!(average_path_length(&g, PathTreatment::Undirected, PathSampling::Exact).is_none());
    }

    #[test]
    fn sampling_with_enough_sources_is_exact() {
        let g = path4();
        let s = average_path_length(
            &g,
            PathTreatment::Undirected,
            PathSampling::Sources { count: 10, seed: 3 },
        )
        .unwrap();
        assert!(s.exact);
        assert!((s.mean - 20.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_is_deterministic() {
        let g = path4();
        let a = average_path_length(
            &g,
            PathTreatment::Undirected,
            PathSampling::Sources { count: 2, seed: 9 },
        )
        .unwrap();
        let b = average_path_length(
            &g,
            PathTreatment::Undirected,
            PathSampling::Sources { count: 2, seed: 9 },
        )
        .unwrap();
        assert_eq!(a, b);
        assert!(!a.exact);
        assert_eq!(a.sources, 2);
    }

    /// Scalar reference: accumulate `(sum, pairs, far)` with one
    /// [`bfs_distances_csr`] pass per source.
    fn scalar_stats(csr: &Csr, sources: &[NodeId], treatment: PathTreatment) -> (u64, u64, u32) {
        let (mut sum, mut pairs, mut far) = (0u64, 0u64, 0u32);
        for &src in sources {
            let dist = bfs_distances_csr(csr, src, treatment);
            for (i, &d) in dist.iter().enumerate() {
                if d != UNREACHABLE && i != src.index() {
                    sum += u64::from(d);
                    pairs += 1;
                    far = far.max(d);
                }
            }
        }
        (sum, pairs, far)
    }

    #[test]
    fn multi64_matches_scalar_bfs_on_random_graphs() {
        for (seed, beta) in [(1u64, 0.1), (7, 0.4)] {
            let g = crate::random::watts_strogatz(300, 6, beta, seed);
            let csr = Csr::from_digraph(&g);
            let sources: Vec<NodeId> = csr.node_ids().take(64).collect();
            for treatment in [PathTreatment::Undirected, PathTreatment::Directed] {
                let batch = bfs_multi64_csr(&csr, &sources, treatment);
                let scalar = scalar_stats(&csr, &sources, treatment);
                assert_eq!(batch, scalar, "seed {seed} beta {beta} {treatment:?}");
            }
        }
    }

    #[test]
    fn multi64_matches_scalar_on_disconnected_graph() {
        let mut g: DiGraph<u32> = DiGraph::new();
        let ids: Vec<_> = (0..9u32).map(|k| g.intern(k)).collect();
        for w in ids[..4].windows(2) {
            g.add_edge(w[0], w[1], 1);
        }
        for w in ids[4..].windows(2) {
            g.add_edge(w[0], w[1], 1);
        }
        let csr = Csr::from_digraph(&g);
        let sources: Vec<NodeId> = csr.node_ids().collect();
        for treatment in [PathTreatment::Undirected, PathTreatment::Directed] {
            let batch = bfs_multi64_csr(&csr, &sources, treatment);
            let scalar = scalar_stats(&csr, &sources, treatment);
            assert_eq!(batch, scalar, "{treatment:?}");
        }
    }

    #[test]
    fn multi64_handles_partial_and_duplicate_batches() {
        let g = crate::random::watts_strogatz(100, 4, 0.2, 3);
        let csr = Csr::from_digraph(&g);
        let few: Vec<NodeId> = csr.node_ids().take(5).collect();
        let batch = bfs_multi64_csr(&csr, &few, PathTreatment::Undirected);
        assert_eq!(batch, scalar_stats(&csr, &few, PathTreatment::Undirected));
        // A repeated source counts twice, exactly as two scalar passes would.
        let dup = vec![few[0], few[0]];
        let batch = bfs_multi64_csr(&csr, &dup, PathTreatment::Undirected);
        assert_eq!(batch, scalar_stats(&csr, &dup, PathTreatment::Undirected));
        // An empty batch is a no-op.
        assert_eq!(
            bfs_multi64_csr(&csr, &[], PathTreatment::Undirected),
            (0, 0, 0)
        );
    }

    #[test]
    fn multi64_batched_exact_apl_matches_scalar_accumulation() {
        // More nodes than one batch: exercises the chunked reduction in
        // average_path_length_csr against the scalar per-source totals.
        let g = crate::random::watts_strogatz(150, 4, 0.15, 11);
        let csr = Csr::from_digraph(&g);
        let sources: Vec<NodeId> = csr.node_ids().collect();
        let (sum, pairs, far) = scalar_stats(&csr, &sources, PathTreatment::Undirected);
        let s = average_path_length_csr(&csr, PathTreatment::Undirected, PathSampling::Exact)
            .expect("connected enough");
        assert_eq!(s.reachable_pairs, pairs);
        assert_eq!(s.diameter_lower_bound, far);
        assert_eq!(s.mean.to_bits(), (sum as f64 / pairs as f64).to_bits());
        assert!(s.exact);
    }

    #[test]
    fn components_split_and_order() {
        let mut g: DiGraph<u32> = DiGraph::new();
        let ids: Vec<_> = (0..5u32).map(|k| g.intern(k)).collect();
        g.add_edge(ids[0], ids[1], 1);
        g.add_edge(ids[1], ids[2], 1);
        g.add_edge(ids[3], ids[4], 1);
        let comps = weakly_connected_components(&g);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![ids[0], ids[1], ids[2]]);
        assert_eq!(comps[1], vec![ids[3], ids[4]]);
        assert_eq!(largest_component(&g).len(), 3);
        assert!((largest_component_fraction(&g) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_components() {
        let g: DiGraph<u32> = DiGraph::new();
        assert!(weakly_connected_components(&g).is_empty());
        assert!(largest_component(&g).is_empty());
        assert_eq!(largest_component_fraction(&g), 0.0);
    }
}
