//! Degree metrics over a [`DiGraph`].
//!
//! The Magellan study distinguishes three degree notions per peer
//! (§4.2): *indegree* (active supplying partners), *outdegree* (active
//! receiving partners), and the *total partner count*. The first two
//! map onto the directed graph's in/out degrees; the partner count is
//! carried by the trace layer (it includes non-active partners and so
//! is not derivable from the active-link graph alone) but the same
//! histogram machinery applies.

use crate::histogram::DegreeHistogram;
use crate::{DiGraph, NodeId};
use std::hash::Hash;

/// Which degree of a directed graph to measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DegreeKind {
    /// Number of distinct in-neighbors (active supplying partners).
    In,
    /// Number of distinct out-neighbors (active receiving partners).
    Out,
    /// Number of distinct neighbors in either direction.
    Undirected,
}

/// The degree of one node under `kind`.
pub fn degree_of<N: Eq + Hash + Clone>(g: &DiGraph<N>, id: NodeId, kind: DegreeKind) -> usize {
    match kind {
        DegreeKind::In => g.in_degree(id),
        DegreeKind::Out => g.out_degree(id),
        DegreeKind::Undirected => g.undirected_degree(id),
    }
}

/// All node degrees under `kind`, indexed by [`NodeId::index`].
pub fn degree_sequence<N: Eq + Hash + Clone>(g: &DiGraph<N>, kind: DegreeKind) -> Vec<usize> {
    g.node_ids().map(|id| degree_of(g, id, kind)).collect()
}

/// Histogram of node degrees under `kind`.
pub fn degree_histogram<N: Eq + Hash + Clone>(g: &DiGraph<N>, kind: DegreeKind) -> DegreeHistogram {
    degree_sequence(g, kind).into_iter().collect()
}

/// Average degree under `kind` (0.0 on an empty graph).
pub fn average_degree<N: Eq + Hash + Clone>(g: &DiGraph<N>, kind: DegreeKind) -> f64 {
    if g.node_count() == 0 {
        return 0.0;
    }
    let sum: usize = degree_sequence(g, kind).into_iter().sum();
    sum as f64 / g.node_count() as f64
}

/// Summary statistics of a degree sequence, as reported in Fig. 5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeSummary {
    /// Mean degree.
    pub mean: f64,
    /// Maximum degree.
    pub max: usize,
    /// Median degree.
    pub median: usize,
    /// Location of the distribution spike (mode, excluding 0).
    pub spike: Option<usize>,
}

/// Computes [`DegreeSummary`] for `kind`.
///
/// Returns `None` on an empty graph.
pub fn degree_summary<N: Eq + Hash + Clone>(
    g: &DiGraph<N>,
    kind: DegreeKind,
) -> Option<DegreeSummary> {
    if g.node_count() == 0 {
        return None;
    }
    let h = degree_histogram(g, kind);
    Some(DegreeSummary {
        mean: h.mean(),
        max: h.max_degree().unwrap_or(0),
        median: h.quantile(0.5).unwrap_or(0),
        spike: h.spike(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Star: hub 0 -> {1, 2, 3}, plus 1 -> 0.
    fn star() -> DiGraph<u32> {
        let mut g = DiGraph::new();
        let ids: Vec<_> = (0..4u32).map(|k| g.intern(k)).collect();
        g.add_edge(ids[0], ids[1], 1);
        g.add_edge(ids[0], ids[2], 1);
        g.add_edge(ids[0], ids[3], 1);
        g.add_edge(ids[1], ids[0], 1);
        g
    }

    #[test]
    fn degree_of_each_kind() {
        let g = star();
        let hub = g.node_id(&0).unwrap();
        assert_eq!(degree_of(&g, hub, DegreeKind::Out), 3);
        assert_eq!(degree_of(&g, hub, DegreeKind::In), 1);
        assert_eq!(degree_of(&g, hub, DegreeKind::Undirected), 3);
    }

    #[test]
    fn sequence_is_indexed_by_node_id() {
        let g = star();
        let seq = degree_sequence(&g, DegreeKind::Out);
        assert_eq!(seq, vec![3, 1, 0, 0]);
    }

    #[test]
    fn average_degree_directed_equals_edges_over_nodes() {
        let g = star();
        let avg = average_degree(&g, DegreeKind::Out);
        assert!((avg - 4.0 / 4.0).abs() < 1e-12);
        // In and out averages always match (each edge contributes one each).
        assert!((average_degree(&g, DegreeKind::In) - avg).abs() < 1e-12);
    }

    #[test]
    fn summary_on_star() {
        let g = star();
        let s = degree_summary(&g, DegreeKind::Undirected).unwrap();
        assert_eq!(s.max, 3);
        assert_eq!(s.spike, Some(1));
        assert!((s.mean - 6.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn summary_empty_graph_is_none() {
        let g: DiGraph<u32> = DiGraph::new();
        assert!(degree_summary(&g, DegreeKind::In).is_none());
        assert_eq!(average_degree(&g, DegreeKind::In), 0.0);
    }

    #[test]
    fn histogram_total_matches_node_count() {
        let g = star();
        let h = degree_histogram(&g, DegreeKind::In);
        assert_eq!(h.total(), 4);
    }
}
