//! Small-world assessment (paper §4.3, Fig. 7).
//!
//! A graph is declared a small world when (1) its average pairwise
//! shortest-path length `L_g` is close to that of a corresponding
//! random graph `L_rand` and (2) its clustering coefficient `C_g` is
//! much larger — the paper observes "more than an order of magnitude"
//! — than `C_rand`. The "corresponding random graph" has the same
//! number of vertices and undirected links.

use crate::csr::Csr;
use crate::paths::{average_path_length_csr, PathSampling, PathTreatment};
use crate::random::RandomBaseline;
use crate::{clustering, DiGraph};
use std::hash::Hash;

/// Tunables for the small-world assessment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmallWorldConfig {
    /// Path-length estimator to use on the subject graph.
    pub path_sampling: PathSampling,
    /// When `Some(k)`, estimate clustering from `k` sampled nodes.
    pub clustering_samples: Option<usize>,
    /// Seed for any sampling.
    pub seed: u64,
    /// Minimum `C_g / C_rand` ratio to call the clustering "large"
    /// (the paper's "order of magnitude" reads as ≥ 10).
    pub clustering_ratio_threshold: f64,
    /// Maximum `L_g / L_rand` ratio to call the path length "close".
    pub length_slack: f64,
}

impl Default for SmallWorldConfig {
    fn default() -> Self {
        SmallWorldConfig {
            path_sampling: PathSampling::Exact,
            clustering_samples: None,
            seed: 0x5EED,
            clustering_ratio_threshold: 10.0,
            length_slack: 2.0,
        }
    }
}

/// The measured small-world quantities of one graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmallWorldReport {
    /// Nodes in the graph.
    pub n: usize,
    /// Undirected link count (bilateral pairs collapsed).
    pub undirected_edges: usize,
    /// Measured clustering coefficient `C_g`.
    pub c: f64,
    /// Random baseline `C_rand` (link density).
    pub c_rand: f64,
    /// Measured average path length `L_g`, when any pair is reachable.
    pub l: Option<f64>,
    /// Random baseline `L_rand ≈ ln n / ln ⟨k⟩`, when defined.
    pub l_rand: Option<f64>,
    /// `C_g / C_rand` (infinite when `C_rand = 0` and `C_g > 0`).
    pub c_ratio: f64,
    /// The verdict under the thresholds in [`SmallWorldConfig`].
    pub is_small_world: bool,
}

/// Measures `C`, `L`, their random baselines, and renders the
/// small-world verdict.
///
/// Builds one [`Csr`] snapshot and shares it between the clustering
/// and path-length kernels; call [`assess_csr`] directly to reuse a
/// view you already built.
pub fn assess<N: Eq + Hash + Clone>(g: &DiGraph<N>, cfg: &SmallWorldConfig) -> SmallWorldReport {
    assess_csr(&Csr::from_digraph(g), cfg)
}

/// [`assess`] over a prebuilt [`Csr`] snapshot.
pub fn assess_csr(csr: &Csr, cfg: &SmallWorldConfig) -> SmallWorldReport {
    let c = match cfg.clustering_samples {
        Some(k) => clustering::sampled_clustering_csr(csr, k, cfg.seed),
        None => clustering::clustering_coefficient_csr(csr),
    };
    assess_csr_with_clustering(csr, c, cfg)
}

/// [`assess_csr`] with the clustering coefficient `c` supplied by the
/// caller instead of recomputed from the snapshot — the hook that lets
/// the study hand in the exact `C_g` maintained by
/// [`crate::IncrementalTopology`] and skip the `O(Σ k²)` triangle
/// recount. `c` must be the Watts–Strogatz graph clustering
/// coefficient of the same topology `csr` views.
pub fn assess_csr_with_clustering(csr: &Csr, c: f64, cfg: &SmallWorldConfig) -> SmallWorldReport {
    let n = csr.node_count();
    let m_und = csr.und_edge_count();
    let baseline = RandomBaseline::analytic(n, m_und);
    let l =
        average_path_length_csr(csr, PathTreatment::Undirected, cfg.path_sampling).map(|s| s.mean);
    let c_ratio = if baseline.c_expected > 0.0 {
        c / baseline.c_expected
    } else if c > 0.0 {
        f64::INFINITY
    } else {
        0.0
    };
    let length_ok = match (l, baseline.l_expected) {
        (Some(lg), Some(lr)) if lr > 0.0 => lg / lr <= cfg.length_slack,
        _ => false,
    };
    SmallWorldReport {
        n,
        undirected_edges: m_und,
        c,
        c_rand: baseline.c_expected,
        l,
        l_rand: baseline.l_expected,
        c_ratio,
        is_small_world: c_ratio >= cfg.clustering_ratio_threshold && length_ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::{gnm_undirected, watts_strogatz};

    #[test]
    fn watts_strogatz_mid_beta_is_small_world() {
        let g = watts_strogatz(400, 8, 0.1, 21);
        let report = assess(&g, &SmallWorldConfig::default());
        assert!(
            report.is_small_world,
            "WS(400, 8, 0.1) should be small world: {report:?}"
        );
        assert!(report.c_ratio >= 10.0);
    }

    #[test]
    fn random_graph_is_not_small_world() {
        let g = gnm_undirected(400, 1600, 3);
        let report = assess(&g, &SmallWorldConfig::default());
        // ER clustering ≈ density, so the ratio hovers near 1.
        assert!(!report.is_small_world, "ER graph misclassified: {report:?}");
        assert!(report.c_ratio < 5.0, "c_ratio = {}", report.c_ratio);
    }

    #[test]
    fn pure_lattice_fails_on_path_length() {
        // Beta = 0: highly clustered but L grows linearly -> not small world.
        let g = watts_strogatz(600, 4, 0.0, 1);
        let report = assess(&g, &SmallWorldConfig::default());
        assert!(!report.is_small_world, "{report:?}");
        // It *is* highly clustered...
        assert!(report.c_ratio > 10.0);
        // ...but paths are long.
        let l = report.l.unwrap();
        let lr = report.l_rand.unwrap();
        assert!(l / lr > 2.0, "l = {l}, l_rand = {lr}");
    }

    #[test]
    fn empty_graph_report_is_sane() {
        let g: DiGraph<u32> = DiGraph::new();
        let report = assess(&g, &SmallWorldConfig::default());
        assert_eq!(report.n, 0);
        assert!(!report.is_small_world);
        assert_eq!(report.c_ratio, 0.0);
        assert_eq!(report.l, None);
    }

    #[test]
    fn precomputed_clustering_matches_inline_computation() {
        let g = watts_strogatz(200, 6, 0.15, 11);
        let csr = Csr::from_digraph(&g);
        let cfg = SmallWorldConfig::default();
        let inline = assess_csr(&csr, &cfg);
        let handed =
            assess_csr_with_clustering(&csr, clustering::clustering_coefficient_csr(&csr), &cfg);
        assert_eq!(inline, handed);
    }

    #[test]
    fn sampled_assessment_is_deterministic() {
        let g = watts_strogatz(300, 6, 0.1, 77);
        let cfg = SmallWorldConfig {
            path_sampling: PathSampling::Sources { count: 30, seed: 5 },
            clustering_samples: Some(50),
            ..SmallWorldConfig::default()
        };
        let a = assess(&g, &cfg);
        let b = assess(&g, &cfg);
        assert_eq!(a, b);
    }
}
