//! Watts–Strogatz clustering coefficients.
//!
//! The paper computes `C_g = (1/n) Σ C_i`, where `C_i` is the fraction
//! of possible edges that exist among vertex `i`'s neighborhood, on the
//! undirected projection of the active-link graph (§4.3). Nodes with
//! fewer than two neighbors contribute `C_i = 0`, following the
//! convention of Watts' *Six Degrees* which the paper cites.
//!
//! The kernels run over a flat [`Csr`] snapshot view. Per-node `C_i`
//! values are independent, so the graph-level sums fan out across
//! cores with [`magellan_par::par_map_collect_grained`] (at
//! [`CLUSTERING_GRAIN`] nodes per worker minimum — each node costs
//! `O(k²)` intersections, far more than the reciprocity merges, so the
//! quota is correspondingly smaller); the per-node values come back in
//! node order and are summed left-to-right, keeping every coefficient
//! bit-identical for any thread count. For repeated
//! single-node queries build the [`Csr`] once and pass it to
//! [`local_clustering_csr`] — the one-shot [`local_clustering`]
//! rebuilds all neighborhoods (`O(n + m)`) on every call.

use crate::csr::Csr;
use crate::{DiGraph, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::hash::Hash;

/// Per-worker node quota for the clustering kernels: each node's `C_i`
/// runs `k` sorted-row intersections over its neighborhood, so a few
/// hundred nodes already outweigh a fork/join round-trip.
const CLUSTERING_GRAIN: usize = 256;

/// Number of common elements of two ascending-sorted slices.
fn intersection_size(a: &[NodeId], b: &[NodeId]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// `C_i` from a prebuilt snapshot view.
fn local_from_csr(csr: &Csr, id: NodeId) -> f64 {
    let hood = csr.und(id);
    let k = hood.len();
    if k < 2 {
        return 0.0;
    }
    // Each undirected edge (u, v) among the neighborhood is found twice:
    // v in N(u) and u in N(v).
    let mut twice_links = 0usize;
    for &u in hood {
        twice_links += intersection_size(csr.und(u), hood);
    }
    twice_links as f64 / (k * (k - 1)) as f64
}

/// The local clustering coefficient `C_i` of one node on a prebuilt
/// [`Csr`] snapshot — the reusable-handle form of
/// [`local_clustering`]: build the view once, query many nodes for
/// free.
pub fn local_clustering_csr(csr: &Csr, id: NodeId) -> f64 {
    local_from_csr(csr, id)
}

/// The local clustering coefficient `C_i` of one node, on the
/// undirected projection. `0.0` for nodes with fewer than 2 neighbors.
///
/// Convenience one-shot: rebuilds every neighborhood (`O(n + m)`) per
/// call. Querying more than one node? Build a [`Csr`] once and use
/// [`local_clustering_csr`].
pub fn local_clustering<N: Eq + Hash + Clone>(g: &DiGraph<N>, id: NodeId) -> f64 {
    local_from_csr(&Csr::from_digraph(g), id)
}

/// The graph clustering coefficient `C_g = (1/n) Σ C_i`.
///
/// Returns `0.0` on an empty graph.
pub fn clustering_coefficient<N: Eq + Hash + Clone>(g: &DiGraph<N>) -> f64 {
    clustering_coefficient_csr(&Csr::from_digraph(g))
}

/// [`clustering_coefficient`] over a prebuilt [`Csr`] snapshot,
/// fanning the per-node coefficients across cores.
pub fn clustering_coefficient_csr(csr: &Csr) -> f64 {
    let n = csr.node_count();
    if n == 0 {
        return 0.0;
    }
    let locals = magellan_par::par_map_collect_grained(n, CLUSTERING_GRAIN, |i| {
        local_from_csr(csr, NodeId::from_index(i))
    });
    locals.iter().sum::<f64>() / n as f64
}

/// Estimates the clustering coefficient from a uniform sample of
/// `samples` nodes (without replacement), deterministic in `seed`.
///
/// Falls back to the exact value when `samples >= node_count`.
pub fn sampled_clustering<N: Eq + Hash + Clone>(g: &DiGraph<N>, samples: usize, seed: u64) -> f64 {
    sampled_clustering_csr(&Csr::from_digraph(g), samples, seed)
}

/// [`sampled_clustering`] over a prebuilt [`Csr`] snapshot. The sample
/// is drawn (seeded) before the fan-out, so the estimate is identical
/// for every thread count.
pub fn sampled_clustering_csr(csr: &Csr, samples: usize, seed: u64) -> f64 {
    let n = csr.node_count();
    if n == 0 {
        return 0.0;
    }
    if samples >= n {
        return clustering_coefficient_csr(csr);
    }
    let mut ids: Vec<NodeId> = csr.node_ids().collect(); // lint:allow(H2): sampling needs an owned, shuffleable id list; one allocation per kernel call
    let mut rng = StdRng::seed_from_u64(seed);
    ids.shuffle(&mut rng);
    ids.truncate(samples);
    let locals = magellan_par::par_map_collect_grained(ids.len(), CLUSTERING_GRAIN, |k| {
        local_from_csr(csr, ids[k])
    });
    locals.iter().sum::<f64>() / samples as f64
}

/// Global transitivity: `3 × triangles / connected triples`, an
/// alternative clustering notion useful for cross-checking `C_g`.
///
/// Returns `0.0` when the graph has no connected triple.
pub fn transitivity<N: Eq + Hash + Clone>(g: &DiGraph<N>) -> f64 {
    transitivity_csr(&Csr::from_digraph(g))
}

/// [`transitivity`] over a prebuilt [`Csr`] snapshot, fanning the
/// per-node triple/link counts across cores (integer partials, summed
/// in node order).
pub fn transitivity_csr(csr: &Csr) -> f64 {
    let partials: Vec<(u64, u64)> =
        magellan_par::par_map_collect_grained(csr.node_count(), CLUSTERING_GRAIN, |i| {
            let hood = csr.und(NodeId::from_index(i));
            let k = hood.len() as u64;
            if k < 2 {
                return (0, 0);
            }
            let mut twice_links = 0usize;
            for &u in hood {
                twice_links += intersection_size(csr.und(u), hood);
            }
            (twice_links as u64, k * (k - 1))
        });
    let mut closed = 0u64; // ordered pairs of neighbors that are linked
    let mut triples = 0u64; // ordered pairs of neighbors
    for &(c, t) in &partials {
        closed += c;
        triples += t;
    }
    if triples == 0 {
        return 0.0;
    }
    closed as f64 / triples as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> DiGraph<u32> {
        // 0 - 1 - 2 (undirected path via directed edges)
        let mut g = DiGraph::new();
        let ids: Vec<_> = (0..3u32).map(|k| g.intern(k)).collect();
        g.add_edge(ids[0], ids[1], 1);
        g.add_edge(ids[1], ids[2], 1);
        g
    }

    fn triangle() -> DiGraph<u32> {
        let mut g = DiGraph::new();
        let ids: Vec<_> = (0..3u32).map(|k| g.intern(k)).collect();
        g.add_edge(ids[0], ids[1], 1);
        g.add_edge(ids[1], ids[2], 1);
        g.add_edge(ids[2], ids[0], 1);
        g
    }

    /// K4 built from one direction per pair.
    fn k4() -> DiGraph<u32> {
        let mut g = DiGraph::new();
        let ids: Vec<_> = (0..4u32).map(|k| g.intern(k)).collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                g.add_edge(ids[i], ids[j], 1);
            }
        }
        g
    }

    #[test]
    fn triangle_is_fully_clustered() {
        let g = triangle();
        assert!((clustering_coefficient(&g) - 1.0).abs() < 1e-12);
        assert!((transitivity(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn path_has_zero_clustering() {
        let g = path3();
        assert_eq!(clustering_coefficient(&g), 0.0);
        assert_eq!(transitivity(&g), 0.0);
    }

    #[test]
    fn complete_graph_is_fully_clustered() {
        let g = k4();
        assert!((clustering_coefficient(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn local_values_on_paw_graph() {
        // Triangle 0-1-2 plus pendant 3 attached to 0.
        let mut g = triangle();
        let n3 = g.intern(3);
        let n0 = g.node_id(&0).unwrap();
        g.add_edge(n0, n3, 1);
        // Node 0 has neighbors {1, 2, 3}; one of the 3 possible edges
        // among them exists.
        assert!((local_clustering(&g, n0) - 1.0 / 3.0).abs() < 1e-12);
        // Node 1 has neighbors {0, 2}; the edge 0-2 exists.
        let n1 = g.node_id(&1).unwrap();
        assert!((local_clustering(&g, n1) - 1.0).abs() < 1e-12);
        // Pendant has one neighbor: zero by convention.
        assert_eq!(local_clustering(&g, n3), 0.0);
        // Graph coefficient = (1/3 + 1 + 1 + 0) / 4.
        let expect = (1.0 / 3.0 + 1.0 + 1.0) / 4.0;
        assert!((clustering_coefficient(&g) - expect).abs() < 1e-12);
    }

    #[test]
    fn reusable_csr_handle_matches_one_shot_queries() {
        let mut g = triangle();
        let n3 = g.intern(3);
        let n0 = g.node_id(&0).unwrap();
        g.add_edge(n0, n3, 1);
        // One view, many queries — the satellite-fix API: no O(n + m)
        // neighborhood rebuild per node.
        let csr = Csr::from_digraph(&g);
        for id in g.node_ids() {
            assert_eq!(
                local_clustering_csr(&csr, id).to_bits(),
                local_clustering(&g, id).to_bits(),
                "node {id}"
            );
        }
    }

    #[test]
    fn reciprocal_edges_do_not_double_count() {
        // Triangle with every edge bidirectional must still give C = 1.
        let mut g = triangle();
        let ids: Vec<_> = (0..3u32).map(|k| g.node_id(&k).unwrap()).collect();
        g.add_edge(ids[1], ids[0], 1);
        g.add_edge(ids[2], ids[1], 1);
        g.add_edge(ids[0], ids[2], 1);
        assert!((clustering_coefficient(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_is_zero() {
        let g: DiGraph<u32> = DiGraph::new();
        assert_eq!(clustering_coefficient(&g), 0.0);
        assert_eq!(transitivity(&g), 0.0);
        assert_eq!(sampled_clustering(&g, 10, 1), 0.0);
    }

    #[test]
    fn sampling_full_population_equals_exact() {
        let g = k4();
        let exact = clustering_coefficient(&g);
        assert!((sampled_clustering(&g, 100, 7) - exact).abs() < 1e-12);
    }

    #[test]
    fn sampling_is_deterministic_in_seed() {
        let g = k4();
        let a = sampled_clustering(&g, 2, 42);
        let b = sampled_clustering(&g, 2, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_and_sequential_runs_are_bit_identical() {
        // A graph big enough to cross the par cutoff.
        let g = crate::random::watts_strogatz(300, 6, 0.2, 11);
        let csr = Csr::from_digraph(&g);
        magellan_par::set_threads(1);
        let seq = clustering_coefficient_csr(&csr);
        let seq_t = transitivity_csr(&csr);
        let seq_s = sampled_clustering_csr(&csr, 128, 5);
        magellan_par::set_threads(8);
        let par = clustering_coefficient_csr(&csr);
        let par_t = transitivity_csr(&csr);
        let par_s = sampled_clustering_csr(&csr, 128, 5);
        magellan_par::set_threads(0);
        assert_eq!(seq.to_bits(), par.to_bits());
        assert_eq!(seq_t.to_bits(), par_t.to_bits());
        assert_eq!(seq_s.to_bits(), par_s.to_bits());
    }
}
