//! # magellan-graph
//!
//! Directed-graph data structure and the topology metrics used by the
//! Magellan study of large-scale P2P live streaming overlays (Wu, Li &
//! Zhao, ICDCS 2007): degree distributions, Watts–Strogatz clustering,
//! average shortest-path lengths, Erdős–Rényi baselines, simple and
//! Garlaschelli–Loffredo edge reciprocity, power-law fitting, and
//! small-world assessment.
//!
//! The central type is [`DiGraph`], a weighted directed graph with
//! interned node keys. All metrics are free functions (or thin structs)
//! over `&DiGraph<N>` so that they compose with the subgraph extractors
//! in [`subgraph`].
//!
//! ## Example
//!
//! ```
//! use magellan_graph::{DiGraph, reciprocity};
//!
//! let mut g: DiGraph<&str> = DiGraph::new();
//! let a = g.intern("a");
//! let b = g.intern("b");
//! let c = g.intern("c");
//! g.add_edge(a, b, 1);
//! g.add_edge(b, a, 1); // reciprocal pair
//! g.add_edge(b, c, 1); // one-way
//! let r = reciprocity::simple_reciprocity(&g);
//! assert!((r - 2.0 / 3.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod digraph;
mod histogram;

pub mod assortativity;
pub mod clustering;
pub mod csr;
pub mod degree;
pub mod export;
pub mod incremental;
pub mod invariants;
pub mod kcore;
pub mod paths;
pub mod powerlaw;
pub mod random;
pub mod reciprocity;
pub mod smallworld;
pub mod subgraph;

pub use csr::Csr;
pub use digraph::{DiGraph, EdgeRef, NodeId};
pub use histogram::{DegreeHistogram, HistogramPoint};
pub use incremental::{CsrDelta, IncrementalTopology, SyncReport};

use std::error::Error;
use std::fmt;

/// Errors produced by graph construction and metric evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A metric that needs at least one edge was asked of an empty graph.
    EmptyGraph,
    /// A metric that is undefined on a complete graph (density 1).
    CompleteGraph,
    /// Not enough samples to fit a distribution.
    InsufficientSamples {
        /// How many samples were provided.
        got: usize,
        /// How many samples the estimator needs.
        need: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::EmptyGraph => write!(f, "metric undefined on a graph without edges"),
            GraphError::CompleteGraph => {
                write!(f, "metric undefined on a complete graph (density 1)")
            }
            GraphError::InsufficientSamples { got, need } => {
                write!(f, "insufficient samples: got {got}, need at least {need}")
            }
        }
    }
}

impl Error for GraphError {}
