//! The core weighted directed-graph type with interned node keys.

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

/// Opaque handle for a node inside a [`DiGraph`].
///
/// Node ids are dense (`0..node_count()`) and only meaningful for the
/// graph that produced them. They are `Copy` and cheap to pass around;
/// metric implementations index per-node scratch arrays with
/// [`NodeId::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The dense index of this node, in `0..node_count()`.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a dense index.
    ///
    /// Use only with indices obtained from the same graph (for example
    /// when iterating `0..g.node_count()`).
    ///
    /// # Panics
    ///
    /// Panics when `index` does not fit in the `u32` node-id space —
    /// a silent truncation here would alias two distinct nodes, which
    /// is precisely the kind of bug that corrupts metrics quietly.
    pub fn from_index(index: usize) -> Self {
        match u32::try_from(index) {
            Ok(raw) => NodeId(raw),
            Err(_) => panic!("node index {index} exceeds the u32 node-id space"),
        }
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A borrowed view of one directed edge, as yielded by [`DiGraph::edges`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeRef {
    /// Source node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Accumulated edge weight (segment count in Magellan's traces).
    pub weight: u64,
}

/// A weighted directed graph with nodes identified by an arbitrary
/// hashable key type `N`.
///
/// Designed for the snapshot topologies of the Magellan study: node
/// keys are peer identities (IP addresses), edge weights are segment
/// counters, and the graph is built once per snapshot then queried by
/// many metrics. Adjacency lists are kept sorted so that edge lookup is
/// `O(log d)` and neighborhood intersection (for clustering) is a
/// linear merge.
///
/// Self-loops are rejected at insertion: every metric in the paper
/// (clustering, reciprocity, path lengths) is defined over the sums
/// with `i != j`.
#[derive(Debug, Clone)]
pub struct DiGraph<N> {
    keys: Vec<N>,
    index: HashMap<N, NodeId>,
    /// Outgoing adjacency: sorted by target id.
    out: Vec<Vec<(NodeId, u64)>>,
    /// Incoming adjacency: sorted by source id.
    inc: Vec<Vec<NodeId>>,
    edge_count: usize,
}

impl<N> Default for DiGraph<N> {
    fn default() -> Self {
        DiGraph {
            keys: Vec::new(),
            index: HashMap::new(),
            out: Vec::new(),
            inc: Vec::new(),
            edge_count: 0,
        }
    }
}

impl<N: Eq + Hash + Clone> DiGraph<N> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph with room for `nodes` nodes.
    pub fn with_capacity(nodes: usize) -> Self {
        DiGraph {
            keys: Vec::with_capacity(nodes),
            index: HashMap::with_capacity(nodes),
            out: Vec::with_capacity(nodes),
            inc: Vec::with_capacity(nodes),
            edge_count: 0,
        }
    }

    /// Returns the id for `key`, inserting a fresh node when the key has
    /// not been seen before.
    pub fn intern(&mut self, key: N) -> NodeId {
        if let Some(&id) = self.index.get(&key) {
            return id;
        }
        let next = u32::try_from(self.keys.len()).expect("node count exceeds u32::MAX");
        let id = NodeId(next);
        self.keys.push(key.clone()); // lint:allow(H2): interning stores an owned key; one clone per newly seen node by design
        self.index.insert(key, id);
        self.out.push(Vec::new());
        self.inc.push(Vec::new());
        id
    }

    /// Looks up the id of an existing node.
    pub fn node_id(&self, key: &N) -> Option<NodeId> {
        self.index.get(key).copied()
    }

    /// The key associated with `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this graph.
    pub fn key(&self, id: NodeId) -> &N {
        &self.keys[id.index()]
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.keys.len()
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Adds `weight` to the directed edge `from -> to`, creating the
    /// edge when absent. Returns `true` when a new edge was created.
    ///
    /// # Panics
    ///
    /// Panics if `from == to` (self-loops carry no meaning in any of
    /// the Magellan metrics) or if either id is out of range.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, weight: u64) -> bool {
        assert!(from != to, "self-loop {from} -> {to} rejected");
        assert!(to.index() < self.keys.len(), "node id {to} out of range");
        let row = &mut self.out[from.index()];
        match row.binary_search_by_key(&to, |&(t, _)| t) {
            Ok(pos) => {
                row[pos].1 = row[pos].1.saturating_add(weight);
                false
            }
            Err(pos) => {
                row.insert(pos, (to, weight));
                let irow = &mut self.inc[to.index()];
                let ipos = irow.binary_search(&from).unwrap_err();
                irow.insert(ipos, from);
                self.edge_count += 1;
                true
            }
        }
    }

    /// Interns both keys and adds the edge between them in one call.
    ///
    /// Edges where both endpoints intern to the same node (duplicate
    /// keys) are skipped rather than panicking, since trace data may
    /// contain a peer listing itself; returns `false` in that case.
    pub fn add_edge_by_key(&mut self, from: N, to: N, weight: u64) -> bool {
        let f = self.intern(from);
        let t = self.intern(to);
        if f == t {
            return false;
        }
        self.add_edge(f, t, weight)
    }

    /// Whether the directed edge `from -> to` exists.
    pub fn has_edge(&self, from: NodeId, to: NodeId) -> bool {
        self.out[from.index()]
            .binary_search_by_key(&to, |&(t, _)| t)
            .is_ok()
    }

    /// The weight of edge `from -> to`, when present.
    pub fn edge_weight(&self, from: NodeId, to: NodeId) -> Option<u64> {
        self.out[from.index()]
            .binary_search_by_key(&to, |&(t, _)| t)
            .ok()
            .map(|pos| self.out[from.index()][pos].1)
    }

    /// Out-degree (number of distinct targets).
    pub fn out_degree(&self, id: NodeId) -> usize {
        self.out[id.index()].len()
    }

    /// In-degree (number of distinct sources).
    pub fn in_degree(&self, id: NodeId) -> usize {
        self.inc[id.index()].len()
    }

    /// The sorted `(target, weight)` row of `id`'s outgoing edges —
    /// the raw adjacency slice [`crate::csr::Csr`] is built from.
    pub(crate) fn out_row(&self, id: NodeId) -> &[(NodeId, u64)] {
        &self.out[id.index()]
    }

    /// The sorted sources of `id`'s incoming edges.
    pub(crate) fn in_row(&self, id: NodeId) -> &[NodeId] {
        &self.inc[id.index()]
    }

    /// Iterates over the targets of `id`'s outgoing edges, ascending.
    pub fn out_neighbors(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out[id.index()].iter().map(|&(t, _)| t)
    }

    /// Iterates over `(target, weight)` of `id`'s outgoing edges.
    pub fn out_edges(&self, id: NodeId) -> impl Iterator<Item = (NodeId, u64)> + '_ {
        self.out[id.index()].iter().copied()
    }

    /// Iterates over the sources of `id`'s incoming edges, ascending.
    pub fn in_neighbors(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.inc[id.index()].iter().copied()
    }

    /// Iterates over all node ids in insertion order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        // lint:allow(C3): intern() guarantees node count fits in u32
        (0..self.keys.len() as u32).map(NodeId)
    }

    /// Iterates over `(id, key)` pairs.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &N)> {
        self.keys
            .iter()
            .enumerate()
            .map(|(i, k)| (NodeId(i as u32), k))
    }

    /// Iterates over every directed edge.
    pub fn edges(&self) -> impl Iterator<Item = EdgeRef> + '_ {
        self.out.iter().enumerate().flat_map(|(i, row)| {
            row.iter().map(move |&(t, w)| EdgeRef {
                from: NodeId(i as u32),
                to: t,
                weight: w,
            })
        })
    }

    /// The union of in- and out-neighbors of `id`, ascending and
    /// deduplicated — the neighborhood of the undirected projection.
    pub fn undirected_neighbors(&self, id: NodeId) -> Vec<NodeId> {
        let a = &self.out[id.index()];
        let b = &self.inc[id.index()];
        let mut merged = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            let (x, y) = (a[i].0, b[j]);
            match x.cmp(&y) {
                std::cmp::Ordering::Less => {
                    merged.push(x);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push(y);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    merged.push(x);
                    i += 1;
                    j += 1;
                }
            }
        }
        merged.extend(a[i..].iter().map(|&(t, _)| t));
        merged.extend_from_slice(&b[j..]);
        merged
    }

    /// Degree in the undirected projection (distinct partners in either
    /// direction).
    pub fn undirected_degree(&self, id: NodeId) -> usize {
        // Count the merge without materializing it.
        let a = &self.out[id.index()];
        let b = &self.inc[id.index()];
        let (mut i, mut j, mut n) = (0, 0, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
            n += 1;
        }
        n + (a.len() - i) + (b.len() - j)
    }

    /// Number of edges in the undirected projection (a reciprocal pair
    /// collapses to one undirected edge).
    pub fn undirected_edge_count(&self) -> usize {
        let bilateral = self
            .edges()
            .filter(|e| e.from < e.to && self.has_edge(e.to, e.from))
            .count();
        self.edge_count - bilateral
    }

    /// Directed edge density `ā = M / (N (N − 1))` — the quantity the
    /// Garlaschelli–Loffredo reciprocity normalizes by.
    ///
    /// Returns 0.0 for graphs with fewer than two nodes.
    pub fn density(&self) -> f64 {
        let n = self.keys.len();
        if n < 2 {
            return 0.0;
        }
        self.edge_count as f64 / (n as f64 * (n as f64 - 1.0))
    }
}

impl<N: Eq + Hash + Clone> FromIterator<(N, N)> for DiGraph<N> {
    fn from_iter<I: IntoIterator<Item = (N, N)>>(iter: I) -> Self {
        let mut g = DiGraph::new();
        for (a, b) in iter {
            g.add_edge_by_key(a, b, 1);
        }
        g
    }
}

impl<N: Eq + Hash + Clone> Extend<(N, N, u64)> for DiGraph<N> {
    fn extend<I: IntoIterator<Item = (N, N, u64)>>(&mut self, iter: I) {
        for (a, b, w) in iter {
            self.add_edge_by_key(a, b, w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> (DiGraph<&'static str>, NodeId, NodeId, NodeId) {
        let mut g = DiGraph::new();
        let a = g.intern("a");
        let b = g.intern("b");
        let c = g.intern("c");
        (g, a, b, c)
    }

    #[test]
    fn intern_is_idempotent() {
        let mut g: DiGraph<&str> = DiGraph::new();
        let a1 = g.intern("a");
        let a2 = g.intern("a");
        assert_eq!(a1, a2);
        assert_eq!(g.node_count(), 1);
    }

    #[test]
    fn node_lookup_roundtrip() {
        let (g, a, b, _) = abc();
        assert_eq!(g.node_id(&"a"), Some(a));
        assert_eq!(g.node_id(&"b"), Some(b));
        assert_eq!(g.node_id(&"zz"), None);
        assert_eq!(*g.key(a), "a");
    }

    #[test]
    fn add_edge_creates_once_and_accumulates_weight() {
        let (mut g, a, b, _) = abc();
        assert!(g.add_edge(a, b, 3));
        assert!(!g.add_edge(a, b, 4));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edge_weight(a, b), Some(7));
        assert_eq!(g.edge_weight(b, a), None);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let (mut g, a, _, _) = abc();
        g.add_edge(a, a, 1);
    }

    #[test]
    fn add_edge_by_key_skips_self_loops() {
        let mut g: DiGraph<&str> = DiGraph::new();
        assert!(!g.add_edge_by_key("x", "x", 1));
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.node_count(), 1);
    }

    #[test]
    fn degrees_and_neighbors() {
        let (mut g, a, b, c) = abc();
        g.add_edge(a, b, 1);
        g.add_edge(a, c, 1);
        g.add_edge(b, a, 1);
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.in_degree(a), 1);
        assert_eq!(g.out_neighbors(a).collect::<Vec<_>>(), vec![b, c]);
        assert_eq!(g.in_neighbors(a).collect::<Vec<_>>(), vec![b]);
    }

    #[test]
    fn undirected_neighbors_merge_and_dedupe() {
        let (mut g, a, b, c) = abc();
        g.add_edge(a, b, 1);
        g.add_edge(b, a, 1); // both directions: b counted once
        g.add_edge(c, a, 1);
        let un = g.undirected_neighbors(a);
        assert_eq!(un, vec![b, c]);
        assert_eq!(g.undirected_degree(a), 2);
    }

    #[test]
    fn undirected_edge_count_collapses_bilateral() {
        let (mut g, a, b, c) = abc();
        g.add_edge(a, b, 1);
        g.add_edge(b, a, 1);
        g.add_edge(b, c, 1);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.undirected_edge_count(), 2);
    }

    #[test]
    fn density_matches_definition() {
        let (mut g, a, b, c) = abc();
        g.add_edge(a, b, 1);
        g.add_edge(b, c, 1);
        // M = 2, N(N-1) = 6.
        assert!((g.density() - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn density_of_tiny_graphs_is_zero() {
        let mut g: DiGraph<u32> = DiGraph::new();
        assert_eq!(g.density(), 0.0);
        g.intern(1);
        assert_eq!(g.density(), 0.0);
    }

    #[test]
    fn edges_iterator_yields_all() {
        let (mut g, a, b, c) = abc();
        g.add_edge(a, b, 5);
        g.add_edge(c, a, 7);
        let mut edges: Vec<_> = g.edges().map(|e| (e.from, e.to, e.weight)).collect();
        edges.sort();
        assert_eq!(edges, vec![(a, b, 5), (c, a, 7)]);
    }

    #[test]
    fn from_iterator_builds_unit_weights() {
        let g: DiGraph<u8> = [(1u8, 2u8), (2, 3), (1, 2)].into_iter().collect();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        let a = g.node_id(&1).unwrap();
        let b = g.node_id(&2).unwrap();
        assert_eq!(g.edge_weight(a, b), Some(2)); // duplicate accumulated
    }

    #[test]
    fn extend_accumulates() {
        let mut g: DiGraph<u8> = DiGraph::new();
        g.extend([(1u8, 2u8, 10u64), (1, 2, 5)]);
        let a = g.node_id(&1).unwrap();
        let b = g.node_id(&2).unwrap();
        assert_eq!(g.edge_weight(a, b), Some(15));
    }

    #[test]
    fn node_id_display_and_index() {
        let id = NodeId::from_index(3);
        assert_eq!(id.index(), 3);
        assert_eq!(id.to_string(), "n3");
    }

    #[test]
    fn node_id_roundtrips_at_the_u32_boundary() {
        let id = NodeId::from_index(u32::MAX as usize);
        assert_eq!(id.index(), u32::MAX as usize);
    }

    #[cfg(target_pointer_width = "64")]
    #[test]
    #[should_panic(expected = "exceeds the u32 node-id space")]
    fn node_id_from_oversized_index_panics_instead_of_truncating() {
        // Before the guard this silently wrapped to NodeId(0), aliasing
        // two distinct nodes.
        let _ = NodeId::from_index(u32::MAX as usize + 1);
    }
}
