//! Random-graph generators and the baselines the paper compares
//! against.
//!
//! Small-world detection (§4.3) needs a "corresponding random graph"
//! with the same number of vertices and links: its clustering
//! coefficient `C_rand` equals the link density and its average path
//! length is `L_rand ≈ ln n / ln ⟨k⟩`. Both an analytic baseline and an
//! empirical one (generate-and-measure) are provided, plus
//! Watts–Strogatz and Barabási–Albert generators used as test fixtures
//! for validating the metric implementations (a BA graph *should* pass
//! the power-law test; a WS graph *should* be flagged a small world).

use crate::paths::{average_path_length, PathSampling, PathTreatment};
use crate::{clustering, DiGraph};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::{BTreeSet, HashSet};

/// Directed Erdős–Rényi `G(n, m)`: exactly `m` distinct directed
/// edges chosen uniformly among the `n(n−1)` possibilities.
///
/// # Panics
///
/// Panics if `m > n(n−1)`.
pub fn gnm_directed(n: usize, m: usize, seed: u64) -> DiGraph<u32> {
    let possible = n.saturating_mul(n.saturating_sub(1));
    assert!(m <= possible, "m = {m} exceeds n(n-1) = {possible}");
    let mut g = DiGraph::with_capacity(n);
    for k in 0..n as u32 {
        g.intern(k);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut chosen: HashSet<(u32, u32)> = HashSet::with_capacity(m);
    while chosen.len() < m {
        let a = rng.random_range(0..n as u32);
        let b = rng.random_range(0..n as u32);
        if a != b && chosen.insert((a, b)) {
            let ai = g.node_id(&a).expect("interned");
            let bi = g.node_id(&b).expect("interned");
            g.add_edge(ai, bi, 1);
        }
    }
    g
}

/// Undirected Erdős–Rényi `G(n, m)`: exactly `m` distinct unordered
/// pairs, each stored as a single directed edge from the smaller to
/// the larger id. Use with the *undirected* metric treatments
/// (clustering, undirected path lengths); it is not a model of a
/// directed topology.
///
/// # Panics
///
/// Panics if `m > n(n−1)/2`.
pub fn gnm_undirected(n: usize, m: usize, seed: u64) -> DiGraph<u32> {
    let possible = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(m <= possible, "m = {m} exceeds n(n-1)/2 = {possible}");
    let mut g = DiGraph::with_capacity(n);
    for k in 0..n as u32 {
        g.intern(k);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut chosen: HashSet<(u32, u32)> = HashSet::with_capacity(m);
    while chosen.len() < m {
        let a = rng.random_range(0..n as u32);
        let b = rng.random_range(0..n as u32);
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        if lo != hi && chosen.insert((lo, hi)) {
            let ai = g.node_id(&lo).expect("interned");
            let bi = g.node_id(&hi).expect("interned");
            g.add_edge(ai, bi, 1);
        }
    }
    g
}

/// Analytic expectations for an undirected random graph with `n`
/// nodes and `m` undirected links.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomBaseline {
    /// Expected clustering coefficient: the edge density
    /// `2m / (n(n−1))`.
    pub c_expected: f64,
    /// Expected average path length `ln n / ln ⟨k⟩` (NaN-free: `None`
    /// when `⟨k⟩ <= 1`, where the formula is meaningless).
    pub l_expected: Option<f64>,
    /// Mean degree `⟨k⟩ = 2m / n`.
    pub mean_degree: f64,
}

impl RandomBaseline {
    /// Computes the analytic baseline for `n` nodes, `m` undirected
    /// links.
    pub fn analytic(n: usize, m: usize) -> Self {
        let nf = n as f64;
        let c = if n >= 2 {
            2.0 * m as f64 / (nf * (nf - 1.0))
        } else {
            0.0
        };
        let k = if n > 0 { 2.0 * m as f64 / nf } else { 0.0 };
        let l = if k > 1.0 && n >= 2 {
            Some(nf.ln() / k.ln())
        } else {
            None
        };
        RandomBaseline {
            c_expected: c,
            l_expected: l,
            mean_degree: k,
        }
    }
}

/// An empirically measured random baseline: an actual `G(n, m)` graph
/// is generated and its metrics computed with the same estimators the
/// study applies to the real topology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredBaseline {
    /// Measured clustering coefficient of the sampled graph.
    pub c: f64,
    /// Measured average path length (undirected), when defined.
    pub l: Option<f64>,
}

/// Generates `G(n, m)` (undirected) with `seed` and measures `C` and
/// `L` using the provided path sampling strategy.
pub fn measured_baseline(
    n: usize,
    m: usize,
    seed: u64,
    sampling: PathSampling,
) -> MeasuredBaseline {
    let g = gnm_undirected(n, m, seed);
    let c = clustering::clustering_coefficient(&g);
    let l = average_path_length(&g, PathTreatment::Undirected, sampling).map(|s| s.mean);
    MeasuredBaseline { c, l }
}

/// Watts–Strogatz small-world graph: a ring of `n` nodes, each linked
/// to its `k` nearest neighbors (`k` even), with each edge rewired to
/// a uniform random target with probability `beta`.
///
/// Edges are stored one direction per pair; use undirected metrics.
///
/// # Panics
///
/// Panics if `k` is odd, `k >= n`, or `beta` is outside `[0, 1]`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> DiGraph<u32> {
    assert!(k % 2 == 0, "k must be even, got {k}");
    assert!(k < n, "k = {k} must be < n = {n}");
    assert!((0.0..=1.0).contains(&beta), "beta {beta} outside [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    // BTreeSet: the edge set is iterated twice below (rewiring pass
    // and final emission), and both orders feed the seeded RNG stream
    // and the graph bytes.
    let mut edges: BTreeSet<(u32, u32)> = BTreeSet::new();
    let norm = |a: u32, b: u32| if a < b { (a, b) } else { (b, a) };
    for i in 0..n as u32 {
        for d in 1..=(k / 2) as u32 {
            let j = (i + d) % n as u32;
            edges.insert(norm(i, j));
        }
    }
    // Rewire: iterate over the lattice edges in deterministic
    // (ascending) order, snapshotted so rewiring can mutate the set.
    let lattice: Vec<(u32, u32)> = edges.iter().copied().collect();
    for (a, b) in lattice {
        if rng.random_range(0.0..1.0) < beta {
            // Rewire the far endpoint to a random target.
            let mut tries = 0;
            loop {
                let t = rng.random_range(0..n as u32);
                let cand = norm(a, t);
                if t != a && !edges.contains(&cand) {
                    edges.remove(&(a, b));
                    edges.insert(cand);
                    break;
                }
                tries += 1;
                if tries > 64 {
                    break; // keep original edge in pathological density
                }
            }
        }
    }
    let mut g = DiGraph::with_capacity(n);
    for v in 0..n as u32 {
        g.intern(v);
    }
    for (a, b) in edges {
        let ai = g.node_id(&a).expect("interned");
        let bi = g.node_id(&b).expect("interned");
        g.add_edge(ai, bi, 1);
    }
    g
}

/// Barabási–Albert preferential-attachment graph: starts from a small
/// clique of `m + 1` nodes, then each new node attaches to `m`
/// existing nodes chosen proportionally to degree. Produces a
/// power-law degree distribution — the shape Magellan shows streaming
/// overlays do *not* have.
///
/// # Panics
///
/// Panics if `m == 0` or `n <= m`.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> DiGraph<u32> {
    assert!(m > 0, "m must be positive");
    assert!(n > m, "n = {n} must exceed m = {m}");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = DiGraph::with_capacity(n);
    for v in 0..n as u32 {
        g.intern(v);
    }
    // Degree-proportional sampling via a repeated-endpoints list.
    let mut endpoints: Vec<u32> = Vec::new();
    // Seed clique among the first m+1 nodes.
    for i in 0..=(m as u32) {
        for j in (i + 1)..=(m as u32) {
            let a = g.node_id(&i).expect("interned");
            let b = g.node_id(&j).expect("interned");
            g.add_edge(a, b, 1);
            endpoints.push(i);
            endpoints.push(j);
        }
    }
    for v in (m + 1) as u32..n as u32 {
        // Draw-ordered Vec, not a HashSet: the attachment order feeds
        // `endpoints` and thus every later degree-proportional draw,
        // so it must not depend on hash iteration order (m is small,
        // the linear `contains` is cheaper than hashing anyway).
        let mut targets: Vec<u32> = Vec::with_capacity(m);
        while targets.len() < m {
            let t = endpoints[rng.random_range(0..endpoints.len())];
            if t != v && !targets.contains(&t) {
                targets.push(t);
            }
        }
        for t in targets {
            let a = g.node_id(&v).expect("interned");
            let b = g.node_id(&t).expect("interned");
            g.add_edge(a, b, 1);
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    g
}

/// Configuration-model graph: wires a prescribed *undirected* degree
/// sequence by uniform stub matching, rejecting self-loops and
/// duplicate edges (so realized degrees can fall slightly short of
/// the prescription on pathological sequences; the return value
/// reports how many stubs were abandoned).
///
/// This is the standard tool for asking "which properties follow from
/// the degree distribution alone?" — e.g. building a Gnutella-like
/// two-piece power-law-with-spike topology (paper §2) to contrast
/// with the streaming mesh.
///
/// # Panics
///
/// Panics if the degree sum is odd (no graph realizes it) or any
/// degree is `>= n`.
pub fn configuration_model(degrees: &[usize], seed: u64) -> (DiGraph<u32>, usize) {
    let n = degrees.len();
    let total: usize = degrees.iter().sum();
    assert!(total % 2 == 0, "odd degree sum {total} is not realizable");
    for (i, &d) in degrees.iter().enumerate() {
        assert!(d < n.max(1), "degree {d} of node {i} exceeds n-1");
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stubs: Vec<u32> = Vec::with_capacity(total);
    for (i, &d) in degrees.iter().enumerate() {
        stubs.extend(std::iter::repeat(i as u32).take(d));
    }
    // Fisher-Yates shuffle, then pair consecutive stubs.
    for i in (1..stubs.len()).rev() {
        let j = rng.random_range(0..=i);
        stubs.swap(i, j);
    }
    let mut g = DiGraph::with_capacity(n);
    for v in 0..n as u32 {
        g.intern(v);
    }
    let mut seen: HashSet<(u32, u32)> = HashSet::with_capacity(total / 2);
    let mut abandoned = 0usize;
    for pair in stubs.chunks_exact(2) {
        let (a, b) = (pair[0], pair[1]);
        let key = if a < b { (a, b) } else { (b, a) };
        if a == b || !seen.insert(key) {
            abandoned += 2;
            continue;
        }
        let ai = g.node_id(&key.0).expect("interned");
        let bi = g.node_id(&key.1).expect("interned");
        g.add_edge(ai, bi, 1);
    }
    (g, abandoned)
}

/// A Gnutella-like degree sequence (paper §2 / Stutzbach et al.): a
/// two-piece power law with a spike at `spike_degree` holding
/// `spike_fraction` of the nodes. Returns a sequence with an even
/// sum, ready for [`configuration_model`].
pub fn gnutella_like_degrees(
    n: usize,
    spike_degree: usize,
    spike_fraction: f64,
    alpha: f64,
    seed: u64,
) -> Vec<usize> {
    assert!((0.0..=1.0).contains(&spike_fraction));
    let mut rng = StdRng::seed_from_u64(seed);
    let cap = (n / 8).max(spike_degree + 1);
    let mut degrees: Vec<usize> = (0..n)
        .map(|_| {
            if rng.random_range(0.0..1.0) < spike_fraction {
                spike_degree
            } else {
                // Truncated discrete power law over [1, cap].
                let u: f64 = rng.random_range(0.0..1.0);
                let x = (1.0 - u).powf(-1.0 / (alpha - 1.0));
                (x.floor() as usize).clamp(1, cap)
            }
        })
        .collect();
    if degrees.iter().sum::<usize>() % 2 == 1 {
        degrees[0] += 1;
    }
    degrees
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree::{average_degree, DegreeKind};

    #[test]
    fn gnm_directed_has_exact_counts() {
        let g = gnm_directed(50, 200, 1);
        assert_eq!(g.node_count(), 50);
        assert_eq!(g.edge_count(), 200);
    }

    #[test]
    fn gnm_directed_is_deterministic() {
        let a = gnm_directed(30, 100, 7);
        let b = gnm_directed(30, 100, 7);
        let ea: Vec<_> = a.edges().map(|e| (e.from, e.to)).collect();
        let eb: Vec<_> = b.edges().map(|e| (e.from, e.to)).collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn gnm_undirected_has_exact_counts() {
        let g = gnm_undirected(40, 150, 2);
        assert_eq!(g.node_count(), 40);
        assert_eq!(g.edge_count(), 150);
        assert_eq!(g.undirected_edge_count(), 150);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn gnm_rejects_too_many_edges() {
        let _ = gnm_directed(3, 7, 0);
    }

    #[test]
    fn dense_gnm_terminates() {
        // All possible edges.
        let g = gnm_directed(5, 20, 3);
        assert_eq!(g.edge_count(), 20);
    }

    #[test]
    fn analytic_baseline_matches_formulas() {
        let b = RandomBaseline::analytic(100, 300);
        assert!((b.c_expected - 600.0 / (100.0 * 99.0)).abs() < 1e-12);
        assert!((b.mean_degree - 6.0).abs() < 1e-12);
        let l = b.l_expected.unwrap();
        assert!((l - (100f64).ln() / 6f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn analytic_baseline_degenerate_cases() {
        assert_eq!(RandomBaseline::analytic(0, 0).c_expected, 0.0);
        assert_eq!(RandomBaseline::analytic(1, 0).l_expected, None);
        // Mean degree exactly 1: formula undefined.
        assert_eq!(RandomBaseline::analytic(10, 5).l_expected, None);
    }

    #[test]
    fn measured_baseline_close_to_analytic() {
        let n = 300;
        let m = 1500;
        let analytic = RandomBaseline::analytic(n, m);
        let measured = measured_baseline(n, m, 11, PathSampling::Exact);
        // ER clustering concentrates near density for this size.
        assert!((measured.c - analytic.c_expected).abs() < 0.02);
        let l = measured.l.unwrap();
        let le = analytic.l_expected.unwrap();
        assert!((l - le).abs() < 1.0, "measured {l} vs expected {le}");
    }

    #[test]
    fn watts_strogatz_beta_zero_is_lattice() {
        let g = watts_strogatz(20, 4, 0.0, 5);
        assert_eq!(g.node_count(), 20);
        assert_eq!(g.edge_count(), 20 * 4 / 2);
        // Every node has undirected degree exactly k.
        for id in g.node_ids() {
            assert_eq!(g.undirected_degree(id), 4);
        }
        // Ring lattice with k=4 has C = 0.5.
        let c = clustering::clustering_coefficient(&g);
        assert!((c - 0.5).abs() < 1e-9, "lattice C = {c}");
    }

    #[test]
    fn watts_strogatz_keeps_edge_count_under_rewiring() {
        let g = watts_strogatz(50, 6, 0.3, 9);
        assert_eq!(g.edge_count(), 50 * 6 / 2);
    }

    #[test]
    fn barabasi_albert_edge_count() {
        let n = 200;
        let m = 3;
        let g = barabasi_albert(n, m, 4);
        let clique = m * (m + 1) / 2;
        assert_eq!(g.edge_count(), clique + (n - m - 1) * m);
        // Average undirected degree ~ 2m.
        let avg = average_degree(&g, DegreeKind::Undirected);
        assert!((avg - 2.0 * m as f64).abs() < 1.0, "avg degree {avg}");
    }

    #[test]
    fn configuration_model_realizes_most_of_the_sequence() {
        let degrees = vec![3usize; 200];
        let (g, abandoned) = configuration_model(&degrees, 5);
        assert_eq!(g.node_count(), 200);
        // Stub matching loses only a few stubs to collisions.
        assert!(abandoned <= 20, "abandoned {abandoned} stubs");
        let realized: usize = g.node_ids().map(|i| g.undirected_degree(i)).sum();
        assert!(realized >= 560, "realized degree sum {realized}");
        // No node exceeds its prescription.
        assert!(g.node_ids().all(|i| g.undirected_degree(i) <= 3));
    }

    #[test]
    #[should_panic(expected = "odd degree sum")]
    fn configuration_model_rejects_odd_sum() {
        let _ = configuration_model(&[1, 1, 1], 0);
    }

    #[test]
    fn gnutella_like_sequence_has_the_spike() {
        let degrees = gnutella_like_degrees(5_000, 30, 0.3, 2.2, 7);
        let at_spike = degrees.iter().filter(|&&d| d == 30).count() as f64 / 5_000.0;
        assert!((at_spike - 0.3).abs() < 0.03, "spike mass {at_spike}");
        assert!(degrees.iter().sum::<usize>() % 2 == 0);
        // The non-spike part is heavy-tailed from 1.
        let ones = degrees.iter().filter(|&&d| d == 1).count();
        assert!(ones > 1_000, "power-law body missing ({ones} ones)");
    }

    #[test]
    fn gnutella_like_graph_builds_and_shows_the_spike() {
        let degrees = gnutella_like_degrees(2_000, 20, 0.25, 2.3, 9);
        let (g, _) = configuration_model(&degrees, 11);
        let h = crate::degree::degree_histogram(&g, crate::degree::DegreeKind::Undirected);
        // The mode away from 1 sits at (or just below) the spike.
        let spike = h.spike().unwrap();
        assert!((1..=20).contains(&spike));
        assert!(h.count_at(20) + h.count_at(19) > 300, "spike eroded");
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        // Two same-seed calls must produce identical edge lists. This
        // is a real regression guard, not a tautology: each std
        // HashSet instance gets its own RandomState keys, so any
        // generator that lets set iteration order reach the output
        // (as barabasi_albert once did) diverges even within one
        // process.
        fn edge_list(g: &crate::DiGraph<u32>) -> Vec<(u32, u32, u64)> {
            g.edges()
                .map(|e| (*g.key(e.from), *g.key(e.to), e.weight))
                .collect()
        }
        let pairs = [
            (barabasi_albert(300, 4, 7), barabasi_albert(300, 4, 7)),
            (gnm_directed(200, 900, 7), gnm_directed(200, 900, 7)),
            (gnm_undirected(200, 600, 7), gnm_undirected(200, 600, 7)),
            (
                watts_strogatz(200, 6, 0.3, 7),
                watts_strogatz(200, 6, 0.3, 7),
            ),
        ];
        for (i, (a, b)) in pairs.iter().enumerate() {
            assert_eq!(edge_list(a), edge_list(b), "generator #{i} diverged");
        }
        let (ca, _) = configuration_model(&[3usize; 200], 7);
        let (cb, _) = configuration_model(&[3usize; 200], 7);
        assert_eq!(edge_list(&ca), edge_list(&cb), "configuration_model");
    }

    #[test]
    fn barabasi_albert_has_hubs() {
        let g = barabasi_albert(500, 2, 8);
        let max = g
            .node_ids()
            .map(|id| g.undirected_degree(id))
            .max()
            .unwrap();
        // Preferential attachment must produce a hub well above the mean.
        assert!(max > 20, "max degree {max}");
    }
}
