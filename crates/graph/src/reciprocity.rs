//! Edge reciprocity metrics (paper §4.4).
//!
//! Two measures are provided:
//!
//! * [`simple_reciprocity`] — Eq. (1) of the paper: the fraction of
//!   directed edges whose reverse edge also exists,
//!   `r = Σ_{i≠j} a_ij a_ji / M`.
//! * [`garlaschelli_reciprocity`] — Eq. (2), the Garlaschelli–Loffredo
//!   correlation `ρ = (r − ā) / (1 − ā)` where `ā = M / (N(N−1))` is
//!   the link density. `ρ > 0` means *reciprocal* (more bilateral
//!   links than a random graph of the same density), `ρ < 0`
//!   *antireciprocal* (e.g. a tree-like feeding structure), `ρ ≈ 0`
//!   uncorrelated.

use crate::csr::Csr;
use crate::{DiGraph, GraphError, NodeId};
use std::hash::Hash;

/// Per-worker node quota for the reciprocity kernels. A node costs one
/// sorted-row merge (a few ns), so a worker needs thousands of nodes
/// before the fork/join round-trip pays for itself; below
/// `workers × RECIPROCITY_GRAIN` nodes the kernels shed workers rather
/// than split profitless slices (the n=2000, t=8 regression in
/// `BENCH_metrics.json`).
const RECIPROCITY_GRAIN: usize = 8192;

/// Number of directed edges whose reverse also exists (each bilateral
/// pair contributes 2, matching `Σ_{i≠j} a_ij a_ji`).
pub fn bilateral_edge_count<N: Eq + Hash + Clone>(g: &DiGraph<N>) -> usize {
    bilateral_edge_count_csr(&Csr::from_digraph(g))
}

/// [`bilateral_edge_count`] over a prebuilt [`Csr`] snapshot.
///
/// An edge `u -> v` is bilateral iff `v` also appears in `u`'s
/// in-row, so the count is `Σ_u |out(u) ∩ in(u)|` — one linear merge
/// of two sorted rows per node (`O(n + m)` total), fanned across
/// cores with integer partials summed in node order (at
/// [`RECIPROCITY_GRAIN`] nodes per worker minimum — the merge is too
/// cheap to split finer).
pub fn bilateral_edge_count_csr(csr: &Csr) -> usize {
    let partials =
        magellan_par::par_map_collect_grained(csr.node_count(), RECIPROCITY_GRAIN, |i| {
            let u = NodeId::from_index(i);
            let (out, inn) = (csr.out(u), csr.inn(u));
            let (mut a, mut b, mut n) = (0, 0, 0usize);
            while a < out.len() && b < inn.len() {
                match out[a].cmp(&inn[b]) {
                    std::cmp::Ordering::Less => a += 1,
                    std::cmp::Ordering::Greater => b += 1,
                    std::cmp::Ordering::Equal => {
                        n += 1;
                        a += 1;
                        b += 1;
                    }
                }
            }
            n
        });
    partials.iter().sum()
}

/// Simple reciprocity `r` (Eq. 1): fraction of edges that are
/// bilateral.
///
/// # Errors
///
/// Returns [`GraphError::EmptyGraph`] when the graph has no edges.
pub fn simple_reciprocity_checked<N: Eq + Hash + Clone>(g: &DiGraph<N>) -> Result<f64, GraphError> {
    simple_reciprocity_checked_csr(&Csr::from_digraph(g))
}

/// [`simple_reciprocity_checked`] over a prebuilt [`Csr`] snapshot.
///
/// # Errors
///
/// Returns [`GraphError::EmptyGraph`] when the graph has no edges.
pub fn simple_reciprocity_checked_csr(csr: &Csr) -> Result<f64, GraphError> {
    if csr.edge_count() == 0 {
        return Err(GraphError::EmptyGraph);
    }
    Ok(bilateral_edge_count_csr(csr) as f64 / csr.edge_count() as f64)
}

/// Simple reciprocity `r`, returning `0.0` for an edgeless graph.
///
/// Prefer [`simple_reciprocity_checked`] when the empty case must be
/// distinguished.
pub fn simple_reciprocity<N: Eq + Hash + Clone>(g: &DiGraph<N>) -> f64 {
    simple_reciprocity_checked(g).unwrap_or(0.0)
}

/// Garlaschelli–Loffredo edge reciprocity `ρ` (Eq. 2).
///
/// # Errors
///
/// Returns [`GraphError::EmptyGraph`] when the graph has no edges and
/// [`GraphError::CompleteGraph`] when every possible directed edge is
/// present (`ā = 1` makes `ρ` undefined).
pub fn garlaschelli_reciprocity<N: Eq + Hash + Clone>(g: &DiGraph<N>) -> Result<f64, GraphError> {
    garlaschelli_reciprocity_csr(&Csr::from_digraph(g))
}

/// [`garlaschelli_reciprocity`] over a prebuilt [`Csr`] snapshot.
///
/// # Errors
///
/// Same contract as [`garlaschelli_reciprocity`].
pub fn garlaschelli_reciprocity_csr(csr: &Csr) -> Result<f64, GraphError> {
    if csr.edge_count() == 0 {
        return Err(GraphError::EmptyGraph);
    }
    let a_bar = csr.density();
    if (a_bar - 1.0).abs() < f64::EPSILON || a_bar > 1.0 {
        return Err(GraphError::CompleteGraph);
    }
    let r = bilateral_edge_count_csr(csr) as f64 / csr.edge_count() as f64;
    Ok((r - a_bar) / (1.0 - a_bar))
}

/// Weighted reciprocity: the fraction of edge *weight* that is
/// reciprocated, `r_w = Σ_{i≠j} min(w_ij, w_ji) / Σ_{i≠j} w_ij`
/// (Squartini–Garlaschelli's weighted analogue). On Magellan traces
/// the weights are segment counts, so this measures how much of the
/// *traffic* flows over two-way relationships, not just how many
/// links do.
///
/// # Errors
///
/// Returns [`GraphError::EmptyGraph`] when the graph has no edges or
/// zero total weight.
pub fn weighted_reciprocity<N: Eq + Hash + Clone>(g: &DiGraph<N>) -> Result<f64, GraphError> {
    weighted_reciprocity_csr(&Csr::from_digraph(g))
}

/// [`weighted_reciprocity`] over a prebuilt [`Csr`] snapshot. Per-node
/// `(total, matched)` weight partials are fanned across cores (at
/// [`RECIPROCITY_GRAIN`] nodes per worker minimum) and summed in node
/// order.
///
/// # Errors
///
/// Same contract as [`weighted_reciprocity`].
pub fn weighted_reciprocity_csr(csr: &Csr) -> Result<f64, GraphError> {
    if csr.edge_count() == 0 {
        return Err(GraphError::EmptyGraph);
    }
    let partials =
        magellan_par::par_map_collect_grained(csr.node_count(), RECIPROCITY_GRAIN, |i| {
            let u = NodeId::from_index(i);
            let (out, w) = (csr.out(u), csr.out_weights(u));
            let mut total = 0u128;
            let mut matched = 0u128;
            for (k, &v) in out.iter().enumerate() {
                total += w[k] as u128;
                if let Some(back) = csr.edge_weight(v, u) {
                    matched += w[k].min(back) as u128;
                }
            }
            (total, matched)
        });
    let mut total = 0u128;
    let mut matched = 0u128;
    for &(t, m) in &partials {
        total += t;
        matched += m;
    }
    if total == 0 {
        return Err(GraphError::EmptyGraph);
    }
    Ok(matched as f64 / total as f64)
}

/// The reciprocity a perfect tree (or any graph with zero bilateral
/// edges) of the same density would have: `ρ_tree = −ā / (1 − ā)`.
///
/// The paper uses this to argue that tree-like propagation would show
/// up as negative measured reciprocity.
pub fn tree_baseline<N: Eq + Hash + Clone>(g: &DiGraph<N>) -> f64 {
    tree_baseline_from_density(g.density())
}

/// [`tree_baseline`] over a prebuilt [`Csr`] snapshot.
pub fn tree_baseline_csr(csr: &Csr) -> f64 {
    tree_baseline_from_density(csr.density())
}

fn tree_baseline_from_density(a_bar: f64) -> f64 {
    if a_bar >= 1.0 {
        return f64::NEG_INFINITY;
    }
    -a_bar / (1.0 - a_bar)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    fn graph(n: u32, edges: &[(u32, u32)]) -> DiGraph<u32> {
        let mut g = DiGraph::new();
        let ids: Vec<NodeId> = (0..n).map(|k| g.intern(k)).collect();
        for &(a, b) in edges {
            g.add_edge(ids[a as usize], ids[b as usize], 1);
        }
        g
    }

    #[test]
    fn fully_bilateral_graph_has_r_one_and_rho_one() {
        let g = graph(3, &[(0, 1), (1, 0), (1, 2), (2, 1)]);
        assert!((simple_reciprocity(&g) - 1.0).abs() < 1e-12);
        let rho = garlaschelli_reciprocity(&g).unwrap();
        assert!((rho - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tree_has_r_zero_and_negative_rho() {
        let g = graph(4, &[(0, 1), (0, 2), (1, 3)]);
        assert_eq!(simple_reciprocity(&g), 0.0);
        let rho = garlaschelli_reciprocity(&g).unwrap();
        assert!(rho < 0.0);
        assert!((rho - tree_baseline(&g)).abs() < 1e-12);
    }

    #[test]
    fn mixed_graph_matches_hand_computation() {
        // Edges: 0->1, 1->0 (bilateral pair), 1->2 (one way). N = 3, M = 3.
        let g = graph(3, &[(0, 1), (1, 0), (1, 2)]);
        let r = simple_reciprocity(&g);
        assert!((r - 2.0 / 3.0).abs() < 1e-12);
        let a_bar = 3.0 / 6.0;
        let expect = (r - a_bar) / (1.0 - a_bar);
        let rho = garlaschelli_reciprocity(&g).unwrap();
        assert!((rho - expect).abs() < 1e-12);
        assert!(rho > 0.0);
    }

    #[test]
    fn bilateral_count_counts_both_directions() {
        let g = graph(3, &[(0, 1), (1, 0), (1, 2)]);
        assert_eq!(bilateral_edge_count(&g), 2);
    }

    #[test]
    fn empty_graph_errors() {
        let g = graph(2, &[]);
        assert_eq!(simple_reciprocity_checked(&g), Err(GraphError::EmptyGraph));
        assert_eq!(garlaschelli_reciprocity(&g), Err(GraphError::EmptyGraph));
        assert_eq!(simple_reciprocity(&g), 0.0);
    }

    #[test]
    fn complete_graph_errors_for_rho() {
        let g = graph(2, &[(0, 1), (1, 0)]);
        assert_eq!(garlaschelli_reciprocity(&g), Err(GraphError::CompleteGraph));
        // r is still fine.
        assert!((simple_reciprocity(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_reciprocity_weighs_traffic_not_links() {
        // One heavy one-way edge dominates two light bilateral ones.
        let mut g: DiGraph<u32> = DiGraph::new();
        let ids: Vec<NodeId> = (0..3u32).map(|k| g.intern(k)).collect();
        g.add_edge(ids[0], ids[1], 10);
        g.add_edge(ids[1], ids[0], 10);
        g.add_edge(ids[1], ids[2], 80);
        // Links: 2 of 3 bilateral (r = 2/3); weight: 20 of 100 matched.
        assert!((simple_reciprocity(&g) - 2.0 / 3.0).abs() < 1e-12);
        let rw = weighted_reciprocity(&g).unwrap();
        assert!((rw - 0.2).abs() < 1e-12, "rw = {rw}");
    }

    #[test]
    fn weighted_reciprocity_asymmetric_pair() {
        // Bilateral link with asymmetric volume: only the min is
        // reciprocated.
        let g = {
            let mut g: DiGraph<u32> = DiGraph::new();
            let a = g.intern(0);
            let b = g.intern(1);
            g.add_edge(a, b, 30);
            g.add_edge(b, a, 10);
            g
        };
        let rw = weighted_reciprocity(&g).unwrap();
        // matched = min(30,10) + min(10,30) = 20; total = 40.
        assert!((rw - 0.5).abs() < 1e-12);
    }

    #[test]
    fn weighted_reciprocity_empty_errors() {
        let g = graph(2, &[]);
        assert!(matches!(
            weighted_reciprocity(&g),
            Err(GraphError::EmptyGraph)
        ));
    }

    #[test]
    fn random_like_density_gives_rho_near_zero() {
        // A 4-cycle: r = 0, ā = 4/12 = 1/3, ρ = -0.5. Confirms the sign
        // convention on a directed ring (no bilateral links).
        let g = graph(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let rho = garlaschelli_reciprocity(&g).unwrap();
        assert!((rho - (-0.5)).abs() < 1e-12);
    }
}
