//! Incremental snapshot metrics: temporal coherence for the study loop.
//!
//! The study recomputes clustering, reciprocity, and degree structure
//! at every report boundary, but successive boundary snapshots of a
//! live overlay differ by a small edge delta — most links persist from
//! one 10-minute snapshot to the next (only their segment-count
//! weights grow). [`IncrementalTopology`] exploits that coherence: it
//! keeps the previous snapshot's adjacency resident together with the
//! integer state every snapshot metric reduces over —
//!
//! * per-node **doubled triangle counts** (`tri2`, the `twice_links`
//!   numerator of the Watts–Strogatz local clustering coefficient),
//! * **reciprocity counters** (directed edge count, bilateral edge
//!   count, total and reciprocated edge weight), and
//! * in-/out-/undirected **degree histograms** —
//!
//! and folds a [`CsrDelta`] into them in `O(delta)` instead of
//! re-deriving them from scratch in `O(n + m)` (or `O(Σ k²)` for
//! triangles). When the delta is large relative to the snapshot —
//! channel startup, a flash crowd, mass departure — incremental
//! maintenance loses to a rebuild, so [`sync_snapshot`] falls back to
//! [`from_snapshot`] past a churn threshold. In debug and test builds
//! every incremental application is asserted state-identical to the
//! rebuild it replaced.
//!
//! # Determinism and ordering
//!
//! All maintained state is integral (counts, `u64`/`u128` sums), so
//! incremental and rebuilt paths agree *exactly*, not just within
//! float tolerance. The one floating-point reduction —
//! [`clustering_coefficient`](IncrementalTopology::clustering_coefficient)
//! — sums per-node coefficients in ascending node-key order, a
//! canonical order independent of insertion history, so the value is a
//! pure function of the current graph. Metric formulas mirror the
//! [`crate::reciprocity`] / [`crate::clustering`] kernels operation by
//! operation, so on equal integer state they produce bit-equal floats.
//!
//! [`sync_snapshot`]: IncrementalTopology::sync_snapshot
//! [`from_snapshot`]: IncrementalTopology::from_snapshot

use crate::histogram::DegreeHistogram;
use crate::GraphError;
use std::collections::BTreeMap;

/// Structural churn fraction above which [`IncrementalTopology::sync_snapshot`]
/// rebuilds instead of applying the delta: rebuild when more than
/// `1/REBUILD_CHURN_DIVISOR` of the target snapshot (nodes + edges)
/// changed structurally. Delta application touches sorted adjacency
/// rows and neighborhood intersections per changed edge; past roughly
/// half the graph, one linear rebuild is cheaper and exactly
/// equivalent.
pub const REBUILD_CHURN_DIVISOR: usize = 2;

/// The directed-edge difference between two successive report-boundary
/// snapshots, in a normalized form [`IncrementalTopology::apply_delta`]
/// can fold in `O(delta)`.
///
/// Invariants (produced by [`CsrDelta::diff_snapshot`], assumed by
/// `apply_delta`):
///
/// * every list is sorted ascending and free of duplicates;
/// * `added` edges are absent from the pre-state, `removed` edges
///   present, `reweighted` edges present with a different weight —
///   weight-only changes (a persisting link whose segment counter
///   grew) never masquerade as structural churn;
/// * endpoint nodes of `added` edges are pre-existing or listed in
///   `added_nodes`; `removed_nodes` lose their incident edges via
///   `removed` first.
///
/// `apply_delta` is nevertheless *tolerant*: re-adding a present edge
/// reweights it, removing an absent edge or node is a no-op, and
/// removing a node strips any incident edges left over. Tolerance
/// keeps arbitrary (property-test-generated) deltas well-defined
/// without weakening the diff invariants above.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CsrDelta {
    /// Node keys present in the new snapshot but not the old.
    pub added_nodes: Vec<u32>,
    /// Node keys present in the old snapshot but not the new.
    pub removed_nodes: Vec<u32>,
    /// Directed edges `(from, to, weight)` new in this snapshot.
    pub added: Vec<(u32, u32, u64)>,
    /// Directed edges `(from, to)` gone from this snapshot.
    pub removed: Vec<(u32, u32)>,
    /// Surviving directed edges whose weight changed, with the new
    /// weight.
    pub reweighted: Vec<(u32, u32, u64)>,
}

impl CsrDelta {
    /// Structural change volume: added/removed edges and nodes.
    /// Reweights are excluded — they cost `O(log d)` each and carry no
    /// triangle/degree work.
    pub fn structural_churn(&self) -> usize {
        self.added.len() + self.removed.len() + self.added_nodes.len() + self.removed_nodes.len()
    }

    /// Whether the delta changes nothing at all.
    pub fn is_empty(&self) -> bool {
        self.structural_churn() == 0 && self.reweighted.is_empty()
    }

    /// Computes the delta from `topo`'s current state to the snapshot
    /// `(nodes, edges)`.
    ///
    /// `nodes` must be sorted ascending and deduplicated; `edges` must
    /// be sorted ascending by `(from, to)` with no duplicate pair, no
    /// self-loop, and endpoints drawn from `nodes`. (The study's
    /// snapshot extraction and the tests' normalizers guarantee this.)
    pub fn diff_snapshot(
        topo: &IncrementalTopology,
        nodes: &[u32],
        edges: &[(u32, u32, u64)],
    ) -> CsrDelta {
        let mut delta = CsrDelta::default();
        // Node set difference: one ordered merge of the two key lists.
        // lint:allow(H3): the diff pass is the temporal-coherence trade — one O(n + m) scan per boundary instead of O(Σ k²) metric recomputes
        let mut old_nodes = topo.nodes.keys().copied().peekable();
        let mut new_nodes = nodes.iter().copied().peekable(); // lint:allow(H3): other half of the same per-boundary ordered merge
        loop {
            match (old_nodes.peek(), new_nodes.peek()) {
                (Some(&o), Some(&n)) if o == n => {
                    old_nodes.next();
                    new_nodes.next();
                }
                (Some(&o), Some(&n)) if o < n => {
                    delta.removed_nodes.push(o);
                    old_nodes.next();
                }
                (Some(_), Some(&n)) => {
                    delta.added_nodes.push(n);
                    new_nodes.next();
                }
                (Some(&o), None) => {
                    delta.removed_nodes.push(o);
                    old_nodes.next();
                }
                (None, Some(&n)) => {
                    delta.added_nodes.push(n);
                    new_nodes.next();
                }
                (None, None) => break,
            }
        }
        // Edge difference: the engine's rows enumerate sorted by
        // (from, to) when walked in key order, merging against the
        // sorted new edge list.
        // lint:allow(H3): same O(n + m) boundary scan as above
        let mut old_edges = topo
            .nodes
            .iter()
            .flat_map(|(&u, st)| st.out.iter().map(move |&(v, w)| (u, v, w)))
            .peekable();
        let mut new_edges = edges.iter().copied().peekable();
        loop {
            match (old_edges.peek(), new_edges.peek()) {
                (Some(&(ou, ov, ow)), Some(&(nu, nv, nw))) if (ou, ov) == (nu, nv) => {
                    if ow != nw {
                        delta.reweighted.push((nu, nv, nw));
                    }
                    old_edges.next();
                    new_edges.next();
                }
                (Some(&(ou, ov, _)), Some(&(nu, nv, _))) if (ou, ov) < (nu, nv) => {
                    delta.removed.push((ou, ov));
                    old_edges.next();
                }
                (Some(_), Some(&(nu, nv, nw))) => {
                    delta.added.push((nu, nv, nw));
                    new_edges.next();
                }
                (Some(&(ou, ov, _)), None) => {
                    delta.removed.push((ou, ov));
                    old_edges.next();
                }
                (None, Some(&(nu, nv, nw))) => {
                    delta.added.push((nu, nv, nw));
                    new_edges.next();
                }
                (None, None) => break,
            }
        }
        delta
    }
}

/// How a [`IncrementalTopology::sync_snapshot`] call advanced the
/// engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncReport {
    /// Structural churn of the applied delta (see
    /// [`CsrDelta::structural_churn`]).
    pub structural_churn: usize,
    /// Weight-only changes folded in.
    pub reweighted: usize,
    /// Whether the engine fell back to a full rebuild.
    pub rebuilt: bool,
}

/// Per-node resident state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct NodeState {
    /// Out-neighbors with edge weight, sorted by neighbor key.
    out: Vec<(u32, u64)>,
    /// In-neighbors, sorted.
    inn: Vec<u32>,
    /// Undirected neighbors (union of out and in), sorted.
    und: Vec<u32>,
    /// Doubled triangle count: linked ordered pairs within the
    /// undirected neighborhood — the `twice_links` numerator of the
    /// local clustering coefficient.
    tri2: u64,
}

/// The incremental snapshot engine: a resident directed topology whose
/// metric state is maintained under [`CsrDelta`] application. See the
/// module docs for the design.
#[derive(Debug, Clone, Default)]
pub struct IncrementalTopology {
    /// Node key → state; `BTreeMap` so every whole-graph reduction has
    /// a canonical, history-independent order (and rule D4 stays
    /// satisfied).
    nodes: BTreeMap<u32, NodeState>,
    /// Directed edge count `M`.
    m: usize,
    /// Undirected link count (bilateral pairs collapsed).
    und_m: usize,
    /// Directed edges whose reverse exists (each bilateral pair counts
    /// 2): `Σ_{i≠j} a_ij a_ji`.
    bilateral: usize,
    /// `Σ w_ij` over all directed edges.
    total_w: u128,
    /// `Σ min(w_ij, w_ji)` over ordered bilateral pairs.
    matched_w: u128,
    /// Live degree histograms of the current snapshot.
    out_hist: DegreeHistogram,
    in_hist: DegreeHistogram,
    und_hist: DegreeHistogram,
    /// Scratch for common-neighbor sets during triangle maintenance
    /// (hoisted so delta application allocates nothing in steady
    /// state).
    scratch: Vec<u32>,
    /// Scratch for incident-edge lists during node removal.
    scratch_edges: Vec<(u32, u32)>,
}

impl PartialEq for IncrementalTopology {
    fn eq(&self, other: &Self) -> bool {
        // Scratch buffers are working memory, not state.
        self.nodes == other.nodes
            && self.m == other.m
            && self.und_m == other.und_m
            && self.bilateral == other.bilateral
            && self.total_w == other.total_w
            && self.matched_w == other.matched_w
            && self.out_hist == other.out_hist
            && self.in_hist == other.in_hist
            && self.und_hist == other.und_hist
    }
}

impl IncrementalTopology {
    /// An empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the engine from scratch for one snapshot — the fallback
    /// (and debug cross-check) for [`sync_snapshot`](Self::sync_snapshot).
    ///
    /// Input contract as for [`CsrDelta::diff_snapshot`].
    pub fn from_snapshot(nodes: &[u32], edges: &[(u32, u32, u64)]) -> Self {
        let mut topo = Self::new();
        // lint:allow(H3): the rebuild fallback is linear by design — it replaces delta application only when the delta itself is graph-sized
        for &k in nodes {
            topo.add_node(k);
        }
        for &(u, v, w) in edges {
            topo.add_edge(u, v, w);
        }
        topo
    }

    /// Advances the engine to the snapshot `(nodes, edges)`: diffs
    /// against the resident state, then either folds the delta in
    /// incrementally or — past the churn threshold
    /// ([`REBUILD_CHURN_DIVISOR`]) — rebuilds from scratch. Both paths
    /// leave identical state (asserted in debug builds), so the choice
    /// affects wall clock only, never metric bytes.
    ///
    /// Input contract as for [`CsrDelta::diff_snapshot`].
    pub fn sync_snapshot(&mut self, nodes: &[u32], edges: &[(u32, u32, u64)]) -> SyncReport {
        let delta = CsrDelta::diff_snapshot(self, nodes, edges);
        let churn = delta.structural_churn();
        let rebuilt = churn > (nodes.len() + edges.len()) / REBUILD_CHURN_DIVISOR;
        if rebuilt {
            *self = Self::from_snapshot(nodes, edges);
        } else {
            self.apply_delta(&delta);
            #[cfg(debug_assertions)]
            {
                let rebuilt_state = Self::from_snapshot(nodes, edges);
                assert!(
                    *self == rebuilt_state,
                    "incremental apply diverged from full rebuild",
                );
            }
        }
        SyncReport {
            structural_churn: churn,
            reweighted: delta.reweighted.len(),
            rebuilt,
        }
    }

    /// Folds one delta into the resident state in `O(delta)` (plus the
    /// adjacency-row and common-neighborhood work each changed edge
    /// touches). Tolerant of degenerate entries — see [`CsrDelta`].
    pub fn apply_delta(&mut self, delta: &CsrDelta) {
        for &k in &delta.added_nodes {
            self.add_node(k);
        }
        for &(u, v) in &delta.removed {
            self.remove_edge(u, v);
        }
        for &(u, v, w) in &delta.added {
            self.add_edge(u, v, w);
        }
        for &(u, v, w) in &delta.reweighted {
            self.add_edge(u, v, w);
        }
        for &k in &delta.removed_nodes {
            self.remove_node(k);
        }
    }

    /// Nodes in the resident snapshot.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Directed edges in the resident snapshot.
    pub fn edge_count(&self) -> usize {
        self.m
    }

    /// Undirected links (bilateral pairs collapsed).
    pub fn und_edge_count(&self) -> usize {
        self.und_m
    }

    /// Directed link density `M / (N (N − 1))` (0.0 below 2 nodes),
    /// mirroring [`crate::csr::Csr::density`].
    pub fn density(&self) -> f64 {
        let n = self.nodes.len();
        if n < 2 {
            return 0.0;
        }
        self.m as f64 / (n * (n - 1)) as f64
    }

    /// Directed edges whose reverse also exists, mirroring
    /// [`crate::reciprocity::bilateral_edge_count_csr`] — maintained,
    /// not recounted.
    pub fn bilateral_edge_count(&self) -> usize {
        self.bilateral
    }

    /// The graph clustering coefficient `C_g = (1/n) Σ C_i` from the
    /// maintained per-node doubled triangle counts; `0.0` when empty.
    ///
    /// Per-node division and the final sum mirror
    /// [`crate::clustering::clustering_coefficient_csr`]; the sum runs
    /// in ascending node-key order, so the value depends only on the
    /// current graph, never on the delta history that produced it.
    pub fn clustering_coefficient(&self) -> f64 {
        let n = self.nodes.len();
        if n == 0 {
            return 0.0;
        }
        // lint:allow(H3): the per-sample O(n) reduction is the design floor — the O(Σ k²) triangle recount is what the engine amortizes away
        let sum: f64 = self
            .nodes
            .values()
            .map(|st| {
                let k = st.und.len();
                if k < 2 {
                    0.0
                } else {
                    st.tri2 as f64 / (k * (k - 1)) as f64
                }
            })
            .sum();
        sum / n as f64
    }

    /// The local clustering coefficient `C_i` of one node, from the
    /// maintained state (`None` for unknown keys).
    pub fn local_clustering(&self, key: u32) -> Option<f64> {
        let st = self.nodes.get(&key)?;
        let k = st.und.len();
        if k < 2 {
            return Some(0.0);
        }
        Some(st.tri2 as f64 / (k * (k - 1)) as f64)
    }

    /// Simple reciprocity `r` (paper Eq. 1) from the maintained
    /// counters, with the contract of
    /// [`crate::reciprocity::simple_reciprocity_checked_csr`].
    ///
    /// # Errors
    ///
    /// [`GraphError::EmptyGraph`] when the graph has no edges.
    pub fn simple_reciprocity(&self) -> Result<f64, GraphError> {
        if self.m == 0 {
            return Err(GraphError::EmptyGraph);
        }
        Ok(self.bilateral as f64 / self.m as f64)
    }

    /// Garlaschelli–Loffredo reciprocity `ρ` (paper Eq. 2) from the
    /// maintained counters, with the contract of
    /// [`crate::reciprocity::garlaschelli_reciprocity_csr`].
    ///
    /// # Errors
    ///
    /// [`GraphError::EmptyGraph`] without edges,
    /// [`GraphError::CompleteGraph`] at density 1.
    pub fn garlaschelli_reciprocity(&self) -> Result<f64, GraphError> {
        if self.m == 0 {
            return Err(GraphError::EmptyGraph);
        }
        let a_bar = self.density();
        if (a_bar - 1.0).abs() < f64::EPSILON || a_bar > 1.0 {
            return Err(GraphError::CompleteGraph);
        }
        let r = self.bilateral as f64 / self.m as f64;
        Ok((r - a_bar) / (1.0 - a_bar))
    }

    /// Weighted reciprocity `r_w = Σ min(w_ij, w_ji) / Σ w_ij` from the
    /// maintained weight counters, with the contract of
    /// [`crate::reciprocity::weighted_reciprocity_csr`].
    ///
    /// # Errors
    ///
    /// [`GraphError::EmptyGraph`] without edges or with zero total
    /// weight.
    pub fn weighted_reciprocity(&self) -> Result<f64, GraphError> {
        if self.m == 0 || self.total_w == 0 {
            return Err(GraphError::EmptyGraph);
        }
        Ok(self.matched_w as f64 / self.total_w as f64)
    }

    /// Live out-degree histogram of the resident snapshot.
    pub fn out_degree_histogram(&self) -> &DegreeHistogram {
        &self.out_hist
    }

    /// Live in-degree histogram of the resident snapshot.
    pub fn in_degree_histogram(&self) -> &DegreeHistogram {
        &self.in_hist
    }

    /// Live undirected-degree histogram of the resident snapshot.
    pub fn und_degree_histogram(&self) -> &DegreeHistogram {
        &self.und_hist
    }

    /// The weight of edge `u -> v`, if present.
    pub fn edge_weight(&self, u: u32, v: u32) -> Option<u64> {
        let st = self.nodes.get(&u)?;
        let i = st.out.binary_search_by_key(&v, |e| e.0).ok()?;
        Some(st.out[i].1)
    }

    /// Doubled triangle count of one node (`None` for unknown keys) —
    /// exposed for the equivalence property tests.
    pub fn triangles_doubled(&self, key: u32) -> Option<u64> {
        self.nodes.get(&key).map(|st| st.tri2)
    }

    /// Inserts an isolated node; no-op when present.
    fn add_node(&mut self, key: u32) {
        if self.nodes.contains_key(&key) {
            return;
        }
        self.nodes.insert(key, NodeState::default());
        self.out_hist.record(0);
        self.in_hist.record(0);
        self.und_hist.record(0);
    }

    /// Removes a node, stripping any incident edges first; no-op when
    /// absent.
    fn remove_node(&mut self, key: u32) {
        let Some(st) = self.nodes.get(&key) else {
            return;
        };
        self.scratch_edges.clear();
        for &(v, _) in &st.out {
            self.scratch_edges.push((key, v));
        }
        for &u in &st.inn {
            self.scratch_edges.push((u, key));
        }
        let incident = std::mem::take(&mut self.scratch_edges);
        for &(u, v) in &incident {
            self.remove_edge(u, v);
        }
        self.scratch_edges = incident;
        self.out_hist.unrecord(0);
        self.in_hist.unrecord(0);
        self.und_hist.unrecord(0);
        self.nodes.remove(&key);
    }

    /// Adds edge `u -> v` with weight `w`, creating endpoints as
    /// needed; re-adding a present edge reweights it. Self-loops are
    /// ignored (as in [`crate::DiGraph::add_edge`]).
    fn add_edge(&mut self, u: u32, v: u32, w: u64) {
        if u == v {
            return;
        }
        self.add_node(u);
        self.add_node(v);
        // Out-row of u (also detects the re-add/reweight case).
        {
            let Some(st) = self.nodes.get_mut(&u) else {
                return;
            };
            match st.out.binary_search_by_key(&v, |e| e.0) {
                Ok(i) => {
                    let old = st.out[i].1;
                    st.out[i].1 = w;
                    self.reweight_counters(u, v, old, w);
                    return;
                }
                Err(i) => st.out.insert(i, (v, w)),
            }
            let deg = st.out.len();
            self.out_hist.unrecord(deg - 1);
            self.out_hist.record(deg);
        }
        // In-row of v.
        {
            let Some(st) = self.nodes.get_mut(&v) else {
                return;
            };
            if let Err(i) = st.inn.binary_search(&u) {
                st.inn.insert(i, u);
            }
            let deg = st.inn.len();
            self.in_hist.unrecord(deg - 1);
            self.in_hist.record(deg);
        }
        self.m += 1;
        self.total_w += u128::from(w);
        // Reciprocity counters: did the reverse edge already exist?
        let back = self.edge_weight(v, u);
        if let Some(bw) = back {
            self.bilateral += 2;
            self.matched_w += 2 * u128::from(w.min(bw));
        } else {
            // First direction between this pair: a new undirected link.
            self.link_und(u, v);
        }
    }

    /// Removes edge `u -> v`; no-op when absent.
    fn remove_edge(&mut self, u: u32, v: u32) {
        let Some(st) = self.nodes.get_mut(&u) else {
            return;
        };
        let Ok(i) = st.out.binary_search_by_key(&v, |e| e.0) else {
            return;
        };
        let w = st.out[i].1;
        let deg = st.out.len();
        st.out.remove(i);
        self.out_hist.unrecord(deg);
        self.out_hist.record(deg - 1);
        if let Some(st) = self.nodes.get_mut(&v) {
            if let Ok(i) = st.inn.binary_search(&u) {
                let deg = st.inn.len();
                st.inn.remove(i);
                self.in_hist.unrecord(deg);
                self.in_hist.record(deg - 1);
            }
        }
        self.m -= 1;
        self.total_w -= u128::from(w);
        let back = self.edge_weight(v, u);
        if let Some(bw) = back {
            self.bilateral -= 2;
            self.matched_w -= 2 * u128::from(w.min(bw));
        } else {
            // Last direction between the pair: the undirected link
            // dissolves.
            self.unlink_und(u, v);
        }
    }

    /// Weight change of a surviving edge: adjusts the weight counters,
    /// leaves every structural counter untouched — the reason
    /// [`CsrDelta`] keeps reweights out of `added`/`removed`.
    fn reweight_counters(&mut self, u: u32, v: u32, old: u64, new: u64) {
        self.total_w -= u128::from(old);
        self.total_w += u128::from(new);
        if let Some(bw) = self.edge_weight(v, u) {
            self.matched_w -= 2 * u128::from(old.min(bw));
            self.matched_w += 2 * u128::from(new.min(bw));
        }
    }

    /// Registers the undirected link `u — v`: neighborhood lists,
    /// undirected degree histogram, and triangle counts.
    fn link_und(&mut self, u: u32, v: u32) {
        for (a, b) in [(u, v), (v, u)] {
            let Some(st) = self.nodes.get_mut(&a) else {
                continue;
            };
            if let Err(i) = st.und.binary_search(&b) {
                st.und.insert(i, b);
            }
            let deg = st.und.len();
            self.und_hist.unrecord(deg - 1);
            self.und_hist.record(deg);
        }
        self.und_m += 1;
        // Every common undirected neighbor closes one triangle: the
        // pair (v, w) becomes linked inside N(u), (u, w) inside N(v),
        // and (u, v) inside N(w) — each worth 2 ordered pairs.
        self.common_und_into_scratch(u, v);
        let t = self.scratch.len() as u64;
        if let Some(st) = self.nodes.get_mut(&u) {
            st.tri2 += 2 * t;
        }
        if let Some(st) = self.nodes.get_mut(&v) {
            st.tri2 += 2 * t;
        }
        let commons = std::mem::take(&mut self.scratch);
        for &w in &commons {
            if let Some(st) = self.nodes.get_mut(&w) {
                st.tri2 += 2;
            }
        }
        self.scratch = commons;
    }

    /// Dissolves the undirected link `u — v`, the exact inverse of
    /// [`link_und`](Self::link_und). The common neighborhood is taken
    /// *before* the lists shrink, so the triangle decrements mirror the
    /// increments bit for bit.
    fn unlink_und(&mut self, u: u32, v: u32) {
        self.common_und_into_scratch(u, v);
        let t = self.scratch.len() as u64;
        if let Some(st) = self.nodes.get_mut(&u) {
            st.tri2 -= 2 * t;
        }
        if let Some(st) = self.nodes.get_mut(&v) {
            st.tri2 -= 2 * t;
        }
        let commons = std::mem::take(&mut self.scratch);
        for &w in &commons {
            if let Some(st) = self.nodes.get_mut(&w) {
                st.tri2 -= 2;
            }
        }
        self.scratch = commons;
        for (a, b) in [(u, v), (v, u)] {
            let Some(st) = self.nodes.get_mut(&a) else {
                continue;
            };
            if let Ok(i) = st.und.binary_search(&b) {
                let deg = st.und.len();
                st.und.remove(i);
                self.und_hist.unrecord(deg);
                self.und_hist.record(deg - 1);
            }
        }
        self.und_m -= 1;
    }

    /// Writes the sorted common undirected neighborhood of `u` and `v`
    /// into the reusable scratch buffer (endpoints excluded by the
    /// no-self-loop invariant).
    fn common_und_into_scratch(&mut self, u: u32, v: u32) {
        self.scratch.clear();
        let (Some(su), Some(sv)) = (self.nodes.get(&u), self.nodes.get(&v)) else {
            return;
        };
        let (a, b) = (&su.und, &sv.und);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    self.scratch.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering::clustering_coefficient_csr;
    use crate::csr::Csr;
    use crate::reciprocity::{
        bilateral_edge_count_csr, garlaschelli_reciprocity_csr, weighted_reciprocity_csr,
    };
    use crate::DiGraph;

    /// Normalizes an edge list into the snapshot contract and derives
    /// the node list (sorted, deduped, endpoint-closed).
    fn snapshot(mut extra_nodes: Vec<u32>, mut edges: Vec<(u32, u32, u64)>) -> Snapshot {
        edges.retain(|&(u, v, _)| u != v);
        edges.sort_unstable_by_key(|&(u, v, _)| (u, v));
        edges.dedup_by_key(|&mut (u, v, _)| (u, v));
        for &(u, v, _) in &edges {
            extra_nodes.push(u);
            extra_nodes.push(v);
        }
        extra_nodes.sort_unstable();
        extra_nodes.dedup();
        (extra_nodes, edges)
    }

    type Snapshot = (Vec<u32>, Vec<(u32, u32, u64)>);

    /// Builds the equivalent `DiGraph`/`Csr` pair for cross-checking
    /// against the established kernels. Nodes are interned in key
    /// order, so dense ids match the engine's canonical order.
    fn csr_of(nodes: &[u32], edges: &[(u32, u32, u64)]) -> Csr {
        let mut g: DiGraph<u32> = DiGraph::new();
        for &k in nodes {
            g.intern(k);
        }
        for &(u, v, w) in edges {
            let (a, b) = (g.node_id(&u).unwrap(), g.node_id(&v).unwrap());
            g.add_edge(a, b, w);
        }
        Csr::from_digraph(&g)
    }

    fn ws_snapshot(n: usize, seed: u64) -> Snapshot {
        let g = crate::random::watts_strogatz(n, 6, 0.2, seed);
        let edges: Vec<(u32, u32, u64)> = g
            .edges()
            .map(|e| (e.from.index() as u32, e.to.index() as u32, e.weight.max(1)))
            .collect();
        snapshot((0..n as u32).collect(), edges)
    }

    #[test]
    fn from_snapshot_matches_csr_kernels() {
        let (nodes, edges) = ws_snapshot(120, 5);
        let topo = IncrementalTopology::from_snapshot(&nodes, &edges);
        let csr = csr_of(&nodes, &edges);
        assert_eq!(topo.node_count(), csr.node_count());
        assert_eq!(topo.edge_count(), csr.edge_count());
        assert_eq!(topo.und_edge_count(), csr.und_edge_count());
        assert_eq!(topo.bilateral_edge_count(), bilateral_edge_count_csr(&csr));
        assert_eq!(
            topo.clustering_coefficient().to_bits(),
            clustering_coefficient_csr(&csr).to_bits(),
            "clustering must be bit-equal on key-ordered dense ids"
        );
        assert_eq!(
            topo.garlaschelli_reciprocity().unwrap().to_bits(),
            garlaschelli_reciprocity_csr(&csr).unwrap().to_bits()
        );
        assert_eq!(
            topo.weighted_reciprocity().unwrap().to_bits(),
            weighted_reciprocity_csr(&csr).unwrap().to_bits()
        );
    }

    #[test]
    fn degree_histograms_match_fresh_counts() {
        let (nodes, edges) = ws_snapshot(80, 9);
        let topo = IncrementalTopology::from_snapshot(&nodes, &edges);
        let csr = csr_of(&nodes, &edges);
        let und = DegreeHistogram::from_samples(csr.node_ids().map(|u| csr.und_degree(u)));
        let out = DegreeHistogram::from_samples(csr.node_ids().map(|u| csr.out_degree(u)));
        let inn = DegreeHistogram::from_samples(csr.node_ids().map(|u| csr.in_degree(u)));
        assert_eq!(topo.und_degree_histogram(), &und);
        assert_eq!(topo.out_degree_histogram(), &out);
        assert_eq!(topo.in_degree_histogram(), &inn);
    }

    #[test]
    fn incremental_sync_matches_rebuild_under_churn() {
        // Evolve a snapshot through edge churn, weight growth, and
        // node churn; at every step the engine must agree exactly with
        // a from-scratch build (debug builds also assert internally).
        let (mut nodes, mut edges) = ws_snapshot(60, 3);
        let mut topo = IncrementalTopology::new();
        topo.sync_snapshot(&nodes, &edges);
        for round in 0u64..8 {
            // Weights of surviving links grow (segment counters).
            for e in edges.iter_mut() {
                e.2 += round;
            }
            // Rotate some edges out, splice new ones in, churn a node.
            let cut = edges.len() / 10;
            edges.drain(..cut);
            let fresh = 200 + round as u32;
            edges.push((fresh, (round as u32) % 40, 7 + round));
            edges.push(((round as u32) % 40, fresh, 3 + round));
            nodes.push(fresh);
            let (n2, e2) = snapshot(nodes.clone(), edges.clone());
            nodes = n2;
            edges = e2;
            let report = topo.sync_snapshot(&nodes, &edges);
            let rebuilt = IncrementalTopology::from_snapshot(&nodes, &edges);
            assert!(topo == rebuilt, "round {round}: {report:?}");
            assert_eq!(
                topo.clustering_coefficient().to_bits(),
                rebuilt.clustering_coefficient().to_bits()
            );
        }
    }

    #[test]
    fn empty_delta_is_identity() {
        let (nodes, edges) = ws_snapshot(40, 1);
        let mut topo = IncrementalTopology::from_snapshot(&nodes, &edges);
        let before = topo.clone();
        let delta = CsrDelta::diff_snapshot(&topo, &nodes, &edges);
        assert!(delta.is_empty());
        topo.apply_delta(&delta);
        assert!(topo == before);
        let report = topo.sync_snapshot(&nodes, &edges);
        assert_eq!(report.structural_churn, 0);
        assert!(!report.rebuilt);
    }

    #[test]
    fn weight_only_changes_are_not_structural() {
        let (nodes, mut edges) = ws_snapshot(40, 2);
        let mut topo = IncrementalTopology::from_snapshot(&nodes, &edges);
        for e in edges.iter_mut() {
            e.2 += 100;
        }
        let delta = CsrDelta::diff_snapshot(&topo, &nodes, &edges);
        assert_eq!(delta.structural_churn(), 0);
        assert_eq!(delta.reweighted.len(), edges.len());
        let report = topo.sync_snapshot(&nodes, &edges);
        assert!(!report.rebuilt, "weight growth must not trigger rebuild");
        assert!(topo == IncrementalTopology::from_snapshot(&nodes, &edges));
    }

    #[test]
    fn mass_churn_falls_back_to_rebuild() {
        let (nodes, edges) = ws_snapshot(50, 4);
        let mut topo = IncrementalTopology::from_snapshot(&nodes, &edges);
        // A completely different graph: everything churns.
        let (n2, e2) = ws_snapshot(50, 99);
        let offset: Vec<u32> = n2.iter().map(|k| k + 1000).collect();
        let shifted: Vec<(u32, u32, u64)> = e2
            .iter()
            .map(|&(u, v, w)| (u + 1000, v + 1000, w))
            .collect();
        let report = topo.sync_snapshot(&offset, &shifted);
        assert!(report.rebuilt);
        assert!(topo == IncrementalTopology::from_snapshot(&offset, &shifted));
    }

    #[test]
    fn tolerant_degenerate_deltas() {
        let (nodes, edges) = snapshot(vec![9], vec![(1, 2, 5), (2, 1, 3), (2, 3, 4)]);
        let mut topo = IncrementalTopology::from_snapshot(&nodes, &edges);
        let before = topo.clone();
        // Removing absent edges/nodes, re-adding a present node: no-ops.
        topo.apply_delta(&CsrDelta {
            removed: vec![(3, 1), (7, 8)],
            removed_nodes: vec![77],
            added_nodes: vec![9],
            ..CsrDelta::default()
        });
        assert!(topo == before);
        // Re-adding a present edge acts as a reweight.
        topo.apply_delta(&CsrDelta {
            added: vec![(1, 2, 50)],
            ..CsrDelta::default()
        });
        assert_eq!(topo.edge_weight(1, 2), Some(50));
        assert_eq!(topo.edge_count(), 3);
        // Removing a live node strips its incident edges.
        topo.apply_delta(&CsrDelta {
            removed_nodes: vec![2],
            ..CsrDelta::default()
        });
        assert_eq!(topo.node_count(), 3);
        assert_eq!(topo.edge_count(), 0);
        assert_eq!(topo.und_edge_count(), 0);
        assert!(topo == IncrementalTopology::from_snapshot(&[1, 3, 9], &[]));
    }

    #[test]
    fn triangle_counts_track_link_lifecycle() {
        // Triangle 1-2-3 (each link one direction), then break it.
        let (nodes, edges) = snapshot(vec![], vec![(1, 2, 1), (2, 3, 1), (3, 1, 1)]);
        let mut topo = IncrementalTopology::from_snapshot(&nodes, &edges);
        for k in [1, 2, 3] {
            assert_eq!(topo.triangles_doubled(k), Some(2), "node {k}");
        }
        assert!((topo.clustering_coefficient() - 1.0).abs() < 1e-12);
        // Adding the reverse of an existing link changes no triangle.
        topo.apply_delta(&CsrDelta {
            added: vec![(2, 1, 9)],
            ..CsrDelta::default()
        });
        assert_eq!(topo.triangles_doubled(1), Some(2));
        assert_eq!(topo.bilateral_edge_count(), 2);
        // Removing one direction of the bilateral pair keeps the link.
        topo.apply_delta(&CsrDelta {
            removed: vec![(1, 2)],
            ..CsrDelta::default()
        });
        assert_eq!(topo.triangles_doubled(1), Some(2));
        assert_eq!(topo.und_edge_count(), 3);
        // Removing the last direction dissolves link and triangle.
        topo.apply_delta(&CsrDelta {
            removed: vec![(2, 1)],
            ..CsrDelta::default()
        });
        assert_eq!(topo.triangles_doubled(1), Some(0));
        assert_eq!(topo.clustering_coefficient(), 0.0);
    }

    #[test]
    fn empty_engine_metric_contracts() {
        let topo = IncrementalTopology::new();
        assert_eq!(topo.node_count(), 0);
        assert_eq!(topo.clustering_coefficient(), 0.0);
        assert_eq!(topo.simple_reciprocity(), Err(GraphError::EmptyGraph));
        assert_eq!(topo.garlaschelli_reciprocity(), Err(GraphError::EmptyGraph));
        assert_eq!(topo.weighted_reciprocity(), Err(GraphError::EmptyGraph));
        // Complete 2-graph: density 1 ⇒ ρ undefined, as in the Csr kernel.
        let topo = IncrementalTopology::from_snapshot(&[1, 2], &[(1, 2, 1), (2, 1, 1)]);
        assert_eq!(
            topo.garlaschelli_reciprocity(),
            Err(GraphError::CompleteGraph)
        );
    }
}
