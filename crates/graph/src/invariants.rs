//! Runtime invariant checks over [`DiGraph`] and its metrics.
//!
//! The metric functions in this crate are trusted by every layer above
//! it — the measurement replayer, the analysis studies, the archival
//! figures. A silent out-of-range clustering coefficient or a k-core
//! decomposition that is not monotone in `k` would corrupt all of them
//! without any test noticing, because downstream code only ever *plots*
//! the numbers.
//!
//! This module makes the mathematical contracts executable:
//!
//! * [`check_degree_balance`] — in a directed graph, the sum of
//!   in-degrees, the sum of out-degrees, and the edge count are the
//!   same number (each edge contributes exactly one of each).
//! * [`check_unit_interval`] — reciprocity and clustering coefficients
//!   are fractions and must lie in `[0, 1]` (and be finite).
//! * [`check_core_monotonicity`] — the size of the k-core shrinks (or
//!   stays equal) as `k` grows, every coreness is bounded by the
//!   degeneracy, and no node's coreness exceeds its undirected degree.
//! * [`check_metric_ranges`] / [`check_all`] — bundles of the above
//!   evaluated against a concrete graph.
//!
//! Each check returns `Result<(), InvariantViolation>` so test
//! harnesses (including `magellan-lint`'s self-test and the proptest
//! suite) can assert on the exact failure. [`debug_check_all`] wraps
//! [`check_all`] in a `debug_assert!`, making the whole layer free in
//! release builds while still tripping loudly under `cargo test`.

use crate::clustering::{clustering_coefficient_csr, local_clustering_csr};
use crate::kcore::{core_decomposition, CoreDecomposition};
use crate::reciprocity::simple_reciprocity_checked_csr;
use crate::{Csr, DiGraph, NodeId};
use std::fmt;
use std::hash::Hash;

/// A broken mathematical contract, with enough context to debug it.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum InvariantViolation {
    /// `sum(in-degree) == sum(out-degree) == |E|` failed.
    DegreeBalance {
        /// Sum of in-degrees over all nodes.
        in_sum: usize,
        /// Sum of out-degrees over all nodes.
        out_sum: usize,
        /// The graph's edge count.
        edges: usize,
    },
    /// A fraction-valued metric left `[0, 1]` or went non-finite.
    OutOfUnitInterval {
        /// Which metric produced the value.
        metric: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The k-core decomposition is not monotone: a larger `k` has a
    /// larger core.
    CoreNotMonotone {
        /// The smaller `k` of the violating pair.
        k: u32,
        /// Size of the `k`-core.
        size_k: usize,
        /// Size of the `(k + 1)`-core, which exceeded `size_k`.
        size_next: usize,
    },
    /// A node's coreness exceeds its undirected degree, which is
    /// impossible: removing a node from the k-core needs `< k`
    /// neighbors, so coreness is bounded by degree.
    CorenessExceedsDegree {
        /// The offending node.
        node: NodeId,
        /// Its coreness.
        core: u32,
        /// Its undirected degree.
        degree: usize,
    },
    /// A node's coreness exceeds the reported degeneracy (the maximum
    /// coreness), so the two views of the decomposition disagree.
    CorenessExceedsDegeneracy {
        /// The offending node.
        node: NodeId,
        /// Its coreness.
        core: u32,
        /// The decomposition's degeneracy.
        degeneracy: u32,
    },
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantViolation::DegreeBalance {
                in_sum,
                out_sum,
                edges,
            } => write!(
                f,
                "degree balance broken: sum(in) = {in_sum}, sum(out) = {out_sum}, |E| = {edges}"
            ),
            InvariantViolation::OutOfUnitInterval { metric, value } => {
                write!(f, "{metric} = {value} is outside [0, 1]")
            }
            InvariantViolation::CoreNotMonotone {
                k,
                size_k,
                size_next,
            } => write!(
                f,
                "k-core sizes not monotone: |{k}-core| = {size_k} < |{}-core| = {size_next}",
                k + 1
            ),
            InvariantViolation::CorenessExceedsDegree { node, core, degree } => write!(
                f,
                "node {node:?} has coreness {core} but undirected degree {degree}"
            ),
            InvariantViolation::CorenessExceedsDegeneracy {
                node,
                core,
                degeneracy,
            } => write!(
                f,
                "node {node:?} has coreness {core} above the degeneracy {degeneracy}"
            ),
        }
    }
}

impl std::error::Error for InvariantViolation {}

/// Checks that in-degrees, out-degrees, and the edge count agree.
///
/// Every directed edge contributes exactly one in-degree and one
/// out-degree, so all three sums must be equal. A mismatch means the
/// adjacency lists and the reverse-adjacency lists have diverged.
pub fn check_degree_balance<N: Eq + Hash + Clone>(
    g: &DiGraph<N>,
) -> Result<(), InvariantViolation> {
    let mut in_sum = 0usize;
    let mut out_sum = 0usize;
    for id in g.node_ids() {
        in_sum += g.in_degree(id);
        out_sum += g.out_degree(id);
    }
    let edges = g.edge_count();
    if in_sum != edges || out_sum != edges {
        return Err(InvariantViolation::DegreeBalance {
            in_sum,
            out_sum,
            edges,
        });
    }
    Ok(())
}

/// Checks that a fraction-valued metric is finite and within `[0, 1]`.
pub fn check_unit_interval(metric: &'static str, value: f64) -> Result<(), InvariantViolation> {
    if !value.is_finite() || !(0.0..=1.0).contains(&value) {
        return Err(InvariantViolation::OutOfUnitInterval { metric, value });
    }
    Ok(())
}

/// Checks the structural contracts of a k-core decomposition against
/// the graph it was computed from.
///
/// * `|k-core| >= |(k+1)-core|` for every `k` up to the degeneracy;
/// * every coreness is `<=` the node's undirected degree;
/// * every coreness is `<=` the reported degeneracy.
pub fn check_core_monotonicity<N: Eq + Hash + Clone>(
    g: &DiGraph<N>,
    cores: &CoreDecomposition,
) -> Result<(), InvariantViolation> {
    let degeneracy = cores.degeneracy();
    for id in g.node_ids() {
        let core = cores.core_of(id);
        let degree = g.undirected_degree(id);
        if core as usize > degree {
            return Err(InvariantViolation::CorenessExceedsDegree {
                node: id,
                core,
                degree,
            });
        }
        if core > degeneracy {
            return Err(InvariantViolation::CorenessExceedsDegeneracy {
                node: id,
                core,
                degeneracy,
            });
        }
    }
    for k in 0..degeneracy {
        let size_k = cores.core_size(k);
        let size_next = cores.core_size(k + 1);
        if size_next > size_k {
            return Err(InvariantViolation::CoreNotMonotone {
                k,
                size_k,
                size_next,
            });
        }
    }
    Ok(())
}

/// Evaluates the fraction-valued metrics on `g` and checks their
/// ranges: simple reciprocity, the graph-level clustering coefficient,
/// and every node's local clustering.
pub fn check_metric_ranges<N: Eq + Hash + Clone>(g: &DiGraph<N>) -> Result<(), InvariantViolation> {
    // One snapshot view for every query below: the per-node loop used
    // to rebuild all neighborhoods per node, turning this check into
    // O(n·(n + m)).
    let csr = Csr::from_digraph(g);
    check_unit_interval(
        "simple_reciprocity",
        simple_reciprocity_checked_csr(&csr).unwrap_or(0.0),
    )?;
    check_unit_interval("clustering_coefficient", clustering_coefficient_csr(&csr))?;
    for id in g.node_ids() {
        check_unit_interval("local_clustering", local_clustering_csr(&csr, id))?;
    }
    Ok(())
}

/// Runs the full invariant suite against `g`: degree balance, metric
/// ranges, and k-core monotonicity (computing a fresh decomposition).
pub fn check_all<N: Eq + Hash + Clone>(g: &DiGraph<N>) -> Result<(), InvariantViolation> {
    check_degree_balance(g)?;
    check_metric_ranges(g)?;
    check_core_monotonicity(g, &core_decomposition(g))?;
    Ok(())
}

/// [`check_all`] behind a `debug_assert!`: free in release builds, a
/// loud panic with the violation's message under `cargo test`.
pub fn debug_check_all<N: Eq + Hash + Clone>(g: &DiGraph<N>) {
    if cfg!(debug_assertions) {
        if let Err(v) = check_all(g) {
            debug_assert!(false, "graph invariant violated: {v}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: u32) -> DiGraph<u32> {
        let mut g = DiGraph::new();
        let ids: Vec<NodeId> = (0..n).map(|i| g.intern(i)).collect();
        for i in 0..n as usize {
            g.add_edge(ids[i], ids[(i + 1) % n as usize], 1);
            g.add_edge(ids[(i + 1) % n as usize], ids[i], 1);
        }
        g
    }

    #[test]
    fn healthy_graphs_pass_everything() {
        for g in [DiGraph::<u32>::new(), ring(3), ring(10)] {
            check_all(&g).expect("ring graphs satisfy all invariants");
            debug_check_all(&g);
        }
    }

    #[test]
    fn unit_interval_rejects_out_of_range_and_nan() {
        assert!(check_unit_interval("m", 0.0).is_ok());
        assert!(check_unit_interval("m", 1.0).is_ok());
        let err = check_unit_interval("m", 1.5).expect_err("1.5 is out of range");
        assert!(err.to_string().contains("outside [0, 1]"));
        assert!(check_unit_interval("m", -0.1).is_err());
        assert!(check_unit_interval("m", f64::NAN).is_err());
        assert!(check_unit_interval("m", f64::INFINITY).is_err());
    }

    #[test]
    fn degree_balance_holds_on_asymmetric_graphs() {
        let mut g = DiGraph::new();
        let a = g.intern("a");
        let b = g.intern("b");
        let c = g.intern("c");
        g.add_edge(a, b, 1);
        g.add_edge(a, c, 1);
        g.add_edge(b, c, 1);
        check_degree_balance(&g).expect("adjacency lists are consistent");
    }

    #[test]
    fn core_checks_accept_a_real_decomposition() {
        let g = ring(6);
        let cores = core_decomposition(&g);
        check_core_monotonicity(&g, &cores).expect("ring decomposition is monotone");
    }

    #[test]
    fn violation_displays_are_informative() {
        let v = InvariantViolation::DegreeBalance {
            in_sum: 3,
            out_sum: 4,
            edges: 4,
        };
        assert!(v.to_string().contains("sum(in) = 3"));
        let v = InvariantViolation::CoreNotMonotone {
            k: 2,
            size_k: 5,
            size_next: 6,
        };
        assert!(v.to_string().contains("|2-core| = 5"));
        let v = InvariantViolation::CorenessExceedsDegree {
            node: NodeId::from_index(0),
            core: 9,
            degree: 2,
        };
        assert!(v.to_string().contains("coreness 9"));
    }
}
