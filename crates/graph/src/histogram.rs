//! Degree histograms and empirical distributions.
//!
//! Figure 4 of the paper plots, on log–log axes, the *fraction of
//! peers* at each degree value. [`DegreeHistogram`] is the container
//! behind those plots: raw counts per degree plus helpers for the pmf,
//! CCDF, log-binned smoothing, and spike (mode) detection that the
//! paper uses to argue the distributions are not power laws.

use serde::{Deserialize, Serialize};

/// One point of an empirical degree distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HistogramPoint {
    /// Degree value (or geometric bin center for log-binned output).
    pub degree: f64,
    /// Fraction of samples at this degree (or in this bin).
    pub fraction: f64,
}

/// An empirical distribution over non-negative integer degrees.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegreeHistogram {
    counts: Vec<u64>,
    total: u64,
}

impl DegreeHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a histogram from an iterator of degree samples.
    pub fn from_samples<I: IntoIterator<Item = usize>>(samples: I) -> Self {
        let mut h = Self::new();
        for s in samples {
            h.record(s);
        }
        h
    }

    /// Records one sample.
    pub fn record(&mut self, degree: usize) {
        if degree >= self.counts.len() {
            self.counts.resize(degree + 1, 0);
        }
        self.counts[degree] += 1;
        self.total += 1;
    }

    /// Removes one previously recorded sample, the inverse of
    /// [`record`](Self::record) — the maintenance primitive behind the
    /// incremental snapshot engine's live degree histograms.
    ///
    /// Trailing zero buckets are trimmed so that a histogram maintained
    /// by record/unrecord pairs compares equal (`==`) to one freshly
    /// built from the surviving samples.
    ///
    /// # Panics
    ///
    /// Panics when no sample is currently recorded at `degree` — an
    /// unrecord that does not pair with an earlier record is a caller
    /// accounting bug, not a recoverable state.
    pub fn unrecord(&mut self, degree: usize) {
        let Some(slot) = self.counts.get_mut(degree).filter(|c| **c > 0) else {
            panic!("unrecord at degree {degree}: no sample recorded");
        };
        *slot -= 1;
        self.total -= 1;
        while self.counts.last() == Some(&0) {
            self.counts.pop();
        }
    }

    /// Total number of samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of samples observed at exactly `degree`.
    pub fn count_at(&self, degree: usize) -> u64 {
        self.counts.get(degree).copied().unwrap_or(0)
    }

    /// Fraction of samples at exactly `degree` (0.0 when empty).
    pub fn fraction_at(&self, degree: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.count_at(degree) as f64 / self.total as f64
    }

    /// The largest degree with a nonzero count, if any sample exists.
    pub fn max_degree(&self) -> Option<usize> {
        self.counts.iter().rposition(|&c| c > 0)
    }

    /// Mean degree over all samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let sum: u64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(d, &c)| d as u64 * c)
            .sum();
        sum as f64 / self.total as f64
    }

    /// The `q`-quantile (0.0..=1.0) of the degree distribution.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<usize> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.total == 0 {
            return None;
        }
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        for (d, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return Some(d);
            }
        }
        self.max_degree()
    }

    /// The mode of the distribution *ignoring degree 0* — the "spike"
    /// the paper tracks in Fig. 4 (degree-0 reporters are peers whose
    /// partner activity fell below threshold, not a topological mode).
    ///
    /// Ties resolve to the smallest degree.
    pub fn spike(&self) -> Option<usize> {
        self.counts
            .iter()
            .enumerate()
            .skip(1)
            .filter(|&(_, &c)| c > 0)
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(d, _)| d)
    }

    /// The pmf as points, skipping zero-count degrees (log–log friendly).
    pub fn pmf(&self) -> Vec<HistogramPoint> {
        if self.total == 0 {
            return Vec::new();
        }
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(d, &c)| HistogramPoint {
                degree: d as f64,
                fraction: c as f64 / self.total as f64,
            })
            .collect()
    }

    /// Complementary CDF: fraction of samples with degree `>= d`, for
    /// each observed degree `d`.
    pub fn ccdf(&self) -> Vec<HistogramPoint> {
        if self.total == 0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut tail = self.total;
        for (d, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                out.push(HistogramPoint {
                    degree: d as f64,
                    fraction: tail as f64 / self.total as f64,
                });
            }
            tail -= c;
        }
        out
    }

    /// Geometrically binned pmf with `bins_per_decade` bins per factor
    /// of ten, normalized by bin width — the standard way to smooth a
    /// heavy-tailed histogram for log–log plots.
    ///
    /// Degree 0 is excluded (it has no logarithm).
    pub fn log_binned(&self, bins_per_decade: usize) -> Vec<HistogramPoint> {
        assert!(bins_per_decade > 0, "need at least one bin per decade");
        let max = match self.max_degree() {
            Some(m) if m >= 1 => m,
            _ => return Vec::new(),
        };
        let ratio = 10f64.powf(1.0 / bins_per_decade as f64);
        let mut out = Vec::new();
        let mut lo = 1.0f64;
        while lo <= max as f64 {
            let hi = lo * ratio;
            // Integer degrees in [lo, hi).
            let d_lo = lo.ceil() as usize;
            let d_hi = (hi.ceil() as usize).min(self.counts.len());
            let count: u64 = (d_lo..d_hi).map(|d| self.counts[d]).sum();
            let width = hi - lo;
            if count > 0 {
                out.push(HistogramPoint {
                    degree: (lo * hi).sqrt(),
                    fraction: count as f64 / self.total as f64 / width,
                });
            }
            lo = hi;
        }
        out
    }

    /// Expands the histogram back into individual samples (useful for
    /// feeding fitted estimators).
    pub fn to_samples(&self) -> Vec<usize> {
        let mut v = Vec::with_capacity(self.total as usize);
        for (d, &c) in self.counts.iter().enumerate() {
            for _ in 0..c {
                v.push(d);
            }
        }
        v
    }
}

impl FromIterator<usize> for DegreeHistogram {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        Self::from_samples(iter)
    }
}

impl Extend<usize> for DegreeHistogram {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for s in iter {
            self.record(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_inert() {
        let h = DegreeHistogram::new();
        assert_eq!(h.total(), 0);
        assert_eq!(h.max_degree(), None);
        assert_eq!(h.spike(), None);
        assert_eq!(h.quantile(0.5), None);
        assert!(h.pmf().is_empty());
        assert!(h.ccdf().is_empty());
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn fractions_sum_to_one() {
        let h: DegreeHistogram = [1usize, 1, 2, 3, 3, 3].into_iter().collect();
        let sum: f64 = h.pmf().iter().map(|p| p.fraction).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn count_and_fraction() {
        let h: DegreeHistogram = [0usize, 2, 2, 5].into_iter().collect();
        assert_eq!(h.count_at(2), 2);
        assert_eq!(h.count_at(4), 0);
        assert!((h.fraction_at(2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn spike_ignores_zero_and_prefers_smallest_tie() {
        let h: DegreeHistogram = [0usize, 0, 0, 3, 3, 7, 7].into_iter().collect();
        assert_eq!(h.spike(), Some(3));
    }

    #[test]
    fn mean_matches_hand_computation() {
        let h: DegreeHistogram = [1usize, 2, 3].into_iter().collect();
        assert!((h.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles() {
        let h: DegreeHistogram = (1..=100usize).collect();
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(0.5), Some(50));
        assert_eq!(h.quantile(1.0), Some(100));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn quantile_rejects_out_of_range() {
        let h: DegreeHistogram = [1usize].into_iter().collect();
        let _ = h.quantile(1.5);
    }

    #[test]
    fn ccdf_is_monotone_nonincreasing_and_starts_at_one() {
        let h: DegreeHistogram = [0usize, 1, 1, 4, 9].into_iter().collect();
        let c = h.ccdf();
        assert!((c[0].fraction - 1.0).abs() < 1e-12);
        for w in c.windows(2) {
            assert!(w[0].fraction >= w[1].fraction);
        }
    }

    #[test]
    fn log_binning_conserves_mass() {
        let h: DegreeHistogram = (1..=1000usize).collect();
        let binned = h.log_binned(5);
        // Total mass = sum fraction * width; widths partition [1, max*ratio).
        // We verify a weaker invariant: every bin density is positive and
        // bins are ordered by center.
        assert!(!binned.is_empty());
        for w in binned.windows(2) {
            assert!(w[0].degree < w[1].degree);
        }
        assert!(binned.iter().all(|p| p.fraction > 0.0));
    }

    #[test]
    fn to_samples_roundtrip() {
        let orig = vec![1usize, 1, 4, 7];
        let h: DegreeHistogram = orig.iter().copied().collect();
        let mut back = h.to_samples();
        back.sort();
        assert_eq!(back, orig);
    }
}
