//! Property tests for the analysis layer: graph construction from
//! arbitrary report sets and series invariants.

use magellan_analysis::classify::degree_triple;
use magellan_analysis::graphs::{
    active_link_graph, inter_isp_link_graph, intra_isp_link_graph, NodeScope,
};
use magellan_analysis::timeseries::{to_csv, Series};
use magellan_netsim::{IspDatabase, PeerAddr, SimTime};
use magellan_trace::{BufferMap, PartnerRecord, PeerReport};
use magellan_workload::ChannelId;
use proptest::prelude::*;

fn arb_report() -> impl Strategy<Value = PeerReport> {
    (
        0u32..40,
        proptest::collection::vec((0u32..40, 0u64..60, 0u64..60), 0..20),
        0u64..1_000_000,
    )
        .prop_map(|(addr, partners, time)| PeerReport {
            time: SimTime::from_millis(time),
            addr: PeerAddr::from_u32(addr),
            channel: ChannelId::CCTV1,
            buffer_map: BufferMap::new(0, 8),
            download_capacity_kbps: 1000.0,
            upload_capacity_kbps: 500.0,
            recv_throughput_kbps: 300.0,
            send_throughput_kbps: 100.0,
            partners: partners
                .into_iter()
                .filter(|&(p, _, _)| p != addr)
                .map(|(p, sent, recv)| PartnerRecord {
                    addr: PeerAddr::from_u32(p),
                    tcp_port: 0,
                    udp_port: 0,
                    segments_sent: sent,
                    segments_received: recv,
                })
                .collect(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn stable_graph_is_subgraph_of_all_known(reports in proptest::collection::vec(arb_report(), 0..25)) {
        let stable = active_link_graph(&reports, NodeScope::StableOnly);
        let all = active_link_graph(&reports, NodeScope::AllKnown);
        prop_assert!(stable.node_count() <= all.node_count());
        prop_assert!(stable.edge_count() <= all.edge_count());
        // Every stable edge exists in the all-known graph.
        for e in stable.edges() {
            let f = all.node_id(stable.key(e.from)).expect("node present");
            let t = all.node_id(stable.key(e.to)).expect("node present");
            prop_assert!(all.has_edge(f, t));
        }
    }

    #[test]
    fn isp_split_partitions_edges(reports in proptest::collection::vec(arb_report(), 0..25)) {
        let db = IspDatabase::default();
        let g = active_link_graph(&reports, NodeScope::AllKnown);
        let intra = intra_isp_link_graph(&g, &db);
        let inter = inter_isp_link_graph(&g, &db);
        prop_assert_eq!(intra.edge_count() + inter.edge_count(), g.edge_count());
    }

    #[test]
    fn graph_construction_is_input_order_invariant(mut reports in proptest::collection::vec(arb_report(), 0..20)) {
        let forward = active_link_graph(&reports, NodeScope::AllKnown);
        reports.reverse();
        let backward = active_link_graph(&reports, NodeScope::AllKnown);
        prop_assert_eq!(forward.node_count(), backward.node_count());
        prop_assert_eq!(forward.edge_count(), backward.edge_count());
        for e in forward.edges() {
            let f = backward.node_id(forward.key(e.from)).expect("node");
            let t = backward.node_id(forward.key(e.to)).expect("node");
            prop_assert!(backward.has_edge(f, t));
        }
    }

    #[test]
    fn degree_triple_is_bounded_by_partner_count(report in arb_report()) {
        let (p, i, o) = degree_triple(&report);
        prop_assert_eq!(p, report.partners.len());
        prop_assert!(i <= p);
        prop_assert!(o <= p);
    }

    #[test]
    fn edge_count_bounded_by_active_records(reports in proptest::collection::vec(arb_report(), 0..25)) {
        let g = active_link_graph(&reports, NodeScope::AllKnown);
        // Each partner record contributes at most 2 directed edges.
        let record_bound: usize = reports.iter().map(|r| r.partners.len() * 2).sum();
        prop_assert!(g.edge_count() <= record_bound);
    }

    #[test]
    fn series_csv_has_one_row_per_distinct_time(points in proptest::collection::vec(0u64..1_000, 0..50)) {
        let mut sorted = points.clone();
        sorted.sort();
        let mut s = Series::new("x");
        for (i, &t) in sorted.iter().enumerate() {
            s.push(SimTime::from_millis(t), i as f64);
        }
        let csv = to_csv(&[&s]);
        let mut distinct = sorted.clone();
        distinct.dedup();
        prop_assert_eq!(csv.lines().count(), 1 + distinct.len());
    }

    #[test]
    fn series_stats_agree(values in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
        let mut s = Series::new("v");
        for (i, &v) in values.iter().enumerate() {
            s.push(SimTime::from_millis(i as u64), v);
        }
        let max = s.max_point().unwrap().1;
        let min = s.min_point().unwrap().1;
        prop_assert!(min <= s.mean() + 1e-9);
        prop_assert!(s.mean() <= max + 1e-9);
        prop_assert_eq!(s.len(), values.len());
    }
}
