//! Stable-session reconstruction from the trace.
//!
//! The trace never records departures — a peer simply stops
//! reporting. Following the paper's measurement design, a *stable
//! session* is a maximal run of consecutive reports from one address
//! (tolerating one lost datagram); its observed length is the span of
//! the run plus the 20 minutes the peer was necessarily online before
//! its first report. This is the observable lower bound of the true
//! session length, and the machinery behind statements like "reports
//! are sent by relatively long-lived peers".

use magellan_netsim::{PeerAddr, SimDuration, SimTime};
use magellan_trace::{TraceStore, FIRST_REPORT_DELAY, REPORT_INTERVAL};
use std::collections::BTreeMap;

/// One reconstructed stable session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StableSession {
    /// The peer.
    pub addr: PeerAddr,
    /// First report of the run.
    pub first_report: SimTime,
    /// Last report of the run.
    pub last_report: SimTime,
    /// Reports in the run.
    pub reports: u32,
}

impl StableSession {
    /// Observed session length: run span plus the pre-report delay.
    pub fn observed_length(&self) -> SimDuration {
        self.last_report.saturating_since(self.first_report) + FIRST_REPORT_DELAY
    }
}

/// Summary statistics over a session population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionSummary {
    /// Number of sessions.
    pub sessions: usize,
    /// Mean observed length in minutes.
    pub mean_mins: f64,
    /// Median observed length in minutes.
    pub median_mins: f64,
    /// 90th percentile in minutes.
    pub p90_mins: f64,
}

/// Reconstructs stable sessions from a trace, splitting a peer's
/// report stream wherever the gap exceeds `2 × REPORT_INTERVAL`
/// (one lost datagram is bridged; two mean the peer left and later
/// rejoined).
pub fn stable_sessions(store: &TraceStore) -> Vec<StableSession> {
    // BTreeMap: address order is the deterministic output order.
    let mut times: BTreeMap<PeerAddr, Vec<SimTime>> = BTreeMap::new();
    for r in store.reports() {
        times.entry(r.addr).or_default().push(r.time);
    }
    let split_gap = SimDuration::from_millis(REPORT_INTERVAL.as_millis() * 2);
    let mut sessions = Vec::new();
    for (addr, mut ts) in times {
        ts.sort();
        let mut run_start = ts[0];
        let mut prev = ts[0];
        let mut count = 1u32;
        for &t in &ts[1..] {
            if t.saturating_since(prev) > split_gap {
                sessions.push(StableSession {
                    addr,
                    first_report: run_start,
                    last_report: prev,
                    reports: count,
                });
                run_start = t;
                count = 0;
            }
            prev = t;
            count += 1;
        }
        sessions.push(StableSession {
            addr,
            first_report: run_start,
            last_report: prev,
            reports: count,
        });
    }
    sessions
}

/// Summarizes observed session lengths.
///
/// Returns `None` for an empty session list.
pub fn summarize(sessions: &[StableSession]) -> Option<SessionSummary> {
    if sessions.is_empty() {
        return None;
    }
    let mut mins: Vec<f64> = sessions
        .iter()
        .map(|s| s.observed_length().as_millis() as f64 / 60_000.0)
        .collect();
    mins.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = mins.len();
    Some(SessionSummary {
        sessions: n,
        mean_mins: mins.iter().sum::<f64>() / n as f64,
        median_mins: mins[n / 2],
        p90_mins: mins[(n.saturating_mul(9) / 10).min(n - 1)],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use magellan_trace::{BufferMap, PeerReport};
    use magellan_workload::ChannelId;

    fn report(ip: u32, minute: u64) -> PeerReport {
        PeerReport {
            time: SimTime::ORIGIN + SimDuration::from_mins(minute),
            addr: PeerAddr::from_u32(ip),
            channel: ChannelId::CCTV1,
            buffer_map: BufferMap::new(0, 8),
            download_capacity_kbps: 1000.0,
            upload_capacity_kbps: 500.0,
            recv_throughput_kbps: 400.0,
            send_throughput_kbps: 0.0,
            partners: vec![],
        }
    }

    #[test]
    fn single_report_is_a_twenty_minute_session() {
        let store: TraceStore = vec![report(1, 20)].into_iter().collect();
        let s = stable_sessions(&store);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].reports, 1);
        assert_eq!(s[0].observed_length(), FIRST_REPORT_DELAY);
    }

    #[test]
    fn consecutive_reports_form_one_session() {
        let store: TraceStore = vec![report(1, 20), report(1, 30), report(1, 40)]
            .into_iter()
            .collect();
        let s = stable_sessions(&store);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].reports, 3);
        assert_eq!(s[0].observed_length(), SimDuration::from_mins(40));
    }

    #[test]
    fn one_missed_report_bridges() {
        let store: TraceStore = vec![report(1, 20), report(1, 40)].into_iter().collect();
        let s = stable_sessions(&store);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].reports, 2);
    }

    #[test]
    fn long_gap_splits_sessions() {
        let store: TraceStore = vec![report(1, 20), report(1, 30), report(1, 120), report(1, 130)]
            .into_iter()
            .collect();
        let s = stable_sessions(&store);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].observed_length(), SimDuration::from_mins(30));
        assert_eq!(s[1].observed_length(), SimDuration::from_mins(30));
    }

    #[test]
    fn sessions_from_different_peers_do_not_merge() {
        let store: TraceStore = vec![report(1, 20), report(2, 30)].into_iter().collect();
        let s = stable_sessions(&store);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn summary_statistics() {
        let store: TraceStore = vec![
            report(1, 20), // 20 min session
            report(2, 20),
            report(2, 30), // 30 min session
        ]
        .into_iter()
        .collect();
        let sessions = stable_sessions(&store);
        let sum = summarize(&sessions).unwrap();
        assert_eq!(sum.sessions, 2);
        assert!((sum.mean_mins - 25.0).abs() < 1e-9);
        assert!(sum.p90_mins >= sum.median_mins);
        assert!(summarize(&[]).is_none());
    }

    #[test]
    fn empty_store_has_no_sessions() {
        assert!(stable_sessions(&TraceStore::new()).is_empty());
    }
}
