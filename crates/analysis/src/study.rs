//! The end-to-end Magellan study driver.
//!
//! [`MagellanStudy`] wires a workload scenario into the overlay
//! simulator and consumes the emitted reports *as a stream*,
//! maintaining just enough state to reconstruct snapshots at sampling
//! boundaries: the last two reports of each recently-seen peer (the
//! paper's trace server kept 120 GB; we keep a rolling window). At
//! every sample instant it materializes the stable-peer set, builds
//! the active-link topology, and appends one point to each figure's
//! series.

use crate::figures::{DegreeSnapshot, PartialSample, StudyReport};
use crate::graphs::{
    active_link_graph, inter_isp_link_graph, intra_isp_degree_fractions, intra_isp_link_graph,
    intra_isp_pool_fraction, isp_share_baseline, isp_subgraph, NodeScope,
};
use crate::timeseries::Series;
use magellan_graph::paths::PathSampling;
use magellan_graph::powerlaw;
use magellan_graph::reciprocity::garlaschelli_reciprocity;
use magellan_graph::smallworld::{
    assess, assess_csr, assess_csr_with_clustering, SmallWorldConfig, SmallWorldReport,
};
use magellan_graph::{Csr, DegreeHistogram, DiGraph, IncrementalTopology};
use magellan_netsim::{
    uncovered_fraction, Isp, IspDatabase, PeerAddr, SimDuration, SimTime, StudyCalendar,
};
use magellan_overlay::{OverlaySim, SimConfig};
use magellan_trace::PeerReport;
use magellan_workload::{FaultPlan, Scenario};
use std::collections::{BTreeMap, BTreeSet, HashSet};

/// Configuration of one study run.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Experiment seed.
    pub seed: u64,
    /// Population scale (1.0 ≈ the paper's 100k concurrent peers).
    pub scale: f64,
    /// Study window length in days (the paper plots 14).
    pub window_days: u64,
    /// Metric sampling cadence.
    pub sample_every: SimDuration,
    /// Instants at which Fig. 4 degree distributions are captured,
    /// with labels. Defaults mirror the paper: 9 a.m. and 9 p.m. on a
    /// normal day and on the flash-crowd day (Oct 6 = day 5).
    pub degree_captures: Vec<(String, SimTime)>,
    /// The ISP of Fig. 7(B) (paper: China Netcom).
    pub isp_panel: Isp,
    /// Satisfaction threshold of Fig. 3 (fraction of channel rate).
    pub quality_fraction: f64,
    /// Graph metrics are skipped at samples with fewer stable peers
    /// than this (tiny graphs produce degenerate values).
    pub min_graph_nodes: usize,
    /// Overrides the scenario's flash crowds when set (`Some(vec![])`
    /// disables them — the crowd-ablation runs use this).
    pub flash_crowds: Option<Vec<magellan_workload::FlashCrowd>>,
    /// Overrides the scenario's channel directory when set (tests use
    /// a two-channel lineup so per-channel populations stay dense at
    /// tiny scales).
    pub channels: Option<magellan_workload::ChannelDirectory>,
    /// Protocol/simulator parameters.
    pub sim: SimConfig,
    /// Scheduled faults (default: none). Tracker/server outages,
    /// crash waves, partitions and report loss run inside the
    /// simulator; the `server_outages` schedule additionally marks
    /// analysis samples whose staleness horizon overlaps an outage as
    /// partial, in both the live and the replay path.
    pub faults: FaultPlan,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            seed: 2006,
            scale: 0.01,
            window_days: 14,
            sample_every: SimDuration::from_mins(60),
            degree_captures: vec![
                ("9am d2".into(), SimTime::at(2, 9, 0)),
                ("9pm d2".into(), SimTime::at(2, 21, 0)),
                ("9am d5".into(), SimTime::at(5, 9, 0)),
                ("9pm d5 (flash)".into(), SimTime::at(5, 21, 0)),
            ],
            isp_panel: Isp::Netcom,
            quality_fraction: 0.9,
            min_graph_nodes: 20,
            flash_crowds: None,
            channels: None,
            sim: SimConfig::default(),
            faults: FaultPlan::default(),
        }
    }
}

impl StudyConfig {
    /// Builds the workload scenario this config describes.
    pub fn scenario(&self) -> Scenario {
        let mut b = Scenario::builder(self.seed, self.scale).calendar(StudyCalendar {
            window_days: self.window_days,
        });
        if let Some(crowds) = &self.flash_crowds {
            b = b.flash_crowds(crowds.clone());
        }
        if let Some(channels) = &self.channels {
            b = b.channels(channels.clone());
        }
        if !self.faults.is_empty() {
            b = b.faults(self.faults.clone());
        }
        b.build()
    }
}

/// The study runner.
#[derive(Debug, Clone)]
pub struct MagellanStudy {
    cfg: StudyConfig,
}

impl MagellanStudy {
    /// Creates a runner.
    pub fn new(cfg: StudyConfig) -> Self {
        MagellanStudy { cfg }
    }

    /// Convenience: default configuration at the given seed/scale.
    pub fn with_scale(seed: u64, scale: f64) -> Self {
        MagellanStudy::new(StudyConfig {
            seed,
            scale,
            ..StudyConfig::default()
        })
    }

    /// The configuration.
    pub fn config(&self) -> &StudyConfig {
        &self.cfg
    }

    /// Runs the simulation and the full analysis, producing every
    /// figure of the paper.
    pub fn run(&self) -> StudyReport {
        let scenario = self.cfg.scenario();
        let mut sim = OverlaySim::new(scenario, self.cfg.sim.clone());
        let db = sim.isp_database().clone();
        let mut acc = Accumulator::new(&self.cfg, db);
        // lint:allow(C1): scenario and rate table come from the same StudyConfig, so the sim cannot report an inconsistency; abort loudly if it somehow does
        let summary = sim
            .run(|r| acc.ingest(r))
            .expect("study scenario is self-consistent");
        let mut report = acc.finish();
        report.sim = summary;
        report
    }

    /// Runs the analysis over an existing trace (for example one
    /// reloaded from JSON lines) instead of simulating — the
    /// replay-from-archive mode a measurement group actually works
    /// in. Reports are re-streamed in timestamp order; `db` must be
    /// the ISP mapping the trace was collected under (the default
    /// synthetic database for traces produced by this repository's
    /// simulator with default shares).
    pub fn analyze_trace(
        &self,
        store: &magellan_trace::TraceStore,
        db: &IspDatabase,
    ) -> StudyReport {
        let mut acc = Accumulator::new(&self.cfg, db.clone());
        let mut order: Vec<usize> = (0..store.reports().len()).collect();
        order.sort_by_key(|&i| {
            let r = &store.reports()[i];
            (r.time, r.addr)
        });
        for i in order {
            acc.ingest(store.reports()[i].clone());
        }
        acc.finish()
    }
}

/// The last two reports of one peer (two suffice: sampling lags the
/// stream by at most one simulator tick, which is shorter than the
/// 10-minute report interval).
#[derive(Debug, Clone)]
struct RecentPair {
    newer: PeerReport,
    older: Option<PeerReport>,
}

impl RecentPair {
    fn push(&mut self, r: PeerReport) {
        let old = std::mem::replace(&mut self.newer, r);
        self.older = Some(old);
    }

    /// The freshest report with `time <= at` and `time > at - horizon`.
    fn select(&self, at: SimTime, horizon: SimDuration) -> Option<&PeerReport> {
        let floor = at - horizon;
        if self.newer.time <= at && self.newer.time > floor {
            return Some(&self.newer);
        }
        match &self.older {
            Some(o) if o.time <= at && o.time > floor => Some(o),
            _ => None,
        }
    }
}

/// A sampling boundary: either a periodic sample, a Fig. 4 capture,
/// or both.
#[derive(Debug, Clone)]
struct Boundary {
    time: SimTime,
    sample: bool,
    capture: Option<usize>,
}

pub(crate) struct Accumulator {
    cfg: StudyConfig,
    db: IspDatabase,
    staleness: SimDuration,
    // BTreeMaps: both maps are iterated/retained on the metric path,
    // where hash order would leak into figure bytes (rule D4).
    recent: BTreeMap<PeerAddr, RecentPair>,
    boundaries: Vec<Boundary>,
    next_boundary: usize,
    day_total_ips: Vec<HashSet<u32>>,
    day_stable_ips: Vec<HashSet<u32>>,
    isp_share_sums: [f64; 7],
    isp_share_samples: u64,
    /// Per-peer open report run: (run start, previous report, count).
    session_runs: BTreeMap<PeerAddr, (SimTime, SimTime, u32)>,
    /// Observed lengths (minutes) of completed report runs.
    finished_sessions_mins: Vec<f64>,
    /// Incremental snapshot engines carried across report boundaries:
    /// one tracking the stable-peer topology (Fig. 7 clustering), one
    /// the all-known topology (Fig. 8 reciprocity). Their state is a
    /// pure function of the snapshots synced so far, so live, replay,
    /// and resumed runs all arrive at identical metric bytes.
    inc_stable: IncrementalTopology,
    inc_full: IncrementalTopology,
    report: StudyReport,
}

/// Extracts the engine-facing snapshot of one topology: sorted node
/// keys and `(from, to, weight)` edges in ascending `(from, to)`
/// order, as [`IncrementalTopology::sync_snapshot`] requires.
fn graph_snapshot(g: &DiGraph<PeerAddr>) -> (Vec<u32>, Vec<(u32, u32, u64)>) {
    let mut nodes: Vec<u32> = g.nodes().map(|(_, k)| k.as_u32()).collect(); // lint:allow(H2): one snapshot extraction per report boundary, reused by the diff
    nodes.sort_unstable();
    let mut edges: Vec<(u32, u32, u64)> = g
        .edges()
        .map(|e| (g.key(e.from).as_u32(), g.key(e.to).as_u32(), e.weight))
        .collect(); // lint:allow(H2): same per-boundary snapshot extraction
    edges.sort_unstable_by_key(|&(u, v, _)| (u, v));
    (nodes, edges)
}

impl Accumulator {
    pub(crate) fn new(cfg: &StudyConfig, db: IspDatabase) -> Self {
        let window_end = SimTime::at(cfg.window_days, 0, 0);
        // Merge the periodic grid with the capture instants.
        let mut boundaries: Vec<Boundary> = Vec::new();
        let mut t = SimTime::ORIGIN + cfg.sample_every;
        while t < window_end {
            boundaries.push(Boundary {
                time: t,
                sample: true,
                capture: None,
            });
            t += cfg.sample_every;
        }
        for (i, (_, ct)) in cfg.degree_captures.iter().enumerate() {
            if *ct >= window_end {
                continue;
            }
            match boundaries.binary_search_by_key(&ct.as_millis(), |b| b.time.as_millis()) {
                Ok(pos) => boundaries[pos].capture = Some(i),
                Err(pos) => boundaries.insert(
                    pos,
                    Boundary {
                        time: *ct,
                        sample: false,
                        capture: Some(i),
                    },
                ),
            }
        }
        let days = cfg.window_days as usize;
        let mut report = StudyReport::default();
        report.fig1a.total = Series::new("total peers");
        report.fig1a.stable = Series::new("stable peers");
        report.fig3.cctv1 = Series::new("CCTV1");
        report.fig3.cctv4 = Series::new("CCTV4");
        report.fig3.cctv1_viewers = Series::new("CCTV1 viewers");
        report.fig3.cctv4_viewers = Series::new("CCTV4 viewers");
        report.fig5.partners = Series::new("partner count");
        report.fig5.indegree = Series::new("active indegree");
        report.fig5.outdegree = Series::new("active outdegree");
        report.fig6.indegree = Series::new("intra-ISP indegree fraction");
        report.fig6.outdegree = Series::new("intra-ISP outdegree fraction");
        report.fig6.pool = Series::new("intra-ISP partner pool fraction");
        report.fig6.baseline = isp_share_baseline(&db);
        for (sw, tag) in [
            (&mut report.fig7.global, "global"),
            (&mut report.fig7.isp, "isp"),
        ] {
            sw.c = Series::new(format!("C {tag}"));
            sw.c_rand = Series::new(format!("C_rand {tag}"));
            sw.l = Series::new(format!("L {tag}"));
            sw.l_rand = Series::new(format!("L_rand {tag}"));
        }
        report.fig7.isp_choice = cfg.isp_panel;
        report.fig8.all = Series::new("rho all");
        report.fig8.intra = Series::new("rho intra-ISP");
        report.fig8.inter = Series::new("rho inter-ISP");
        report.fig8.weighted = Series::new("weighted r_w");
        Accumulator {
            cfg: cfg.clone(),
            db,
            staleness: SimDuration::from_mins(15),
            recent: BTreeMap::new(),
            boundaries,
            next_boundary: 0,
            day_total_ips: vec![HashSet::new(); days],
            day_stable_ips: vec![HashSet::new(); days],
            isp_share_sums: [0.0; 7],
            isp_share_samples: 0,
            session_runs: BTreeMap::new(),
            finished_sessions_mins: Vec::new(),
            inc_stable: IncrementalTopology::new(),
            inc_full: IncrementalTopology::new(),
            report,
        }
    }

    /// Observed length in minutes of a report run `[start, end]`
    /// (span plus the 20 minutes before the first report).
    fn observed_mins(start: SimTime, end: SimTime) -> f64 {
        (end.saturating_since(start) + magellan_trace::FIRST_REPORT_DELAY).as_millis() as f64
            / 60_000.0
    }

    pub(crate) fn ingest(&mut self, r: PeerReport) {
        // Finalize every boundary that is certainly complete: report
        // emission lags report timestamps by less than one tick, so
        // once a report with time >= B + tick arrives, no report with
        // time <= B can follow.
        let safe_margin = self.cfg.sim.tick;
        while self.next_boundary < self.boundaries.len()
            && r.time >= self.boundaries[self.next_boundary].time + safe_margin
        {
            let b = self.boundaries[self.next_boundary].clone();
            self.finalize_boundary(&b);
            self.next_boundary += 1;
        }

        // Daily distinct-IP accounting.
        let day = r.time.day() as usize;
        if day < self.day_total_ips.len() {
            self.day_total_ips[day].insert(r.addr.as_u32());
            self.day_stable_ips[day].insert(r.addr.as_u32());
            for p in &r.partners {
                self.day_total_ips[day].insert(p.addr.as_u32());
            }
        }

        // Streaming stable-session reconstruction: split a peer's
        // report run where the gap exceeds two report intervals.
        let split_gap = SimDuration::from_millis(magellan_trace::REPORT_INTERVAL.as_millis() * 2);
        match self.session_runs.get_mut(&r.addr) {
            Some((start, prev, count)) => {
                if r.time.saturating_since(*prev) > split_gap {
                    self.finished_sessions_mins
                        .push(Self::observed_mins(*start, *prev));
                    *start = r.time;
                    *count = 0;
                }
                *prev = r.time;
                *count += 1;
            }
            None => {
                self.session_runs.insert(r.addr, (r.time, r.time, 1));
            }
        }

        // Rolling two-report window.
        match self.recent.get_mut(&r.addr) {
            Some(pair) => pair.push(r),
            None => {
                let addr = r.addr;
                self.recent.insert(
                    addr,
                    RecentPair {
                        newer: r,
                        older: None,
                    },
                );
            }
        }
    }

    pub(crate) fn finish(mut self) -> StudyReport {
        // Remaining boundaries (the stream ended).
        while self.next_boundary < self.boundaries.len() {
            let b = self.boundaries[self.next_boundary].clone();
            self.finalize_boundary(&b);
            self.next_boundary += 1;
        }
        // Fig. 1B.
        self.report.fig1b.total = self
            .day_total_ips
            .iter()
            .enumerate()
            .map(|(d, s)| (d as u64, s.len() as u64))
            .collect();
        self.report.fig1b.stable = self
            .day_stable_ips
            .iter()
            .enumerate()
            .map(|(d, s)| (d as u64, s.len() as u64))
            .collect();
        // Stable-session statistics: close the open runs, then
        // summarize without materializing session structs.
        let mut mins = std::mem::take(&mut self.finished_sessions_mins);
        mins.extend(
            self.session_runs
                .values()
                .map(|&(start, prev, _)| Self::observed_mins(start, prev)),
        );
        if !mins.is_empty() {
            mins.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let n = mins.len();
            self.report.sessions = Some(crate::sessions::SessionSummary {
                sessions: n,
                mean_mins: mins.iter().sum::<f64>() / n as f64,
                median_mins: mins[n / 2],
                p90_mins: mins[(n.saturating_mul(9) / 10).min(n - 1)],
            });
        }
        // Fig. 2.
        if self.isp_share_samples > 0 {
            self.report.fig2.shares = Isp::ALL
                .iter()
                .map(|&isp| {
                    (
                        isp,
                        self.isp_share_sums[isp.index()] / self.isp_share_samples as f64,
                    )
                })
                .collect();
        }
        self.report
    }

    fn finalize_boundary(&mut self, b: &Boundary) {
        let at = b.time;
        // Prune peers whose newest report fell out of the horizon —
        // they cannot matter for this or any later boundary.
        let floor = at - self.staleness;
        self.recent.retain(|_, pair| pair.newer.time > floor); // lint:allow(H3): horizon pruning walks the rolling window once per boundary, not per tick

        // The stable set at `at`, sorted for determinism. Cloned out
        // of the rolling window so the figure builders can borrow
        // `self` mutably; the set is a few hundred reports.
        let mut stable: Vec<PeerReport> = self
            .recent
            .values()
            .filter_map(|pair| pair.select(at, self.staleness))
            .cloned()
            .collect(); // lint:allow(H2): clones the stable set out of the window once per boundary
        stable.sort_by_key(|r| r.addr);

        // Fraction of this boundary's horizon with the collection
        // server up. Derived from the configured outage schedule — not
        // from the report stream — so the live and replay paths mark
        // the same boundaries partial and stay byte-identical.
        let coverage = uncovered_fraction(
            &self.cfg.faults.server_outages,
            floor + SimDuration::from_millis(1),
            at + SimDuration::from_millis(1),
        );
        if b.sample {
            if coverage < 1.0 {
                // A server outage ate into this horizon: the stable
                // set is a known undercount. Record the hole instead
                // of averaging over it.
                self.report
                    .partial_samples
                    .push(PartialSample { time: at, coverage });
            } else {
                self.sample_population(at, &stable);
                self.sample_quality(at, &stable);
                self.sample_degrees(at, &stable);
                self.sample_graph_metrics(at, &stable);
            }
        }
        if let Some(ci) = b.capture {
            self.capture_degree_distribution(ci, at, coverage, &stable);
        }
    }

    fn sample_population(&mut self, at: SimTime, stable: &[PeerReport]) {
        // BTreeSet: iterated below for the ISP share counts.
        let mut known: BTreeSet<PeerAddr> = BTreeSet::new();
        for r in stable {
            known.insert(r.addr);
            for p in &r.partners {
                known.insert(p.addr);
            }
        }
        self.report.fig1a.stable.push(at, stable.len() as f64);
        self.report.fig1a.total.push(at, known.len() as f64);
        // Fig. 2 accumulation over the known population.
        if !known.is_empty() {
            let mut counts = [0u64; 7];
            // lint:allow(H3): Fig. 2 ISP shares are defined over the whole known population, per boundary
            for addr in &known {
                counts[self.db.lookup(*addr).index()] += 1;
            }
            for isp in Isp::ALL {
                self.isp_share_sums[isp.index()] += counts[isp.index()] as f64 / known.len() as f64;
            }
            self.isp_share_samples += 1;
        }
    }

    fn sample_quality(&mut self, at: SimTime, stable: &[PeerReport]) {
        use magellan_workload::ChannelId;
        for (channel, series, viewer_series) in [
            (
                ChannelId::CCTV1,
                &mut self.report.fig3.cctv1,
                &mut self.report.fig3.cctv1_viewers,
            ),
            (
                ChannelId::CCTV4,
                &mut self.report.fig3.cctv4,
                &mut self.report.fig3.cctv4_viewers,
            ),
        ] {
            let viewers: Vec<&PeerReport> =
                stable.iter().filter(|r| r.channel == channel).collect(); // lint:allow(H2): per-channel viewer slice, rebuilt once per boundary
            viewer_series.push(at, viewers.len() as f64);
            if viewers.is_empty() {
                continue;
            }
            let good = viewers
                .iter()
                .filter(|r| r.achieves_rate(400.0, self.cfg.quality_fraction))
                .count();
            series.push(at, good as f64 / viewers.len() as f64);
        }
    }

    fn sample_degrees(&mut self, at: SimTime, stable: &[PeerReport]) {
        if stable.is_empty() {
            return;
        }
        let mut sp = 0usize;
        let mut si = 0usize;
        let mut so = 0usize;
        for r in stable {
            let (p, i, o) = crate::classify::degree_triple(r);
            sp += p;
            si += i;
            so += o;
        }
        let n = stable.len() as f64;
        self.report.fig5.partners.push(at, sp as f64 / n);
        self.report.fig5.indegree.push(at, si as f64 / n);
        self.report.fig5.outdegree.push(at, so as f64 / n);
        // Fig. 6.
        let (fin, fout) = intra_isp_degree_fractions(stable.iter(), &self.db);
        self.report.fig6.indegree.push(at, fin);
        self.report.fig6.outdegree.push(at, fout);
        self.report
            .fig6
            .pool
            .push(at, intra_isp_pool_fraction(stable.iter(), &self.db));
    }

    fn sample_graph_metrics(&mut self, at: SimTime, stable: &[PeerReport]) {
        if stable.len() < self.cfg.min_graph_nodes {
            return;
        }
        let sw_cfg = |n: usize| SmallWorldConfig {
            // Exact metrics below 1500 nodes; sampled above.
            path_sampling: if n <= 1500 {
                PathSampling::Exact
            } else {
                PathSampling::Sources {
                    count: 300,
                    seed: 0xC0FFEE,
                }
            },
            clustering_samples: if n <= 3000 { None } else { Some(1500) },
            ..SmallWorldConfig::default()
        };

        // Build both topologies up front (construction allocates and
        // stays sequential); the metric kernels below run over shared
        // Csr snapshots and fan out.
        let stable_graph = active_link_graph(stable.iter(), NodeScope::StableOnly);
        let full = active_link_graph(stable.iter(), NodeScope::AllKnown);

        // Advance the incremental engines to this boundary's snapshots
        // (sequentially — they mutate accumulator state). Successive
        // boundaries share most of their links, so each sync costs
        // O(delta) instead of a full triangle/reciprocity recount; the
        // engines then answer Fig. 7's exact clustering and Fig. 8's
        // whole-graph reciprocity from maintained counters.
        let (snodes, sedges) = graph_snapshot(&stable_graph);
        self.inc_stable.sync_snapshot(&snodes, &sedges);
        let (fnodes, fedges) = graph_snapshot(&full);
        self.inc_full.sync_snapshot(&fnodes, &fedges);

        // Exact clustering comes straight from the stable engine when
        // the config would compute it exactly anyway; larger graphs
        // keep the sampled estimator inside `assess_csr`.
        let stable_cfg = sw_cfg(stable_graph.node_count());
        let c_exact = stable_cfg
            .clustering_samples
            .is_none()
            .then(|| self.inc_stable.clustering_coefficient());
        // Fig. 8's whole-graph reciprocity reads the full engine's
        // counters directly — no `Csr` build of the all-known topology
        // at all.
        let all = self.inc_full.garlaschelli_reciprocity().ok();
        let weighted = self.inc_full.weighted_reciprocity().ok();

        let db = &self.db;
        let isp_panel = self.cfg.isp_panel;
        let min_graph_nodes = self.cfg.min_graph_nodes;

        // Fig. 7 (small-world) and Fig. 8 (per-ISP reciprocity) read
        // disjoint graphs, so the two metric sets compute concurrently
        // via `magellan_par::join`. Both closures are pure functions
        // of their graphs; the results come back as an ordered pair
        // and the series pushes below happen in the same fixed order
        // as the sequential schedule, so the report is byte-identical
        // for every thread count.
        type Fig7 = (SmallWorldReport, Option<SmallWorldReport>);
        type Fig8 = (Option<f64>, Option<f64>);
        let (fig7, fig8): (Fig7, Fig8) = magellan_par::join(
            || {
                // Fig. 7A: stable-peer graph; 7B: one ISP's subgraph.
                let csr = Csr::from_digraph(&stable_graph);
                let global = match c_exact {
                    Some(c) => assess_csr_with_clustering(&csr, c, &stable_cfg),
                    None => assess_csr(&csr, &stable_cfg),
                };
                let sub = isp_subgraph(&stable_graph, db, isp_panel);
                let isp = (sub.node_count() >= min_graph_nodes)
                    .then(|| assess(&sub, &sw_cfg(sub.node_count())));
                (global, isp)
            },
            || {
                // Fig. 8: per-ISP reciprocity over the all-known
                // topology (the whole-graph values came from the
                // incremental engine above).
                let intra = garlaschelli_reciprocity(&intra_isp_link_graph(&full, db)).ok();
                let inter = garlaschelli_reciprocity(&inter_isp_link_graph(&full, db)).ok();
                (intra, inter)
            },
        );

        let (global, isp) = fig7;
        if let (Some(l), Some(lr)) = (global.l, global.l_rand) {
            self.report.fig7.global.c.push(at, global.c);
            self.report.fig7.global.c_rand.push(at, global.c_rand);
            self.report.fig7.global.l.push(at, l);
            self.report.fig7.global.l_rand.push(at, lr);
        }
        if let Some(r) = isp {
            if let (Some(l), Some(lr)) = (r.l, r.l_rand) {
                self.report.fig7.isp.c.push(at, r.c);
                self.report.fig7.isp.c_rand.push(at, r.c_rand);
                self.report.fig7.isp.l.push(at, l);
                self.report.fig7.isp.l_rand.push(at, lr);
            }
        }
        let (intra, inter) = fig8;
        if let Some(rho) = all {
            self.report.fig8.all.push(at, rho);
        }
        if let Some(rw) = weighted {
            self.report.fig8.weighted.push(at, rw);
        }
        if let Some(rho) = intra {
            self.report.fig8.intra.push(at, rho);
        }
        if let Some(rho) = inter {
            self.report.fig8.inter.push(at, rho);
        }
    }

    fn capture_degree_distribution(
        &mut self,
        ci: usize,
        at: SimTime,
        coverage: f64,
        stable: &[PeerReport],
    ) {
        let label = self.cfg.degree_captures[ci].0.clone(); // lint:allow(H2): one label clone per configured degree capture (a handful per run)
        let mut partners = DegreeHistogram::new();
        let mut indegree = DegreeHistogram::new();
        let mut outdegree = DegreeHistogram::new();
        for r in stable {
            let (p, i, o) = crate::classify::degree_triple(r);
            partners.record(p);
            indegree.record(i);
            outdegree.record(o);
        }
        let samples = partners.to_samples();
        let partner_powerlaw = powerlaw::assess(&samples).ok();
        self.report.fig4.snapshots.push(DegreeSnapshot {
            label,
            time: at,
            coverage,
            partners,
            indegree,
            outdegree,
            partner_powerlaw,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fast study: ~80 concurrent peers, 2 days, hourly samples.
    fn quick_config() -> StudyConfig {
        StudyConfig {
            seed: 42,
            scale: 0.0008,
            window_days: 2,
            sample_every: SimDuration::from_hours(2),
            degree_captures: vec![
                ("9am d1".into(), SimTime::at(1, 9, 0)),
                ("9pm d1".into(), SimTime::at(1, 21, 0)),
            ],
            min_graph_nodes: 10,
            ..StudyConfig::default()
        }
    }

    #[test]
    fn study_produces_every_figure() {
        let report = MagellanStudy::new(quick_config()).run();
        assert!(!report.fig1a.total.is_empty(), "fig1a empty");
        assert_eq!(report.fig1b.total.len(), 2, "fig1b days");
        assert!(!report.fig2.shares.is_empty(), "fig2 empty");
        assert!(!report.fig3.cctv1.is_empty(), "fig3 empty");
        assert_eq!(report.fig4.snapshots.len(), 2, "fig4 captures");
        assert!(!report.fig5.partners.is_empty(), "fig5 empty");
        assert!(!report.fig6.indegree.is_empty(), "fig6 empty");
        assert!(!report.fig7.global.c.is_empty(), "fig7 empty");
        assert!(!report.fig8.all.is_empty(), "fig8 empty");
        assert!(report.sim.joins > 0);
    }

    #[test]
    fn study_is_deterministic() {
        let a = MagellanStudy::new(quick_config()).run();
        let b = MagellanStudy::new(quick_config()).run();
        assert_eq!(a.fig1a.total.points, b.fig1a.total.points);
        assert_eq!(a.fig8.all.points, b.fig8.all.points);
        assert_eq!(a.sim, b.sim);
    }

    #[test]
    fn qualitative_findings_hold_in_miniature() {
        let report = MagellanStudy::new(quick_config()).run();
        // Stable peers are a minority but a substantial one.
        let ratio = report.fig1a.stable_ratio();
        assert!(
            (0.1..=0.7).contains(&ratio),
            "stable ratio {ratio} out of plausible band"
        );
        // Most viewers stream satisfactorily. (The miniature scale
        // leaves CCTV1 with a few dozen viewers, so the bar sits
        // below the paper's ~3/4; the default-scale run recorded in
        // EXPERIMENTS.md holds the higher one.)
        assert!(
            report.fig3.cctv1.mean() > 0.4,
            "CCTV1 quality too low: {:.3}",
            report.fig3.cctv1.mean()
        );
        // Reciprocity is positive (mesh, not tree).
        assert!(report.fig8.all.mean() > 0.0, "reciprocity not positive");
        // Indegree stays bounded near the paper's regime.
        assert!(
            report.fig5.indegree.mean() < 30.0,
            "mean indegree {}",
            report.fig5.indegree.mean()
        );
    }

    #[test]
    fn trace_replay_matches_live_analysis() {
        use magellan_netsim::IspDatabase;
        // Collect the trace of a run, then re-analyze it offline: the
        // evolution figures must match the live streaming analysis
        // exactly (same reports, same boundaries).
        let cfg = quick_config();
        let scenario = cfg.scenario();
        let mut sim = magellan_overlay::OverlaySim::new(scenario, cfg.sim.clone());
        let db: IspDatabase = sim.isp_database().clone();
        let (store, _) = sim.run_collecting().expect("run succeeds");
        let offline = MagellanStudy::new(cfg.clone()).analyze_trace(&store, &db);
        let live = MagellanStudy::new(cfg).run();
        assert_eq!(offline.fig1a.total.points, live.fig1a.total.points);
        assert_eq!(offline.fig5.indegree.points, live.fig5.indegree.points);
        assert_eq!(offline.fig8.all.points, live.fig8.all.points);
        assert_eq!(
            offline.sessions.map(|s| s.sessions),
            live.sessions.map(|s| s.sessions)
        );
    }

    #[test]
    fn server_outage_marks_samples_partial_in_live_and_replay() {
        use magellan_netsim::FaultWindow;
        let clean = MagellanStudy::new(quick_config()).run();
        let mut cfg = quick_config();
        cfg.faults.server_outages = vec![FaultWindow::new(
            SimTime::at(0, 9, 0),
            SimTime::at(0, 13, 0),
        )];
        let faulty = MagellanStudy::new(cfg.clone()).run();
        assert!(
            !faulty.partial_samples.is_empty(),
            "no sample flagged partial"
        );
        assert!(faulty
            .partial_samples
            .iter()
            .all(|p| (0.0..1.0).contains(&p.coverage)));
        assert!(
            faulty.fig1a.stable.len() < clean.fig1a.stable.len(),
            "partial samples were not excluded from the series"
        );
        // The replay path over the collected (buffered + retransmitted)
        // trace marks exactly the same holes.
        let scenario = cfg.scenario();
        let mut sim = magellan_overlay::OverlaySim::new(scenario, cfg.sim.clone());
        let db = sim.isp_database().clone();
        let (store, _) = sim.run_collecting().expect("run succeeds");
        let offline = MagellanStudy::new(cfg).analyze_trace(&store, &db);
        assert_eq!(offline.partial_samples, faulty.partial_samples);
        assert_eq!(offline.fig1a.stable.points, faulty.fig1a.stable.points);
        assert_eq!(offline.fig5.indegree.points, faulty.fig5.indegree.points);
    }

    #[test]
    fn boundaries_merge_samples_and_captures() {
        let cfg = quick_config();
        let db = IspDatabase::default();
        let acc = Accumulator::new(&cfg, db);
        // 2 days of 2-hour samples = 23 sample boundaries (excluding 0
        // and end), plus captures merged in (9am d1 is not on the
        // 2-hour grid? 9am = hour 33 → odd hour → inserted; 9pm d1 =
        // hour 45 → odd → inserted).
        assert!(acc.boundaries.windows(2).all(|w| w[0].time < w[1].time));
        let captures: Vec<_> = acc
            .boundaries
            .iter()
            .filter(|b| b.capture.is_some())
            .collect();
        assert_eq!(captures.len(), 2);
    }

    #[test]
    fn capture_on_the_sample_grid_merges_into_one_boundary() {
        // A capture that lands exactly on a periodic sample must not
        // produce two boundaries at the same instant.
        let mut cfg = quick_config();
        cfg.sample_every = SimDuration::from_hours(1);
        cfg.degree_captures = vec![("on-grid".into(), SimTime::at(0, 3, 0))];
        let acc = Accumulator::new(&cfg, IspDatabase::default());
        let at_3h: Vec<&Boundary> = acc
            .boundaries
            .iter()
            .filter(|b| b.time == SimTime::at(0, 3, 0))
            .collect();
        assert_eq!(at_3h.len(), 1);
        assert!(at_3h[0].sample);
        assert_eq!(at_3h[0].capture, Some(0));
    }

    #[test]
    fn captures_outside_the_window_are_dropped() {
        let mut cfg = quick_config();
        cfg.window_days = 1;
        cfg.degree_captures = vec![("too-late".into(), SimTime::at(5, 0, 0))];
        let acc = Accumulator::new(&cfg, IspDatabase::default());
        assert!(acc.boundaries.iter().all(|b| b.capture.is_none()));
    }

    #[test]
    fn recent_pair_selection() {
        use magellan_trace::BufferMap;
        use magellan_workload::ChannelId;
        let mk = |min: u64| PeerReport {
            time: SimTime::from_millis(min * 60_000),
            addr: PeerAddr::from_u32(1),
            channel: ChannelId::CCTV1,
            buffer_map: BufferMap::new(0, 8),
            download_capacity_kbps: 1000.0,
            upload_capacity_kbps: 500.0,
            recv_throughput_kbps: 400.0,
            send_throughput_kbps: 0.0,
            partners: vec![],
        };
        let mut pair = RecentPair {
            newer: mk(20),
            older: None,
        };
        pair.push(mk(30));
        let horizon = SimDuration::from_mins(15);
        // At t=25 the newer (t=30) is in the future; fall back to 20.
        let sel = pair
            .select(SimTime::from_millis(25 * 60_000), horizon)
            .unwrap();
        assert_eq!(sel.time, SimTime::from_millis(20 * 60_000));
        // At t=31 the newer wins.
        let sel = pair
            .select(SimTime::from_millis(31 * 60_000), horizon)
            .unwrap();
        assert_eq!(sel.time, SimTime::from_millis(30 * 60_000));
        // At t=50 both are stale.
        assert!(pair
            .select(SimTime::from_millis(50 * 60_000), horizon)
            .is_none());
    }
}
