//! SVG rendering of figure data.
//!
//! Hand-rolled SVG line/scatter charts so the reproduction can draw
//! its own figures without adding plotting dependencies: evolution
//! series (Figs. 1A, 3, 5, 6, 7, 8) as multi-line charts with day
//! ticks, and degree distributions (Fig. 4) as log–log scatters. The
//! output is deliberately plain — the same visual grammar as the
//! paper's MATLAB plots.

use crate::timeseries::Series;
use magellan_graph::HistogramPoint;
use std::fmt::Write as _;

/// Chart geometry and labels.
#[derive(Debug, Clone)]
pub struct PlotOptions {
    /// Total width in pixels.
    pub width: u32,
    /// Total height in pixels.
    pub height: u32,
    /// Chart title.
    pub title: String,
    /// Y-axis label.
    pub y_label: String,
    /// Force the y-axis to start at zero.
    pub y_from_zero: bool,
}

impl Default for PlotOptions {
    fn default() -> Self {
        PlotOptions {
            width: 720,
            height: 360,
            title: String::new(),
            y_label: String::new(),
            y_from_zero: true,
        }
    }
}

/// Line colors cycled across series (a qualitative palette).
const COLORS: [&str; 6] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#17becf",
];

const MARGIN_L: f64 = 64.0;
const MARGIN_R: f64 = 16.0;
const MARGIN_T: f64 = 32.0;
const MARGIN_B: f64 = 40.0;

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn fmt_tick(v: f64) -> String {
    // lint:allow(C2): an exactly-zero tick renders as "0", not "0.00"
    let integral = v.abs() >= 10.0 || v == 0.0;
    if v.abs() >= 10_000.0 {
        format!("{:.0}k", v / 1_000.0)
    } else if integral {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

/// Renders evolution series as a multi-line SVG chart with day ticks
/// on the x-axis (the paper's figures all use "Sun Mon Tue ..." axes).
///
/// Empty series are skipped; an entirely empty input produces a chart
/// frame with a "no data" note rather than panicking.
pub fn render_series_svg(series: &[&Series], opts: &PlotOptions) -> String {
    let w = opts.width as f64;
    let h = opts.height as f64;
    let plot_w = w - MARGIN_L - MARGIN_R;
    let plot_h = h - MARGIN_T - MARGIN_B;

    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{}" height="{}" viewBox="0 0 {} {}">"#,
        opts.width, opts.height, opts.width, opts.height
    );
    let _ = write!(
        svg,
        r#"<rect width="{w}" height="{h}" fill="white"/><text x="{}" y="20" font-family="sans-serif" font-size="14" text-anchor="middle">{}</text>"#,
        w / 2.0,
        xml_escape(&opts.title)
    );

    let live: Vec<&&Series> = series.iter().filter(|s| !s.is_empty()).collect();
    if live.is_empty() {
        let _ = write!(
            svg,
            r#"<text x="{}" y="{}" font-family="sans-serif" font-size="12" text-anchor="middle">no data</text></svg>"#,
            w / 2.0,
            h / 2.0
        );
        return svg;
    }

    let x_min = live
        .iter()
        .map(|s| s.points[0].0.as_millis())
        .min()
        .expect("non-empty") as f64;
    let x_max = live
        .iter()
        .map(|s| s.points.last().expect("non-empty").0.as_millis())
        .max()
        .expect("non-empty") as f64;
    let x_span = (x_max - x_min).max(1.0);
    let mut y_min = f64::INFINITY;
    let mut y_max = f64::NEG_INFINITY;
    for s in &live {
        for &(_, v) in &s.points {
            y_min = y_min.min(v);
            y_max = y_max.max(v);
        }
    }
    if opts.y_from_zero {
        y_min = y_min.min(0.0);
    }
    if (y_max - y_min).abs() < 1e-12 {
        y_max = y_min + 1.0;
    }
    let y_span = y_max - y_min;

    let sx = |t: f64| MARGIN_L + (t - x_min) / x_span * plot_w;
    let sy = |v: f64| MARGIN_T + (1.0 - (v - y_min) / y_span) * plot_h;

    // Frame.
    let _ = write!(
        svg,
        r#"<rect x="{}" y="{}" width="{plot_w}" height="{plot_h}" fill="none" stroke="gray"/>"#,
        MARGIN_L, MARGIN_T
    );
    // Y ticks (5).
    for k in 0..=4 {
        let v = y_min + y_span * k as f64 / 4.0;
        let y = sy(v);
        let _ = write!(
            svg,
            r#"<line x1="{}" y1="{y}" x2="{}" y2="{y}" stroke="lightgray"/><text x="{}" y="{}" font-family="sans-serif" font-size="10" text-anchor="end">{}</text>"#,
            MARGIN_L,
            w - MARGIN_R,
            MARGIN_L - 6.0,
            y + 3.0,
            fmt_tick(v)
        );
    }
    // X ticks: one per day boundary.
    let day_ms = 86_400_000.0;
    let first_day = (x_min / day_ms).ceil() as u64;
    let last_day = (x_max / day_ms).floor() as u64;
    const DAYS: [&str; 7] = ["Sun", "Mon", "Tue", "Wed", "Thu", "Fri", "Sat"];
    for d in first_day..=last_day {
        let x = sx(d as f64 * day_ms);
        let _ = write!(
            svg,
            r#"<line x1="{x}" y1="{}" x2="{x}" y2="{}" stroke="whitesmoke"/><text x="{x}" y="{}" font-family="sans-serif" font-size="9" text-anchor="middle">{}</text>"#,
            MARGIN_T,
            MARGIN_T + plot_h,
            MARGIN_T + plot_h + 14.0,
            DAYS[(d % 7) as usize]
        );
    }
    // Y label.
    if !opts.y_label.is_empty() {
        let _ = write!(
            svg,
            r#"<text x="14" y="{}" font-family="sans-serif" font-size="11" text-anchor="middle" transform="rotate(-90 14 {})">{}</text>"#,
            MARGIN_T + plot_h / 2.0,
            MARGIN_T + plot_h / 2.0,
            xml_escape(&opts.y_label)
        );
    }
    // Series.
    for (i, s) in live.iter().enumerate() {
        let color = COLORS[i % COLORS.len()];
        let mut points = String::new();
        for &(t, v) in &s.points {
            let _ = write!(points, "{:.1},{:.1} ", sx(t.as_millis() as f64), sy(v));
        }
        let _ = write!(
            svg,
            r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="1.5"/>"#,
            points.trim_end()
        );
        // Legend.
        let lx = MARGIN_L + 10.0;
        let ly = MARGIN_T + 14.0 + i as f64 * 14.0;
        let _ = write!(
            svg,
            r#"<line x1="{lx}" y1="{ly}" x2="{}" y2="{ly}" stroke="{color}" stroke-width="2"/><text x="{}" y="{}" font-family="sans-serif" font-size="10">{}</text>"#,
            lx + 18.0,
            lx + 24.0,
            ly + 3.0,
            xml_escape(&s.name)
        );
    }
    svg.push_str("</svg>");
    svg
}

/// Renders distribution points (e.g. a degree pmf) as a log–log
/// scatter, the presentation of the paper's Fig. 4.
///
/// Points with non-positive coordinates are skipped (they have no
/// logarithm); if none remain the chart carries a "no data" note.
pub fn render_loglog_svg(datasets: &[(&str, &[HistogramPoint])], opts: &PlotOptions) -> String {
    let w = opts.width as f64;
    let h = opts.height as f64;
    let plot_w = w - MARGIN_L - MARGIN_R;
    let plot_h = h - MARGIN_T - MARGIN_B;
    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{}" height="{}" viewBox="0 0 {} {}">"#,
        opts.width, opts.height, opts.width, opts.height
    );
    let _ = write!(
        svg,
        r#"<rect width="{w}" height="{h}" fill="white"/><text x="{}" y="20" font-family="sans-serif" font-size="14" text-anchor="middle">{}</text>"#,
        w / 2.0,
        xml_escape(&opts.title)
    );
    let pts: Vec<(usize, f64, f64)> = datasets
        .iter()
        .enumerate()
        .flat_map(|(i, (_, ps))| {
            ps.iter()
                .filter(|p| p.degree > 0.0 && p.fraction > 0.0)
                .map(move |p| (i, p.degree.log10(), p.fraction.log10()))
        })
        .collect();
    if pts.is_empty() {
        let _ = write!(
            svg,
            r#"<text x="{}" y="{}" font-family="sans-serif" font-size="12" text-anchor="middle">no data</text></svg>"#,
            w / 2.0,
            h / 2.0
        );
        return svg;
    }
    let (mut x_min, mut x_max, mut y_min, mut y_max) = (
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::INFINITY,
        f64::NEG_INFINITY,
    );
    for &(_, x, y) in &pts {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    // Snap to whole decades for readable ticks.
    x_min = x_min.floor();
    x_max = x_max.ceil().max(x_min + 1.0);
    y_min = y_min.floor();
    y_max = y_max.ceil().max(y_min + 1.0);
    let sx = |x: f64| MARGIN_L + (x - x_min) / (x_max - x_min) * plot_w;
    let sy = |y: f64| MARGIN_T + (1.0 - (y - y_min) / (y_max - y_min)) * plot_h;
    let _ = write!(
        svg,
        r#"<rect x="{}" y="{}" width="{plot_w}" height="{plot_h}" fill="none" stroke="gray"/>"#,
        MARGIN_L, MARGIN_T
    );
    // Decade gridlines.
    let mut dec = x_min;
    while dec <= x_max + 1e-9 {
        let x = sx(dec);
        let _ = write!(
            svg,
            r#"<line x1="{x}" y1="{}" x2="{x}" y2="{}" stroke="whitesmoke"/><text x="{x}" y="{}" font-family="sans-serif" font-size="9" text-anchor="middle">1e{}</text>"#,
            MARGIN_T,
            MARGIN_T + plot_h,
            MARGIN_T + plot_h + 14.0,
            dec as i64
        );
        dec += 1.0;
    }
    let mut dec = y_min;
    while dec <= y_max + 1e-9 {
        let y = sy(dec);
        let _ = write!(
            svg,
            r#"<line x1="{}" y1="{y}" x2="{}" y2="{y}" stroke="whitesmoke"/><text x="{}" y="{}" font-family="sans-serif" font-size="9" text-anchor="end">1e{}</text>"#,
            MARGIN_L,
            w - MARGIN_R,
            MARGIN_L - 6.0,
            y + 3.0,
            dec as i64
        );
        dec += 1.0;
    }
    for (i, (name, _)) in datasets.iter().enumerate() {
        let color = COLORS[i % COLORS.len()];
        for &(di, x, y) in pts.iter().filter(|&&(di, _, _)| di == i) {
            let _ = di;
            let _ = write!(
                svg,
                r#"<circle cx="{:.1}" cy="{:.1}" r="2.2" fill="{color}" fill-opacity="0.8"/>"#,
                sx(x),
                sy(y)
            );
        }
        let lx = w - MARGIN_R - 150.0;
        let ly = MARGIN_T + 14.0 + i as f64 * 14.0;
        let _ = write!(
            svg,
            r#"<circle cx="{lx}" cy="{}" r="3" fill="{color}"/><text x="{}" y="{}" font-family="sans-serif" font-size="10">{}</text>"#,
            ly - 3.0,
            lx + 8.0,
            ly,
            xml_escape(name)
        );
    }
    svg.push_str("</svg>");
    svg
}

/// Renders labelled bars (Fig. 2's ISP shares, Fig. 1B's daily IP
/// counts). Bars are drawn in input order with value labels.
pub fn render_bars_svg(bars: &[(String, f64)], opts: &PlotOptions) -> String {
    let w = opts.width as f64;
    let h = opts.height as f64;
    let plot_w = w - MARGIN_L - MARGIN_R;
    let plot_h = h - MARGIN_T - MARGIN_B;
    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{}" height="{}" viewBox="0 0 {} {}">"#,
        opts.width, opts.height, opts.width, opts.height
    );
    let _ = write!(
        svg,
        r#"<rect width="{w}" height="{h}" fill="white"/><text x="{}" y="20" font-family="sans-serif" font-size="14" text-anchor="middle">{}</text>"#,
        w / 2.0,
        xml_escape(&opts.title)
    );
    if bars.is_empty() {
        let _ = write!(
            svg,
            r#"<text x="{}" y="{}" font-family="sans-serif" font-size="12" text-anchor="middle">no data</text></svg>"#,
            w / 2.0,
            h / 2.0
        );
        return svg;
    }
    let max = bars
        .iter()
        .map(|&(_, v)| v)
        .fold(0.0f64, f64::max)
        .max(1e-12);
    let slot = plot_w / bars.len() as f64;
    let bar_w = (slot * 0.7).max(2.0);
    for (i, (label, v)) in bars.iter().enumerate() {
        let x = MARGIN_L + i as f64 * slot + (slot - bar_w) / 2.0;
        let bh = (v / max) * plot_h;
        let y = MARGIN_T + plot_h - bh;
        let color = COLORS[i % COLORS.len()];
        let _ = write!(
            svg,
            r#"<rect x="{x:.1}" y="{y:.1}" width="{bar_w:.1}" height="{bh:.1}" fill="{color}" fill-opacity="0.85"/>"#
        );
        let _ = write!(
            svg,
            r#"<text x="{:.1}" y="{:.1}" font-family="sans-serif" font-size="9" text-anchor="middle">{}</text>"#,
            x + bar_w / 2.0,
            y - 4.0,
            fmt_tick(*v)
        );
        let _ = write!(
            svg,
            r#"<text x="{:.1}" y="{:.1}" font-family="sans-serif" font-size="9" text-anchor="middle">{}</text>"#,
            x + bar_w / 2.0,
            MARGIN_T + plot_h + 14.0,
            xml_escape(label)
        );
    }
    let _ = write!(
        svg,
        r#"<line x1="{}" y1="{}" x2="{}" y2="{}" stroke="gray"/>"#,
        MARGIN_L,
        MARGIN_T + plot_h,
        w - MARGIN_R,
        MARGIN_T + plot_h
    );
    svg.push_str("</svg>");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use magellan_netsim::SimTime;

    fn series(name: &str, vals: &[f64]) -> Series {
        let mut s = Series::new(name);
        for (i, &v) in vals.iter().enumerate() {
            s.push(SimTime::at(0, i as u64, 0), v);
        }
        s
    }

    #[test]
    fn line_chart_contains_series_and_frame() {
        let a = series("alpha", &[1.0, 3.0, 2.0]);
        let b = series("beta", &[0.5, 0.5, 0.9]);
        let svg = render_series_svg(&[&a, &b], &PlotOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("alpha"));
        assert!(svg.contains("beta"));
        assert!(svg.contains("Sun")); // day tick at t = 0
    }

    #[test]
    fn empty_input_renders_a_note() {
        let svg = render_series_svg(&[], &PlotOptions::default());
        assert!(svg.contains("no data"));
        let empty = Series::new("e");
        let svg = render_series_svg(&[&empty], &PlotOptions::default());
        assert!(svg.contains("no data"));
    }

    #[test]
    fn title_is_escaped() {
        let a = series("x", &[1.0]);
        let opts = PlotOptions {
            title: "a<b & c>d".into(),
            ..PlotOptions::default()
        };
        let svg = render_series_svg(&[&a], &opts);
        assert!(svg.contains("a&lt;b &amp; c&gt;d"));
        assert!(!svg.contains("a<b"));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let a = series("flat", &[2.0, 2.0, 2.0]);
        let svg = render_series_svg(&[&a], &PlotOptions::default());
        assert!(svg.contains("<polyline"));
        assert!(!svg.contains("NaN"));
    }

    #[test]
    fn loglog_plots_positive_points_only() {
        let pts = [
            HistogramPoint {
                degree: 0.0,
                fraction: 0.5,
            }, // skipped (log of 0)
            HistogramPoint {
                degree: 10.0,
                fraction: 0.1,
            },
            HistogramPoint {
                degree: 100.0,
                fraction: 0.01,
            },
        ];
        let svg = render_loglog_svg(&[("d", &pts)], &PlotOptions::default());
        assert_eq!(svg.matches("<circle").count(), 2 + 1); // points + legend dot
        assert!(svg.contains("1e1"));
        assert!(!svg.contains("NaN"));
    }

    #[test]
    fn loglog_empty_is_a_note() {
        let svg = render_loglog_svg(&[("d", &[])], &PlotOptions::default());
        assert!(svg.contains("no data"));
    }

    #[test]
    fn bars_render_in_order_with_labels() {
        let bars = vec![("Telecom".to_owned(), 0.43), ("Netcom".to_owned(), 0.25)];
        let svg = render_bars_svg(&bars, &PlotOptions::default());
        assert_eq!(svg.matches("<rect").count(), 1 + 2); // background + 2 bars
        assert!(svg.contains("Telecom"));
        assert!(svg.contains("Netcom"));
        let t_pos = svg.find("Telecom").unwrap();
        let n_pos = svg.find("Netcom").unwrap();
        assert!(t_pos < n_pos, "bars out of order");
    }

    #[test]
    fn empty_bars_note() {
        let svg = render_bars_svg(&[], &PlotOptions::default());
        assert!(svg.contains("no data"));
    }

    #[test]
    fn zero_valued_bars_do_not_nan() {
        let bars = vec![("z".to_owned(), 0.0)];
        let svg = render_bars_svg(&bars, &PlotOptions::default());
        assert!(!svg.contains("NaN"));
    }

    #[test]
    fn tick_formatting() {
        assert_eq!(fmt_tick(0.0), "0");
        assert_eq!(fmt_tick(12.0), "12");
        assert_eq!(fmt_tick(0.25), "0.25");
        assert_eq!(fmt_tick(25_000.0), "25k");
    }
}
