//! Partner classification (paper §4.2).
//!
//! "We are able to categorize partners of each peer into three
//! classes: (1) active supplying partners, from which the number of
//! received segments is larger than a certain threshold (10
//! segments); (2) active receiving partners, to which the number of
//! sent segments is larger than the threshold; (3) nonactive partner,
//! otherwise." A partner supplying *and* receiving counts in both
//! degree directions.

use magellan_trace::{PartnerRecord, PeerReport, ACTIVE_SEGMENT_THRESHOLD};

/// The paper's three partner classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartnerClass {
    /// Received segments above threshold only.
    ActiveSupplier,
    /// Sent segments above threshold only.
    ActiveReceiver,
    /// Above threshold in both directions.
    ActiveBoth,
    /// Neither direction above threshold.
    NonActive,
}

/// Classifies one partner record under `threshold`.
pub fn classify_with(rec: &PartnerRecord, threshold: u64) -> PartnerClass {
    let sup = rec.segments_received > threshold;
    let rcv = rec.segments_sent > threshold;
    match (sup, rcv) {
        (true, true) => PartnerClass::ActiveBoth,
        (true, false) => PartnerClass::ActiveSupplier,
        (false, true) => PartnerClass::ActiveReceiver,
        (false, false) => PartnerClass::NonActive,
    }
}

/// Classifies with the paper's 10-segment threshold.
pub fn classify(rec: &PartnerRecord) -> PartnerClass {
    classify_with(rec, ACTIVE_SEGMENT_THRESHOLD)
}

/// Degree triple of one report: (total partners, active indegree,
/// active outdegree) — the three quantities of Fig. 4.
pub fn degree_triple(report: &PeerReport) -> (usize, usize, usize) {
    let mut indeg = 0;
    let mut outdeg = 0;
    for rec in &report.partners {
        match classify(rec) {
            PartnerClass::ActiveSupplier => indeg += 1,
            PartnerClass::ActiveReceiver => outdeg += 1,
            PartnerClass::ActiveBoth => {
                indeg += 1;
                outdeg += 1;
            }
            PartnerClass::NonActive => {}
        }
    }
    (report.partners.len(), indeg, outdeg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use magellan_netsim::PeerAddr;

    fn rec(sent: u64, recv: u64) -> PartnerRecord {
        PartnerRecord {
            addr: PeerAddr::from_u32(1),
            tcp_port: 0,
            udp_port: 0,
            segments_sent: sent,
            segments_received: recv,
        }
    }

    #[test]
    fn classes_cover_all_cases() {
        assert_eq!(classify(&rec(0, 0)), PartnerClass::NonActive);
        assert_eq!(classify(&rec(0, 11)), PartnerClass::ActiveSupplier);
        assert_eq!(classify(&rec(11, 0)), PartnerClass::ActiveReceiver);
        assert_eq!(classify(&rec(11, 11)), PartnerClass::ActiveBoth);
    }

    #[test]
    fn threshold_is_exclusive() {
        assert_eq!(classify(&rec(10, 10)), PartnerClass::NonActive);
        assert_eq!(classify_with(&rec(10, 10), 9), PartnerClass::ActiveBoth);
    }

    #[test]
    fn degree_triple_counts_both_roles() {
        use magellan_trace::BufferMap;
        use magellan_workload::ChannelId;
        let report = PeerReport {
            time: magellan_netsim::SimTime::ORIGIN,
            addr: PeerAddr::from_u32(9),
            channel: ChannelId::CCTV1,
            buffer_map: BufferMap::new(0, 8),
            download_capacity_kbps: 1000.0,
            upload_capacity_kbps: 500.0,
            recv_throughput_kbps: 400.0,
            send_throughput_kbps: 100.0,
            partners: vec![rec(11, 11), rec(0, 20), rec(20, 0), rec(1, 1)],
        };
        assert_eq!(degree_triple(&report), (4, 2, 2));
    }
}
