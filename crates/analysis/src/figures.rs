//! Typed results for every figure of the paper, plus text/CSV
//! renderers.
//!
//! Each `FigN*` struct carries exactly the data series the paper
//! plots; [`StudyReport`] bundles all of them for one run. Renderers
//! produce terminal-friendly summaries; `timeseries::to_csv` yields
//! plottable data.

use crate::timeseries::{to_csv, Series};
use magellan_graph::powerlaw::PowerLawVerdict;
use magellan_graph::DegreeHistogram;
use magellan_netsim::{Isp, SimTime};
use magellan_overlay::SimSummary;
use std::fmt::Write as _;

/// Fig. 1(A): concurrent peer population (total vs stable).
#[derive(Debug, Clone, Default)]
pub struct Fig1Population {
    /// All addresses visible in the trace at each sample.
    pub total: Series,
    /// Reporting (stable) peers at each sample.
    pub stable: Series,
}

impl Fig1Population {
    /// The stable-to-total ratio averaged over all samples (the paper
    /// reports "asymptotically 1/3").
    pub fn stable_ratio(&self) -> f64 {
        let pairs: Vec<(f64, f64)> = self
            .stable
            .points
            .iter()
            .zip(self.total.points.iter())
            .filter(|&(&(ts, _), &(tt, _))| ts == tt)
            .map(|(&(_, s), &(_, t))| (s, t))
            .filter(|&(_, t)| t > 0.0)
            .collect();
        if pairs.is_empty() {
            return 0.0;
        }
        pairs.iter().map(|&(s, t)| s / t).sum::<f64>() / pairs.len() as f64
    }

    /// Text rendering.
    pub fn render_text(&self) -> String {
        let mut out = String::from("Fig 1(A) — concurrent peers (total vs stable)\n");
        if let Some((t, v)) = self.total.max_point() {
            let _ = writeln!(out, "  peak total population : {v:.0} at {t}");
        }
        let _ = writeln!(out, "  mean total population : {:.0}", self.total.mean());
        let _ = writeln!(out, "  mean stable population: {:.0}", self.stable.mean());
        let _ = writeln!(out, "  stable/total ratio    : {:.3}", self.stable_ratio());
        out
    }

    /// CSV of both curves.
    pub fn to_csv(&self) -> String {
        to_csv(&[&self.total, &self.stable])
    }
}

/// Fig. 1(B): distinct addresses seen per calendar day.
#[derive(Debug, Clone, Default)]
pub struct Fig1DailyIps {
    /// `(day index, distinct addresses)` for the whole trace.
    pub total: Vec<(u64, u64)>,
    /// `(day index, distinct reporter addresses)`.
    pub stable: Vec<(u64, u64)>,
}

impl Fig1DailyIps {
    /// Text rendering.
    pub fn render_text(&self) -> String {
        let mut out = String::from("Fig 1(B) — daily distinct IPs\n");
        for (i, &(day, total)) in self.total.iter().enumerate() {
            let stable = self.stable.get(i).map_or(0, |&(_, s)| s);
            let _ = writeln!(out, "  day {day:>2}: total {total:>8}  stable {stable:>8}");
        }
        out
    }
}

/// Fig. 2: average ISP shares of the concurrent population.
#[derive(Debug, Clone, Default)]
pub struct Fig2IspShares {
    /// `(isp, average share)` in `Isp::ALL` order.
    pub shares: Vec<(Isp, f64)>,
}

impl Fig2IspShares {
    /// Share of one ISP (0.0 when absent).
    pub fn share(&self, isp: Isp) -> f64 {
        self.shares
            .iter()
            .find(|&&(i, _)| i == isp)
            .map_or(0.0, |&(_, s)| s)
    }

    /// Text rendering (the pie chart as a table).
    pub fn render_text(&self) -> String {
        let mut out = String::from("Fig 2 — peer shares per ISP\n");
        for &(isp, share) in &self.shares {
            let bar = "#".repeat((share * 100.0).round() as usize / 2);
            let _ = writeln!(out, "  {:<14} {:>5.1}% {bar}", isp.name(), share * 100.0);
        }
        out
    }
}

/// Fig. 3: fraction of viewers at ≥ 90 % of the channel rate.
#[derive(Debug, Clone, Default)]
pub struct Fig3Quality {
    /// CCTV1 satisfaction curve.
    pub cctv1: Series,
    /// CCTV4 satisfaction curve.
    pub cctv4: Series,
    /// Stable CCTV1 viewers per sample (the paper's footnote: ~30,000
    /// concurrent, five times CCTV4).
    pub cctv1_viewers: Series,
    /// Stable CCTV4 viewers per sample (~6,000 in the paper).
    pub cctv4_viewers: Series,
}

impl Fig3Quality {
    /// Mean CCTV1-to-CCTV4 viewer ratio (the paper reports ~5).
    pub fn viewer_ratio(&self) -> f64 {
        let c4 = self.cctv4_viewers.mean();
        if c4 > 0.0 {
            self.cctv1_viewers.mean() / c4
        } else {
            0.0
        }
    }

    /// Text rendering.
    pub fn render_text(&self) -> String {
        let mut out = String::from("Fig 3 — viewers at ≥90% of stream rate\n");
        let _ = writeln!(out, "  CCTV1 mean: {:.3}", self.cctv1.mean());
        let _ = writeln!(out, "  CCTV4 mean: {:.3}", self.cctv4.mean());
        let _ = writeln!(
            out,
            "  viewers   : CCTV1 {:.0} vs CCTV4 {:.0} (ratio {:.1}, paper ~5)",
            self.cctv1_viewers.mean(),
            self.cctv4_viewers.mean(),
            self.viewer_ratio()
        );
        out
    }

    /// CSV of both curves.
    pub fn to_csv(&self) -> String {
        to_csv(&[&self.cctv1, &self.cctv4])
    }
}

/// One captured degree-distribution instant of Fig. 4.
#[derive(Debug, Clone)]
pub struct DegreeSnapshot {
    /// Label, e.g. "9am d2".
    pub label: String,
    /// Capture instant.
    pub time: SimTime,
    /// Fraction of the staleness horizon with the collection server
    /// up (1.0 when no outage overlapped; below 1.0 the capture
    /// under-counts and must be read with that caveat).
    pub coverage: f64,
    /// Total-partner-count distribution (Fig. 4A).
    pub partners: DegreeHistogram,
    /// Active-indegree distribution (Fig. 4B).
    pub indegree: DegreeHistogram,
    /// Active-outdegree distribution (Fig. 4C).
    pub outdegree: DegreeHistogram,
    /// Power-law test verdict on the partner-count distribution (the
    /// paper argues it must be rejected). `None` when the sample is
    /// too small to fit.
    pub partner_powerlaw: Option<PowerLawVerdict>,
}

/// Fig. 4: degree distributions at representative instants.
#[derive(Debug, Clone, Default)]
pub struct Fig4Distributions {
    /// One snapshot per captured instant.
    pub snapshots: Vec<DegreeSnapshot>,
}

impl Fig4Distributions {
    /// Text rendering.
    pub fn render_text(&self) -> String {
        let mut out = String::from("Fig 4 — degree distributions of stable peers\n");
        for s in &self.snapshots {
            let partial = if s.coverage < 1.0 {
                format!(" | PARTIAL coverage={:.2}", s.coverage)
            } else {
                String::new()
            };
            let _ = writeln!(
                out,
                "  [{}] n={} | partners spike={:?} mean={:.1} | indegree spike={:?} p99={:?} | outdegree spike={:?}{partial}",
                s.label,
                s.partners.total(),
                s.partners.spike(),
                s.partners.mean(),
                s.indegree.spike(),
                s.indegree.quantile(0.99),
                s.outdegree.spike(),
            );
            if let Some(v) = &s.partner_powerlaw {
                let _ = writeln!(
                    out,
                    "        power-law plausible: {} (ks={:.3}, threshold={:.3}, alpha={:.2})",
                    v.plausible, v.fit.ks, v.threshold, v.fit.alpha
                );
            }
        }
        out
    }
}

/// Fig. 5: evolution of average degrees of stable peers.
#[derive(Debug, Clone, Default)]
pub struct Fig5DegreeEvolution {
    /// Average total partner count.
    pub partners: Series,
    /// Average active indegree.
    pub indegree: Series,
    /// Average active outdegree.
    pub outdegree: Series,
}

impl Fig5DegreeEvolution {
    /// Text rendering.
    pub fn render_text(&self) -> String {
        let mut out = String::from("Fig 5 — average degree evolution\n");
        let _ = writeln!(
            out,
            "  partners mean {:.1} (peak {:.1}) | indegree mean {:.1} | outdegree mean {:.1}",
            self.partners.mean(),
            self.partners.max_point().map_or(0.0, |p| p.1),
            self.indegree.mean(),
            self.outdegree.mean()
        );
        out
    }

    /// CSV of the three curves.
    pub fn to_csv(&self) -> String {
        to_csv(&[&self.partners, &self.indegree, &self.outdegree])
    }
}

/// Fig. 6: intra-ISP fractions of active degrees.
#[derive(Debug, Clone, Default)]
pub struct Fig6IntraIsp {
    /// Average intra-ISP fraction of active indegree.
    pub indegree: Series,
    /// Average intra-ISP fraction of active outdegree.
    pub outdegree: Series,
    /// Average intra-ISP fraction of the whole partner list — not in
    /// the paper's figure, but the quantity the locality-aware
    /// tracker extension moves directly.
    pub pool: Series,
    /// The no-gradient mixing baseline (Σ share²).
    pub baseline: f64,
}

impl Fig6IntraIsp {
    /// Text rendering.
    pub fn render_text(&self) -> String {
        let mut out = String::from("Fig 6 — intra-ISP degree fractions\n");
        let _ = writeln!(
            out,
            "  indegree mean {:.3} | outdegree mean {:.3} | partner pool {:.3} | random-mixing baseline {:.3}",
            self.indegree.mean(),
            self.outdegree.mean(),
            self.pool.mean(),
            self.baseline
        );
        out
    }

    /// CSV of the three curves.
    pub fn to_csv(&self) -> String {
        to_csv(&[&self.indegree, &self.outdegree, &self.pool])
    }
}

/// The four curves of one small-world panel (Fig. 7A or 7B).
#[derive(Debug, Clone, Default)]
pub struct SmallWorldSeries {
    /// Measured clustering coefficient.
    pub c: Series,
    /// Random-graph clustering baseline.
    pub c_rand: Series,
    /// Measured average path length.
    pub l: Series,
    /// Random-graph path-length baseline.
    pub l_rand: Series,
}

impl SmallWorldSeries {
    /// Mean C/C_rand ratio over aligned samples.
    pub fn clustering_ratio(&self) -> f64 {
        let mut ratios = Vec::new();
        for (&(tc, c), &(tr, cr)) in self.c.points.iter().zip(self.c_rand.points.iter()) {
            if tc == tr && cr > 0.0 {
                ratios.push(c / cr);
            }
        }
        if ratios.is_empty() {
            0.0
        } else {
            ratios.iter().sum::<f64>() / ratios.len() as f64
        }
    }

    /// CSV of the four curves.
    pub fn to_csv(&self) -> String {
        to_csv(&[&self.c, &self.c_rand, &self.l, &self.l_rand])
    }
}

/// Fig. 7: small-world metrics, global and one-ISP subgraph.
#[derive(Debug, Clone)]
pub struct Fig7SmallWorld {
    /// Panel (A): the entire stable-peer graph.
    pub global: SmallWorldSeries,
    /// Panel (B): the subgraph of one major ISP.
    pub isp: SmallWorldSeries,
    /// Which ISP panel (B) tracks (the paper uses China Netcom).
    pub isp_choice: Isp,
}

impl Default for Fig7SmallWorld {
    fn default() -> Self {
        Fig7SmallWorld {
            global: SmallWorldSeries::default(),
            isp: SmallWorldSeries::default(),
            isp_choice: Isp::Netcom,
        }
    }
}

impl Fig7SmallWorld {
    /// Text rendering.
    pub fn render_text(&self) -> String {
        let mut out = String::from("Fig 7 — small-world metrics (stable-peer graph)\n");
        let _ = writeln!(
            out,
            "  (A) global: C mean {:.3} vs C_rand {:.4} (ratio {:.0}x) | L mean {:.2} vs L_rand {:.2}",
            self.global.c.mean(),
            self.global.c_rand.mean(),
            self.global.clustering_ratio(),
            self.global.l.mean(),
            self.global.l_rand.mean()
        );
        let _ = writeln!(
            out,
            "  (B) {}: C mean {:.3} vs C_rand {:.4} (ratio {:.0}x) | L mean {:.2} vs L_rand {:.2}",
            self.isp_choice.name(),
            self.isp.c.mean(),
            self.isp.c_rand.mean(),
            self.isp.clustering_ratio(),
            self.isp.l.mean(),
            self.isp.l_rand.mean()
        );
        out
    }
}

/// Fig. 8: Garlaschelli–Loffredo edge reciprocity evolution.
#[derive(Debug, Clone, Default)]
pub struct Fig8Reciprocity {
    /// Whole-topology reciprocity (panel A).
    pub all: Series,
    /// Intra-ISP link sub-topology (panel B).
    pub intra: Series,
    /// Inter-ISP link sub-topology (panel B).
    pub inter: Series,
    /// Weighted reciprocity `r_w` (fraction of *traffic* on two-way
    /// relationships) — an extension beyond the paper's unweighted ρ,
    /// possible because the trace carries per-link segment counts.
    pub weighted: Series,
}

impl Fig8Reciprocity {
    /// Text rendering.
    pub fn render_text(&self) -> String {
        let mut out = String::from("Fig 8 — edge reciprocity\n");
        let _ = writeln!(
            out,
            "  all {:.3} | intra-ISP {:.3} | inter-ISP {:.3} | traffic-weighted r_w {:.3}",
            self.all.mean(),
            self.intra.mean(),
            self.inter.mean(),
            self.weighted.mean()
        );
        out
    }

    /// CSV of the four curves.
    pub fn to_csv(&self) -> String {
        to_csv(&[&self.all, &self.intra, &self.inter, &self.weighted])
    }
}

/// A sample boundary whose measurement horizon overlapped a trace
/// server outage. The figure pipelines skip these instants instead of
/// silently averaging over the hole; this record keeps the hole
/// visible in the report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartialSample {
    /// The sample instant that was skipped.
    pub time: SimTime,
    /// Fraction of the staleness horizon the server was up (< 1.0).
    pub coverage: f64,
}

/// Everything one study run produces.
#[derive(Debug, Clone, Default)]
pub struct StudyReport {
    /// Concurrent population (Fig. 1A).
    pub fig1a: Fig1Population,
    /// Daily distinct IPs (Fig. 1B).
    pub fig1b: Fig1DailyIps,
    /// ISP shares (Fig. 2).
    pub fig2: Fig2IspShares,
    /// Streaming quality (Fig. 3).
    pub fig3: Fig3Quality,
    /// Degree distributions (Fig. 4).
    pub fig4: Fig4Distributions,
    /// Degree evolution (Fig. 5).
    pub fig5: Fig5DegreeEvolution,
    /// Intra-ISP degree fractions (Fig. 6).
    pub fig6: Fig6IntraIsp,
    /// Small-world metrics (Fig. 7).
    pub fig7: Fig7SmallWorld,
    /// Reciprocity (Fig. 8).
    pub fig8: Fig8Reciprocity,
    /// Simulator summary of the run.
    pub sim: SimSummary,
    /// Observed stable-session statistics (reconstructed from report
    /// runs — the measurement-side view of peer lifetimes).
    pub sessions: Option<crate::sessions::SessionSummary>,
    /// Sample instants excluded from the figure averages because a
    /// trace-server outage ate into their staleness horizon.
    pub partial_samples: Vec<PartialSample>,
    /// Collection-endpoint statistics when the study ran through a
    /// real [`magellan_trace::TraceServer`] (None for the in-process
    /// sink path).
    pub collection: Option<magellan_trace::ServerStats>,
    /// Lossy-channel statistics when datagram loss/corruption was
    /// injected between peers and the server.
    pub loss: Option<magellan_trace::loss::LossStats>,
    /// Archive-recovery accounting when the report stream was
    /// replayed from a segmented on-disk archive (None for live
    /// runs — a resumed live study re-reads its own archive prefix
    /// but reports as live, so interrupted and uninterrupted runs
    /// render identically).
    pub recovery: Option<magellan_trace::RecoveryReport>,
    /// Networked-ingest accounting when the archive was produced by a
    /// `magellan-traced` service (read from its `INGEST` sidecar;
    /// None for in-process archives).
    pub ingest: Option<magellan_trace::IngestStats>,
}

impl StudyReport {
    /// Renders every figure as text.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "=== Magellan study report (joins {}, reports {}, peak concurrent {}) ===\n",
            self.sim.joins, self.sim.reports, self.sim.peak_concurrent
        );
        out.push_str(&self.fig1a.render_text());
        out.push_str(&self.fig1b.render_text());
        out.push_str(&self.fig2.render_text());
        out.push_str(&self.fig3.render_text());
        out.push_str(&self.fig4.render_text());
        out.push_str(&self.fig5.render_text());
        out.push_str(&self.fig6.render_text());
        out.push_str(&self.fig7.render_text());
        out.push_str(&self.fig8.render_text());
        if let Some(s) = &self.sessions {
            let _ = writeln!(
                out,
                "Stable sessions — {} observed | mean {:.0} min | median {:.0} min | p90 {:.0} min",
                s.sessions, s.mean_mins, s.median_mins, s.p90_mins
            );
        }
        let f = &self.sim.faults;
        let _ = writeln!(
            out,
            "Faults — crashes {} | tracker denials {} | bootstrap retries {} (recovered {}) | gossip fallbacks {} | partner timeouts {} | links blocked {} | flows blocked {} | reports lost {}",
            f.crashes,
            f.tracker_denied_joins,
            f.bootstrap_retries,
            f.bootstrap_recoveries,
            f.gossip_fallbacks,
            f.partner_timeouts,
            f.links_blocked,
            f.flows_blocked,
            f.reports_lost
        );
        if !self.partial_samples.is_empty() {
            let min_cov = self
                .partial_samples
                .iter()
                .map(|p| p.coverage)
                .fold(1.0, f64::min);
            let _ = writeln!(
                out,
                "  {} sample(s) flagged PARTIAL (min coverage {:.2}) and excluded from figure averages",
                self.partial_samples.len(),
                min_cov
            );
        }
        if let Some(cs) = &self.collection {
            let _ = writeln!(
                out,
                "Collection — accepted {} | rejected {} | bounced (server down) {} | duplicates absorbed {}",
                cs.accepted, cs.rejected, cs.unavailable, cs.duplicates
            );
        }
        if let Some(ls) = &self.loss {
            let _ = writeln!(
                out,
                "Datagram channel — sent {} | delivered {} | dropped {} | corrupted {} | rejected by server {}",
                ls.sent, ls.delivered, ls.dropped, ls.corrupted, ls.rejected_by_server
            );
        }
        if let Some(rc) = &self.recovery {
            let _ = writeln!(
                out,
                "Archive replay — {} record(s) recovered from {} segment(s) ({} sealed) | corrupt regions {} | bytes quarantined {} | torn tail {}",
                rc.records_recovered,
                rc.segments_read,
                rc.sealed_segments,
                rc.corrupt_regions,
                rc.bytes_quarantined,
                if rc.truncated_tail { "yes" } else { "no" }
            );
        }
        if let Some(ig) = &self.ingest {
            let _ = writeln!(
                out,
                "Ingest — {} client(s) sent {} | admitted {} | deduped {} | shed busy {} | rate limited {} | rejected {} | malformed {} | late {} | lost {} | surplus {} | evicted {} | merges {} | balanced {}",
                ig.clients,
                ig.sent,
                ig.admitted,
                ig.deduped,
                ig.shed_busy,
                ig.rate_limited,
                ig.rejected,
                ig.malformed,
                ig.late,
                ig.lost,
                ig.surplus,
                ig.evicted,
                ig.merges,
                if ig.balanced() { "yes" } else { "NO" }
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(name: &str, vals: &[f64]) -> Series {
        let mut s = Series::new(name);
        for (i, &v) in vals.iter().enumerate() {
            s.push(SimTime::from_millis(i as u64 * 60_000), v);
        }
        s
    }

    #[test]
    fn stable_ratio_averages_aligned_points() {
        let fig = Fig1Population {
            total: series("total", &[90.0, 120.0]),
            stable: series("stable", &[30.0, 40.0]),
        };
        assert!((fig.stable_ratio() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn stable_ratio_empty_is_zero() {
        assert_eq!(Fig1Population::default().stable_ratio(), 0.0);
    }

    #[test]
    fn isp_share_lookup() {
        let fig = Fig2IspShares {
            shares: vec![(Isp::Telecom, 0.4), (Isp::Netcom, 0.25)],
        };
        assert_eq!(fig.share(Isp::Telecom), 0.4);
        assert_eq!(fig.share(Isp::Edu), 0.0);
    }

    #[test]
    fn clustering_ratio_on_aligned_series() {
        let sw = SmallWorldSeries {
            c: series("c", &[0.2, 0.4]),
            c_rand: series("cr", &[0.01, 0.02]),
            l: series("l", &[5.0]),
            l_rand: series("lr", &[4.0]),
        };
        assert!((sw.clustering_ratio() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn fig1b_renders_day_rows() {
        let fig = Fig1DailyIps {
            total: vec![(0, 1000), (1, 1200)],
            stable: vec![(0, 300), (1, 380)],
        };
        let text = fig.render_text();
        assert!(text.contains("day  0"));
        assert!(text.contains("1200"));
        assert!(text.contains("380"));
    }

    #[test]
    fn fig4_renders_verdict_line() {
        use magellan_graph::powerlaw::{PowerLawFit, PowerLawVerdict};
        use magellan_graph::DegreeHistogram;
        let snap = DegreeSnapshot {
            label: "test".into(),
            time: SimTime::at(0, 9, 0),
            coverage: 1.0,
            partners: [10usize, 10, 12].into_iter().collect::<DegreeHistogram>(),
            indegree: [5usize, 6, 7].into_iter().collect(),
            outdegree: [3usize, 3, 4].into_iter().collect(),
            partner_powerlaw: Some(PowerLawVerdict {
                fit: PowerLawFit {
                    alpha: 2.5,
                    xmin: 10,
                    ks: 0.4,
                    n_tail: 3,
                },
                threshold: 0.1,
                plausible: false,
            }),
        };
        let fig = Fig4Distributions {
            snapshots: vec![snap],
        };
        let text = fig.render_text();
        assert!(text.contains("power-law plausible: false"));
        assert!(text.contains("[test]"));
    }

    #[test]
    fn fig7_render_reports_both_panels() {
        let mut fig = Fig7SmallWorld::default();
        fig.global.c = series("c", &[0.4]);
        fig.global.c_rand = series("cr", &[0.04]);
        fig.global.l = series("l", &[2.0]);
        fig.global.l_rand = series("lr", &[2.5]);
        let text = fig.render_text();
        assert!(text.contains("(A) global"));
        assert!(text.contains("China Netcom"));
        assert!(text.contains("10x"));
    }

    #[test]
    fn fig8_csv_has_four_columns() {
        let fig = Fig8Reciprocity {
            all: series("all", &[0.5]),
            intra: series("intra", &[0.7]),
            inter: series("inter", &[0.3]),
            weighted: series("rw", &[0.4]),
        };
        let csv = fig.to_csv();
        // Header: time_ms,time_label + four series columns.
        let header = csv.lines().next().unwrap();
        assert_eq!(header.matches(',').count(), 5, "header: {header}");
        assert!(header.contains("rw"));
    }

    #[test]
    fn renderers_do_not_panic_on_defaults() {
        let report = StudyReport::default();
        let text = report.render_text();
        assert!(text.contains("Fig 1(A)"));
        assert!(text.contains("Fig 8"));
    }

    #[test]
    fn renderers_include_key_numbers() {
        let fig = Fig3Quality {
            cctv1: series("CCTV1", &[0.75, 0.85]),
            cctv4: series("CCTV4", &[0.7]),
            cctv1_viewers: series("v1", &[300.0]),
            cctv4_viewers: series("v4", &[60.0]),
        };
        let text = fig.render_text();
        assert!(text.contains("0.800"));
        assert!(text.contains("0.700"));
        assert!((fig.viewer_ratio() - 5.0).abs() < 1e-9);
        let csv = fig.to_csv();
        assert!(csv.lines().count() >= 3);
    }
}
