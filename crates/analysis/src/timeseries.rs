//! Metric-evolution series.
//!
//! Every evolution figure of the paper is a set of curves over the
//! two-week window. [`Series`] is one such curve: `(SimTime, f64)`
//! points with a name, plus helpers the figure renderers share
//! (daily-peak extraction, averaging, CSV emission).

use magellan_netsim::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One named metric curve.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Series {
    /// Curve label (legend entry).
    pub name: String,
    /// Sample points, in nondecreasing time order.
    pub points: Vec<(SimTime, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the last sample (series are monotone).
    pub fn push(&mut self, t: SimTime, v: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(t >= last, "series must be pushed in time order");
        }
        self.points.push((t, v));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Mean value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64
    }

    /// Largest value with its time.
    pub fn max_point(&self) -> Option<(SimTime, f64)> {
        self.points
            .iter()
            .copied()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite series"))
    }

    /// Smallest value with its time.
    pub fn min_point(&self) -> Option<(SimTime, f64)> {
        self.points
            .iter()
            .copied()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite series"))
    }

    /// Value at the sample closest to `t`.
    pub fn at(&self, t: SimTime) -> Option<f64> {
        self.points
            .iter()
            .min_by_key(|&&(pt, _)| pt.as_millis().abs_diff(t.as_millis()))
            .map(|&(_, v)| v)
    }

    /// Mean over the samples of one calendar day.
    pub fn day_mean(&self, day: u64) -> Option<f64> {
        let vals: Vec<f64> = self
            .points
            .iter()
            .filter(|&&(t, _)| t.day() == day)
            .map(|&(_, v)| v)
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }

    /// Peak value of one calendar day.
    pub fn day_peak(&self, day: u64) -> Option<(SimTime, f64)> {
        self.points
            .iter()
            .copied()
            .filter(|&(t, _)| t.day() == day)
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
    }
}

/// Renders aligned CSV: `time_ms,time_label,<series...>` rows over
/// the union of sample times (series sampled on the same grid line up
/// exactly; stragglers emit empty cells).
pub fn to_csv(series: &[&Series]) -> String {
    let mut times: Vec<SimTime> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|&(t, _)| t))
        .collect();
    times.sort();
    times.dedup();
    let mut out = String::new();
    out.push_str("time_ms,time_label");
    for s in series {
        let _ = write!(out, ",{}", s.name.replace(',', ";"));
    }
    out.push('\n');
    // Per-series cursor over the sorted points.
    let mut cursors = vec![0usize; series.len()];
    for t in times {
        let _ = write!(out, "{},{}", t.as_millis(), t);
        for (si, s) in series.iter().enumerate() {
            while cursors[si] < s.points.len() && s.points[cursors[si]].0 < t {
                cursors[si] += 1;
            }
            if cursors[si] < s.points.len() && s.points[cursors[si]].0 == t {
                let _ = write!(out, ",{}", s.points[cursors[si]].1);
            } else {
                out.push(',');
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(min: u64) -> SimTime {
        SimTime::from_millis(min * 60_000)
    }

    #[test]
    fn push_and_stats() {
        let mut s = Series::new("x");
        s.push(t(0), 1.0);
        s.push(t(10), 3.0);
        s.push(t(20), 2.0);
        assert_eq!(s.len(), 3);
        assert!((s.mean() - 2.0).abs() < 1e-12);
        assert_eq!(s.max_point(), Some((t(10), 3.0)));
        assert_eq!(s.min_point(), Some((t(0), 1.0)));
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_push_panics() {
        let mut s = Series::new("x");
        s.push(t(10), 1.0);
        s.push(t(5), 2.0);
    }

    #[test]
    fn nearest_sample_lookup() {
        let mut s = Series::new("x");
        s.push(t(0), 1.0);
        s.push(t(100), 9.0);
        assert_eq!(s.at(t(10)), Some(1.0));
        assert_eq!(s.at(t(90)), Some(9.0));
        assert_eq!(Series::new("e").at(t(0)), None);
    }

    #[test]
    fn day_grouping() {
        let mut s = Series::new("x");
        s.push(SimTime::at(0, 12, 0), 2.0);
        s.push(SimTime::at(0, 21, 0), 6.0);
        s.push(SimTime::at(1, 12, 0), 10.0);
        assert_eq!(s.day_mean(0), Some(4.0));
        assert_eq!(s.day_peak(0), Some((SimTime::at(0, 21, 0), 6.0)));
        assert_eq!(s.day_mean(5), None);
    }

    #[test]
    fn csv_aligns_series() {
        let mut a = Series::new("a");
        a.push(t(0), 1.0);
        a.push(t(10), 2.0);
        let mut b = Series::new("b");
        b.push(t(10), 5.0);
        let csv = to_csv(&[&a, &b]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].ends_with("a,b"));
        assert!(lines[1].ends_with(",1,"), "line: {}", lines[1]);
        assert!(lines[2].ends_with(",2,5"), "line: {}", lines[2]);
    }

    #[test]
    fn csv_escapes_commas_in_names() {
        let s = Series::new("x,y");
        let csv = to_csv(&[&s]);
        assert!(csv.starts_with("time_ms,time_label,x;y"));
    }
}
