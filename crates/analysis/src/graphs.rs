//! Topology construction from trace reports.
//!
//! The study derives two directed graphs from each snapshot:
//!
//! * the **stable-peer graph** — stable peers and the active links
//!   among them (§4.3's clustering and path-length subject);
//! * the **active-link topology** — "all the directed active links
//!   among peers that appeared in the trace at the time" (§4.4's
//!   reciprocity subject), whose node set also includes non-reporting
//!   partners.
//!
//! Edges point in the direction of data flow: an active *supplying*
//! partner contributes an edge toward the reporter, an active
//! *receiving* partner an edge away from it.

use crate::classify::{classify, PartnerClass};
use magellan_graph::{subgraph, DiGraph};
use magellan_netsim::{Isp, IspDatabase, PeerAddr};
use magellan_trace::PeerReport;
use std::collections::HashSet;

/// Which peers become graph nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeScope {
    /// Only stable (reporting) peers; edges require both endpoints
    /// stable. Fig. 7's stable-peer graph.
    StableOnly,
    /// Every address in the trace at this instant — reporters and
    /// their partners. Fig. 8's reciprocity topology.
    AllKnown,
}

/// Builds the directed active-link graph from a snapshot's reports.
///
/// Reports are sorted by reporter address internally, so the result
/// is deterministic regardless of input order. Edge weights
/// accumulate reported segment counts (a link reported from both ends
/// sums both observations; metrics in this crate use structure, not
/// weight).
pub fn active_link_graph<'a, I>(reports: I, scope: NodeScope) -> DiGraph<PeerAddr>
where
    I: IntoIterator<Item = &'a PeerReport>,
{
    let mut sorted: Vec<&PeerReport> = reports.into_iter().collect(); // lint:allow(H2): materializes the report window once per figure sample, bounded by the stable set
                                                                      // One report per reporter: keep the freshest, with a
                                                                      // content-based tie-break so the choice never depends on input
                                                                      // order (snapshots provide one report per peer; raw streams may
                                                                      // not).
    sorted.sort_by_key(|r| (r.addr, r.time, r.partners.len()));
    let mut deduped: Vec<&PeerReport> = Vec::with_capacity(sorted.len());
    for r in sorted {
        match deduped.last() {
            Some(last) if last.addr == r.addr => {
                *deduped.last_mut().expect("non-empty") = r;
            }
            _ => deduped.push(r),
        }
    }
    let sorted = deduped;
    let stable: HashSet<PeerAddr> = sorted.iter().map(|r| r.addr).collect(); // lint:allow(H2): one address-set build per figure sample
    let mut g: DiGraph<PeerAddr> = DiGraph::new();
    // Intern stable peers first so even isolated reporters are nodes.
    for r in &sorted {
        g.intern(r.addr);
    }
    for r in &sorted {
        for rec in &r.partners {
            if rec.addr == r.addr {
                continue;
            }
            if scope == NodeScope::StableOnly && !stable.contains(&rec.addr) {
                continue;
            }
            match classify(rec) {
                PartnerClass::ActiveSupplier => {
                    g.add_edge_by_key(rec.addr, r.addr, rec.segments_received);
                }
                PartnerClass::ActiveReceiver => {
                    g.add_edge_by_key(r.addr, rec.addr, rec.segments_sent);
                }
                PartnerClass::ActiveBoth => {
                    g.add_edge_by_key(rec.addr, r.addr, rec.segments_received);
                    g.add_edge_by_key(r.addr, rec.addr, rec.segments_sent);
                }
                PartnerClass::NonActive => {}
            }
        }
    }
    g
}

/// ISO of every node, indexed by [`NodeId::index`].
pub fn node_isps(g: &DiGraph<PeerAddr>, db: &IspDatabase) -> Vec<Isp> {
    g.node_ids().map(|id| db.lookup(*g.key(id))).collect()
}

/// The subgraph induced by the peers of one ISP (Fig. 7B).
pub fn isp_subgraph(g: &DiGraph<PeerAddr>, db: &IspDatabase, isp: Isp) -> DiGraph<PeerAddr> {
    subgraph::induced_by_nodes(g, |_, addr| db.lookup(*addr) == isp)
}

/// The sub-topology of intra-ISP links and their incident peers
/// (Fig. 8B, "links among peers in the same ISPs").
pub fn intra_isp_link_graph(g: &DiGraph<PeerAddr>, db: &IspDatabase) -> DiGraph<PeerAddr> {
    subgraph::filtered_by_edges(g, |g, e| {
        db.lookup(*g.key(e.from)) == db.lookup(*g.key(e.to))
    })
}

/// The sub-topology of inter-ISP links and their incident peers
/// (Fig. 8B, "links across different ISPs").
pub fn inter_isp_link_graph(g: &DiGraph<PeerAddr>, db: &IspDatabase) -> DiGraph<PeerAddr> {
    subgraph::filtered_by_edges(g, |g, e| {
        db.lookup(*g.key(e.from)) != db.lookup(*g.key(e.to))
    })
}

/// Average fractions of each stable peer's active degree that stays
/// inside its own ISP: `(indegree fraction, outdegree fraction)` —
/// the two curves of Fig. 6. Peers with zero active degree in a
/// direction are excluded from that average, matching the per-peer
/// proportion the paper defines.
pub fn intra_isp_degree_fractions<'a, I>(reports: I, db: &IspDatabase) -> (f64, f64)
where
    I: IntoIterator<Item = &'a PeerReport>,
{
    let mut in_sum = 0.0;
    let mut in_n = 0usize;
    let mut out_sum = 0.0;
    let mut out_n = 0usize;
    for r in reports {
        let my_isp = db.lookup(r.addr);
        let (mut in_total, mut in_same, mut out_total, mut out_same) = (0u32, 0u32, 0u32, 0u32);
        for rec in &r.partners {
            let same = db.lookup(rec.addr) == my_isp;
            match classify(rec) {
                PartnerClass::ActiveSupplier => {
                    in_total += 1;
                    in_same += same as u32;
                }
                PartnerClass::ActiveReceiver => {
                    out_total += 1;
                    out_same += same as u32;
                }
                PartnerClass::ActiveBoth => {
                    in_total += 1;
                    in_same += same as u32;
                    out_total += 1;
                    out_same += same as u32;
                }
                PartnerClass::NonActive => {}
            }
        }
        if in_total > 0 {
            in_sum += in_same as f64 / in_total as f64;
            in_n += 1;
        }
        if out_total > 0 {
            out_sum += out_same as f64 / out_total as f64;
            out_n += 1;
        }
    }
    (
        if in_n > 0 { in_sum / in_n as f64 } else { 0.0 },
        if out_n > 0 {
            out_sum / out_n as f64
        } else {
            0.0
        },
    )
}

/// Average fraction of each stable peer's *whole partner list*
/// (active or not) inside its own ISP. Not a curve of the paper's
/// Fig. 6 — which uses active degrees — but the quantity a
/// locality-aware tracker directly controls, so the extension
/// analyses track it alongside.
pub fn intra_isp_pool_fraction<'a, I>(reports: I, db: &IspDatabase) -> f64
where
    I: IntoIterator<Item = &'a PeerReport>,
{
    let mut sum = 0.0;
    let mut n = 0usize;
    for r in reports {
        if r.partners.is_empty() {
            continue;
        }
        let my_isp = db.lookup(r.addr);
        let same = r
            .partners
            .iter()
            .filter(|p| db.lookup(p.addr) == my_isp)
            .count();
        sum += same as f64 / r.partners.len() as f64;
        n += 1;
    }
    if n > 0 {
        sum / n as f64
    } else {
        0.0
    }
}

/// Small-world panels for every China ISP with at least `min_nodes`
/// stable peers in the snapshot — the paper's remark that "similar
/// properties were observed for sub topologies for other ISPs as
/// well" (§4.3), made checkable.
pub fn per_isp_smallworld(
    g: &DiGraph<PeerAddr>,
    db: &IspDatabase,
    min_nodes: usize,
) -> Vec<(Isp, magellan_graph::smallworld::SmallWorldReport)> {
    use magellan_graph::smallworld::{assess, SmallWorldConfig};
    let mut out = Vec::new();
    for isp in Isp::ALL {
        if !isp.is_china() {
            continue;
        }
        let sub = isp_subgraph(g, db, isp);
        if sub.node_count() < min_nodes {
            continue;
        }
        out.push((isp, assess(&sub, &SmallWorldConfig::default())));
    }
    out
}

/// The random-mixing baseline for Fig. 6: if partners were chosen
/// with no quality gradient, the expected intra-ISP fraction is the
/// sum of squared ISP shares.
pub fn isp_share_baseline(db: &IspDatabase) -> f64 {
    db.shares().normalized().iter().map(|s| s * s).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use magellan_netsim::{IspShares, SimTime};
    use magellan_trace::{BufferMap, PartnerRecord};
    use magellan_workload::ChannelId;

    fn report(addr: PeerAddr, partners: Vec<(PeerAddr, u64, u64)>) -> PeerReport {
        PeerReport {
            time: SimTime::ORIGIN,
            addr,
            channel: ChannelId::CCTV1,
            buffer_map: BufferMap::new(0, 8),
            download_capacity_kbps: 1000.0,
            upload_capacity_kbps: 500.0,
            recv_throughput_kbps: 380.0,
            send_throughput_kbps: 100.0,
            partners: partners
                .into_iter()
                .map(|(a, sent, recv)| PartnerRecord {
                    addr: a,
                    tcp_port: 0,
                    udp_port: 0,
                    segments_sent: sent,
                    segments_received: recv,
                })
                .collect(),
        }
    }

    fn addr(x: u32) -> PeerAddr {
        PeerAddr::from_u32(x)
    }

    #[test]
    fn edge_directions_follow_data_flow() {
        // Reporter 1: partner 2 supplies it (recv=50); partner 3
        // receives from it (sent=50).
        let reports = vec![report(addr(1), vec![(addr(2), 0, 50), (addr(3), 50, 0)])];
        let g = active_link_graph(&reports, NodeScope::AllKnown);
        let n1 = g.node_id(&addr(1)).unwrap();
        let n2 = g.node_id(&addr(2)).unwrap();
        let n3 = g.node_id(&addr(3)).unwrap();
        assert!(g.has_edge(n2, n1));
        assert!(g.has_edge(n1, n3));
        assert!(!g.has_edge(n1, n2));
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn stable_scope_drops_non_reporters() {
        let reports = vec![
            report(addr(1), vec![(addr(2), 0, 50), (addr(99), 0, 50)]),
            report(addr(2), vec![(addr(1), 50, 0)]),
        ];
        let g = active_link_graph(&reports, NodeScope::StableOnly);
        assert!(g.node_id(&addr(99)).is_none());
        assert_eq!(g.node_count(), 2);
        // The 2→1 link is reported by both ends; structure dedupes.
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn all_known_scope_keeps_partner_ips() {
        let reports = vec![report(addr(1), vec![(addr(99), 0, 50)])];
        let g = active_link_graph(&reports, NodeScope::AllKnown);
        assert!(g.node_id(&addr(99)).is_some());
    }

    #[test]
    fn non_active_partners_make_no_edges() {
        let reports = vec![report(addr(1), vec![(addr(2), 1, 1)])];
        let g = active_link_graph(&reports, NodeScope::AllKnown);
        assert_eq!(g.edge_count(), 0);
        // Reporter is still a node; the lazy partner only matters for
        // population counts, not topology.
        assert!(g.node_id(&addr(1)).is_some());
    }

    #[test]
    fn both_direction_partner_creates_reciprocal_pair() {
        let reports = vec![report(addr(1), vec![(addr(2), 50, 50)])];
        let g = active_link_graph(&reports, NodeScope::AllKnown);
        let n1 = g.node_id(&addr(1)).unwrap();
        let n2 = g.node_id(&addr(2)).unwrap();
        assert!(g.has_edge(n1, n2) && g.has_edge(n2, n1));
    }

    #[test]
    fn duplicate_reports_from_same_peer_are_deduped() {
        let reports = vec![
            report(addr(1), vec![(addr(2), 0, 50)]),
            report(addr(1), vec![(addr(2), 0, 50)]),
        ];
        let g = active_link_graph(&reports, NodeScope::AllKnown);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn isp_machinery_partitions_edges() {
        let db = IspDatabase::synthetic(IspShares::default());
        // Two addresses in the same ISP range + one in a different one.
        let telecom = db.ranges_of(Isp::Telecom);
        let netcom = db.ranges_of(Isp::Netcom);
        let a = addr(telecom[0].0);
        let b = addr(telecom[0].0 + 1);
        let c = addr(netcom[0].0);
        let reports = vec![report(a, vec![(b, 50, 50), (c, 50, 50)])];
        let g = active_link_graph(&reports, NodeScope::AllKnown);
        let intra = intra_isp_link_graph(&g, &db);
        let inter = inter_isp_link_graph(&g, &db);
        assert_eq!(intra.edge_count(), 2); // a<->b
        assert_eq!(inter.edge_count(), 2); // a<->c
        assert_eq!(intra.edge_count() + inter.edge_count(), g.edge_count());
        let telecom_sub = isp_subgraph(&g, &db, Isp::Telecom);
        assert_eq!(telecom_sub.node_count(), 2);
        assert_eq!(telecom_sub.edge_count(), 2);
    }

    #[test]
    fn intra_fraction_on_synthetic_reports() {
        let db = IspDatabase::synthetic(IspShares::default());
        let telecom = db.ranges_of(Isp::Telecom);
        let netcom = db.ranges_of(Isp::Netcom);
        let me = addr(telecom[0].0);
        let same = addr(telecom[0].0 + 1);
        let other = addr(netcom[0].0);
        // Indegree: 1 same + 1 other = 0.5; outdegree: only same = 1.0.
        let reports = vec![report(me, vec![(same, 50, 50), (other, 0, 50)])];
        let (fin, fout) = intra_isp_degree_fractions(&reports, &db);
        assert!((fin - 0.5).abs() < 1e-12);
        assert!((fout - 1.0).abs() < 1e-12);
    }

    #[test]
    fn baseline_matches_share_squares() {
        let db = IspDatabase::synthetic(IspShares::default());
        let b = isp_share_baseline(&db);
        let norm = db.shares().normalized();
        let expect: f64 = norm.iter().map(|s| s * s).sum();
        assert!((b - expect).abs() < 1e-12);
        assert!(b > 0.2 && b < 0.3, "baseline = {b}");
    }

    #[test]
    fn per_isp_panels_cover_populated_isps_only() {
        let db = IspDatabase::synthetic(IspShares::default());
        let telecom = db.ranges_of(Isp::Telecom);
        let netcom = db.ranges_of(Isp::Netcom);
        // Three telecom peers in a reciprocal triangle; one isolated
        // netcom reporter.
        let a = addr(telecom[0].0);
        let b = addr(telecom[0].0 + 1);
        let c = addr(telecom[0].0 + 2);
        let d = addr(netcom[0].0);
        let reports = vec![
            report(a, vec![(b, 50, 50), (c, 50, 50)]),
            report(b, vec![(a, 50, 50), (c, 50, 50)]),
            report(c, vec![(a, 50, 50), (b, 50, 50)]),
            report(d, vec![]),
        ];
        let g = active_link_graph(&reports, NodeScope::StableOnly);
        let panels = per_isp_smallworld(&g, &db, 2);
        assert_eq!(panels.len(), 1, "only Telecom has >= 2 nodes");
        let (isp, r) = &panels[0];
        assert_eq!(*isp, Isp::Telecom);
        assert_eq!(r.n, 3);
        assert!((r.c - 1.0).abs() < 1e-9, "triangle C = {}", r.c);
    }

    #[test]
    fn node_isps_align_with_lookup() {
        let db = IspDatabase::synthetic(IspShares::default());
        let telecom = db.ranges_of(Isp::Telecom);
        let reports = vec![report(addr(telecom[0].0), vec![])];
        let g = active_link_graph(&reports, NodeScope::AllKnown);
        let isps = node_isps(&g, &db);
        assert_eq!(isps, vec![Isp::Telecom]);
    }
}
