//! # magellan-analysis
//!
//! The Magellan study itself (paper §4): everything between raw peer
//! reports and the figures.
//!
//! * [`classify`] — partner classification: active supplying / active
//!   receiving / non-active, with the 10-segment threshold;
//! * [`graphs`] — construction of the directed active-link topology
//!   and the stable-peer graph from trace snapshots, with ISP
//!   annotation;
//! * [`plot`] — dependency-free SVG rendering of the figures;
//! * [`sessions`] — stable-session reconstruction from report runs;
//! * [`timeseries`] — metric-evolution series and CSV rendering;
//! * [`figures`] — one typed result per figure of the paper
//!   (Fig. 1A through Fig. 8B) plus text renderers;
//! * [`study`] — the end-to-end driver: scenario → simulation →
//!   streaming trace analysis → [`figures::StudyReport`].
//!
//! The driver consumes reports as a stream (the real study had 120 GB
//! of them); nothing here requires the full trace in memory.

//!
//! ## Example
//!
//! ```no_run
//! use magellan_analysis::study::{MagellanStudy, StudyConfig};
//!
//! let report = MagellanStudy::new(StudyConfig {
//!     scale: 0.002,
//!     window_days: 2,
//!     ..StudyConfig::default()
//! })
//! .run();
//! println!("{}", report.render_text());
//! assert!(report.fig8.all.mean() > 0.0); // the mesh is reciprocal
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod classify;
pub mod durable;
pub mod figures;
pub mod graphs;
pub mod plot;
pub mod sessions;
pub mod study;
pub mod timeseries;

pub use durable::{DurableConfig, DurableStudy};
pub use figures::StudyReport;
pub use study::{MagellanStudy, StudyConfig};
