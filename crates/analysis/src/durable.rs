//! Crash-safe study driver: durable archives plus checkpoint/resume.
//!
//! [`DurableStudy`] runs the same scenario → simulation → streaming
//! analysis pipeline as [`MagellanStudy`], but every admitted report
//! is appended to an on-disk segmented archive
//! ([`magellan_trace::archive`]) and the complete deterministic state
//! of the pipeline is checkpointed every few simulated ticks. A run
//! killed at any instant resumes from the newest valid checkpoint and
//! finishes with an archive and a [`StudyReport`] that are
//! **byte-identical** to those of an uninterrupted run:
//!
//! * the simulator restarts from [`magellan_overlay::SimCheckpoint`]
//!   (every RNG stream, peer, tracker list, and fault counter);
//! * the admission gateway's retransmission-dedup set and the
//!   analysis accumulator are rebuilt by re-streaming the archive
//!   prefix the checkpoint covers — archive order is admission order,
//!   so the rebuilt accumulator is bit-exact;
//! * the peer uplink's buffered backlog rides inside the checkpoint;
//! * the archive writer reopens at the checkpointed record cursor and
//!   truncates whatever an interrupted tick half-wrote past it.
//!
//! [`DurableStudy::analyze_archive`] is the offline half: it replays
//! an archive (even a damaged one) through the same accumulator and
//! reports what recovery had to skip.

use crate::figures::StudyReport;
use crate::study::{Accumulator, StudyConfig};
use magellan_netsim::SimTime;
use magellan_overlay::{OverlaySim, SimCheckpoint};
use magellan_trace::checkpoint::{latest_valid_checkpoint, prune_checkpoints, write_checkpoint};
use magellan_trace::{
    wire, ArchiveConfig, ArchiveWriter, GatewayCore, PeerReport, ReportGateway, ReportUplink,
    ServerStats, SubmitError, UplinkStats,
};
use std::io;
use std::path::PathBuf;

/// Reports the peer uplink buffers across a collection outage —
/// mirrors [`magellan_overlay::OverlaySim::run_collecting`].
const UPLINK_CAPACITY: usize = 1 << 16;

/// Version tag of the durable-study checkpoint body (the pipeline
/// extras wrapped around the simulator checkpoint). Version 2 added
/// the uplink retry/backoff counters (`attempts`, `backoff_capped`,
/// `dropped_permanent`); version-1 checkpoints are rejected and the
/// driver cold-starts.
const EXTRAS_VERSION: u32 = 2;

/// Durability knobs of one [`DurableStudy`].
#[derive(Debug, Clone)]
pub struct DurableConfig {
    /// Archive segmentation (segment size governs how much an
    /// unsealed tail can lose to a crash).
    pub archive: ArchiveConfig,
    /// Checkpoint cadence in simulator ticks.
    pub checkpoint_every_ticks: u64,
    /// How many recent checkpoints to keep on disk (at least 1; more
    /// than one survives a crash *during* a checkpoint write).
    pub keep_checkpoints: usize,
}

impl Default for DurableConfig {
    fn default() -> Self {
        DurableConfig {
            archive: ArchiveConfig::default(),
            checkpoint_every_ticks: 512,
            keep_checkpoints: 2,
        }
    }
}

/// The crash-safe study runner: a [`StudyConfig`] bound to an on-disk
/// run directory holding `archive/` and `checkpoints/`.
#[derive(Debug, Clone)]
pub struct DurableStudy {
    dir: PathBuf,
    cfg: StudyConfig,
    dcfg: DurableConfig,
}

/// The admission pipeline behind the uplink: gateway semantics
/// (downtime, validation, dedup) in front of the archive writer and
/// the streaming accumulator. Archive append errors cannot surface
/// through [`SubmitError`], so they are stashed for the driver to
/// rethrow after the tick.
struct ArchiveGateway<'a> {
    core: &'a mut GatewayCore,
    writer: &'a mut ArchiveWriter,
    acc: &'a mut Accumulator,
    io_error: &'a mut Option<io::Error>,
}

impl ReportGateway for ArchiveGateway<'_> {
    fn submit_report(&mut self, report: PeerReport, now: SimTime) -> Result<(), SubmitError> {
        if self.core.admit(&report, now)? {
            if let Err(e) = self.writer.append(&report) {
                if self.io_error.is_none() {
                    *self.io_error = Some(e);
                }
            }
            self.acc.ingest(report);
        }
        Ok(())
    }
}

/// Everything a checkpoint carries beyond the simulator state.
struct Extras {
    cursor: u64,
    server: ServerStats,
    uplink: UplinkStats,
    queue: Vec<PeerReport>,
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn encode_body(extras: &Extras, sim: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(128 + sim.len());
    put_u32(&mut out, EXTRAS_VERSION);
    put_u64(&mut out, extras.cursor);
    for v in [
        extras.server.accepted,
        extras.server.rejected,
        extras.server.unavailable,
        extras.server.duplicates,
        extras.uplink.offered,
        extras.uplink.delivered,
        extras.uplink.retransmitted,
        extras.uplink.dropped_overflow,
        extras.uplink.rejected,
        extras.uplink.attempts,
        extras.uplink.backoff_capped,
        extras.uplink.dropped_permanent,
    ] {
        put_u64(&mut out, v);
    }
    // lint:allow(C3): queue length is capped at UPLINK_CAPACITY (1<<16)
    put_u32(&mut out, extras.queue.len() as u32);
    for r in &extras.queue {
        let bytes = wire::encode(r);
        // lint:allow(C3): a wire-encoded report is a few hundred bytes
        put_u32(&mut out, bytes.len() as u32);
        out.extend_from_slice(&bytes);
    }
    out.extend_from_slice(sim);
    out
}

/// Splits a checkpoint body back into pipeline extras and the
/// simulator checkpoint. `None` on any structural mismatch (the
/// driver then falls back to an older checkpoint or a cold start).
fn decode_body(body: &[u8]) -> Option<(Extras, SimCheckpoint)> {
    let mut at = 0usize;
    let mut take = |n: usize| -> Option<&[u8]> {
        let s = body.get(at..at.checked_add(n)?)?;
        at += n;
        Some(s)
    };
    let mut u32_at = || -> Option<u32> { Some(u32::from_be_bytes(take(4)?.try_into().ok()?)) };
    if u32_at()? != EXTRAS_VERSION {
        return None;
    }
    let mut u64_at = || -> Option<u64> { Some(u64::from_be_bytes(take(8)?.try_into().ok()?)) };
    let cursor = u64_at()?;
    let server = ServerStats {
        accepted: u64_at()?,
        rejected: u64_at()?,
        unavailable: u64_at()?,
        duplicates: u64_at()?,
    };
    let uplink = UplinkStats {
        offered: u64_at()?,
        delivered: u64_at()?,
        retransmitted: u64_at()?,
        dropped_overflow: u64_at()?,
        rejected: u64_at()?,
        attempts: u64_at()?,
        backoff_capped: u64_at()?,
        dropped_permanent: u64_at()?,
    };
    let mut u32_at = || -> Option<u32> { Some(u32::from_be_bytes(take(4)?.try_into().ok()?)) };
    let n = u32_at()? as usize;
    if n > UPLINK_CAPACITY {
        return None;
    }
    let mut queue = Vec::with_capacity(n);
    for _ in 0..n {
        let len = u32::from_be_bytes(take(4)?.try_into().ok()?) as usize;
        let mut slice = take(len)?;
        let report = wire::decode(&mut slice).ok()?;
        if !slice.is_empty() {
            return None;
        }
        queue.push(report);
    }
    let sim = SimCheckpoint::decode(&body[at..])?;
    Some((
        Extras {
            cursor,
            server,
            uplink,
            queue,
        },
        sim,
    ))
}

/// FNV-1a over a byte stream.
fn fnv1a(bytes: impl Iterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl DurableStudy {
    /// Binds a study configuration to a run directory. Nothing is
    /// created until [`DurableStudy::run`] or
    /// [`DurableStudy::resume`].
    pub fn new(dir: impl Into<PathBuf>, cfg: StudyConfig, dcfg: DurableConfig) -> Self {
        DurableStudy {
            dir: dir.into(),
            cfg,
            dcfg,
        }
    }

    /// The archive directory of this run.
    pub fn archive_dir(&self) -> PathBuf {
        self.dir.join("archive")
    }

    /// The checkpoint directory of this run.
    pub fn checkpoint_dir(&self) -> PathBuf {
        self.dir.join("checkpoints")
    }

    /// Fingerprint of the configuration: a checkpoint written under a
    /// different config (or workload build) never resumes silently.
    pub fn fingerprint(&self) -> u64 {
        let cfg_hash = fnv1a(format!("{:?}", self.cfg).bytes());
        cfg_hash ^ self.cfg.scenario().fingerprint().rotate_left(17)
    }

    /// Runs the study from scratch, wiping any previous archive and
    /// checkpoints in the run directory.
    ///
    /// # Errors
    ///
    /// Archive or checkpoint I/O failure, or a simulator
    /// inconsistency (impossible for configs built through
    /// [`StudyConfig`]).
    pub fn run(&self) -> io::Result<StudyReport> {
        self.run_observed(|_| {})
    }

    /// As [`DurableStudy::run`], invoking `observer` with the tick
    /// index about to execute — the crash-drill hook (`abort()` in
    /// the observer kills the process at a deterministic tick).
    ///
    /// # Errors
    ///
    /// As [`DurableStudy::run`].
    pub fn run_observed(&self, mut observer: impl FnMut(u64)) -> io::Result<StudyReport> {
        self.drive(false, &mut observer)
    }

    /// Resumes from the newest valid checkpoint, falling back to a
    /// cold start when none exists (or none matches the
    /// configuration fingerprint).
    ///
    /// # Errors
    ///
    /// As [`DurableStudy::run`].
    pub fn resume(&self) -> io::Result<StudyReport> {
        self.resume_observed(|_| {})
    }

    /// As [`DurableStudy::resume`] with a tick observer.
    ///
    /// # Errors
    ///
    /// As [`DurableStudy::run`].
    pub fn resume_observed(&self, mut observer: impl FnMut(u64)) -> io::Result<StudyReport> {
        self.drive(true, &mut observer)
    }

    fn drive(&self, resume: bool, observer: &mut dyn FnMut(u64)) -> io::Result<StudyReport> {
        let archive_dir = self.archive_dir();
        let ckpt_dir = self.checkpoint_dir();
        std::fs::create_dir_all(&ckpt_dir)?;
        let fp = self.fingerprint();
        let scenario = self.cfg.scenario();
        let window_end = SimTime::at(self.cfg.window_days, 0, 0);

        // Restore-or-cold-start the four pipeline stages.
        let restored = if resume {
            latest_valid_checkpoint(&ckpt_dir, fp)?
                .and_then(|c| decode_body(&c.body).map(|(extras, sim)| (c.tick, extras, sim)))
        } else {
            None
        };
        let mut last_checkpoint: Option<u64> = None;
        let (mut sim, mut state, mut writer, mut core, mut acc, mut uplink) = match restored {
            Some((tick, extras, simckpt)) => {
                let (sim, state) =
                    OverlaySim::resume(scenario.clone(), self.cfg.sim.clone(), &simckpt);
                let db = sim.isp_database().clone();
                let writer = ArchiveWriter::resume(&archive_dir, self.dcfg.archive, extras.cursor)?;
                let mut core = GatewayCore::new(window_end, self.cfg.faults.server_outages.clone());
                let mut acc = Accumulator::new(&self.cfg, db);
                // Rebuild the dedup set and the streaming analysis by
                // replaying the archive prefix this checkpoint covers:
                // archive order is admission order is live ingest
                // order, so the accumulator lands bit-exact.
                magellan_trace::archive::read_archive_limit(&archive_dir, extras.cursor, |r| {
                    core.mark_seen(&r);
                    acc.ingest(r);
                })?;
                core.restore_stats(extras.server);
                let uplink = ReportUplink::restore(UPLINK_CAPACITY, extras.queue, extras.uplink);
                last_checkpoint = Some(tick);
                (sim, state, writer, core, acc, uplink)
            }
            None => {
                let mut sim = OverlaySim::new(scenario.clone(), self.cfg.sim.clone());
                let db = sim.isp_database().clone();
                let writer = ArchiveWriter::create(&archive_dir, self.dcfg.archive)?;
                let core = GatewayCore::new(window_end, self.cfg.faults.server_outages.clone());
                let acc = Accumulator::new(&self.cfg, db);
                let state = sim.begin();
                (
                    sim,
                    state,
                    writer,
                    core,
                    acc,
                    ReportUplink::new(UPLINK_CAPACITY),
                )
            }
        };

        let every = self.dcfg.checkpoint_every_ticks.max(1);
        let mut io_error: Option<io::Error> = None;
        loop {
            let tick = state.next_tick();
            if tick > 0 && tick % every == 0 && last_checkpoint != Some(tick) {
                writer.sync()?;
                let extras = Extras {
                    cursor: writer.records_written(),
                    server: core.stats(),
                    uplink: uplink.stats(),
                    queue: uplink.queued().cloned().collect(),
                };
                let body = encode_body(&extras, &sim.capture(&state).encode());
                write_checkpoint(&ckpt_dir, fp, tick, &body)?;
                prune_checkpoints(&ckpt_dir, self.dcfg.keep_checkpoints.max(1))?;
                last_checkpoint = Some(tick);
            }
            observer(tick);
            let mut gw = ArchiveGateway {
                core: &mut core,
                writer: &mut writer,
                acc: &mut acc,
                io_error: &mut io_error,
            };
            let more = sim
                .tick_once(&mut state, &mut |r: PeerReport| {
                    let now = r.time;
                    uplink.send_via(r, now, &mut gw);
                })
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            if let Some(e) = io_error.take() {
                return Err(e);
            }
            if !more {
                break;
            }
        }

        // The collector keeps listening past the window: drain what
        // the last outage left buffered, then seal the archive.
        let mut gw = ArchiveGateway {
            core: &mut core,
            writer: &mut writer,
            acc: &mut acc,
            io_error: &mut io_error,
        };
        uplink.flush_via(window_end, &mut gw);
        if let Some(e) = io_error.take() {
            return Err(e);
        }
        writer.finish()?;

        let mut report = acc.finish();
        report.sim = *state.summary();
        report.collection = Some(core.stats());
        // Live and resumed runs both leave `recovery` unset so an
        // interrupted study renders identically to an uninterrupted
        // one; only archive replay reports recovery.
        report.recovery = None;
        Ok(report)
    }

    /// Replays the run directory's archive through the streaming
    /// analysis — the offline path a measurement group works in, and
    /// the one that tolerates damage. The returned report carries the
    /// [`magellan_trace::RecoveryReport`] describing every region
    /// recovery had to skip.
    ///
    /// # Errors
    ///
    /// Archive I/O failure (a damaged archive is *not* an error —
    /// damage is quantified in the recovery report).
    pub fn analyze_archive(&self) -> io::Result<StudyReport> {
        let db = magellan_netsim::IspDatabase::synthetic(self.cfg.sim.isp_shares);
        let mut acc = Accumulator::new(&self.cfg, db);
        let recovery = magellan_trace::archive::read_archive(&self.archive_dir(), |r| {
            acc.ingest(r);
        })?;
        let mut report = acc.finish();
        report.recovery = Some(recovery);
        // Archives written by the networked `magellan-traced` service
        // leave an INGEST sidecar with the service-side accounting;
        // fold it in so replay surfaces shed/lost datagrams.
        report.ingest = magellan_trace::service::read_ingest_stats(&self.archive_dir())?;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::MagellanStudy;
    use magellan_netsim::SimDuration;

    fn quick_config(seed: u64) -> StudyConfig {
        StudyConfig {
            seed,
            scale: 0.0008,
            window_days: 1,
            sample_every: SimDuration::from_hours(2),
            degree_captures: vec![("9am".into(), SimTime::at(0, 9, 0))],
            min_graph_nodes: 10,
            ..StudyConfig::default()
        }
    }

    fn durable_config() -> DurableConfig {
        DurableConfig {
            archive: ArchiveConfig {
                segment_bytes: 16 * 1024,
            },
            checkpoint_every_ticks: 64,
            keep_checkpoints: 2,
        }
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("magellan-durable-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn archive_bytes(dir: &std::path::Path) -> Vec<(String, Vec<u8>)> {
        let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
            .unwrap()
            .map(|e| {
                let e = e.unwrap();
                (
                    e.file_name().to_string_lossy().into_owned(),
                    std::fs::read(e.path()).unwrap(),
                )
            })
            .collect();
        files.sort();
        files
    }

    #[test]
    fn durable_run_matches_in_memory_study() {
        let dir = tempdir("match");
        let cfg = quick_config(42);
        let report = DurableStudy::new(&dir, cfg.clone(), durable_config())
            .run()
            .unwrap();
        let baseline = MagellanStudy::new(cfg).run();
        // No outages: every report is admitted in emission order, so
        // the analysis sees the exact stream the in-memory study saw.
        assert_eq!(report.fig1a.total.points, baseline.fig1a.total.points);
        assert_eq!(report.fig5.indegree.points, baseline.fig5.indegree.points);
        assert_eq!(report.fig8.all.points, baseline.fig8.all.points);
        assert_eq!(report.sim, baseline.sim);
        let cs = report.collection.unwrap();
        assert!(cs.accepted > 0, "archive stored nothing");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interrupted_run_resumes_byte_identically() {
        let clean_dir = tempdir("clean");
        let cfg = quick_config(43);
        let study_clean = DurableStudy::new(&clean_dir, cfg.clone(), durable_config());
        let clean_report = study_clean.run().unwrap();

        let int_dir = tempdir("interrupted");
        let study_int = DurableStudy::new(&int_dir, cfg, durable_config());
        // Stop mid-run past a checkpoint boundary by erroring out of
        // the observer path: simulate a crash by unwinding.
        let stop_at = 100u64;
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            study_int
                .run_observed(|tick| assert!(tick < stop_at, "simulated crash"))
                .unwrap()
        }));
        assert!(r.is_err(), "run should have been interrupted");
        let resumed_report = study_int.resume().unwrap();

        assert_eq!(
            format!("{resumed_report:?}"),
            format!("{clean_report:?}"),
            "resumed report diverged"
        );
        assert_eq!(
            archive_bytes(&study_int.archive_dir()),
            archive_bytes(&study_clean.archive_dir()),
            "resumed archive diverged"
        );
        assert_eq!(resumed_report.render_text(), clean_report.render_text());
        std::fs::remove_dir_all(&clean_dir).unwrap();
        std::fs::remove_dir_all(&int_dir).unwrap();
    }

    #[test]
    fn resume_without_checkpoint_cold_starts() {
        let dir = tempdir("cold");
        let cfg = quick_config(44);
        let study = DurableStudy::new(&dir, cfg.clone(), durable_config());
        let resumed = study.resume().unwrap();
        let baseline = MagellanStudy::new(cfg).run();
        assert_eq!(resumed.fig1a.total.points, baseline.fig1a.total.points);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn archive_replay_matches_live_report_and_is_clean() {
        let dir = tempdir("replay");
        let cfg = quick_config(45);
        let study = DurableStudy::new(&dir, cfg, durable_config());
        let live = study.run().unwrap();
        let replayed = study.analyze_archive().unwrap();
        let rc = replayed.recovery.clone().unwrap();
        assert!(rc.is_clean(), "clean archive reported damage: {rc:?}");
        assert_eq!(
            rc.records_recovered,
            live.collection.unwrap().accepted,
            "replay recovered a different record count than were admitted"
        );
        assert_eq!(replayed.fig1a.total.points, live.fig1a.total.points);
        assert_eq!(replayed.fig8.all.points, live.fig8.all.points);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_archive_loses_only_damaged_frames() {
        let dir = tempdir("corrupt");
        let cfg = quick_config(46);
        let study = DurableStudy::new(&dir, cfg, durable_config());
        let live = study.run().unwrap();
        // Flip a byte in the middle of the first sealed segment.
        let seg = std::fs::read_dir(study.archive_dir())
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| {
                p.file_name()
                    .map(|n| n.to_string_lossy().starts_with("seg-"))
                    .unwrap_or(false)
            })
            .min()
            .expect("a sealed segment exists");
        let mut bytes = std::fs::read(&seg).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&seg, bytes).unwrap();

        let replayed = study.analyze_archive().unwrap();
        let rc = replayed.recovery.clone().unwrap();
        assert!(rc.corrupt_regions >= 1, "damage not reported: {rc:?}");
        assert!(rc.bytes_quarantined > 0);
        let lost = live.collection.unwrap().accepted - rc.records_recovered;
        assert!(
            (1..=8).contains(&lost),
            "corruption should cost a handful of frames, lost {lost}"
        );
        let text = replayed.render_text();
        assert!(
            text.contains("corrupt regions"),
            "recovery line missing from report text"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_body_round_trips() {
        let extras = Extras {
            cursor: 7,
            server: ServerStats {
                accepted: 1,
                rejected: 2,
                unavailable: 3,
                duplicates: 4,
            },
            uplink: UplinkStats {
                offered: 5,
                delivered: 6,
                retransmitted: 7,
                dropped_overflow: 8,
                rejected: 9,
                attempts: 10,
                backoff_capped: 11,
                dropped_permanent: 12,
            },
            queue: vec![],
        };
        // A real simulator body from a tiny run.
        let cfg = quick_config(47);
        let scenario = cfg.scenario();
        let mut sim = OverlaySim::new(scenario, cfg.sim.clone());
        let state = sim.begin();
        let sim_body = sim.capture(&state).encode();
        let body = encode_body(&extras, &sim_body);
        let (back, simckpt) = decode_body(&body).expect("round trip");
        assert_eq!(back.cursor, 7);
        assert_eq!(back.server.duplicates, 4);
        assert_eq!(back.uplink.rejected, 9);
        assert!(back.queue.is_empty());
        assert_eq!(simckpt.encode(), sim_body);
        // Truncations never panic and never decode.
        for cut in [0, 4, 11, 40, body.len() - 1] {
            assert!(decode_body(&body[..cut]).is_none(), "cut {cut} decoded");
        }
    }
}
