//! Property tests over the underlay models: ordering invariants of
//! the event queue, totality of the ISP database, bounds of the
//! distribution helpers.

use magellan_netsim::rng::{exponential, lognormal_median, normal_with, weighted_index, ZipfTable};
use magellan_netsim::{
    CapacityModel, EventQueue, Isp, IspDatabase, IspShares, LinkModel, PeerAddr, RngFactory,
    SimDuration, SimTime,
};
use proptest::prelude::*;
use rand::SeedableRng;

proptest! {
    #[test]
    fn event_queue_pops_sorted_and_fifo(events in proptest::collection::vec((0u64..10_000, any::<u32>()), 0..200)) {
        let mut q = EventQueue::new();
        for (i, &(t, payload)) in events.iter().enumerate() {
            q.push(SimTime::from_millis(t), (payload, i));
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, (_, seq))) = q.pop() {
            if let Some((lt, lseq)) = last {
                prop_assert!(t >= lt, "time went backwards");
                if t == lt {
                    prop_assert!(seq > lseq, "FIFO violated within an instant");
                }
            }
            last = Some((t, seq));
        }
        prop_assert!(q.is_empty());
    }

    #[test]
    fn isp_lookup_is_total(ip in any::<u32>()) {
        let db = IspDatabase::default();
        // Any address maps to exactly one ISP without panicking.
        let isp = db.lookup(PeerAddr::from_u32(ip));
        prop_assert!(Isp::ALL.contains(&isp));
    }

    #[test]
    fn isp_ranges_and_lookup_agree(seed in any::<u64>()) {
        let db = IspDatabase::default();
        let mut rng = RngFactory::new(seed).fork("prop");
        let mut alloc = db.allocator();
        for isp in Isp::ALL {
            let addr = alloc.alloc_in(&mut rng, isp);
            prop_assert_eq!(db.lookup(addr), isp);
        }
    }

    #[test]
    fn link_samples_are_positive_and_finite(seed in any::<u64>()) {
        let model = LinkModel::default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for a in Isp::ALL {
            for b in Isp::ALL {
                let q = model.sample(&mut rng, a, b);
                prop_assert!(q.rtt_ms > 0.0 && q.rtt_ms.is_finite());
                prop_assert!(q.bandwidth_kbps > 0.0 && q.bandwidth_kbps.is_finite());
            }
        }
    }

    #[test]
    fn capacity_samples_are_positive(seed in any::<u64>()) {
        let model = CapacityModel::default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for isp in Isp::ALL {
            let c = model.sample(&mut rng, isp);
            prop_assert!(c.down_kbps > 0.0);
            prop_assert!(c.up_kbps > 0.0);
        }
    }

    #[test]
    fn zipf_samples_stay_in_range(n in 1usize..200, s in 0.0f64..3.0, seed in any::<u64>()) {
        let table = ZipfTable::new(n, s);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            let k = table.sample(&mut rng);
            prop_assert!((1..=n).contains(&k));
        }
    }

    #[test]
    fn zipf_pmf_is_normalized(n in 1usize..100, s in 0.0f64..3.0) {
        let table = ZipfTable::new(n, s);
        let sum: f64 = (1..=n).map(|k| table.probability(k)).sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_index_only_picks_positive_weights(
        weights in proptest::collection::vec(0.0f64..10.0, 1..20),
        seed in any::<u64>(),
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let i = weighted_index(&mut rng, &weights);
            prop_assert!(weights[i] > 0.0, "picked a zero-weight index");
        }
    }

    #[test]
    fn distribution_helpers_are_finite(seed in any::<u64>(), median in 0.1f64..1e4, sigma in 0.0f64..2.0, rate in 0.01f64..100.0) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        prop_assert!(normal_with(&mut rng, 0.0, sigma).is_finite());
        let ln = lognormal_median(&mut rng, median, sigma);
        prop_assert!(ln > 0.0 && ln.is_finite());
        let e = exponential(&mut rng, rate);
        prop_assert!(e >= 0.0 && e.is_finite());
    }

    #[test]
    fn shares_normalize_for_any_positive_weights(weights in proptest::collection::vec(0.01f64..100.0, 7)) {
        let shares = IspShares { weights: [weights[0], weights[1], weights[2], weights[3], weights[4], weights[5], weights[6]] };
        let sum: f64 = shares.normalized().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        // The synthetic database still covers every ISP.
        let db = IspDatabase::synthetic(shares);
        for isp in Isp::ALL {
            prop_assert!(!db.ranges_of(isp).is_empty(), "{isp} lost its ranges");
        }
    }

    #[test]
    fn sim_time_arithmetic_is_consistent(a in 0u64..1_000_000, d in 0u64..1_000_000) {
        let t = SimTime::from_millis(a);
        let dur = SimDuration::from_millis(d);
        let later = t + dur;
        prop_assert_eq!(later.since(t), dur);
        prop_assert_eq!(later - dur, t);
    }
}
