//! Path quality between peers: RTT and per-connection throughput
//! ceilings.
//!
//! The paper explains ISP-level clustering by one observation:
//! "connections between peers in the same ISPs have generally higher
//! throughput and smaller delay than those across ISPs" (§4.2.3). In
//! 2006 mainland China this was driven by congested inter-carrier
//! peering (notably Telecom↔Netcom). The model therefore draws, per
//! directed connection, a lognormal RTT and a lognormal path
//! throughput ceiling whose medians depend only on the {intra-ISP,
//! inter-ISP-within-China, cross-border} class of the path. The
//! overlay's peer selection never sees ISP labels — only these sampled
//! qualities — so any ISP clustering in the resulting topology is
//! emergent, as in the real system.

use crate::isp::Isp;
use crate::rng::lognormal_median;
use serde::{Deserialize, Serialize};

/// The three path classes the model distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PathClass {
    /// Both endpoints in the same ISP.
    IntraIsp,
    /// Different ISPs, both in mainland China.
    InterChina,
    /// At least one endpoint overseas.
    CrossBorder,
}

/// Classifies the path between two ISPs.
pub fn path_class(a: Isp, b: Isp) -> PathClass {
    if a == b {
        // Two overseas peers share the catch-all label but are not in
        // one network; treat them as cross-border unless in China.
        if a.is_china() {
            PathClass::IntraIsp
        } else {
            PathClass::CrossBorder
        }
    } else if a.is_china() && b.is_china() {
        PathClass::InterChina
    } else {
        PathClass::CrossBorder
    }
}

/// Sampled quality of one directed connection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkQuality {
    /// Round-trip time in milliseconds.
    pub rtt_ms: f64,
    /// Path throughput ceiling in Kbps (independent of either
    /// endpoint's access capacity).
    pub bandwidth_kbps: f64,
}

/// Median RTT / throughput per path class plus jitter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkModel {
    /// Median RTT (ms) for intra-ISP paths.
    pub intra_rtt_ms: f64,
    /// Median RTT (ms) for inter-ISP paths within China.
    pub inter_china_rtt_ms: f64,
    /// Median RTT (ms) for cross-border paths.
    pub cross_border_rtt_ms: f64,
    /// Median throughput ceiling (Kbps) for intra-ISP paths.
    pub intra_bw_kbps: f64,
    /// Median throughput ceiling (Kbps) for inter-ISP paths within
    /// China (congested peering).
    pub inter_china_bw_kbps: f64,
    /// Median throughput ceiling (Kbps) for cross-border paths.
    pub cross_border_bw_kbps: f64,
    /// Lognormal sigma for RTT draws.
    pub rtt_sigma: f64,
    /// Lognormal sigma for throughput draws.
    pub bw_sigma: f64,
}

impl Default for LinkModel {
    fn default() -> Self {
        LinkModel {
            intra_rtt_ms: 25.0,
            inter_china_rtt_ms: 90.0,
            cross_border_rtt_ms: 230.0,
            intra_bw_kbps: 1_500.0,
            inter_china_bw_kbps: 400.0,
            cross_border_bw_kbps: 180.0,
            rtt_sigma: 0.35,
            bw_sigma: 0.45,
        }
    }
}

impl LinkModel {
    /// A degenerate model where path class makes no difference —
    /// used by the `ablation_selection` bench to show that ISP
    /// clustering disappears without an underlay quality gradient.
    pub fn uniform(rtt_ms: f64, bw_kbps: f64) -> Self {
        LinkModel {
            intra_rtt_ms: rtt_ms,
            inter_china_rtt_ms: rtt_ms,
            cross_border_rtt_ms: rtt_ms,
            intra_bw_kbps: bw_kbps,
            inter_china_bw_kbps: bw_kbps,
            cross_border_bw_kbps: bw_kbps,
            rtt_sigma: 0.35,
            bw_sigma: 0.45,
        }
    }

    /// The median `(rtt_ms, bw_kbps)` for a path class.
    pub fn medians(&self, class: PathClass) -> (f64, f64) {
        match class {
            PathClass::IntraIsp => (self.intra_rtt_ms, self.intra_bw_kbps),
            PathClass::InterChina => (self.inter_china_rtt_ms, self.inter_china_bw_kbps),
            PathClass::CrossBorder => (self.cross_border_rtt_ms, self.cross_border_bw_kbps),
        }
    }

    /// Samples the quality of a connection between ISPs `a` and `b`.
    pub fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R, a: Isp, b: Isp) -> LinkQuality {
        let class = path_class(a, b);
        let (rtt_med, bw_med) = self.medians(class);
        LinkQuality {
            rtt_ms: lognormal_median(rng, rtt_med, self.rtt_sigma),
            bandwidth_kbps: lognormal_median(rng, bw_med, self.bw_sigma),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::RngFactory;

    #[test]
    fn path_classification() {
        assert_eq!(path_class(Isp::Telecom, Isp::Telecom), PathClass::IntraIsp);
        assert_eq!(path_class(Isp::Telecom, Isp::Netcom), PathClass::InterChina);
        assert_eq!(
            path_class(Isp::Telecom, Isp::Oversea),
            PathClass::CrossBorder
        );
        // Two "Oversea" peers share a label, not a network.
        assert_eq!(
            path_class(Isp::Oversea, Isp::Oversea),
            PathClass::CrossBorder
        );
    }

    #[test]
    fn intra_isp_is_systematically_better() {
        let model = LinkModel::default();
        let mut rng = RngFactory::new(1).fork("link");
        let n = 5_000;
        let mean = |a: Isp, b: Isp, rng: &mut rand::rngs::StdRng| {
            let mut rtt = 0.0;
            let mut bw = 0.0;
            for _ in 0..n {
                let q = model.sample(rng, a, b);
                rtt += q.rtt_ms;
                bw += q.bandwidth_kbps;
            }
            (rtt / n as f64, bw / n as f64)
        };
        let (rtt_intra, bw_intra) = mean(Isp::Netcom, Isp::Netcom, &mut rng);
        let (rtt_inter, bw_inter) = mean(Isp::Netcom, Isp::Telecom, &mut rng);
        let (rtt_cross, bw_cross) = mean(Isp::Netcom, Isp::Oversea, &mut rng);
        assert!(rtt_intra < rtt_inter && rtt_inter < rtt_cross);
        assert!(bw_intra > bw_inter && bw_inter > bw_cross);
    }

    #[test]
    fn uniform_model_erases_the_gradient() {
        let model = LinkModel::uniform(50.0, 800.0);
        for class in [
            PathClass::IntraIsp,
            PathClass::InterChina,
            PathClass::CrossBorder,
        ] {
            assert_eq!(model.medians(class), (50.0, 800.0));
        }
    }

    #[test]
    fn samples_are_positive() {
        let model = LinkModel::default();
        let mut rng = RngFactory::new(2).fork("pos");
        for _ in 0..1_000 {
            let q = model.sample(&mut rng, Isp::Unicom, Isp::Tietong);
            assert!(q.rtt_ms > 0.0);
            assert!(q.bandwidth_kbps > 0.0);
        }
    }

    #[test]
    fn sampling_deterministic_per_seed() {
        let model = LinkModel::default();
        let a = model.sample(&mut RngFactory::new(3).fork("d"), Isp::Edu, Isp::Edu);
        let b = model.sample(&mut RngFactory::new(3).fork("d"), Isp::Edu, Isp::Edu);
        assert_eq!(a, b);
    }
}
