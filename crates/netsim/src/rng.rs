//! Seeded, forkable randomness and the distributions the underlay and
//! workload models draw from.
//!
//! Every stochastic component of the simulation takes its randomness
//! from an [`RngFactory`] fork, keyed by a stream label, so that the
//! whole experiment is a pure function of one `u64` seed — adding a
//! new consumer of randomness does not perturb the draws of existing
//! ones.
//!
//! The distribution helpers (normal via Box–Muller, lognormal,
//! exponential, bounded Zipf) are implemented here directly on
//! [`rand::Rng`] streams: the reproduction's dependency policy allows
//! `rand` but not `rand_distr`.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Derives independent RNG streams from a single experiment seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RngFactory {
    seed: u64,
}

impl RngFactory {
    /// Creates a factory for `seed`.
    pub fn new(seed: u64) -> Self {
        RngFactory { seed }
    }

    /// The experiment seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Forks a deterministic stream for `label`. Streams with
    /// different labels are statistically independent; the same label
    /// always yields the same stream.
    pub fn fork(&self, label: &str) -> StdRng {
        StdRng::seed_from_u64(self.seed ^ splitmix(fnv1a(label)))
    }

    /// Forks a stream for a numbered entity (e.g. one per peer).
    pub fn fork_indexed(&self, label: &str, index: u64) -> StdRng {
        StdRng::seed_from_u64(self.seed ^ splitmix(fnv1a(label) ^ splitmix(index)))
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A standard-normal draw (Box–Muller).
pub fn normal<R: rand::Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.random_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        if z.is_finite() {
            return z;
        }
    }
}

/// A normal draw with the given mean and standard deviation.
///
/// # Panics
///
/// Panics if `std_dev` is negative.
pub fn normal_with<R: rand::Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    assert!(std_dev >= 0.0, "standard deviation must be non-negative");
    mean + std_dev * normal(rng)
}

/// A lognormal draw: `exp(N(mu, sigma))`.
///
/// `mu` and `sigma` parameterize the *underlying* normal; the median
/// of the result is `exp(mu)`.
pub fn lognormal<R: rand::Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal_with(rng, mu, sigma).exp()
}

/// Lognormal parameterized by its median and the sigma of the
/// underlying normal — the form the underlay models use.
pub fn lognormal_median<R: rand::Rng + ?Sized>(rng: &mut R, median: f64, sigma: f64) -> f64 {
    assert!(median > 0.0, "median must be positive");
    lognormal(rng, median.ln(), sigma)
}

/// An exponential draw with the given rate (mean `1/rate`).
///
/// # Panics
///
/// Panics if `rate` is not strictly positive.
pub fn exponential<R: rand::Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0, "rate must be positive");
    let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / rate
}

/// A bounded Zipf draw over `1..=n` with exponent `s`, via inverted
/// CDF on precomputed weights. For repeated draws prefer
/// [`ZipfTable`].
pub fn zipf<R: rand::Rng + ?Sized>(rng: &mut R, n: usize, s: f64) -> usize {
    ZipfTable::new(n, s).sample(rng)
}

/// Precomputed bounded Zipf distribution over ranks `1..=n`.
#[derive(Debug, Clone)]
pub struct ZipfTable {
    cdf: Vec<f64>,
}

impl ZipfTable {
    /// Builds the table for `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        ZipfTable { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the table is empty (never true: `new` requires n > 0).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Probability of rank `k` (1-based).
    pub fn probability(&self, k: usize) -> f64 {
        assert!(k >= 1 && k <= self.cdf.len(), "rank out of range");
        if k == 1 {
            self.cdf[0]
        } else {
            self.cdf[k - 1] - self.cdf[k - 2]
        }
    }

    /// Draws a rank in `1..=n`.
    pub fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random_range(0.0..1.0);
        // `u` falls in rank i+1 when cdf[i-1] <= u < cdf[i].
        let i = match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i + 1, // exact boundary hit: next rank up
            Err(i) => i,
        };
        (i + 1).min(self.cdf.len())
    }
}

/// Draws an index from a slice of non-negative weights.
///
/// # Panics
///
/// Panics if the weights are empty or all zero.
pub fn weighted_index<R: rand::Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    weighted_index_iter(rng, weights.iter().sum(), weights.iter().copied())
}

/// Allocation-free core of [`weighted_index`]: draws against the
/// pre-summed `total` and walks `weights` once, so hot-path callers
/// can sample straight off their own storage without materializing a
/// scratch slice. The single `random_range` call consumes the RNG
/// exactly like the slice wrapper, keeping seeded streams identical.
///
/// # Panics
///
/// Panics if `total` is not positive.
pub fn weighted_index_iter<R, I>(rng: &mut R, total: f64, weights: I) -> usize
where
    R: rand::Rng + ?Sized,
    I: IntoIterator<Item = f64>,
{
    assert!(total > 0.0, "weights must not be all zero");
    let mut u: f64 = rng.random_range(0.0..total);
    let mut last = 0;
    for (i, w) in weights.into_iter().enumerate() {
        if u < w {
            return i;
        }
        u -= w;
        last = i;
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn forks_are_deterministic_and_distinct() {
        let f = RngFactory::new(42);
        let a: u64 = f.fork("arrivals").random_range(0..u64::MAX);
        let a2: u64 = f.fork("arrivals").random_range(0..u64::MAX);
        let b: u64 = f.fork("sessions").random_range(0..u64::MAX);
        assert_eq!(a, a2);
        assert_ne!(a, b);
    }

    #[test]
    fn indexed_forks_differ_by_index() {
        let f = RngFactory::new(7);
        let x: u64 = f.fork_indexed("peer", 1).random_range(0..u64::MAX);
        let y: u64 = f.fork_indexed("peer", 2).random_range(0..u64::MAX);
        assert_ne!(x, y);
    }

    #[test]
    fn different_seeds_differ() {
        let a: u64 = RngFactory::new(1).fork("x").random_range(0..u64::MAX);
        let b: u64 = RngFactory::new(2).fork("x").random_range(0..u64::MAX);
        assert_ne!(a, b);
    }

    #[test]
    fn normal_moments() {
        let mut rng = RngFactory::new(3).fork("normal");
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.03, "var = {var}");
    }

    #[test]
    fn lognormal_median_is_respected() {
        let mut rng = RngFactory::new(5).fork("lognormal");
        let mut samples: Vec<f64> = (0..50_001)
            .map(|_| lognormal_median(&mut rng, 30.0, 0.5))
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[25_000];
        assert!((median - 30.0).abs() < 1.5, "median = {median}");
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn exponential_mean() {
        let mut rng = RngFactory::new(9).fork("exp");
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| exponential(&mut rng, 0.5)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean = {mean}");
    }

    #[test]
    #[should_panic(expected = "rate")]
    fn exponential_rejects_zero_rate() {
        let mut rng = RngFactory::new(0).fork("exp");
        let _ = exponential(&mut rng, 0.0);
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let table = ZipfTable::new(100, 1.2);
        let mut rng = RngFactory::new(11).fork("zipf");
        let n = 50_000;
        let ones = (0..n).filter(|_| table.sample(&mut rng) == 1).count();
        let expect = table.probability(1);
        let got = ones as f64 / n as f64;
        assert!((got - expect).abs() < 0.02, "got {got}, expect {expect}");
    }

    #[test]
    fn zipf_probabilities_sum_to_one() {
        let table = ZipfTable::new(50, 0.8);
        let sum: f64 = (1..=50).map(|k| table.probability(k)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_samples_in_range() {
        let table = ZipfTable::new(10, 1.0);
        let mut rng = RngFactory::new(13).fork("zipf2");
        for _ in 0..10_000 {
            let k = table.sample(&mut rng);
            assert!((1..=10).contains(&k));
        }
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let table = ZipfTable::new(4, 0.0);
        for k in 1..=4 {
            assert!((table.probability(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = RngFactory::new(17).fork("weights");
        let weights = [0.0, 3.0, 1.0];
        let n = 40_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[weighted_index(&mut rng, &weights)] += 1;
        }
        assert_eq!(counts[0], 0);
        let frac1 = counts[1] as f64 / n as f64;
        assert!((frac1 - 0.75).abs() < 0.02, "frac = {frac1}");
    }

    #[test]
    #[should_panic(expected = "weights")]
    fn weighted_index_rejects_all_zero() {
        let mut rng = RngFactory::new(0).fork("w");
        let _ = weighted_index(&mut rng, &[0.0, 0.0]);
    }
}
