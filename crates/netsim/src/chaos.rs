//! Deterministic transport-chaos schedules for the ingest drills.
//!
//! The `tracetool nemesis` proxy sits between `magellan-traced drive`
//! and `serve` and injects transport hostility — latency, partial and
//! coalesced writes, byte flips, duplicates, reorders, connection
//! resets, half-open stalls, mid-stream kills. *What* it injects and
//! *when* is decided here, in pure seeded arithmetic: a
//! [`FlowSchedule`] is a function of `(seed, flow index)` alone, so
//! the same seed reproduces the same hostility byte for byte — a
//! failing chaos drill is a replayable artifact, not an anecdote.
//!
//! The module is sans-I/O by construction (no sockets, no clocks, no
//! threads): the proxy shell asks [`FlowSchedule::next_action`] what
//! to do with each chunk or datagram and performs the corresponding
//! socket mischief itself.

use crate::rng::RngFactory;
use rand::rngs::StdRng;
use rand::RngExt;

/// Per-event injection probabilities (parts per mille of transport
/// events — one chunk read on a stream, one datagram on UDP) plus the
/// magnitudes the injected faults use. Probabilities are evaluated in
/// a fixed severity order (see [`FlowSchedule::next_action`]); they
/// should sum to at most 1000, the remainder being clean delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosProfile {
    /// Probability of delaying a chunk, per mille.
    pub delay_pm: u16,
    /// Maximum injected delay in milliseconds (uniform in
    /// `1..=delay_max_ms`).
    pub delay_max_ms: u16,
    /// Probability of splitting a chunk into two partial writes.
    pub split_pm: u16,
    /// Probability of withholding a chunk to coalesce with the next.
    pub coalesce_pm: u16,
    /// Probability of flipping one bit of the chunk (corruption).
    pub flip_pm: u16,
    /// Probability of delivering a datagram twice (datagram flows).
    pub duplicate_pm: u16,
    /// Probability of holding a datagram back one slot (reorder).
    pub reorder_pm: u16,
    /// Probability of dropping a datagram outright (datagram flows).
    pub drop_pm: u16,
    /// Probability of resetting the connection, discarding the chunk.
    pub reset_pm: u16,
    /// Probability of a half-open stall before delivery (slowloris).
    pub stall_pm: u16,
    /// Stall duration in milliseconds.
    pub stall_ms: u16,
    /// Probability of killing the connection *after* delivering the
    /// chunk — the peer sees a clean-looking EOF mid-conversation.
    pub kill_pm: u16,
}

impl ChaosProfile {
    /// No injected hostility: every event delivers cleanly.
    pub fn off() -> Self {
        ChaosProfile {
            delay_pm: 0,
            delay_max_ms: 0,
            split_pm: 0,
            coalesce_pm: 0,
            flip_pm: 0,
            duplicate_pm: 0,
            reorder_pm: 0,
            drop_pm: 0,
            reset_pm: 0,
            stall_pm: 0,
            stall_ms: 0,
            kill_pm: 0,
        }
    }

    /// The TCP chaos drill: pacing hostility (latency, fragmentation,
    /// coalescing, stalls) plus connection death (resets, kills), but
    /// no corruption — a framed byte stream that survives this must
    /// deliver exactly the clean run's reports, so the drill can
    /// assert replay equality, with resets costing only reconnects.
    pub fn tcp_drill() -> Self {
        ChaosProfile {
            delay_pm: 40,
            delay_max_ms: 2,
            split_pm: 150,
            coalesce_pm: 100,
            stall_pm: 4,
            stall_ms: 25,
            reset_pm: 2,
            kill_pm: 1,
            ..ChaosProfile::off()
        }
    }

    /// The UDP chaos drill: everything a datagram network does —
    /// loss, duplication, reordering, corruption, latency. Delivery
    /// is not guaranteed, so the drill asserts balanced books (every
    /// loss attributed), not replay equality.
    pub fn udp_drill() -> Self {
        ChaosProfile {
            delay_pm: 40,
            delay_max_ms: 2,
            drop_pm: 80,
            duplicate_pm: 60,
            reorder_pm: 60,
            flip_pm: 40,
            ..ChaosProfile::off()
        }
    }
}

/// Whether a flow carries a byte stream or discrete datagrams.
///
/// Streams have no datagram boundaries to drop, duplicate, or
/// reorder — those faults would be framing corruption, not network
/// behavior — so a stream schedule never yields them and their
/// probability mass falls through to clean delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowKind {
    /// A TCP byte stream (chunk-granularity events).
    Stream,
    /// A UDP flow (datagram-granularity events).
    Datagram,
}

/// One scheduled fault decision for one transport event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// Deliver the chunk unmodified.
    Deliver,
    /// Sleep `ms`, then deliver.
    Delay {
        /// Injected latency in milliseconds.
        ms: u16,
    },
    /// Write the chunk as two partial writes, split at `at_pm`
    /// per-mille of its length (clamped to a non-empty prefix).
    SplitAt {
        /// Split point, per mille of the chunk length.
        at_pm: u16,
    },
    /// Withhold the chunk and prepend it to the next delivery.
    Coalesce,
    /// Flip bit `bit` of the byte at `offset` modulo the chunk
    /// length, then deliver the corrupted chunk.
    FlipBit {
        /// Byte offset before reduction modulo chunk length.
        offset: u32,
        /// Bit index, `0..8`.
        bit: u8,
    },
    /// Deliver the datagram twice.
    Duplicate,
    /// Hold the datagram back and deliver it after the next one.
    Reorder,
    /// Drop the datagram; deliver nothing.
    Drop,
    /// Abort the connection now; the chunk dies with it.
    Reset,
    /// Half-open stall: hold the chunk for `ms` with the connection
    /// open and silent, then deliver (slowloris pressure).
    Stall {
        /// Stall duration in milliseconds.
        ms: u16,
    },
    /// Deliver the chunk, then kill the connection.
    Kill,
}

/// The seeded fault schedule of one proxied flow.
///
/// Deterministic: the action sequence is a pure function of
/// `(seed, flow, kind, profile)`. Flows fork independent RNG streams
/// ([`RngFactory::fork_indexed`]), so adding a flow never perturbs
/// the schedule of another.
#[derive(Debug)]
pub struct FlowSchedule {
    kind: FlowKind,
    profile: ChaosProfile,
    rng: StdRng,
}

impl FlowSchedule {
    /// The schedule of flow number `flow` under `seed`.
    pub fn new(seed: u64, flow: u64, kind: FlowKind, profile: ChaosProfile) -> Self {
        FlowSchedule {
            kind,
            profile,
            rng: RngFactory::new(seed).fork_indexed("chaos-flow", flow),
        }
    }

    /// Decides the fate of the next transport event. Faults are
    /// tested in fixed severity order — kill, reset, stall, drop,
    /// duplicate, reorder, flip, coalesce, split, delay — and the
    /// remaining probability mass delivers cleanly.
    pub fn next_action(&mut self) -> ChaosAction {
        let p = self.profile;
        let datagram = self.kind == FlowKind::Datagram;
        let roll: u16 = self.rng.random_range(0..1000);
        let mut edge = 0u16;
        let mut hit = |pm: u16| {
            edge = edge.saturating_add(pm);
            roll < edge
        };
        if hit(p.kill_pm) {
            return ChaosAction::Kill;
        }
        if hit(p.reset_pm) {
            return ChaosAction::Reset;
        }
        if hit(p.stall_pm) {
            return ChaosAction::Stall { ms: p.stall_ms };
        }
        if hit(if datagram { p.drop_pm } else { 0 }) {
            return ChaosAction::Drop;
        }
        if hit(if datagram { p.duplicate_pm } else { 0 }) {
            return ChaosAction::Duplicate;
        }
        if hit(if datagram { p.reorder_pm } else { 0 }) {
            return ChaosAction::Reorder;
        }
        if hit(p.flip_pm) {
            let offset = self.rng.random_range(0..=u32::from(u16::MAX));
            let bit = self.rng.random_range(0..8u8);
            return ChaosAction::FlipBit { offset, bit };
        }
        if hit(p.coalesce_pm) {
            return ChaosAction::Coalesce;
        }
        if hit(p.split_pm) {
            let at_pm = self.rng.random_range(1..1000u16);
            return ChaosAction::SplitAt { at_pm };
        }
        if hit(p.delay_pm) {
            let ms = self.rng.random_range(1..=p.delay_max_ms.max(1));
            return ChaosAction::Delay { ms };
        }
        ChaosAction::Deliver
    }
}

/// Renders the first `events` decisions of `flows` flows as a stable
/// text table — the `tracetool nemesis --print-schedule` output and
/// the byte-for-byte reproducibility witness of the chaos drill.
pub fn render_schedule(
    seed: u64,
    kind: FlowKind,
    profile: ChaosProfile,
    flows: u64,
    events: u32,
) -> String {
    let mut out = String::new();
    out.push_str(&format!("chaos schedule seed {seed} kind {kind:?}\n"));
    for flow in 0..flows {
        let mut sched = FlowSchedule::new(seed, flow, kind, profile);
        out.push_str(&format!("flow {flow}:"));
        for _ in 0..events {
            out.push_str(&format!(" {:?}", sched.next_action()));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule_different_seed_different() {
        let mut a = FlowSchedule::new(9, 0, FlowKind::Datagram, ChaosProfile::udp_drill());
        let mut b = FlowSchedule::new(9, 0, FlowKind::Datagram, ChaosProfile::udp_drill());
        let sa: Vec<ChaosAction> = (0..512).map(|_| a.next_action()).collect();
        let sb: Vec<ChaosAction> = (0..512).map(|_| b.next_action()).collect();
        assert_eq!(sa, sb, "same (seed, flow) must schedule identically");

        let mut c = FlowSchedule::new(10, 0, FlowKind::Datagram, ChaosProfile::udp_drill());
        let sc: Vec<ChaosAction> = (0..512).map(|_| c.next_action()).collect();
        assert_ne!(sa, sc, "different seeds should diverge");

        let mut d = FlowSchedule::new(9, 1, FlowKind::Datagram, ChaosProfile::udp_drill());
        let sd: Vec<ChaosAction> = (0..512).map(|_| d.next_action()).collect();
        assert_ne!(sa, sd, "different flows should diverge");
    }

    #[test]
    fn stream_flows_never_see_datagram_faults() {
        // A pathological profile where datagram faults eat the whole
        // probability space: streams must still map none of it to
        // Drop/Duplicate/Reorder.
        let profile = ChaosProfile {
            drop_pm: 400,
            duplicate_pm: 300,
            reorder_pm: 300,
            ..ChaosProfile::off()
        };
        let mut sched = FlowSchedule::new(3, 0, FlowKind::Stream, profile);
        for _ in 0..2048 {
            assert_eq!(sched.next_action(), ChaosAction::Deliver);
        }
        let mut dg = FlowSchedule::new(3, 0, FlowKind::Datagram, profile);
        let actions: Vec<ChaosAction> = (0..2048).map(|_| dg.next_action()).collect();
        assert!(actions.contains(&ChaosAction::Drop));
        assert!(actions.contains(&ChaosAction::Duplicate));
        assert!(actions.contains(&ChaosAction::Reorder));
    }

    #[test]
    fn off_profile_always_delivers_and_drills_inject() {
        let mut off = FlowSchedule::new(7, 0, FlowKind::Stream, ChaosProfile::off());
        for _ in 0..1024 {
            assert_eq!(off.next_action(), ChaosAction::Deliver);
        }
        let mut tcp = FlowSchedule::new(7, 0, FlowKind::Stream, ChaosProfile::tcp_drill());
        let actions: Vec<ChaosAction> = (0..4096).map(|_| tcp.next_action()).collect();
        assert!(actions
            .iter()
            .any(|a| matches!(a, ChaosAction::SplitAt { .. })));
        assert!(actions.contains(&ChaosAction::Coalesce));
        assert!(
            !actions
                .iter()
                .any(|a| matches!(a, ChaosAction::FlipBit { .. })),
            "the TCP drill must not corrupt (replay equality depends on it)"
        );
    }

    #[test]
    fn rendered_schedule_is_reproducible_and_structured() {
        let a = render_schedule(42, FlowKind::Stream, ChaosProfile::tcp_drill(), 4, 64);
        let b = render_schedule(42, FlowKind::Stream, ChaosProfile::tcp_drill(), 4, 64);
        assert_eq!(a, b, "schedule rendering must be byte-for-byte stable");
        assert!(a.starts_with("chaos schedule seed 42"));
        assert_eq!(a.lines().count(), 5, "header plus one line per flow");
        let c = render_schedule(43, FlowKind::Stream, ChaosProfile::tcp_drill(), 4, 64);
        assert_ne!(a, c);
    }

    #[test]
    fn split_points_and_delays_stay_in_range() {
        let mut sched = FlowSchedule::new(11, 2, FlowKind::Datagram, ChaosProfile::udp_drill());
        for _ in 0..4096 {
            match sched.next_action() {
                ChaosAction::SplitAt { at_pm } => assert!((1..1000).contains(&at_pm)),
                ChaosAction::Delay { ms } => assert!((1..=2).contains(&ms)),
                ChaosAction::FlipBit { bit, .. } => assert!(bit < 8),
                _ => {}
            }
        }
    }
}
