//! # magellan-netsim
//!
//! Discrete-event simulation kernel and Internet underlay model for
//! the Magellan reproduction. This crate provides everything below the
//! P2P overlay:
//!
//! * [`time`] — simulation clock and the GMT+8 study calendar
//!   (2006-10-01 .. 2006-10-14, the two weeks every figure of the
//!   paper plots);
//! * [`event`] — a deterministic event queue;
//! * [`rng`] — seeded, forkable randomness and the distributions the
//!   models need (normal, lognormal, exponential, Zipf);
//! * [`isp`] — the ISP universe of the study (China Telecom, Netcom,
//!   Unicom, Tietong, Edu, other-China, overseas) and a synthetic
//!   IP-to-ISP mapping database standing in for UUSee's commercial
//!   one;
//! * [`link`] — RTT and per-connection throughput models where
//!   intra-ISP paths are systematically better than inter-ISP ones
//!   (the mechanism behind the paper's "natural clustering");
//! * [`capacity`] — access-link classes (ADSL, cable, Ethernet,
//!   campus) with upload/download capacity distributions;
//! * [`partition`] — fault windows and inter-ISP partitions, the
//!   underlay primitives consumed by the fault-injection subsystem;
//! * [`chaos`] — seeded, replayable transport-fault schedules (delays,
//!   partial writes, corruption, resets, stalls) that the `tracetool
//!   nemesis` proxy executes against the networked ingest service.

//!
//! ## Example
//!
//! ```
//! use magellan_netsim::{EventQueue, IspDatabase, PeerAddr, RngFactory, SimTime, StudyCalendar};
//!
//! // Deterministic event ordering.
//! let mut q: EventQueue<&str> = EventQueue::new();
//! q.push(SimTime::at(0, 21, 0), "evening peak");
//! q.push(SimTime::at(0, 13, 0), "noon peak");
//! assert_eq!(q.pop().unwrap().1, "noon peak");
//!
//! // The study calendar knows the flash-crowd instant.
//! let cal = StudyCalendar::default();
//! assert_eq!(cal.flash_crowd_instant(), SimTime::at(5, 21, 0));
//!
//! // Unique addresses with ISP structure.
//! let db = IspDatabase::default();
//! let mut alloc = db.allocator();
//! let mut rng = RngFactory::new(7).fork("example");
//! let addr: PeerAddr = alloc.alloc(&mut rng);
//! let _isp = db.lookup(addr); // total mapping
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod capacity;
pub mod chaos;
pub mod event;
pub mod isp;
pub mod link;
pub mod partition;
pub mod rng;
pub mod time;

pub use capacity::{AccessClass, CapacityModel, PeerCapacity};
pub use chaos::{render_schedule, ChaosAction, ChaosProfile, FlowKind, FlowSchedule};
pub use event::EventQueue;
pub use isp::{AddrAllocator, Isp, IspDatabase, IspShares, PeerAddr};
pub use link::{LinkModel, LinkQuality};
pub use partition::{uncovered_fraction, FaultWindow, IspPartition};
pub use rng::RngFactory;
pub use time::{SimDuration, SimTime, StudyCalendar, Weekday};
