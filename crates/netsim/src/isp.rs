//! The ISP universe of the study and a synthetic IP→ISP mapping
//! database.
//!
//! The paper obtained a commercial database from UUSee Inc. that
//! translates IP ranges to China ISPs (and a catch-all code for
//! addresses outside China). That database is proprietary; this module
//! builds a synthetic stand-in: the IPv4 space is partitioned into
//! interleaved slabs assigned to ISPs in proportion to the peer shares
//! of Fig. 2, and an allocator hands out unique addresses with the
//! same marginal distribution. The analysis layer only ever needs the
//! total function `IP → ISP`, so the substitution is behavior
//! preserving.

use crate::rng::weighted_index;
use rand::RngExt as _;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;
use std::net::Ipv4Addr;

/// The ISPs distinguished by the study (Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Isp {
    /// China Telecom — the largest share of UUSee peers.
    Telecom,
    /// China Netcom — the second largest; Fig. 7(B) studies its subgraph.
    Netcom,
    /// China Unicom.
    Unicom,
    /// China Tietong (railway telecom).
    Tietong,
    /// CERNET — China Education and Research Network.
    Edu,
    /// Other ISPs inside China.
    OtherChina,
    /// Everything outside mainland China.
    Oversea,
}

impl Isp {
    /// All ISPs, in display order.
    pub const ALL: [Isp; 7] = [
        Isp::Telecom,
        Isp::Netcom,
        Isp::Unicom,
        Isp::Tietong,
        Isp::Edu,
        Isp::OtherChina,
        Isp::Oversea,
    ];

    /// Whether this ISP is inside mainland China. The paper restricts
    /// ISP-conditioned analyses (Figs. 6, 7B) to China ISPs.
    pub fn is_china(self) -> bool {
        !matches!(self, Isp::Oversea)
    }

    /// Human-readable name matching the paper's Fig. 2 labels.
    pub fn name(self) -> &'static str {
        match self {
            Isp::Telecom => "China Telecom",
            Isp::Netcom => "China Netcom",
            Isp::Unicom => "China Unicom",
            Isp::Tietong => "China Tietong",
            Isp::Edu => "China Edu",
            Isp::OtherChina => "China others",
            Isp::Oversea => "Oversea ISPs",
        }
    }

    /// Dense index into [`Isp::ALL`].
    pub fn index(self) -> usize {
        Isp::ALL.iter().position(|&i| i == self).expect("in ALL")
    }
}

impl fmt::Display for Isp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A peer's network identity: its IPv4 address.
///
/// The trace schema keys everything by IP address, exactly as the
/// paper's reports do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PeerAddr(pub Ipv4Addr);

impl PeerAddr {
    /// Builds an address from a raw `u32`.
    pub fn from_u32(raw: u32) -> Self {
        PeerAddr(Ipv4Addr::from(raw))
    }

    /// The raw `u32` form.
    pub fn as_u32(self) -> u32 {
        u32::from(self.0)
    }
}

impl fmt::Display for PeerAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<Ipv4Addr> for PeerAddr {
    fn from(ip: Ipv4Addr) -> Self {
        PeerAddr(ip)
    }
}

/// Relative peer-population shares per ISP, calibrated to Fig. 2.
///
/// The paper's pie chart gives no numbers; these constants are read
/// off its proportions: Telecom and Netcom dominate, a visible
/// overseas wedge, the rest small.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IspShares {
    /// One weight per entry of [`Isp::ALL`]. Need not be normalized.
    pub weights: [f64; 7],
}

impl Default for IspShares {
    fn default() -> Self {
        IspShares {
            // Telecom, Netcom, Unicom, Tietong, Edu, OtherChina, Oversea.
            weights: [0.42, 0.25, 0.06, 0.05, 0.05, 0.07, 0.10],
        }
    }
}

impl IspShares {
    /// The normalized share of `isp`.
    pub fn share(&self, isp: Isp) -> f64 {
        let total: f64 = self.weights.iter().sum();
        self.weights[isp.index()] / total
    }

    /// Normalized shares in [`Isp::ALL`] order.
    pub fn normalized(&self) -> [f64; 7] {
        let total: f64 = self.weights.iter().sum();
        let mut out = self.weights;
        for w in &mut out {
            *w /= total;
        }
        out
    }
}

/// A range-based IP→ISP mapping database.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IspDatabase {
    /// Sorted, non-overlapping `(start, end_inclusive, isp)` ranges.
    ranges: Vec<(u32, u32, Isp)>,
    shares: IspShares,
}

/// Number of interleaved slabs the synthetic database splits the
/// address space into. Multiple slabs per ISP make the lookup
/// non-trivial (as with real allocation) and exercise the range
/// search.
const SLABS: u32 = 64;
/// Synthetic allocations live in this window of the IPv4 space
/// (avoiding reserved low/high blocks).
const SPACE_START: u32 = 0x0B00_0000; // 11.0.0.0
const SPACE_END: u32 = 0xDF00_0000; // 223.0.0.0

impl IspDatabase {
    /// Builds the synthetic database for the given shares: the
    /// address window is cut into [`SLABS`] equal slabs and slabs are
    /// dealt to ISPs by largest-remainder apportionment, round-robin
    /// interleaved.
    pub fn synthetic(shares: IspShares) -> Self {
        let norm = shares.normalized();
        // Apportion slab counts by largest remainder.
        let mut counts = [0u32; 7];
        let mut rema: Vec<(usize, f64)> = Vec::with_capacity(7);
        let mut assigned = 0u32;
        for (i, &w) in norm.iter().enumerate() {
            let exact = w * SLABS as f64;
            counts[i] = exact.floor() as u32;
            assigned += counts[i];
            rema.push((i, exact - exact.floor()));
        }
        rema.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        let mut left = SLABS - assigned;
        for &(i, _) in rema.iter().cycle() {
            if left == 0 {
                break;
            }
            counts[i] += 1;
            left -= 1;
        }
        // Every ISP must own address space, however skewed the
        // shares: the commercial database covers all carriers. Take
        // slabs from the largest holder for any ISP apportioned zero.
        for i in 0..counts.len() {
            if counts[i] == 0 {
                let donor = (0..counts.len())
                    .max_by_key(|&j| counts[j])
                    .expect("non-empty");
                debug_assert!(counts[donor] > 1);
                counts[donor] -= 1;
                counts[i] += 1;
            }
        }
        // Deal slabs round-robin so each ISP's ranges interleave.
        let mut deck: Vec<Isp> = Vec::with_capacity(SLABS as usize);
        let mut remaining = counts;
        while deck.len() < SLABS as usize {
            for isp in Isp::ALL {
                if remaining[isp.index()] > 0 {
                    remaining[isp.index()] -= 1;
                    deck.push(isp);
                }
            }
        }
        let slab_size = (SPACE_END - SPACE_START) / SLABS;
        let ranges: Vec<(u32, u32, Isp)> = deck
            .into_iter()
            .enumerate()
            .map(|(k, isp)| {
                let start = SPACE_START + k as u32 * slab_size;
                (start, start + slab_size - 1, isp)
            })
            .collect();
        IspDatabase { ranges, shares }
    }

    /// The shares this database was built for.
    pub fn shares(&self) -> &IspShares {
        &self.shares
    }

    /// Maps an address to its ISP. Addresses outside every range
    /// (outside the synthetic window) map to [`Isp::Oversea`], the
    /// same catch-all the commercial database uses for foreign IPs.
    pub fn lookup(&self, addr: PeerAddr) -> Isp {
        let ip = addr.as_u32();
        match self.ranges.binary_search_by(|&(s, _, _)| s.cmp(&ip)) {
            Ok(i) => self.ranges[i].2,
            Err(0) => Isp::Oversea,
            Err(i) => {
                let (_, end, isp) = self.ranges[i - 1];
                if ip <= end {
                    isp
                } else {
                    Isp::Oversea
                }
            }
        }
    }

    /// The address ranges belonging to `isp`.
    pub fn ranges_of(&self, isp: Isp) -> Vec<(u32, u32)> {
        self.ranges
            .iter()
            .filter(|&&(_, _, i)| i == isp)
            .map(|&(s, e, _)| (s, e))
            .collect() // lint:allow(H2): at most 64 slabs per ISP, drawn once per join event
    }

    /// Creates an allocator of unique addresses over this database.
    ///
    /// The allocator owns a clone of the database (it is a handful of
    /// ranges), so it can outlive the borrow.
    pub fn allocator(&self) -> AddrAllocator {
        AddrAllocator {
            db: self.clone(),
            used: BTreeSet::new(),
        }
    }
}

impl Default for IspDatabase {
    fn default() -> Self {
        IspDatabase::synthetic(IspShares::default())
    }
}

/// Allocates unique peer addresses whose ISP marginal follows the
/// database shares.
#[derive(Debug, Clone)]
pub struct AddrAllocator {
    db: IspDatabase,
    used: BTreeSet<u32>,
}

impl AddrAllocator {
    /// Draws a fresh unique address; its ISP follows the configured
    /// shares.
    ///
    /// # Panics
    ///
    /// Panics if the chosen ISP's ranges are exhausted (practically
    /// impossible: each ISP owns millions of addresses).
    pub fn alloc<R: rand::Rng + ?Sized>(&mut self, rng: &mut R) -> PeerAddr {
        let weights = self.db.shares.normalized();
        let isp = Isp::ALL[weighted_index(rng, &weights)];
        self.alloc_in(rng, isp)
    }

    /// Draws a fresh unique address inside a specific ISP.
    ///
    /// # Panics
    ///
    /// Panics if the ISP has no ranges or they are exhausted.
    pub fn alloc_in<R: rand::Rng + ?Sized>(&mut self, rng: &mut R, isp: Isp) -> PeerAddr {
        let ranges = self.db.ranges_of(isp);
        assert!(!ranges.is_empty(), "no ranges for {isp}");
        for _ in 0..10_000 {
            let (s, e) = ranges[rng.random_range(0..ranges.len())];
            let ip = rng.random_range(s..=e);
            if self.used.insert(ip) {
                return PeerAddr::from_u32(ip);
            }
        }
        panic!("address space exhausted for {isp}");
    }

    /// How many addresses have been handed out.
    pub fn allocated(&self) -> usize {
        self.used.len()
    }

    /// Records an address as already handed out without drawing it.
    ///
    /// Checkpoint restore uses this to rebuild the allocator from the
    /// set of live addresses so that post-resume draws skip exactly
    /// the addresses an uninterrupted run would have skipped.
    pub fn mark_used(&mut self, addr: PeerAddr) {
        self.used.insert(addr.as_u32());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::RngFactory;

    #[test]
    fn shares_normalize_to_one() {
        let s = IspShares::default();
        let sum: f64 = s.normalized().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(s.share(Isp::Telecom) > s.share(Isp::Netcom));
        assert!(s.share(Isp::Netcom) > s.share(Isp::Unicom));
    }

    #[test]
    fn every_isp_gets_address_space() {
        let db = IspDatabase::default();
        for isp in Isp::ALL {
            assert!(!db.ranges_of(isp).is_empty(), "{isp} has no ranges");
        }
    }

    #[test]
    fn lookup_is_total_and_consistent_with_ranges() {
        let db = IspDatabase::default();
        for isp in Isp::ALL {
            for (s, e) in db.ranges_of(isp) {
                assert_eq!(db.lookup(PeerAddr::from_u32(s)), isp);
                assert_eq!(db.lookup(PeerAddr::from_u32(e)), isp);
                assert_eq!(db.lookup(PeerAddr::from_u32(s + (e - s) / 2)), isp);
            }
        }
    }

    #[test]
    fn out_of_window_addresses_are_oversea() {
        let db = IspDatabase::default();
        assert_eq!(db.lookup(PeerAddr::from_u32(0x0100_0000)), Isp::Oversea);
        assert_eq!(db.lookup(PeerAddr::from_u32(0xFF00_0000)), Isp::Oversea);
    }

    #[test]
    fn allocator_yields_unique_addresses() {
        let db = IspDatabase::default();
        let mut alloc = db.allocator();
        let mut rng = RngFactory::new(1).fork("alloc");
        let mut seen = BTreeSet::new();
        for _ in 0..5_000 {
            let a = alloc.alloc(&mut rng);
            assert!(seen.insert(a), "duplicate address {a}");
        }
        assert_eq!(alloc.allocated(), 5_000);
    }

    #[test]
    fn allocator_marginal_matches_shares() {
        let db = IspDatabase::default();
        let mut alloc = db.allocator();
        let mut rng = RngFactory::new(2).fork("alloc2");
        let n = 20_000;
        let mut counts = [0usize; 7];
        for _ in 0..n {
            let a = alloc.alloc(&mut rng);
            counts[db.lookup(a).index()] += 1;
        }
        let norm = db.shares().normalized();
        for isp in Isp::ALL {
            let got = counts[isp.index()] as f64 / n as f64;
            let want = norm[isp.index()];
            assert!(
                (got - want).abs() < 0.02,
                "{isp}: got {got:.3}, want {want:.3}"
            );
        }
    }

    #[test]
    fn alloc_in_respects_isp() {
        let db = IspDatabase::default();
        let mut alloc = db.allocator();
        let mut rng = RngFactory::new(3).fork("alloc3");
        for _ in 0..1_000 {
            let a = alloc.alloc_in(&mut rng, Isp::Edu);
            assert_eq!(db.lookup(a), Isp::Edu);
        }
    }

    #[test]
    fn china_flag() {
        assert!(Isp::Telecom.is_china());
        assert!(Isp::Edu.is_china());
        assert!(!Isp::Oversea.is_china());
    }

    #[test]
    fn display_names_match_figure_two() {
        assert_eq!(Isp::Telecom.to_string(), "China Telecom");
        assert_eq!(Isp::Oversea.to_string(), "Oversea ISPs");
    }

    #[test]
    fn peer_addr_roundtrip() {
        let a = PeerAddr::from_u32(0x0B01_0203);
        assert_eq!(a.as_u32(), 0x0B01_0203);
        assert_eq!(a.to_string(), "11.1.2.3");
        let b: PeerAddr = Ipv4Addr::new(11, 1, 2, 3).into();
        assert_eq!(a, b);
    }

    #[test]
    fn slab_interleaving_gives_each_isp_multiple_ranges() {
        let db = IspDatabase::default();
        // The big ISPs must own several non-contiguous slabs.
        assert!(db.ranges_of(Isp::Telecom).len() > 1);
        assert!(db.ranges_of(Isp::Netcom).len() > 1);
    }

    #[test]
    fn random_addresses_lookup_without_panicking() {
        let db = IspDatabase::default();
        let mut rng = RngFactory::new(4).fork("fuzz");
        for _ in 0..10_000 {
            let _ = db.lookup(PeerAddr::from_u32(rng.random_range(0..=u32::MAX)));
        }
    }
}
