//! Simulation time and the study calendar.
//!
//! All of Magellan's figures plot a two-week window: 12:00 a.m.
//! October 1st, 2006 (GMT+8) through 11:50 p.m. October 14th, 2006.
//! [`SimTime`] counts milliseconds from that origin; [`StudyCalendar`]
//! translates it into day-of-week / hour-of-day, flags the weekend,
//! and knows the Mid-Autumn flash-crowd instant (9 p.m. Oct 6).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A span of simulated time, in milliseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// From whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000)
    }

    /// From whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60_000)
    }

    /// From whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600_000)
    }

    /// From whole days.
    pub const fn from_days(d: u64) -> Self {
        SimDuration(d * 86_400_000)
    }

    /// Milliseconds in this duration.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Seconds, fractional.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Multiplies the duration by a non-negative factor, saturating.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or NaN.
    pub fn mul_f64(self, factor: f64) -> Self {
        assert!(factor >= 0.0, "duration factor must be non-negative");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total_s = self.0 / 1_000;
        let (h, m, s) = (total_s / 3_600, (total_s / 60) % 60, total_s % 60);
        write!(f, "{h:02}:{m:02}:{s:02}")
    }
}

/// An instant of simulated time: milliseconds since the study origin
/// (2006-10-01 00:00 GMT+8).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The study origin itself.
    pub const ORIGIN: SimTime = SimTime(0);

    /// From milliseconds since origin.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Builds a time from a day index (0 = Oct 1) and an hour/minute
    /// of that day.
    pub const fn at(day: u64, hour: u64, minute: u64) -> Self {
        SimTime(day * 86_400_000 + hour * 3_600_000 + minute * 60_000)
    }

    /// Milliseconds since origin.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Day index since the origin (0 = Sunday, October 1st).
    pub const fn day(self) -> u64 {
        self.0 / 86_400_000
    }

    /// Hour of day, 0..24.
    pub const fn hour(self) -> u64 {
        (self.0 / 3_600_000) % 24
    }

    /// Minute of hour, 0..60.
    pub const fn minute(self) -> u64 {
        (self.0 / 60_000) % 60
    }

    /// Fractional hours since midnight of the current day.
    pub fn hour_f64(self) -> f64 {
        (self.0 % 86_400_000) as f64 / 3_600_000.0
    }

    /// Duration elapsed since an earlier instant.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is after `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(earlier.0 <= self.0, "`earlier` is in the future");
        SimDuration(self.0 - earlier.0)
    }

    /// Saturating difference (ZERO when `earlier` is after `self`).
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cal = StudyCalendar::default();
        write!(
            f,
            "{} d{} {:02}:{:02}",
            cal.weekday(*self),
            self.day(),
            self.hour(),
            self.minute()
        )
    }
}

/// Day of the week.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Weekday {
    Sun,
    Mon,
    Tue,
    Wed,
    Thu,
    Fri,
    Sat,
}

impl Weekday {
    const ALL: [Weekday; 7] = [
        Weekday::Sun,
        Weekday::Mon,
        Weekday::Tue,
        Weekday::Wed,
        Weekday::Thu,
        Weekday::Fri,
        Weekday::Sat,
    ];

    /// Whether this is Saturday or Sunday.
    pub fn is_weekend(self) -> bool {
        matches!(self, Weekday::Sat | Weekday::Sun)
    }
}

impl fmt::Display for Weekday {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Weekday::Sun => "Sun",
            Weekday::Mon => "Mon",
            Weekday::Tue => "Tue",
            Weekday::Wed => "Wed",
            Weekday::Thu => "Thu",
            Weekday::Fri => "Fri",
            Weekday::Sat => "Sat",
        };
        f.write_str(s)
    }
}

/// The calendar of the measurement window.
///
/// October 1st, 2006 was a Sunday; the window runs two weeks; the
/// Mid-Autumn Festival flash crowd hit at 9 p.m. on Friday, October
/// 6th (day index 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StudyCalendar {
    /// Number of days in the study window.
    pub window_days: u64,
}

impl Default for StudyCalendar {
    fn default() -> Self {
        StudyCalendar { window_days: 14 }
    }
}

impl StudyCalendar {
    /// The end of the study window (exclusive).
    pub fn window_end(&self) -> SimTime {
        SimTime::from_millis(self.window_days * 86_400_000)
    }

    /// Day of week for an instant (day 0 = Sunday).
    pub fn weekday(&self, t: SimTime) -> Weekday {
        Weekday::ALL[(t.day() % 7) as usize]
    }

    /// Whether the instant falls on a weekend.
    pub fn is_weekend(&self, t: SimTime) -> bool {
        self.weekday(t).is_weekend()
    }

    /// The instant of the Mid-Autumn Festival flash crowd: 9 p.m.,
    /// Friday October 6th, 2006 (day 5 of the window).
    pub fn flash_crowd_instant(&self) -> SimTime {
        SimTime::at(5, 21, 0)
    }

    /// Whether `t` lies within the study window.
    pub fn contains(&self, t: SimTime) -> bool {
        t < self.window_end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_are_consistent() {
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1_000);
        assert_eq!(SimDuration::from_mins(1), SimDuration::from_secs(60));
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_mins(60));
        assert_eq!(SimDuration::from_days(1), SimDuration::from_hours(24));
    }

    #[test]
    fn time_decomposition() {
        let t = SimTime::at(3, 21, 15);
        assert_eq!(t.day(), 3);
        assert_eq!(t.hour(), 21);
        assert_eq!(t.minute(), 15);
        assert!((t.hour_f64() - 21.25).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::at(1, 0, 0);
        let later = t + SimDuration::from_mins(90);
        assert_eq!(later.hour(), 1);
        assert_eq!(later.minute(), 30);
        assert_eq!(later.since(t), SimDuration::from_mins(90));
    }

    #[test]
    #[should_panic(expected = "future")]
    fn since_rejects_reversed_order() {
        let t = SimTime::at(0, 1, 0);
        let _ = t.since(SimTime::at(0, 2, 0));
    }

    #[test]
    fn saturating_since_clamps() {
        let t = SimTime::at(0, 1, 0);
        assert_eq!(t.saturating_since(SimTime::at(0, 2, 0)), SimDuration::ZERO);
    }

    #[test]
    fn october_first_2006_was_a_sunday() {
        let cal = StudyCalendar::default();
        assert_eq!(cal.weekday(SimTime::ORIGIN), Weekday::Sun);
        assert_eq!(cal.weekday(SimTime::at(6, 0, 0)), Weekday::Sat);
        assert_eq!(cal.weekday(SimTime::at(7, 0, 0)), Weekday::Sun);
    }

    #[test]
    fn flash_crowd_is_friday_evening() {
        let cal = StudyCalendar::default();
        let fc = cal.flash_crowd_instant();
        assert_eq!(cal.weekday(fc), Weekday::Fri);
        assert_eq!(fc.hour(), 21);
        assert_eq!(fc.day(), 5);
    }

    #[test]
    fn weekend_detection() {
        let cal = StudyCalendar::default();
        assert!(cal.is_weekend(SimTime::ORIGIN)); // Sunday
        assert!(!cal.is_weekend(SimTime::at(2, 12, 0))); // Tuesday
        assert!(cal.is_weekend(SimTime::at(13, 23, 50))); // final Saturday
    }

    #[test]
    fn window_bounds() {
        let cal = StudyCalendar::default();
        assert!(cal.contains(SimTime::at(13, 23, 50)));
        assert!(!cal.contains(SimTime::at(14, 0, 0)));
        assert_eq!(cal.window_end(), SimTime::at(14, 0, 0));
    }

    #[test]
    fn display_formats() {
        let t = SimTime::at(5, 21, 0);
        assert_eq!(t.to_string(), "Fri d5 21:00");
        assert_eq!(SimDuration::from_mins(75).to_string(), "01:15:00");
    }

    #[test]
    fn durations_add() {
        let d = SimDuration::from_mins(3) + SimDuration::from_secs(30);
        assert_eq!(d, SimDuration::from_millis(210_000));
        let mut e = SimDuration::from_secs(1);
        e += SimDuration::from_secs(2);
        assert_eq!(e, SimDuration::from_secs(3));
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_secs(10).mul_f64(1.5);
        assert_eq!(d, SimDuration::from_millis(15_000));
    }
}
