//! Access-link capacities.
//!
//! The paper attributes UUSee's scaling to the fact that the ~400 Kbps
//! stream rate sits *below* the upload capacity of most ADSL/cable
//! peers, so surplus capacity exists whenever enough peers are online
//! (§4.2.2). This module models the 2006 Chinese access-link mix:
//! mostly ADSL, some cable and Ethernet, campus links inside CERNET,
//! and a residue of dial-up.

use crate::isp::Isp;
use crate::rng::{lognormal_median, weighted_index};
use serde::{Deserialize, Serialize};

/// Access technology classes of 2006-era broadband.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessClass {
    /// 56k dial-up: cannot sustain the stream.
    Modem,
    /// ADSL — the dominant class among UUSee users.
    Adsl,
    /// Cable modem.
    Cable,
    /// Residential Ethernet (apartment LAN).
    Ethernet,
    /// Campus network (CERNET dorms): high symmetric capacity.
    Campus,
}

impl AccessClass {
    /// All classes in sampling order.
    pub const ALL: [AccessClass; 5] = [
        AccessClass::Modem,
        AccessClass::Adsl,
        AccessClass::Cable,
        AccessClass::Ethernet,
        AccessClass::Campus,
    ];

    /// Median (download, upload) capacity in Kbps.
    pub fn median_kbps(self) -> (f64, f64) {
        match self {
            AccessClass::Modem => (56.0, 33.0),
            AccessClass::Adsl => (2_000.0, 512.0),
            AccessClass::Cable => (4_000.0, 768.0),
            AccessClass::Ethernet => (10_000.0, 2_000.0),
            AccessClass::Campus => (10_000.0, 4_000.0),
        }
    }
}

/// A sampled peer's access capacities.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeerCapacity {
    /// Total download capacity in Kbps.
    pub down_kbps: f64,
    /// Total upload capacity in Kbps.
    pub up_kbps: f64,
    /// The access class it was drawn from.
    pub class: AccessClass,
}

impl PeerCapacity {
    /// Whether the downlink can sustain a stream of `rate_kbps`.
    pub fn can_receive(&self, rate_kbps: f64) -> bool {
        self.down_kbps >= rate_kbps
    }
}

/// Per-ISP access-class mix and capacity sampler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapacityModel {
    /// Class weights for non-Edu ISPs, in [`AccessClass::ALL`] order.
    pub default_mix: [f64; 5],
    /// Class weights for [`Isp::Edu`] (campus-heavy).
    pub edu_mix: [f64; 5],
    /// Lognormal sigma applied around the class median.
    pub sigma: f64,
}

impl Default for CapacityModel {
    fn default() -> Self {
        CapacityModel {
            // Modem, Adsl, Cable, Ethernet, Campus.
            default_mix: [0.05, 0.55, 0.20, 0.15, 0.05],
            edu_mix: [0.00, 0.10, 0.00, 0.20, 0.70],
            sigma: 0.25,
        }
    }
}

impl CapacityModel {
    /// Draws the access class for a peer of `isp`.
    pub fn sample_class<R: rand::Rng + ?Sized>(&self, rng: &mut R, isp: Isp) -> AccessClass {
        let mix = if isp == Isp::Edu {
            &self.edu_mix
        } else {
            &self.default_mix
        };
        AccessClass::ALL[weighted_index(rng, mix)]
    }

    /// Draws a full capacity sample for a peer of `isp`.
    pub fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R, isp: Isp) -> PeerCapacity {
        let class = self.sample_class(rng, isp);
        let (down_med, up_med) = class.median_kbps();
        PeerCapacity {
            down_kbps: lognormal_median(rng, down_med, self.sigma),
            up_kbps: lognormal_median(rng, up_med, self.sigma),
            class,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::RngFactory;

    #[test]
    fn medians_are_plausible() {
        for class in AccessClass::ALL {
            let (d, u) = class.median_kbps();
            assert!(d > 0.0 && u > 0.0);
            assert!(d >= u, "{class:?} download below upload");
        }
    }

    #[test]
    fn most_non_modem_peers_can_upload_the_stream() {
        // The paper's premise: 400 Kbps < upload of most ADSL/cable peers.
        let model = CapacityModel::default();
        let mut rng = RngFactory::new(1).fork("cap");
        let n = 20_000;
        let enough = (0..n)
            .map(|_| model.sample(&mut rng, Isp::Telecom))
            .filter(|c| c.up_kbps >= 400.0)
            .count();
        let frac = enough as f64 / n as f64;
        assert!(frac > 0.8, "only {frac:.2} of peers can upload the stream");
    }

    #[test]
    fn edu_peers_skew_to_campus() {
        let model = CapacityModel::default();
        let mut rng = RngFactory::new(2).fork("edu");
        let n = 10_000;
        let campus = (0..n)
            .filter(|_| model.sample_class(&mut rng, Isp::Edu) == AccessClass::Campus)
            .count();
        let frac = campus as f64 / n as f64;
        assert!((frac - 0.7).abs() < 0.03, "campus share = {frac}");
    }

    #[test]
    fn capacities_are_positive_and_jittered() {
        let model = CapacityModel::default();
        let mut rng = RngFactory::new(3).fork("jitter");
        let a = model.sample(&mut rng, Isp::Netcom);
        let b = model.sample(&mut rng, Isp::Netcom);
        assert!(a.down_kbps > 0.0 && a.up_kbps > 0.0);
        // Two consecutive draws almost surely differ.
        assert!(a.down_kbps != b.down_kbps || a.class != b.class);
    }

    #[test]
    fn can_receive_threshold() {
        let cap = PeerCapacity {
            down_kbps: 500.0,
            up_kbps: 100.0,
            class: AccessClass::Adsl,
        };
        assert!(cap.can_receive(400.0));
        assert!(!cap.can_receive(600.0));
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let model = CapacityModel::default();
        let a = model.sample(&mut RngFactory::new(7).fork("s"), Isp::Unicom);
        let b = model.sample(&mut RngFactory::new(7).fork("s"), Isp::Unicom);
        assert_eq!(a, b);
    }
}
