//! Deterministic discrete-event queue.
//!
//! A thin priority queue keyed by [`SimTime`] with a monotone sequence
//! number breaking ties, so that two events scheduled for the same
//! instant pop in the order they were pushed — a requirement for
//! reproducible simulations.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Key(SimTime, u64);

/// A deterministic event queue.
///
/// # Example
///
/// ```
/// use magellan_netsim::{EventQueue, SimTime};
///
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.push(SimTime::from_millis(20), "later");
/// q.push(SimTime::from_millis(10), "sooner");
/// q.push(SimTime::from_millis(10), "sooner-but-second");
/// assert_eq!(q.pop(), Some((SimTime::from_millis(10), "sooner")));
/// assert_eq!(q.pop(), Some((SimTime::from_millis(10), "sooner-but-second")));
/// assert_eq!(q.pop(), Some((SimTime::from_millis(20), "later")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<(Reverse<Key>, EventSlot<E>)>,
    seq: u64,
}

/// Wrapper so `E` need not implement `Ord`; ordering is fully decided
/// by the key.
#[derive(Debug)]
struct EventSlot<E>(E);

impl<E> PartialEq for EventSlot<E> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<E> Eq for EventSlot<E> {}
impl<E> PartialOrd for EventSlot<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for EventSlot<E> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let key = Key(time, self.seq);
        self.seq += 1;
        self.heap.push((Reverse(key), EventSlot(event)));
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap
            .pop()
            .map(|(Reverse(Key(t, _)), slot)| (t, slot.0))
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|(Reverse(Key(t, _)), _)| *t)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(30), 3);
        q.push(SimTime::from_millis(10), 1);
        q.push(SimTime::from_millis(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_within_same_instant() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(7), "x");
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(10), "a");
        q.push(SimTime::from_millis(30), "c");
        assert_eq!(q.pop().unwrap().1, "a");
        q.push(SimTime::from_millis(20), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }
}
