//! Fault windows and inter-ISP partitions.
//!
//! The underlay primitives of the fault-injection subsystem: a
//! half-open time window during which some component is unavailable,
//! and an inter-ISP partition that severs every path between two sets
//! of ISPs while its window is active. The schedule itself (which
//! windows exist, for which components) lives in
//! `magellan_workload::faults`; this module only knows about time and
//! the ISP universe, which is all the underlay needs to answer "is
//! this path open at instant `t`?".

use crate::isp::Isp;
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A half-open outage window `[start, end)` in simulation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FaultWindow {
    /// First instant of the outage (inclusive).
    pub start: SimTime,
    /// First instant after the outage (exclusive).
    pub end: SimTime,
}

impl FaultWindow {
    /// Builds a window from explicit bounds.
    ///
    /// # Panics
    ///
    /// Panics if `end` precedes `start` (zero-length windows are
    /// allowed — they simply never contain anything).
    pub fn new(start: SimTime, end: SimTime) -> Self {
        assert!(start <= end, "fault window ends before it starts");
        FaultWindow { start, end }
    }

    /// Builds a window starting at `start` and lasting `len`.
    pub fn starting_at(start: SimTime, len: SimDuration) -> Self {
        FaultWindow {
            start,
            end: start + len,
        }
    }

    /// Whether the outage is active at instant `t`.
    pub fn contains(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end
    }

    /// Length of the window.
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }

    /// How much of `[lo, hi)` this window covers.
    pub fn overlap(&self, lo: SimTime, hi: SimTime) -> SimDuration {
        let s = self.start.max(lo);
        let e = self.end.min(hi);
        e.saturating_since(s)
    }
}

/// Total coverage of `[lo, hi)` by a set of windows, as a fraction of
/// the interval that is *outside* every window.
///
/// Returns 1.0 for an empty interval (nothing was missed) and clamps
/// into `[0, 1]`. Overlapping windows are merged before summing so a
/// double-booked outage is not counted twice.
pub fn uncovered_fraction(windows: &[FaultWindow], lo: SimTime, hi: SimTime) -> f64 {
    let span = hi.saturating_since(lo).as_millis();
    if span == 0 {
        return 1.0;
    }
    // Merge-by-sweep over windows sorted by start; the lists involved
    // are tiny (a handful of scheduled outages), so O(n log n) is fine.
    let mut clipped: Vec<(u64, u64)> = windows
        .iter()
        .filter_map(|w| {
            let s = w.start.max(lo).as_millis();
            let e = w.end.min(hi).as_millis();
            (s < e).then_some((s, e))
        })
        .collect(); // lint:allow(H2): clips the configured outage windows once per boundary
    clipped.sort_unstable();
    let mut covered = 0u64;
    let mut cur: Option<(u64, u64)> = None;
    for (s, e) in clipped {
        match cur {
            Some((cs, ce)) if s <= ce => cur = Some((cs, ce.max(e))),
            Some((cs, ce)) => {
                covered += ce - cs;
                cur = Some((s, e));
            }
            None => cur = Some((s, e)),
        }
    }
    if let Some((cs, ce)) = cur {
        covered += ce - cs;
    }
    let frac = 1.0 - covered as f64 / span as f64;
    frac.clamp(0.0, 1.0)
}

/// An inter-ISP partition: while `window` is active, every path
/// between an ISP in `side_a` and an ISP in `side_b` is severed.
///
/// Paths inside either side, and paths touching ISPs in neither side,
/// are unaffected — the model is a cut between two regions of the
/// AS-level topology (a severed peering link), not a blackout.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IspPartition {
    /// When the cut is active.
    pub window: FaultWindow,
    /// One side of the cut.
    pub side_a: Vec<Isp>,
    /// The other side of the cut.
    pub side_b: Vec<Isp>,
}

impl IspPartition {
    /// Whether the path between `x` and `y` is severed at instant `t`.
    pub fn severs(&self, x: Isp, y: Isp, t: SimTime) -> bool {
        if !self.window.contains(t) {
            return false;
        }
        let (in_a_x, in_b_x) = (self.side_a.contains(&x), self.side_b.contains(&x));
        let (in_a_y, in_b_y) = (self.side_a.contains(&y), self.side_b.contains(&y));
        (in_a_x && in_b_y) || (in_b_x && in_a_y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(lo_min: u64, hi_min: u64) -> FaultWindow {
        FaultWindow::new(
            SimTime::ORIGIN + SimDuration::from_mins(lo_min),
            SimTime::ORIGIN + SimDuration::from_mins(hi_min),
        )
    }

    #[test]
    fn window_is_half_open() {
        let win = w(10, 20);
        assert!(!win.contains(SimTime::ORIGIN + SimDuration::from_mins(9)));
        assert!(win.contains(SimTime::ORIGIN + SimDuration::from_mins(10)));
        assert!(win.contains(SimTime::ORIGIN + SimDuration::from_mins(19)));
        assert!(!win.contains(SimTime::ORIGIN + SimDuration::from_mins(20)));
        assert_eq!(win.duration(), SimDuration::from_mins(10));
    }

    #[test]
    #[should_panic(expected = "ends before it starts")]
    fn reversed_window_panics() {
        let _ = w(20, 10);
    }

    #[test]
    fn zero_length_window_contains_nothing() {
        let win = w(10, 10);
        assert!(!win.contains(SimTime::ORIGIN + SimDuration::from_mins(10)));
        assert_eq!(win.duration(), SimDuration::ZERO);
    }

    #[test]
    fn starting_at_matches_new() {
        assert_eq!(
            FaultWindow::starting_at(SimTime::at(0, 1, 0), SimDuration::from_mins(30)),
            w(60, 90)
        );
    }

    #[test]
    fn overlap_clips_to_interval() {
        let win = w(10, 20);
        let lo = SimTime::ORIGIN + SimDuration::from_mins(15);
        let hi = SimTime::ORIGIN + SimDuration::from_mins(40);
        assert_eq!(win.overlap(lo, hi), SimDuration::from_mins(5));
        // Disjoint interval: no overlap.
        let lo2 = SimTime::ORIGIN + SimDuration::from_mins(30);
        assert_eq!(win.overlap(lo2, hi), SimDuration::ZERO);
    }

    #[test]
    fn uncovered_fraction_basics() {
        let lo = SimTime::ORIGIN;
        let hi = SimTime::ORIGIN + SimDuration::from_mins(100);
        assert_eq!(uncovered_fraction(&[], lo, hi), 1.0);
        assert!((uncovered_fraction(&[w(0, 50)], lo, hi) - 0.5).abs() < 1e-12);
        assert_eq!(uncovered_fraction(&[w(0, 100)], lo, hi), 0.0);
        // Empty interval counts as fully covered by reports.
        assert_eq!(uncovered_fraction(&[w(0, 50)], lo, lo), 1.0);
    }

    #[test]
    fn uncovered_fraction_merges_overlaps() {
        let lo = SimTime::ORIGIN;
        let hi = SimTime::ORIGIN + SimDuration::from_mins(100);
        // Two overlapping 30-minute windows covering [10, 50).
        let frac = uncovered_fraction(&[w(10, 40), w(20, 50)], lo, hi);
        assert!((frac - 0.6).abs() < 1e-12, "{frac}");
        // Same windows in reverse order: identical answer.
        let rev = uncovered_fraction(&[w(20, 50), w(10, 40)], lo, hi);
        assert_eq!(frac, rev);
    }

    #[test]
    fn partition_severs_only_across_the_cut() {
        let p = IspPartition {
            window: w(10, 20),
            side_a: vec![Isp::Telecom, Isp::Unicom],
            side_b: vec![Isp::Netcom],
        };
        let during = SimTime::ORIGIN + SimDuration::from_mins(15);
        let after = SimTime::ORIGIN + SimDuration::from_mins(25);
        assert!(p.severs(Isp::Telecom, Isp::Netcom, during));
        assert!(p.severs(Isp::Netcom, Isp::Unicom, during), "symmetric");
        assert!(!p.severs(Isp::Telecom, Isp::Unicom, during), "same side");
        assert!(!p.severs(Isp::Telecom, Isp::Edu, during), "uninvolved ISP");
        assert!(!p.severs(Isp::Telecom, Isp::Netcom, after), "window over");
    }
}
