//! Simulator configuration.

use crate::error::ConfigError;
use magellan_netsim::{CapacityModel, IspShares, LinkModel, SimDuration};

/// All protocol and model parameters of the overlay simulation.
///
/// Defaults implement the UUSee protocol as §3.1 describes it; the
/// `random_selection` / `disable_volunteer` switches exist for the
/// ablation benches that knock out one mechanism at a time.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Simulation tick. Transfers, selection, and gossip run per
    /// tick; reports follow their own 20/10-minute schedule. Must
    /// divide the 10-minute report interval.
    pub tick: SimDuration,
    /// Maximum partners handed out at bootstrap (paper: "up to 50").
    pub max_bootstrap_partners: usize,
    /// Upper bound on a peer's partner list; beyond it the worst
    /// non-active partners are pruned.
    pub max_partners: usize,
    /// Number of suppliers a peer requests blocks from (paper:
    /// "around 30").
    pub target_suppliers: usize,
    /// Segment size in kilobits (10 KB segments → 80 kbit; at the
    /// 400 Kbps channel rate that is 5 segments per second).
    pub segment_kbits: f64,
    /// Sliding-window length in segments.
    pub window_segments: u32,
    /// EWMA factor for per-link throughput estimates (weight of the
    /// newest observation).
    pub throughput_ewma: f64,
    /// Upload utilization below which a peer volunteers at the
    /// tracker (sustained for `sustain_ticks`).
    pub volunteer_utilization: f64,
    /// Receive rate (as a fraction of the channel rate) below which a
    /// peer falls back to the tracker for more partners (sustained).
    pub fallback_quality: f64,
    /// How many consecutive ticks a condition must hold to trigger
    /// volunteering or tracker fallback.
    pub sustain_ticks: u32,
    /// Partners recommended per gossip exchange.
    pub gossip_fanout: usize,
    /// Gossip is demand-driven: a peer solicits recommendations only
    /// while its partner list is below this size (churn then keeps
    /// counts drifting below it, as the paper observes partner counts
    /// decaying from the bootstrap 50).
    pub gossip_target_partners: usize,
    /// Exponent applied to request weights in the transfer engine:
    /// higher values concentrate block requests on fewer suppliers,
    /// pulling the *active* indegree below the ~30 requested partners
    /// (the paper measures a spike near 10).
    pub request_concentration: f64,
    /// Partners handed out per tracker fallback request.
    pub fallback_partners: usize,
    /// Streaming servers per channel.
    pub servers_per_channel: usize,
    /// Upload capacity of each streaming server, in multiples of the
    /// channel rate (how many direct viewers one server can feed).
    pub server_capacity_streams: f64,
    /// Underlay path-quality model.
    pub link_model: LinkModel,
    /// Access-capacity model.
    pub capacity_model: CapacityModel,
    /// ISP population shares for the address allocator.
    pub isp_shares: IspShares,
    /// EXTENSION (paper future work): fraction of each tracker
    /// bootstrap drawn from the joiner's own ISP (0.0 reproduces the
    /// paper's ISP-oblivious tracker).
    pub tracker_locality_fraction: f64,
    /// ABLATION: ignore measured link quality and select partners
    /// uniformly at random.
    pub random_selection: bool,
    /// ABLATION: disable the volunteer mechanism (tracker bootstraps
    /// from the whole membership instead).
    pub disable_volunteer: bool,
    /// RESILIENCE: base bootstrap-retry delay in ticks when the
    /// tracker is unreachable; successive failures back off
    /// exponentially (doubling) up to `bootstrap_retry_cap_ticks`.
    pub bootstrap_retry_ticks: u32,
    /// RESILIENCE: cap on the exponential bootstrap-retry backoff, in
    /// ticks.
    pub bootstrap_retry_cap_ticks: u32,
    /// RESILIENCE: consecutive silent ticks after which a partner is
    /// declared dead (transfer timeout) and replaced — how crashed
    /// peers are discovered, since they send no leave message.
    pub partner_timeout_ticks: u32,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            tick: SimDuration::from_mins(5),
            max_bootstrap_partners: 50,
            max_partners: 80,
            target_suppliers: 30,
            segment_kbits: 80.0,
            window_segments: 150,
            throughput_ewma: 0.3,
            volunteer_utilization: 0.7,
            fallback_quality: 0.9,
            sustain_ticks: 2,
            gossip_fanout: 6,
            gossip_target_partners: 45,
            request_concentration: 2.5,
            fallback_partners: 10,
            servers_per_channel: 1,
            server_capacity_streams: 25.0,
            link_model: LinkModel::default(),
            capacity_model: CapacityModel::default(),
            isp_shares: IspShares::default(),
            tracker_locality_fraction: 0.0,
            random_selection: false,
            disable_volunteer: false,
            bootstrap_retry_ticks: 1,
            bootstrap_retry_cap_ticks: 16,
            partner_timeout_ticks: 3,
        }
    }
}

impl SimConfig {
    /// Segments the channel stream advances per tick at `rate_kbps`.
    pub fn stream_segments_per_tick(&self, rate_kbps: f64) -> f64 {
        rate_kbps * self.tick.as_secs_f64() / self.segment_kbits
    }

    /// Converts an upload/download capacity into a per-tick segment
    /// budget.
    pub fn capacity_segments_per_tick(&self, kbps: f64) -> f64 {
        kbps * self.tick.as_secs_f64() / self.segment_kbits
    }

    /// Converts segments transferred in one tick into Kbps.
    pub fn segments_to_kbps(&self, segments: f64) -> f64 {
        segments * self.segment_kbits / self.tick.as_secs_f64()
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when the tick does not divide the
    /// 10-minute report interval, when bounds are inconsistent (e.g.
    /// more suppliers than partners), or when a fractional knob —
    /// including [`tracker_locality_fraction`](Self::tracker_locality_fraction),
    /// which parameterizes `BootstrapPolicy::locality_fraction` — is
    /// outside `[0, 1]`.
    pub fn validate(&self) -> Result<(), ConfigError> {
        use magellan_trace::REPORT_INTERVAL;
        fn unit(what: &'static str, value: f64) -> Result<(), ConfigError> {
            if value.is_finite() && (0.0..=1.0).contains(&value) {
                Ok(())
            } else {
                Err(ConfigError::OutOfRange {
                    what,
                    value,
                    lo: 0.0,
                    hi: 1.0,
                })
            }
        }
        fn demand(ok: bool, what: &'static str) -> Result<(), ConfigError> {
            if ok {
                Ok(())
            } else {
                Err(ConfigError::Inconsistent { what })
            }
        }
        demand(
            REPORT_INTERVAL.as_millis() % self.tick.as_millis() == 0,
            "tick must divide the 10-minute report interval",
        )?;
        demand(
            self.target_suppliers <= self.max_partners,
            "target_suppliers exceeds max_partners",
        )?;
        demand(
            self.max_bootstrap_partners <= self.max_partners,
            "max_bootstrap_partners exceeds max_partners",
        )?;
        demand(
            self.segment_kbits.is_finite() && self.segment_kbits > 0.0,
            "segment_kbits must be positive",
        )?;
        unit("throughput_ewma", self.throughput_ewma)?;
        demand(self.sustain_ticks >= 1, "sustain_ticks must be at least 1")?;
        demand(
            self.servers_per_channel >= 1,
            "servers_per_channel must be at least 1",
        )?;
        demand(
            self.gossip_target_partners <= self.max_partners,
            "gossip_target_partners exceeds max_partners",
        )?;
        demand(
            self.request_concentration.is_finite() && self.request_concentration >= 1.0,
            "request_concentration must be at least 1",
        )?;
        unit("tracker_locality_fraction", self.tracker_locality_fraction)?;
        demand(
            self.bootstrap_retry_ticks >= 1,
            "bootstrap_retry_ticks must be at least 1",
        )?;
        demand(
            self.bootstrap_retry_cap_ticks >= self.bootstrap_retry_ticks,
            "bootstrap_retry_cap_ticks below bootstrap_retry_ticks",
        )?;
        demand(
            self.partner_timeout_ticks >= 1,
            "partner_timeout_ticks must be at least 1",
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        SimConfig::default().validate().unwrap();
    }

    #[test]
    fn segment_arithmetic_roundtrips() {
        let cfg = SimConfig::default();
        // 400 Kbps for 300 s at 80 kbit/segment = 1500 segments.
        let segs = cfg.stream_segments_per_tick(400.0);
        assert!((segs - 1500.0).abs() < 1e-9);
        assert!((cfg.segments_to_kbps(segs) - 400.0).abs() < 1e-9);
        assert!((cfg.capacity_segments_per_tick(400.0) - 1500.0).abs() < 1e-9);
    }

    #[test]
    fn tick_must_divide_report_interval() {
        let cfg = SimConfig {
            tick: SimDuration::from_mins(3),
            ..SimConfig::default()
        };
        let err = cfg.validate().unwrap_err();
        assert!(err.to_string().contains("report interval"), "{err}");
    }

    #[test]
    fn suppliers_cannot_exceed_partners() {
        let cfg = SimConfig {
            target_suppliers: 100,
            max_partners: 50,
            ..SimConfig::default()
        };
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::Inconsistent { .. })
        ));
    }

    #[test]
    fn locality_fraction_is_range_checked() {
        for bad in [-0.1, 1.1, f64::NAN] {
            let cfg = SimConfig {
                tracker_locality_fraction: bad,
                ..SimConfig::default()
            };
            assert!(
                matches!(
                    cfg.validate(),
                    Err(ConfigError::OutOfRange { what, .. })
                        if what == "tracker_locality_fraction"
                ),
                "accepted locality_fraction = {bad}"
            );
        }
    }

    #[test]
    fn resilience_knobs_are_validated() {
        let cfg = SimConfig {
            bootstrap_retry_ticks: 0,
            ..SimConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = SimConfig {
            bootstrap_retry_ticks: 8,
            bootstrap_retry_cap_ticks: 4,
            ..SimConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = SimConfig {
            partner_timeout_ticks: 0,
            ..SimConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn config_equality_detects_knob_changes() {
        // `SimConfig` derives `PartialEq` so experiment harnesses can
        // assert two runs really used the same protocol parameters.
        let a = SimConfig::default();
        let b = SimConfig::default();
        assert_eq!(a, b);
        let c = SimConfig {
            partner_timeout_ticks: 5,
            ..SimConfig::default()
        };
        assert_ne!(a, c);
    }
}
