//! Typed failures of the simulation engine.
//!
//! The engine's failure modes used to be `unwrap()`/`expect(` calls
//! scattered through the tick loop; they are now explicit values, so
//! callers can distinguish "the scenario is inconsistent" (a
//! configuration bug worth a clean abort and message) from "the trace
//! layer rejected a report" (a protocol bug).

use magellan_workload::ChannelId;
use std::fmt;

/// A block-transfer tick could not run.
#[derive(Debug, Clone, PartialEq)]
pub enum TransferError {
    /// A live peer is tuned to a channel the rate function does not
    /// know. Every peer joins through a scenario channel, so this
    /// means the caller passed an inconsistent rate table.
    UnknownChannel(ChannelId),
    /// A channel's stream rate is non-finite or non-positive, which
    /// would corrupt every downstream throughput figure.
    InvalidRate {
        /// The offending channel.
        channel: ChannelId,
        /// The rate it reported, in Kbps.
        rate_kbps: f64,
    },
}

impl fmt::Display for TransferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransferError::UnknownChannel(ch) => {
                write!(f, "no stream rate known for channel {ch:?}")
            }
            TransferError::InvalidRate { channel, rate_kbps } => {
                write!(
                    f,
                    "channel {channel:?} has invalid stream rate {rate_kbps} Kbps"
                )
            }
        }
    }
}

impl std::error::Error for TransferError {}

/// A configuration value failed validation.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// A numeric knob is outside its legal range.
    OutOfRange {
        /// Which knob failed.
        what: &'static str,
        /// The value it had.
        value: f64,
        /// Inclusive lower bound.
        lo: f64,
        /// Inclusive upper bound.
        hi: f64,
    },
    /// Two or more knobs are mutually inconsistent.
    Inconsistent {
        /// What the inconsistency is.
        what: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::OutOfRange {
                what,
                value,
                lo,
                hi,
            } => {
                write!(f, "config {what} = {value} is outside [{lo}, {hi}]")
            }
            ConfigError::Inconsistent { what } => {
                write!(f, "inconsistent config: {what}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// A simulation run aborted.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The transfer engine hit an inconsistency.
    Transfer(TransferError),
    /// The validating trace server rejected a simulator-generated
    /// report — the report builder and the §3.2 schema disagree.
    ReportRejected {
        /// The server's rejection reason.
        reason: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Transfer(e) => write!(f, "transfer tick failed: {e}"),
            SimError::ReportRejected { reason } => {
                write!(f, "trace server rejected a simulated report: {reason}")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Transfer(e) => Some(e),
            SimError::ReportRejected { .. } => None,
        }
    }
}

impl From<TransferError> for SimError {
    fn from(e: TransferError) -> Self {
        SimError::Transfer(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_channel() {
        let e = TransferError::UnknownChannel(ChannelId(3));
        assert!(e.to_string().contains("ChannelId(3)"));
        let s: SimError = e.into();
        assert!(s.to_string().contains("transfer tick failed"));
    }

    #[test]
    fn sim_error_exposes_source() {
        use std::error::Error as _;
        let s: SimError = TransferError::InvalidRate {
            channel: ChannelId(1),
            rate_kbps: f64::NAN,
        }
        .into();
        assert!(s.source().is_some());
        let r = SimError::ReportRejected {
            reason: "bad".into(),
        };
        assert!(r.source().is_none());
    }
}
