//! The per-tick block-transfer engine.
//!
//! Every tick, each peer requests segments from its selected
//! suppliers in proportion to their estimated goodput; each supplier
//! splits its upload budget over the requests it received; each
//! directed flow is further capped by the sampled path ceiling and
//! discounted by the supplier's buffer occupancy (a peer can only
//! forward what it holds — servers hold everything). The outcome
//! updates receive/send rates, buffer occupancy, per-link EWMA
//! estimates, and the per-interval segment counters that end up in
//! trace reports.
//!
//! Reciprocity is emergent: two mid-stream peers both hold partial,
//! complementary windows, so flows run in both directions; a freshly
//! joined peer (empty buffer) can receive but not yet supply.

use crate::config::SimConfig;
use crate::error::TransferError;
use crate::peer::{PeerId, PeerState};
use magellan_workload::ChannelId;
use std::collections::BTreeMap;

/// Aggregate outcome of one tick, for instrumentation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TickOutcome {
    /// Total segments moved.
    pub segments: f64,
    /// Number of directed flows that moved at least one segment.
    pub active_flows: usize,
    /// Number of receivers that met their full demand.
    pub satisfied_receivers: usize,
    /// Number of receivers processed.
    pub receivers: usize,
    /// Supplier links skipped because the underlay path was severed
    /// (an active inter-ISP partition).
    pub blocked_flows: usize,
}

/// One receiver→supplier request channel. `want` holds the static
/// allocation weight; `cap` the remaining path capacity (segments).
struct Flow {
    sup: u32,
    rcv: u32,
    want: f64,
    cap: f64,
}

/// A receiver's unmet demand and its request channels.
struct RecvCtx {
    demand: f64,
    links: Vec<Flow>,
}

/// Runs one transfer tick over the peer slab.
///
/// `rate_of` maps a channel to its stream rate in Kbps, returning
/// `None` for channels it does not know. Dead slots (`None` peers)
/// are skipped; links to dead peers contribute nothing (the simulator
/// purges them separately). `link_open` answers whether the underlay
/// path between a receiver's ISP and a supplier's ISP is currently
/// open — an active inter-ISP partition closes it, and closed links
/// carry no segments this tick (counted in
/// [`TickOutcome::blocked_flows`]).
///
/// # Errors
///
/// Fails when a live peer is tuned to an unknown channel or a channel
/// reports a non-finite / non-positive stream rate — both mean the
/// caller's rate table is inconsistent with the peer slab, and any
/// output computed from it would be garbage.
pub fn run_tick<F, L>(
    peers: &mut [Option<PeerState>],
    rate_of: F,
    link_open: L,
    cfg: &SimConfig,
) -> Result<TickOutcome, TransferError>
where
    F: Fn(ChannelId) -> Option<f64>,
    L: Fn(magellan_netsim::Isp, magellan_netsim::Isp) -> bool,
{
    let rate_of = |ch: ChannelId| -> Result<f64, TransferError> {
        let rate = rate_of(ch).ok_or(TransferError::UnknownChannel(ch))?;
        if !rate.is_finite() || rate <= 0.0 {
            return Err(TransferError::InvalidRate {
                channel: ch,
                rate_kbps: rate,
            });
        }
        Ok(rate)
    };
    // Pass A: per-receiver context (demand plus eligible supplier
    // links) and per-supplier budgets/usefulness.
    //
    // Request weights combine the link's goodput estimate with the
    // supplier's advertised buffer occupancy — peers exchange buffer
    // maps periodically (§3.1), so they know who actually holds
    // useful segments. A small floor keeps exploring partners whose
    // buffers are still filling.
    let mut recvs: Vec<RecvCtx> = Vec::new();
    let mut budget_left: BTreeMap<u32, f64> = BTreeMap::new();
    let mut useful: BTreeMap<u32, f64> = BTreeMap::new();
    let mut blocked_flows = 0usize;
    for (j, slot) in peers.iter().enumerate() {
        let Some(p) = slot else { continue };
        if p.is_server {
            continue;
        }
        let rate = rate_of(p.channel)?;
        let demand = p.demand_segments(cfg, rate);
        if demand <= 0.0 {
            continue;
        }
        let links: Vec<Flow> = p
            .partners
            .iter()
            .filter(|(_, l)| l.supplier)
            .filter_map(|(&id, l)| {
                let sup = peers[id.index()].as_ref()?;
                if !link_open(p.isp, sup.isp) {
                    blocked_flows += 1;
                    return None;
                }
                let advertised = if sup.is_server { 1.0 } else { sup.buffer_fill };
                budget_left
                    .entry(id.0)
                    .or_insert_with(|| cfg.capacity_segments_per_tick(sup.capacity.up_kbps));
                // Receivers aim requests at advertised segments, so
                // delivery is not discounted linearly in occupancy;
                // what remains is the holdings/missing overlap, which
                // only collapses for badly under-filled suppliers —
                // a square root captures that (q=0.25 → 0.5).
                useful.entry(id.0).or_insert_with(|| {
                    if sup.is_server {
                        1.0
                    } else {
                        sup.buffer_fill.max(0.0).sqrt()
                    }
                });
                // Raising the weight to `request_concentration`
                // concentrates requests on the few best partners, as
                // a real block scheduler does — this is what keeps
                // the *active* indegree (Fig. 4B) far below the ~30
                // requested partners. Under the `random_selection`
                // ablation the measured-quality term is dropped
                // entirely (only content availability steers
                // requests), so the ablation removes *all* bandwidth
                // awareness, not just the supplier-set choice.
                let w = if cfg.random_selection {
                    advertised.max(0.02)
                } else {
                    (l.score() * advertised.max(0.02)).max(1e-3)
                };
                Some(Flow {
                    sup: id.0,
                    rcv: j as u32,
                    want: w.powf(cfg.request_concentration),
                    cap: cfg.capacity_segments_per_tick(l.quality.bandwidth_kbps),
                })
            })
            .collect(); // lint:allow(H2): per-receiver flow context, bounded by receivers with demand and their links
        if links.is_empty() {
            continue;
        }
        recvs.push(RecvCtx { demand, links });
    }

    let mut outcome = TickOutcome {
        receivers: recvs.len(),
        blocked_flows,
        ..TickOutcome::default()
    };

    // Passes B/C: iterative request/grant rounds. A tick spans
    // hundreds of real request cycles, so receivers re-aim unmet
    // demand at suppliers that still have budget — a few rounds of
    // proportional waterfilling approximate that.
    const ROUNDS: usize = 3;
    let mut delivered_links: BTreeMap<(u32, u32), f64> = BTreeMap::new();
    // Round-scoped scratch, hoisted so the rounds reuse one
    // allocation instead of rebuilding both per round.
    let mut requested: BTreeMap<u32, f64> = BTreeMap::new();
    let mut round_flows: Vec<(usize, usize, f64)> = Vec::new();
    for _ in 0..ROUNDS {
        requested.clear();
        round_flows.clear();
        for (ri, rc) in recvs.iter().enumerate() {
            if rc.demand <= 1e-6 {
                continue;
            }
            let eligible =
                |l: &Flow| l.cap > 1e-9 && budget_left.get(&l.sup).copied().unwrap_or(0.0) > 1e-9;
            let tw: f64 = rc
                .links
                .iter()
                .filter(|l| eligible(l))
                .map(|l| l.want)
                .sum();
            if tw <= 0.0 {
                continue;
            }
            for (li, l) in rc.links.iter().enumerate() {
                if !eligible(l) {
                    continue;
                }
                let ask = rc.demand * l.want / tw;
                if ask <= 1e-9 {
                    continue;
                }
                *requested.entry(l.sup).or_insert(0.0) += ask;
                round_flows.push((ri, li, ask));
            }
        }
        if round_flows.is_empty() {
            break;
        }
        let scale: BTreeMap<u32, f64> = requested
            .iter()
            .map(|(&sup, &req)| {
                let b = budget_left.get(&sup).copied().unwrap_or(0.0);
                (sup, if req > b { b / req } else { 1.0 })
            })
            .collect(); // lint:allow(H2): the scale snapshot must be taken before budgets drain; bounded by active suppliers
        for (ri, li, ask) in round_flows.drain(..) {
            let sup = recvs[ri].links[li].sup;
            let s = scale.get(&sup).copied().unwrap_or(0.0);
            let u = useful.get(&sup).copied().unwrap_or(0.0);
            let moved = (ask * s).min(recvs[ri].links[li].cap) * u;
            if moved <= 1e-9 {
                continue;
            }
            let rcv = recvs[ri].links[li].rcv;
            *delivered_links.entry((sup, rcv)).or_insert(0.0) += moved;
            recvs[ri].demand = (recvs[ri].demand - moved).max(0.0);
            recvs[ri].links[li].cap -= moved;
            if let Some(b) = budget_left.get_mut(&sup) {
                *b = (*b - moved).max(0.0);
            }
            outcome.segments += moved;
        }
    }

    // Flatten into deterministic per-peer / per-link aggregates.
    let mut link_updates: Vec<(u32, u32, f64)> = delivered_links
        .into_iter()
        .map(|((s, r), m)| (s, r, m))
        .collect(); // lint:allow(H2): flattens delivered flows once per tick, bounded by active links
    link_updates.sort_by_key(|u| (u.0, u.1));
    let mut delivered_to: BTreeMap<u32, f64> = BTreeMap::new();
    let mut sent_by: BTreeMap<u32, f64> = BTreeMap::new();
    for &(sup, rcv, moved) in &link_updates {
        if moved >= 1.0 {
            outcome.active_flows += 1;
        }
        *delivered_to.entry(rcv).or_insert(0.0) += moved;
        *sent_by.entry(sup).or_insert(0.0) += moved;
    }

    // Pass D: apply per-peer effects.
    for (j, slot) in peers.iter_mut().enumerate() {
        let Some(p) = slot else { continue };
        if p.is_server {
            let sent = sent_by.get(&(j as u32)).copied().unwrap_or(0.0);
            p.send_kbps = cfg.segments_to_kbps(sent);
            continue;
        }
        let rate = rate_of(p.channel)?;
        let delivered = delivered_to.get(&(j as u32)).copied().unwrap_or(0.0);
        let demand = p.demand_segments(cfg, rate);
        if delivered + 1e-9 >= demand.min(cfg.stream_segments_per_tick(rate)) && demand > 0.0 {
            outcome.satisfied_receivers += 1;
        }
        p.apply_tick_delivery(cfg, rate, delivered);
        p.send_kbps = cfg.segments_to_kbps(sent_by.get(&(j as u32)).copied().unwrap_or(0.0));
    }

    // Pass E: per-link counters and EWMA estimates, on both endpoints.
    let mut moved_links: std::collections::BTreeSet<(u32, u32)> = std::collections::BTreeSet::new();
    for (sup, rcv, moved) in link_updates {
        moved_links.insert((sup, rcv));
        let segs = moved.round() as u64;
        let rate_kbps = cfg.segments_to_kbps(moved);
        if let Some(Some(r)) = peers.get_mut(rcv as usize) {
            if let Some(link) = r.partners.get_mut(&PeerId(sup)) {
                link.recv_interval += segs;
                link.est_recv_kbps = (1.0 - cfg.throughput_ewma) * link.est_recv_kbps
                    + cfg.throughput_ewma * rate_kbps;
            }
        }
        if let Some(Some(s)) = peers.get_mut(sup as usize) {
            if let Some(link) = s.partners.get_mut(&PeerId(rcv)) {
                link.sent_interval += segs;
            }
        }
    }

    // Pass F: decay the estimate of selected suppliers that delivered
    // nothing this tick. Without this, an untried partner's
    // optimistic prior would permanently outrank a supplier that is
    // actually delivering (the observed rate per link is well below
    // the path ceiling once demand is split 30 ways). A floor of 5 %
    // of the path ceiling keeps failed links re-triable.
    for (j, slot) in peers.iter_mut().enumerate() {
        let Some(p) = slot else { continue };
        if p.is_server {
            continue;
        }
        for (id, link) in p.partners.iter_mut() {
            if link.supplier && !moved_links.contains(&(id.0, j as u32)) {
                link.est_recv_kbps = ((1.0 - cfg.throughput_ewma) * link.est_recv_kbps)
                    .max(0.05 * link.quality.bandwidth_kbps);
            }
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use magellan_netsim::{AccessClass, Isp, LinkQuality, PeerAddr, PeerCapacity, SimTime};
    use magellan_workload::ChannelId;

    const RATE: f64 = 400.0;

    fn cfg() -> SimConfig {
        SimConfig::default()
    }

    fn mk_peer(id: u32, up: f64, down: f64) -> PeerState {
        PeerState::new_peer(
            PeerAddr::from_u32(id),
            Isp::Telecom,
            PeerCapacity {
                down_kbps: down,
                up_kbps: up,
                class: AccessClass::Adsl,
            },
            ChannelId::CCTV1,
            SimTime::ORIGIN,
            SimTime::at(1, 0, 0),
        )
    }

    fn mk_server(id: u32, up: f64) -> PeerState {
        PeerState::new_server(
            PeerAddr::from_u32(id),
            Isp::Telecom,
            up,
            ChannelId::CCTV1,
            SimTime::ORIGIN,
            SimTime::at(14, 0, 0),
        )
    }

    fn link(bw: f64) -> LinkQuality {
        LinkQuality {
            rtt_ms: 30.0,
            bandwidth_kbps: bw,
        }
    }

    /// Connects a (receiver -> supplier) pair on both endpoints and
    /// marks the supplier selected.
    fn connect(peers: &mut [Option<PeerState>], rcv: u32, sup: u32, bw: f64) {
        let now = SimTime::ORIGIN;
        peers[rcv as usize]
            .as_mut()
            .unwrap()
            .add_partner(PeerId(sup), link(bw), now);
        peers[rcv as usize]
            .as_mut()
            .unwrap()
            .partners
            .get_mut(&PeerId(sup))
            .unwrap()
            .supplier = true;
        peers[sup as usize]
            .as_mut()
            .unwrap()
            .add_partner(PeerId(rcv), link(bw), now);
    }

    #[test]
    fn server_feeds_a_lone_peer_at_full_rate() {
        let mut peers = vec![
            Some(mk_server(0, 10_000.0)),
            Some(mk_peer(1, 512.0, 2_000.0)),
        ];
        connect(&mut peers, 1, 0, 5_000.0);
        let out = run_tick(&mut peers, |_| Some(RATE), |_, _| true, &cfg()).expect("rates known");
        let p = peers[1].as_ref().unwrap();
        assert!(
            p.recv_kbps >= RATE * 0.99,
            "receive rate {} below stream rate",
            p.recv_kbps
        );
        assert!(p.buffer_fill > 0.5);
        assert_eq!(out.receivers, 1);
        assert_eq!(out.satisfied_receivers, 1);
        assert!(out.segments > 0.0);
    }

    #[test]
    fn empty_buffered_supplier_delivers_nothing() {
        // Peer 1 requests from peer 2, whose buffer is empty.
        let mut peers = vec![
            None,
            Some(mk_peer(1, 512.0, 2_000.0)),
            Some(mk_peer(2, 512.0, 2_000.0)),
        ];
        connect(&mut peers, 1, 2, 1_000.0);
        let out = run_tick(&mut peers, |_| Some(RATE), |_, _| true, &cfg()).expect("rates known");
        assert_eq!(peers[1].as_ref().unwrap().recv_kbps, 0.0);
        assert_eq!(out.satisfied_receivers, 0);
    }

    #[test]
    fn full_buffered_peer_can_supply() {
        let mut peers = vec![
            Some(mk_peer(0, 512.0, 2_000.0)),
            Some(mk_peer(1, 512.0, 2_000.0)),
        ];
        peers[0].as_mut().unwrap().buffer_fill = 1.0;
        connect(&mut peers, 1, 0, 1_000.0);
        let _ = run_tick(&mut peers, |_| Some(RATE), |_, _| true, &cfg()).expect("rates known");
        let r = peers[1].as_ref().unwrap();
        // The 512 Kbps uplink covers the 400 Kbps stream.
        assert!(r.recv_kbps > 390.0, "recv = {}", r.recv_kbps);
        let s = peers[0].as_ref().unwrap();
        assert!(s.send_kbps > 390.0, "send = {}", s.send_kbps);
    }

    #[test]
    fn oversubscribed_supplier_splits_fairly() {
        // One 512 Kbps supplier, four receivers: each gets ~128 Kbps.
        let mut peers: Vec<Option<PeerState>> = vec![Some(mk_peer(0, 512.0, 2_000.0))];
        peers[0].as_mut().unwrap().buffer_fill = 1.0;
        for i in 1..=4 {
            peers.push(Some(mk_peer(i, 512.0, 2_000.0)));
        }
        for i in 1..=4 {
            connect(&mut peers, i, 0, 1_000.0);
        }
        let _ = run_tick(&mut peers, |_| Some(RATE), |_, _| true, &cfg()).expect("rates known");
        let sup = peers[0].as_ref().unwrap();
        assert!(
            sup.send_kbps <= 512.0 * 1.01,
            "supplier exceeded capacity: {}",
            sup.send_kbps
        );
        for (i, slot) in peers.iter().enumerate().skip(1).take(4) {
            let r = slot.as_ref().unwrap();
            assert!(
                (r.recv_kbps - 128.0).abs() < 15.0,
                "receiver {i} got {}",
                r.recv_kbps
            );
        }
    }

    #[test]
    fn path_ceiling_caps_a_flow() {
        let mut peers = vec![
            Some(mk_server(0, 100_000.0)),
            Some(mk_peer(1, 512.0, 5_000.0)),
        ];
        connect(&mut peers, 1, 0, 100.0); // terrible path: 100 Kbps
        let _ = run_tick(&mut peers, |_| Some(RATE), |_, _| true, &cfg()).expect("rates known");
        let r = peers[1].as_ref().unwrap();
        assert!(r.recv_kbps <= 105.0, "recv = {}", r.recv_kbps);
    }

    #[test]
    fn interval_counters_accumulate_on_both_ends() {
        let mut peers = vec![
            Some(mk_server(0, 10_000.0)),
            Some(mk_peer(1, 512.0, 2_000.0)),
        ];
        connect(&mut peers, 1, 0, 5_000.0);
        let _ = run_tick(&mut peers, |_| Some(RATE), |_, _| true, &cfg()).expect("rates known");
        let recv = peers[1].as_ref().unwrap().partners[&PeerId(0)].recv_interval;
        let sent = peers[0].as_ref().unwrap().partners[&PeerId(1)].sent_interval;
        assert!(recv > 0);
        assert_eq!(recv, sent);
    }

    #[test]
    fn ewma_estimate_tracks_observation() {
        let mut peers = vec![
            Some(mk_server(0, 10_000.0)),
            Some(mk_peer(1, 512.0, 2_000.0)),
        ];
        connect(&mut peers, 1, 0, 5_000.0);
        let before = peers[1].as_ref().unwrap().partners[&PeerId(0)].est_recv_kbps;
        let _ = run_tick(&mut peers, |_| Some(RATE), |_, _| true, &cfg()).expect("rates known");
        let after = peers[1].as_ref().unwrap().partners[&PeerId(0)].est_recv_kbps;
        // Observation (~stream-rate share) is far below the 5000 prior.
        assert!(
            after < before,
            "estimate did not adapt: {before} -> {after}"
        );
    }

    #[test]
    fn dead_suppliers_are_ignored() {
        let mut peers = vec![
            Some(mk_server(0, 10_000.0)),
            Some(mk_peer(1, 512.0, 2_000.0)),
        ];
        connect(&mut peers, 1, 0, 5_000.0);
        peers[0] = None; // supplier vanished
        let out = run_tick(&mut peers, |_| Some(RATE), |_, _| true, &cfg()).expect("rates known");
        assert_eq!(out.segments, 0.0);
        assert_eq!(peers[1].as_ref().unwrap().recv_kbps, 0.0);
    }

    #[test]
    fn reciprocal_pair_exchanges_both_ways() {
        let mut peers = vec![
            Some(mk_peer(0, 512.0, 2_000.0)),
            Some(mk_peer(1, 512.0, 2_000.0)),
        ];
        peers[0].as_mut().unwrap().buffer_fill = 0.8;
        peers[1].as_mut().unwrap().buffer_fill = 0.8;
        connect(&mut peers, 1, 0, 1_000.0);
        connect(&mut peers, 0, 1, 1_000.0);
        let out = run_tick(&mut peers, |_| Some(RATE), |_, _| true, &cfg()).expect("rates known");
        assert!(out.active_flows >= 2, "flows = {}", out.active_flows);
        let a = &peers[0].as_ref().unwrap().partners[&PeerId(1)];
        let b = &peers[1].as_ref().unwrap().partners[&PeerId(0)];
        assert!(a.recv_interval > 10 && a.sent_interval > 10, "{a:?}");
        assert!(b.recv_interval > 10 && b.sent_interval > 10, "{b:?}");
    }

    #[test]
    fn random_selection_ablation_ignores_link_quality() {
        // Two suppliers, same occupancy, very different path quality:
        // with the ablation on, requests split evenly.
        let mk = |peers: &mut Vec<Option<PeerState>>| {
            peers[0].as_mut().unwrap().buffer_fill = 1.0;
            peers[1].as_mut().unwrap().buffer_fill = 1.0;
        };
        let run = |random: bool| {
            let cfg = SimConfig {
                random_selection: random,
                ..SimConfig::default()
            };
            let mut peers = vec![
                Some(mk_peer(0, 512.0, 2_000.0)),
                Some(mk_peer(1, 512.0, 2_000.0)),
                Some(mk_peer(2, 512.0, 2_000.0)),
            ];
            mk(&mut peers);
            connect(&mut peers, 2, 0, 5_000.0); // excellent path
            connect(&mut peers, 2, 1, 200.0); // poor path
            let _ = run_tick(&mut peers, |_| Some(RATE), |_, _| true, &cfg).expect("rates known");
            let a = peers[2].as_ref().unwrap().partners[&PeerId(0)].recv_interval as f64;
            let b = peers[2].as_ref().unwrap().partners[&PeerId(1)].recv_interval as f64;
            (a, b)
        };
        let (qa, qb) = run(false);
        assert!(
            qa > qb * 3.0,
            "quality mode did not concentrate: {qa} vs {qb}"
        );
        let (ra, rb) = run(true);
        // Even split up to the poor path's ceiling; the good path may
        // absorb spillover, so allow a wide band — just not the
        // quality-mode concentration.
        assert!(ra < rb * 3.0, "ablation still concentrated: {ra} vs {rb}");
        assert!(rb > 0.0);
    }

    #[test]
    fn empty_slab_is_a_noop() {
        let mut peers: Vec<Option<PeerState>> = vec![None, None];
        let out = run_tick(&mut peers, |_| Some(RATE), |_, _| true, &cfg()).expect("rates known");
        assert_eq!(out, TickOutcome::default());
    }
}
