//! The per-tick block-transfer engine.
//!
//! Every tick, each peer requests segments from its selected
//! suppliers in proportion to their estimated goodput; each supplier
//! splits its upload budget over the requests it received; each
//! directed flow is further capped by the sampled path ceiling and
//! discounted by the supplier's buffer occupancy (a peer can only
//! forward what it holds — servers hold everything). The outcome
//! updates receive/send rates, buffer occupancy, per-link EWMA
//! estimates, and the per-interval segment counters that end up in
//! trace reports.
//!
//! Reciprocity is emergent: two mid-stream peers both hold partial,
//! complementary windows, so flows run in both directions; a freshly
//! joined peer (empty buffer) can receive but not yet supply.

use crate::config::SimConfig;
use crate::error::TransferError;
use crate::peer::PeerState;
use magellan_workload::ChannelId;

/// Aggregate outcome of one tick, for instrumentation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TickOutcome {
    /// Total segments moved.
    pub segments: f64,
    /// Number of directed flows that moved at least one segment.
    pub active_flows: usize,
    /// Number of receivers that met their full demand.
    pub satisfied_receivers: usize,
    /// Number of receivers processed.
    pub receivers: usize,
    /// Supplier links skipped because the underlay path was severed
    /// (an active inter-ISP partition).
    pub blocked_flows: usize,
}

/// One receiver→supplier request channel. `want` holds the static
/// allocation weight; `cap` the remaining path capacity (segments).
struct Flow {
    sup: u32,
    rcv: u32,
    want: f64,
    cap: f64,
}

/// A receiver's unmet demand and its request-channel range in the
/// tick's flattened flow arena (one allocation for the whole tick
/// instead of one `Vec` per receiver).
struct RecvCtx {
    demand: f64,
    lo: u32,
    hi: u32,
}

/// Runs one transfer tick over the peer slab.
///
/// `rate_of` maps a channel to its stream rate in Kbps, returning
/// `None` for channels it does not know. Dead slots (`None` peers)
/// are skipped; links to dead peers contribute nothing (the simulator
/// purges them separately). `link_open` answers whether the underlay
/// path between a receiver's ISP and a supplier's ISP is currently
/// open — an active inter-ISP partition closes it, and closed links
/// carry no segments this tick (counted in
/// [`TickOutcome::blocked_flows`]).
///
/// # Errors
///
/// Fails when a live peer is tuned to an unknown channel or a channel
/// reports a non-finite / non-positive stream rate — both mean the
/// caller's rate table is inconsistent with the peer slab, and any
/// output computed from it would be garbage.
pub fn run_tick<F, L>(
    peers: &mut [Option<PeerState>],
    rate_of: F,
    link_open: L,
    cfg: &SimConfig,
) -> Result<TickOutcome, TransferError>
where
    F: Fn(ChannelId) -> Option<f64>,
    L: Fn(magellan_netsim::Isp, magellan_netsim::Isp) -> bool,
{
    let rate_of = |ch: ChannelId| -> Result<f64, TransferError> {
        let rate = rate_of(ch).ok_or(TransferError::UnknownChannel(ch))?;
        if !rate.is_finite() || rate <= 0.0 {
            return Err(TransferError::InvalidRate {
                channel: ch,
                rate_kbps: rate,
            });
        }
        Ok(rate)
    };
    // Pass A: per-receiver context (demand plus eligible supplier
    // links) and per-supplier budgets/usefulness.
    //
    // All per-supplier state lives in dense slab-indexed arrays:
    // slot ids are already dense, and the request/grant rounds below
    // touch each entry many times per tick, so O(1) indexing replaces
    // the tree walks that used to dominate the tick. `NAN` marks "no
    // budget entry yet", preserving the lazy-insert semantics of the
    // keyed map this replaces (NaN fails every `> 1e-9` eligibility
    // test exactly as an absent key did).
    //
    // Request weights combine the link's goodput estimate with the
    // supplier's advertised buffer occupancy — peers exchange buffer
    // maps periodically (§3.1), so they know who actually holds
    // useful segments. A small floor keeps exploring partners whose
    // buffers are still filling.
    let n = peers.len();
    let mut budget_left = vec![f64::NAN; n];
    let mut useful = vec![0.0f64; n];
    let mut flows: Vec<Flow> = Vec::new();
    let mut recvs: Vec<RecvCtx> = Vec::new();
    let mut blocked_flows = 0usize;
    for (j, slot) in peers.iter().enumerate() {
        let Some(p) = slot else { continue };
        if p.is_server {
            continue;
        }
        let rate = rate_of(p.channel)?;
        let demand = p.demand_segments(cfg, rate);
        if demand <= 0.0 {
            continue;
        }
        let lo = flows.len();
        for (&id, l) in p.partners.iter().filter(|(_, l)| l.supplier) {
            let Some(sup) = peers[id.index()].as_ref() else {
                continue;
            };
            if !link_open(p.isp, sup.isp) {
                blocked_flows += 1;
                continue;
            }
            let advertised = if sup.is_server { 1.0 } else { sup.buffer_fill };
            if budget_left[id.index()].is_nan() {
                budget_left[id.index()] = cfg.capacity_segments_per_tick(sup.capacity.up_kbps);
                // Receivers aim requests at advertised segments, so
                // delivery is not discounted linearly in occupancy;
                // what remains is the holdings/missing overlap, which
                // only collapses for badly under-filled suppliers —
                // a square root captures that (q=0.25 → 0.5).
                useful[id.index()] = if sup.is_server {
                    1.0
                } else {
                    sup.buffer_fill.max(0.0).sqrt()
                };
            }
            // Raising the weight to `request_concentration`
            // concentrates requests on the few best partners, as
            // a real block scheduler does — this is what keeps
            // the *active* indegree (Fig. 4B) far below the ~30
            // requested partners. Under the `random_selection`
            // ablation the measured-quality term is dropped
            // entirely (only content availability steers
            // requests), so the ablation removes *all* bandwidth
            // awareness, not just the supplier-set choice.
            let w = if cfg.random_selection {
                advertised.max(0.02)
            } else {
                (l.score() * advertised.max(0.02)).max(1e-3)
            };
            flows.push(Flow {
                sup: id.0,
                rcv: j as u32,
                want: w.powf(cfg.request_concentration),
                cap: cfg.capacity_segments_per_tick(l.quality.bandwidth_kbps),
            });
        }
        if flows.len() == lo {
            continue;
        }
        recvs.push(RecvCtx {
            demand,
            lo: lo as u32,
            hi: flows.len() as u32,
        });
    }

    let mut outcome = TickOutcome {
        receivers: recvs.len(),
        blocked_flows,
        ..TickOutcome::default()
    };

    // Passes B/C: iterative request/grant rounds. A tick spans
    // hundreds of real request cycles, so receivers re-aim unmet
    // demand at suppliers that still have budget — a few rounds of
    // proportional waterfilling approximate that.
    const ROUNDS: usize = 3;
    // Per-link delivery totals, parallel to `flows`. Each (supplier,
    // receiver) pair owns exactly one arena entry, so accumulating
    // here sums a link's increments in arrival order — the same order
    // a keyed map's entry API produced, hence identical float totals.
    let mut flow_moved = vec![0.0f64; flows.len()];
    // Round-scoped dense scratch, hoisted so the rounds reuse the
    // allocations; `touched` lists the suppliers requested this round
    // so the reset costs O(touched), not O(slab).
    let mut requested = vec![0.0f64; n];
    let mut scale = vec![0.0f64; n];
    let mut touched: Vec<u32> = Vec::new();
    let mut round_flows: Vec<(u32, u32, f64)> = Vec::new();
    for _ in 0..ROUNDS {
        for &s in &touched {
            requested[s as usize] = 0.0;
        }
        touched.clear();
        round_flows.clear();
        for (ri, rc) in recvs.iter().enumerate() {
            if rc.demand <= 1e-6 {
                continue;
            }
            let links = &flows[rc.lo as usize..rc.hi as usize];
            let eligible = |l: &Flow| l.cap > 1e-9 && budget_left[l.sup as usize] > 1e-9;
            let tw: f64 = links.iter().filter(|l| eligible(l)).map(|l| l.want).sum();
            if tw <= 0.0 {
                continue;
            }
            for (off, l) in links.iter().enumerate() {
                if !eligible(l) {
                    continue;
                }
                let ask = rc.demand * l.want / tw;
                if ask <= 1e-9 {
                    continue;
                }
                // Asks are strictly positive, so a zero entry means
                // "first request for this supplier this round".
                if requested[l.sup as usize] == 0.0 {
                    touched.push(l.sup);
                }
                requested[l.sup as usize] += ask;
                round_flows.push((ri as u32, rc.lo + off as u32, ask));
            }
        }
        if round_flows.is_empty() {
            break;
        }
        // The scale snapshot must be taken before budgets drain.
        for &s in &touched {
            let b = budget_left[s as usize];
            let req = requested[s as usize];
            scale[s as usize] = if req > b { b / req } else { 1.0 };
        }
        for &(ri, fi, ask) in &round_flows {
            let (sup, cap) = {
                let f = &flows[fi as usize];
                (f.sup, f.cap)
            };
            let moved = (ask * scale[sup as usize]).min(cap) * useful[sup as usize];
            if moved <= 1e-9 {
                continue;
            }
            flow_moved[fi as usize] += moved;
            recvs[ri as usize].demand = (recvs[ri as usize].demand - moved).max(0.0);
            flows[fi as usize].cap -= moved;
            budget_left[sup as usize] = (budget_left[sup as usize] - moved).max(0.0);
            outcome.segments += moved;
        }
    }

    // Flatten into deterministic per-peer aggregates. The flow arena
    // is in (receiver, supplier) order (receivers in slab order, each
    // one's partner table in ascending id order), so both sums below
    // visit a peer's links in ascending-counterpart order — the same
    // order the sorted per-link map produced, hence identical sums.
    let mut delivered_to = vec![0.0f64; n];
    let mut sent_by = vec![0.0f64; n];
    for (f, &moved) in flows.iter().zip(&flow_moved) {
        if moved <= 0.0 {
            continue;
        }
        if moved >= 1.0 {
            outcome.active_flows += 1;
        }
        delivered_to[f.rcv as usize] += moved;
        sent_by[f.sup as usize] += moved;
    }

    // Pass D: apply per-peer effects.
    for (j, slot) in peers.iter_mut().enumerate() {
        let Some(p) = slot else { continue };
        if p.is_server {
            p.send_kbps = cfg.segments_to_kbps(sent_by[j]);
            continue;
        }
        let rate = rate_of(p.channel)?;
        let delivered = delivered_to[j];
        let demand = p.demand_segments(cfg, rate);
        if delivered + 1e-9 >= demand.min(cfg.stream_segments_per_tick(rate)) && demand > 0.0 {
            outcome.satisfied_receivers += 1;
        }
        p.apply_tick_delivery(cfg, rate, delivered);
        p.send_kbps = cfg.segments_to_kbps(sent_by[j]);
    }

    // Passes E/F, fused: per-link counters and EWMA estimates on both
    // endpoints, plus the decay of selected suppliers that delivered
    // nothing this tick. Without the decay, an untried partner's
    // optimistic prior would permanently outrank a supplier that is
    // actually delivering (the observed rate per link is well below
    // the path ceiling once demand is split 30 ways); a floor of 5 %
    // of the path ceiling keeps failed links re-triable. The two
    // passes touch disjoint per-link state (a selected supplier link
    // either delivered — E updates it — or did not — F decays it), so
    // fusing them changes nothing observable.
    //
    // The flow arena is already in (receiver, supplier) order; the
    // supplier-side view is derived with a stable counting sort over
    // the delivering flows (`by_sup`, sorted by (supplier, receiver)).
    // The peer slab and every partner table are both walked in
    // ascending order, so each peer's incoming and outgoing
    // deliveries merge with its partner walk via monotone cursors —
    // no per-link map lookups.
    let mut sup_start = vec![0u32; n + 1];
    for (f, &moved) in flows.iter().zip(&flow_moved) {
        if moved > 0.0 {
            sup_start[f.sup as usize + 1] += 1;
        }
    }
    for s in 1..=n {
        sup_start[s] += sup_start[s - 1];
    }
    let mut by_sup = vec![0u32; sup_start[n] as usize];
    let mut sup_fill = sup_start.clone(); // lint:allow(H2): counting-sort cursor copy, one per tick, bounded by the slab
    for (fi, (f, &moved)) in flows.iter().zip(&flow_moved).enumerate() {
        if moved > 0.0 {
            let c = &mut sup_fill[f.sup as usize];
            by_sup[*c as usize] = fi as u32;
            *c += 1;
        }
    }
    let mut in_cursor = 0usize;
    for (j, slot) in peers.iter_mut().enumerate() {
        let j32 = j as u32;
        // This slot's outgoing deliveries (ascending receiver) and
        // incoming request channels (ascending supplier; entries that
        // moved nothing stay — they drive the estimate decay below).
        let outgoing = &by_sup[sup_start[j] as usize..sup_start[j + 1] as usize];
        let in_lo = in_cursor;
        while in_cursor < flows.len() && flows[in_cursor].rcv == j32 {
            in_cursor += 1;
        }
        let in_hi = in_cursor;
        let Some(p) = slot else { continue };
        let is_server = p.is_server;
        let mut oi = 0usize;
        let mut ii = in_lo;
        for (pid, link) in p.partners.iter_mut() {
            // Supplier side: segments j sent to this partner.
            while oi < outgoing.len() && flows[outgoing[oi] as usize].rcv < pid.0 {
                oi += 1;
            }
            if oi < outgoing.len() && flows[outgoing[oi] as usize].rcv == pid.0 {
                link.sent_interval += flow_moved[outgoing[oi] as usize].round() as u64;
            }
            // Receiver side: segments j received from this partner,
            // or the decay of a selected supplier that sent nothing.
            while ii < in_hi && flows[ii].sup < pid.0 {
                ii += 1;
            }
            if ii < in_hi && flows[ii].sup == pid.0 && flow_moved[ii] > 0.0 {
                let moved = flow_moved[ii];
                link.recv_interval += moved.round() as u64;
                link.est_recv_kbps = (1.0 - cfg.throughput_ewma) * link.est_recv_kbps
                    + cfg.throughput_ewma * cfg.segments_to_kbps(moved);
            } else if !is_server && link.supplier {
                link.est_recv_kbps = ((1.0 - cfg.throughput_ewma) * link.est_recv_kbps)
                    .max(0.05 * link.quality.bandwidth_kbps);
            }
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peer::PeerId;
    use magellan_netsim::{AccessClass, Isp, LinkQuality, PeerAddr, PeerCapacity, SimTime};
    use magellan_workload::ChannelId;

    const RATE: f64 = 400.0;

    fn cfg() -> SimConfig {
        SimConfig::default()
    }

    fn mk_peer(id: u32, up: f64, down: f64) -> PeerState {
        PeerState::new_peer(
            PeerAddr::from_u32(id),
            Isp::Telecom,
            PeerCapacity {
                down_kbps: down,
                up_kbps: up,
                class: AccessClass::Adsl,
            },
            ChannelId::CCTV1,
            SimTime::ORIGIN,
            SimTime::at(1, 0, 0),
        )
    }

    fn mk_server(id: u32, up: f64) -> PeerState {
        PeerState::new_server(
            PeerAddr::from_u32(id),
            Isp::Telecom,
            up,
            ChannelId::CCTV1,
            SimTime::ORIGIN,
            SimTime::at(14, 0, 0),
        )
    }

    fn link(bw: f64) -> LinkQuality {
        LinkQuality {
            rtt_ms: 30.0,
            bandwidth_kbps: bw,
        }
    }

    /// Connects a (receiver -> supplier) pair on both endpoints and
    /// marks the supplier selected.
    fn connect(peers: &mut [Option<PeerState>], rcv: u32, sup: u32, bw: f64) {
        let now = SimTime::ORIGIN;
        peers[rcv as usize]
            .as_mut()
            .unwrap()
            .add_partner(PeerId(sup), link(bw), now);
        peers[rcv as usize]
            .as_mut()
            .unwrap()
            .partners
            .get_mut(&PeerId(sup))
            .unwrap()
            .supplier = true;
        peers[sup as usize]
            .as_mut()
            .unwrap()
            .add_partner(PeerId(rcv), link(bw), now);
    }

    #[test]
    fn server_feeds_a_lone_peer_at_full_rate() {
        let mut peers = vec![
            Some(mk_server(0, 10_000.0)),
            Some(mk_peer(1, 512.0, 2_000.0)),
        ];
        connect(&mut peers, 1, 0, 5_000.0);
        let out = run_tick(&mut peers, |_| Some(RATE), |_, _| true, &cfg()).expect("rates known");
        let p = peers[1].as_ref().unwrap();
        assert!(
            p.recv_kbps >= RATE * 0.99,
            "receive rate {} below stream rate",
            p.recv_kbps
        );
        assert!(p.buffer_fill > 0.5);
        assert_eq!(out.receivers, 1);
        assert_eq!(out.satisfied_receivers, 1);
        assert!(out.segments > 0.0);
    }

    #[test]
    fn empty_buffered_supplier_delivers_nothing() {
        // Peer 1 requests from peer 2, whose buffer is empty.
        let mut peers = vec![
            None,
            Some(mk_peer(1, 512.0, 2_000.0)),
            Some(mk_peer(2, 512.0, 2_000.0)),
        ];
        connect(&mut peers, 1, 2, 1_000.0);
        let out = run_tick(&mut peers, |_| Some(RATE), |_, _| true, &cfg()).expect("rates known");
        assert_eq!(peers[1].as_ref().unwrap().recv_kbps, 0.0);
        assert_eq!(out.satisfied_receivers, 0);
    }

    #[test]
    fn full_buffered_peer_can_supply() {
        let mut peers = vec![
            Some(mk_peer(0, 512.0, 2_000.0)),
            Some(mk_peer(1, 512.0, 2_000.0)),
        ];
        peers[0].as_mut().unwrap().buffer_fill = 1.0;
        connect(&mut peers, 1, 0, 1_000.0);
        let _ = run_tick(&mut peers, |_| Some(RATE), |_, _| true, &cfg()).expect("rates known");
        let r = peers[1].as_ref().unwrap();
        // The 512 Kbps uplink covers the 400 Kbps stream.
        assert!(r.recv_kbps > 390.0, "recv = {}", r.recv_kbps);
        let s = peers[0].as_ref().unwrap();
        assert!(s.send_kbps > 390.0, "send = {}", s.send_kbps);
    }

    #[test]
    fn oversubscribed_supplier_splits_fairly() {
        // One 512 Kbps supplier, four receivers: each gets ~128 Kbps.
        let mut peers: Vec<Option<PeerState>> = vec![Some(mk_peer(0, 512.0, 2_000.0))];
        peers[0].as_mut().unwrap().buffer_fill = 1.0;
        for i in 1..=4 {
            peers.push(Some(mk_peer(i, 512.0, 2_000.0)));
        }
        for i in 1..=4 {
            connect(&mut peers, i, 0, 1_000.0);
        }
        let _ = run_tick(&mut peers, |_| Some(RATE), |_, _| true, &cfg()).expect("rates known");
        let sup = peers[0].as_ref().unwrap();
        assert!(
            sup.send_kbps <= 512.0 * 1.01,
            "supplier exceeded capacity: {}",
            sup.send_kbps
        );
        for (i, slot) in peers.iter().enumerate().skip(1).take(4) {
            let r = slot.as_ref().unwrap();
            assert!(
                (r.recv_kbps - 128.0).abs() < 15.0,
                "receiver {i} got {}",
                r.recv_kbps
            );
        }
    }

    #[test]
    fn path_ceiling_caps_a_flow() {
        let mut peers = vec![
            Some(mk_server(0, 100_000.0)),
            Some(mk_peer(1, 512.0, 5_000.0)),
        ];
        connect(&mut peers, 1, 0, 100.0); // terrible path: 100 Kbps
        let _ = run_tick(&mut peers, |_| Some(RATE), |_, _| true, &cfg()).expect("rates known");
        let r = peers[1].as_ref().unwrap();
        assert!(r.recv_kbps <= 105.0, "recv = {}", r.recv_kbps);
    }

    #[test]
    fn interval_counters_accumulate_on_both_ends() {
        let mut peers = vec![
            Some(mk_server(0, 10_000.0)),
            Some(mk_peer(1, 512.0, 2_000.0)),
        ];
        connect(&mut peers, 1, 0, 5_000.0);
        let _ = run_tick(&mut peers, |_| Some(RATE), |_, _| true, &cfg()).expect("rates known");
        let recv = peers[1].as_ref().unwrap().partners[&PeerId(0)].recv_interval;
        let sent = peers[0].as_ref().unwrap().partners[&PeerId(1)].sent_interval;
        assert!(recv > 0);
        assert_eq!(recv, sent);
    }

    #[test]
    fn ewma_estimate_tracks_observation() {
        let mut peers = vec![
            Some(mk_server(0, 10_000.0)),
            Some(mk_peer(1, 512.0, 2_000.0)),
        ];
        connect(&mut peers, 1, 0, 5_000.0);
        let before = peers[1].as_ref().unwrap().partners[&PeerId(0)].est_recv_kbps;
        let _ = run_tick(&mut peers, |_| Some(RATE), |_, _| true, &cfg()).expect("rates known");
        let after = peers[1].as_ref().unwrap().partners[&PeerId(0)].est_recv_kbps;
        // Observation (~stream-rate share) is far below the 5000 prior.
        assert!(
            after < before,
            "estimate did not adapt: {before} -> {after}"
        );
    }

    #[test]
    fn dead_suppliers_are_ignored() {
        let mut peers = vec![
            Some(mk_server(0, 10_000.0)),
            Some(mk_peer(1, 512.0, 2_000.0)),
        ];
        connect(&mut peers, 1, 0, 5_000.0);
        peers[0] = None; // supplier vanished
        let out = run_tick(&mut peers, |_| Some(RATE), |_, _| true, &cfg()).expect("rates known");
        assert_eq!(out.segments, 0.0);
        assert_eq!(peers[1].as_ref().unwrap().recv_kbps, 0.0);
    }

    #[test]
    fn reciprocal_pair_exchanges_both_ways() {
        let mut peers = vec![
            Some(mk_peer(0, 512.0, 2_000.0)),
            Some(mk_peer(1, 512.0, 2_000.0)),
        ];
        peers[0].as_mut().unwrap().buffer_fill = 0.8;
        peers[1].as_mut().unwrap().buffer_fill = 0.8;
        connect(&mut peers, 1, 0, 1_000.0);
        connect(&mut peers, 0, 1, 1_000.0);
        let out = run_tick(&mut peers, |_| Some(RATE), |_, _| true, &cfg()).expect("rates known");
        assert!(out.active_flows >= 2, "flows = {}", out.active_flows);
        let a = &peers[0].as_ref().unwrap().partners[&PeerId(1)];
        let b = &peers[1].as_ref().unwrap().partners[&PeerId(0)];
        assert!(a.recv_interval > 10 && a.sent_interval > 10, "{a:?}");
        assert!(b.recv_interval > 10 && b.sent_interval > 10, "{b:?}");
    }

    #[test]
    fn random_selection_ablation_ignores_link_quality() {
        // Two suppliers, same occupancy, very different path quality:
        // with the ablation on, requests split evenly.
        let mk = |peers: &mut Vec<Option<PeerState>>| {
            peers[0].as_mut().unwrap().buffer_fill = 1.0;
            peers[1].as_mut().unwrap().buffer_fill = 1.0;
        };
        let run = |random: bool| {
            let cfg = SimConfig {
                random_selection: random,
                ..SimConfig::default()
            };
            let mut peers = vec![
                Some(mk_peer(0, 512.0, 2_000.0)),
                Some(mk_peer(1, 512.0, 2_000.0)),
                Some(mk_peer(2, 512.0, 2_000.0)),
            ];
            mk(&mut peers);
            connect(&mut peers, 2, 0, 5_000.0); // excellent path
            connect(&mut peers, 2, 1, 200.0); // poor path
            let _ = run_tick(&mut peers, |_| Some(RATE), |_, _| true, &cfg).expect("rates known");
            let a = peers[2].as_ref().unwrap().partners[&PeerId(0)].recv_interval as f64;
            let b = peers[2].as_ref().unwrap().partners[&PeerId(1)].recv_interval as f64;
            (a, b)
        };
        let (qa, qb) = run(false);
        assert!(
            qa > qb * 3.0,
            "quality mode did not concentrate: {qa} vs {qb}"
        );
        let (ra, rb) = run(true);
        // Even split up to the poor path's ceiling; the good path may
        // absorb spillover, so allow a wide band — just not the
        // quality-mode concentration.
        assert!(ra < rb * 3.0, "ablation still concentrated: {ra} vs {rb}");
        assert!(rb > 0.0);
    }

    #[test]
    fn empty_slab_is_a_noop() {
        let mut peers: Vec<Option<PeerState>> = vec![None, None];
        let out = run_tick(&mut peers, |_| Some(RATE), |_, _| true, &cfg()).expect("rates known");
        assert_eq!(out, TickOutcome::default());
    }
}
