//! # magellan-overlay
//!
//! A discrete-event simulator of the UUSee mesh live-streaming
//! protocol (paper §3.1), built so that the topological findings of
//! the Magellan study *emerge* from protocol dynamics rather than
//! being scripted:
//!
//! * new peers bootstrap from a tracking server with up to 50
//!   partners, biased toward peers that volunteered spare upload
//!   capacity ([`tracker`]);
//! * peers measure per-connection RTT and TCP throughput and select
//!   around 30 of the most suitable partners to actually request
//!   blocks from ([`peer`], [`selection logic`](peer::PeerState));
//! * block transfers run under upload/download capacity constraints
//!   and path throughput ceilings, with usefulness governed by buffer
//!   occupancy ([`transfer`]) — reciprocity emerges because peers at
//!   similar playback points hold complementary segment sets;
//! * peers whose aggregate sending throughput stays below their upload
//!   capacity volunteer at the tracker; peers whose playback starves
//!   fall back to the tracker for fresh partners; neighbors gossip
//!   partner recommendations ([`sim`]);
//! * every peer follows the §3.2 measurement schedule, emitting
//!   [`magellan_trace::PeerReport`]s to a trace sink.
//!
//! The simulator never consults ISP labels: the intra-ISP clustering
//! of Figs. 6–8 arises purely from the underlay's quality gradient.

//!
//! ## Example
//!
//! ```no_run
//! use magellan_overlay::{OverlaySim, SimConfig};
//! use magellan_workload::Scenario;
//! use magellan_netsim::StudyCalendar;
//!
//! let scenario = Scenario::builder(2006, 0.001)
//!     .calendar(StudyCalendar { window_days: 1 })
//!     .build();
//! let mut sim = OverlaySim::new(scenario, SimConfig::default());
//! let (trace, summary) = sim.run_collecting().expect("consistent scenario");
//! println!("{} reports from {} joins", trace.len(), summary.joins);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod checkpoint;
pub mod config;
pub mod error;
pub mod peer;
pub mod sim;
pub mod tracker;
pub mod transfer;

pub use checkpoint::SimCheckpoint;
pub use config::SimConfig;
pub use error::{SimError, TransferError};
pub use peer::{PeerId, PeerState};
pub use sim::{OverlaySim, RunState, SimSummary};
pub use tracker::Tracker;
