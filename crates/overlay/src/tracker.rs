//! The tracking server (paper §3.1).
//!
//! Per channel the tracker keeps the member set and a *volunteer*
//! list: peers that told it they can accept new upload connections
//! because their aggregate sending throughput sits below their upload
//! capacity. Bootstrap hands a new peer up to 50 partners, drawn
//! preferentially from the volunteers and padded with random members.
//!
//! The paper closes by saying its findings "will be instrumental
//! towards further improvements of P2P streaming protocol design";
//! the obvious one its data suggests is ISP-aware bootstrapping. The
//! tracker therefore also maintains per-ISP member indices and, when
//! the simulator enables `locality_aware_tracker`, serves a
//! configurable fraction of each bootstrap from the joiner's own ISP
//! — the `locality_tracker` example and ablation quantify the effect.

use crate::peer::PeerId;
use magellan_netsim::Isp;
use magellan_workload::ChannelId;
use rand::RngExt as _;
use std::collections::{BTreeMap, BTreeSet};

/// Per-channel tracking state.
#[derive(Debug, Default, Clone)]
struct ChannelState {
    members: Vec<PeerId>,
    member_set: BTreeSet<PeerId>,
    volunteers: Vec<PeerId>,
    volunteer_set: BTreeSet<PeerId>,
    /// Members indexed by ISP, for the locality-aware extension.
    members_by_isp: BTreeMap<Isp, Vec<PeerId>>,
}

/// How the tracker assembles a bootstrap partner list.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapPolicy {
    /// Draw from the volunteer list before the general membership
    /// (the paper's §3.1 behaviour; the `disable_volunteer` ablation
    /// turns it off).
    pub use_volunteers: bool,
    /// Fraction of the bootstrap drawn from the joiner's own ISP
    /// before falling back to the global pool (0.0 = the paper's
    /// ISP-oblivious tracker; the locality extension uses e.g. 0.7).
    pub locality_fraction: f64,
}

impl Default for BootstrapPolicy {
    fn default() -> Self {
        BootstrapPolicy {
            use_volunteers: true,
            locality_fraction: 0.0,
        }
    }
}

/// The tracking server.
#[derive(Debug, Default, Clone)]
pub struct Tracker {
    channels: BTreeMap<ChannelId, ChannelState>,
    isps: BTreeMap<PeerId, Isp>,
}

impl Tracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a peer in a channel.
    pub fn register(&mut self, channel: ChannelId, id: PeerId, isp: Isp) {
        let st = self.channels.entry(channel).or_default();
        if st.member_set.insert(id) {
            st.members.push(id);
            st.members_by_isp.entry(isp).or_default().push(id);
            self.isps.insert(id, isp);
        }
    }

    /// Removes a peer from a channel (on departure).
    pub fn deregister(&mut self, channel: ChannelId, id: PeerId) {
        if let Some(st) = self.channels.get_mut(&channel) {
            if st.member_set.remove(&id) {
                st.members.retain(|&m| m != id);
                if let Some(isp) = self.isps.remove(&id) {
                    if let Some(v) = st.members_by_isp.get_mut(&isp) {
                        v.retain(|&m| m != id);
                    }
                }
            }
            if st.volunteer_set.remove(&id) {
                st.volunteers.retain(|&m| m != id);
            }
        }
    }

    /// Marks a peer as able to receive new connections.
    pub fn volunteer(&mut self, channel: ChannelId, id: PeerId) {
        let st = self.channels.entry(channel).or_default();
        if st.member_set.contains(&id) && st.volunteer_set.insert(id) {
            st.volunteers.push(id);
        }
    }

    /// Removes a peer from the volunteer list (its capacity filled
    /// up).
    pub fn unvolunteer(&mut self, channel: ChannelId, id: PeerId) {
        if let Some(st) = self.channels.get_mut(&channel) {
            if st.volunteer_set.remove(&id) {
                st.volunteers.retain(|&m| m != id);
            }
        }
    }

    /// Number of members in a channel.
    pub fn member_count(&self, channel: ChannelId) -> usize {
        self.channels.get(&channel).map_or(0, |s| s.members.len())
    }

    /// Number of volunteers in a channel.
    pub fn volunteer_count(&self, channel: ChannelId) -> usize {
        self.channels
            .get(&channel)
            .map_or(0, |s| s.volunteers.len())
    }

    /// Number of members of `isp` in a channel.
    pub fn member_count_in_isp(&self, channel: ChannelId, isp: Isp) -> usize {
        self.channels
            .get(&channel)
            .and_then(|s| s.members_by_isp.get(&isp))
            .map_or(0, |v| v.len())
    }

    /// Draws up to `want` bootstrap partners for `joiner` under
    /// `policy`. Never returns `joiner` itself or duplicates.
    pub fn bootstrap<R: rand::Rng + ?Sized>(
        &self,
        channel: ChannelId,
        joiner: PeerId,
        joiner_isp: Isp,
        want: usize,
        policy: BootstrapPolicy,
        rng: &mut R,
    ) -> Vec<PeerId> {
        let Some(st) = self.channels.get(&channel) else {
            return Vec::new();
        };
        // The pool bounds what can possibly be returned; a huge `want`
        // must not translate into a huge allocation.
        let mut out: Vec<PeerId> = Vec::with_capacity(want.min(st.members.len()));
        let mut seen: BTreeSet<PeerId> = BTreeSet::new();
        seen.insert(joiner);
        if policy.locality_fraction > 0.0 {
            let local_want = ((want as f64) * policy.locality_fraction).round() as usize;
            if let Some(local) = st.members_by_isp.get(&joiner_isp) {
                sample_into(local, local_want, &mut out, &mut seen, rng);
            }
        }
        if policy.use_volunteers {
            sample_into(&st.volunteers, want, &mut out, &mut seen, rng);
        }
        if out.len() < want {
            sample_into(&st.members, want, &mut out, &mut seen, rng);
        }
        out
    }
}

/// Ordered snapshot of one channel's tracking state.
///
/// The list orders are semantically significant: bootstrap samples
/// members and volunteers *by index*, so a resumed run only replays
/// the same draws if the lists come back in the exact live order —
/// which is why the snapshot keeps `Vec`s rather than sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelSnapshot {
    /// The channel.
    pub channel: ChannelId,
    /// Member list, in registration order.
    pub members: Vec<PeerId>,
    /// Volunteer list, in volunteering order.
    pub volunteers: Vec<PeerId>,
}

/// Ordered snapshot of the whole tracker — checkpoint capture.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrackerSnapshot {
    /// Per-channel state, one entry per known channel.
    pub channels: Vec<ChannelSnapshot>,
    /// ISP of every registered peer (sorted by peer id).
    pub isps: Vec<(PeerId, Isp)>,
}

impl Tracker {
    /// Captures an ordered snapshot of the tracker (see
    /// [`TrackerSnapshot`]).
    pub fn snapshot(&self) -> TrackerSnapshot {
        TrackerSnapshot {
            channels: self
                .channels
                .iter()
                .map(|(&channel, st)| ChannelSnapshot {
                    channel,
                    members: st.members.clone(),
                    volunteers: st.volunteers.clone(),
                })
                .collect(),
            isps: self.isps.iter().map(|(&id, &isp)| (id, isp)).collect(),
        }
    }

    /// Rebuilds a tracker from a snapshot, reproducing every list in
    /// its captured order (including the per-ISP member indices,
    /// which are re-derived by replaying registrations in member
    /// order — exactly how the live tracker built them).
    pub fn restore(snap: &TrackerSnapshot) -> Self {
        let isps: BTreeMap<PeerId, Isp> = snap.isps.iter().copied().collect();
        let mut channels: BTreeMap<ChannelId, ChannelState> = BTreeMap::new();
        for ch in &snap.channels {
            let mut st = ChannelState::default();
            for &id in &ch.members {
                if st.member_set.insert(id) {
                    st.members.push(id);
                    if let Some(&isp) = isps.get(&id) {
                        st.members_by_isp.entry(isp).or_default().push(id);
                    }
                }
            }
            for &id in &ch.volunteers {
                if st.member_set.contains(&id) && st.volunteer_set.insert(id) {
                    st.volunteers.push(id);
                }
            }
            channels.insert(ch.channel, st);
        }
        Tracker { channels, isps }
    }
}

/// Reservoir-free partial sample: randomly probes `pool` (bounded
/// tries) and fills `out` up to `want` with unseen entries, falling
/// back to a shuffled scan when the pool is small relative to the
/// deficit.
fn sample_into<R: rand::Rng + ?Sized>(
    pool: &[PeerId],
    want: usize,
    out: &mut Vec<PeerId>,
    seen: &mut BTreeSet<PeerId>,
    rng: &mut R,
) {
    if pool.is_empty() || out.len() >= want {
        return;
    }
    // Saturating arithmetic throughout: a drained channel or a
    // pathological `want` (e.g. a caller passing `usize::MAX` to mean
    // "everyone") must degrade to a short list, never overflow the
    // deficit/try budget math or spin.
    if pool.len() <= (want - out.len()).saturating_mul(2) {
        let mut idx: Vec<usize> = (0..pool.len()).collect(); // lint:allow(H2): full-pool shuffle only when the pool is at most twice the deficit
                                                             // lint:allow(H3): prefix shuffle over the small pool admitted by the branch above
        for i in 0..idx.len() {
            let j = rng.random_range(i..idx.len());
            idx.swap(i, j);
        }
        for i in idx {
            if out.len() >= want {
                break;
            }
            let cand = pool[i];
            if seen.insert(cand) {
                out.push(cand);
            }
        }
        return;
    }
    let mut tries = 0usize;
    while out.len() < want && tries < want.saturating_mul(8) {
        let cand = pool[rng.random_range(0..pool.len())];
        if seen.insert(cand) {
            out.push(cand);
        }
        tries += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magellan_netsim::RngFactory;

    const CH: ChannelId = ChannelId::CCTV1;

    fn plain() -> BootstrapPolicy {
        BootstrapPolicy::default()
    }

    #[test]
    fn register_is_idempotent() {
        let mut t = Tracker::new();
        t.register(CH, PeerId(1), Isp::Telecom);
        t.register(CH, PeerId(1), Isp::Telecom);
        assert_eq!(t.member_count(CH), 1);
        assert_eq!(t.member_count_in_isp(CH, Isp::Telecom), 1);
    }

    #[test]
    fn deregister_clears_all_indices() {
        let mut t = Tracker::new();
        t.register(CH, PeerId(1), Isp::Netcom);
        t.volunteer(CH, PeerId(1));
        t.deregister(CH, PeerId(1));
        assert_eq!(t.member_count(CH), 0);
        assert_eq!(t.volunteer_count(CH), 0);
        assert_eq!(t.member_count_in_isp(CH, Isp::Netcom), 0);
    }

    #[test]
    fn volunteer_requires_membership() {
        let mut t = Tracker::new();
        t.volunteer(CH, PeerId(7));
        assert_eq!(t.volunteer_count(CH), 0);
    }

    #[test]
    fn unvolunteer_keeps_membership() {
        let mut t = Tracker::new();
        t.register(CH, PeerId(1), Isp::Telecom);
        t.volunteer(CH, PeerId(1));
        t.unvolunteer(CH, PeerId(1));
        assert_eq!(t.member_count(CH), 1);
        assert_eq!(t.volunteer_count(CH), 0);
    }

    #[test]
    fn bootstrap_excludes_joiner_and_dedupes() {
        let mut t = Tracker::new();
        for i in 0..10 {
            t.register(CH, PeerId(i), Isp::Telecom);
        }
        let mut rng = RngFactory::new(1).fork("boot");
        let got = t.bootstrap(CH, PeerId(3), Isp::Telecom, 50, plain(), &mut rng);
        assert!(got.len() <= 9);
        assert!(!got.contains(&PeerId(3)));
        let set: BTreeSet<_> = got.iter().collect();
        assert_eq!(set.len(), got.len());
    }

    #[test]
    fn bootstrap_prefers_volunteers() {
        let mut t = Tracker::new();
        for i in 0..100 {
            t.register(CH, PeerId(i), Isp::Telecom);
        }
        for i in 0..5 {
            t.volunteer(CH, PeerId(i));
        }
        let mut rng = RngFactory::new(2).fork("boot");
        let got = t.bootstrap(CH, PeerId(99), Isp::Telecom, 5, plain(), &mut rng);
        assert_eq!(got.len(), 5);
        assert!(got.iter().all(|p| p.0 < 5), "got {got:?}");
    }

    #[test]
    fn bootstrap_pads_with_members_beyond_volunteers() {
        let mut t = Tracker::new();
        for i in 0..30 {
            t.register(CH, PeerId(i), Isp::Telecom);
        }
        t.volunteer(CH, PeerId(0));
        let mut rng = RngFactory::new(3).fork("boot");
        let got = t.bootstrap(CH, PeerId(29), Isp::Telecom, 10, plain(), &mut rng);
        assert_eq!(got.len(), 10);
        assert!(got.contains(&PeerId(0)));
    }

    #[test]
    fn volunteer_ablation_draws_uniformly() {
        let mut t = Tracker::new();
        for i in 0..200 {
            t.register(CH, PeerId(i), Isp::Telecom);
        }
        t.volunteer(CH, PeerId(0));
        let mut rng = RngFactory::new(4).fork("boot");
        let policy = BootstrapPolicy {
            use_volunteers: false,
            ..plain()
        };
        let got = t.bootstrap(CH, PeerId(199), Isp::Telecom, 3, policy, &mut rng);
        assert_eq!(got.len(), 3);
        assert!(!got.contains(&PeerId(199)));
    }

    #[test]
    fn bootstrap_on_empty_channel_is_empty() {
        let t = Tracker::new();
        let mut rng = RngFactory::new(5).fork("boot");
        assert!(t
            .bootstrap(CH, PeerId(0), Isp::Telecom, 50, plain(), &mut rng)
            .is_empty());
    }

    #[test]
    fn bootstrap_on_drained_channel_is_empty() {
        // Regression: every member crashed / deregistered mid-outage.
        // The channel state still exists but all pools are empty; the
        // request must return cleanly, not panic or spin.
        let mut t = Tracker::new();
        for i in 0..20 {
            t.register(CH, PeerId(i), Isp::Telecom);
            t.volunteer(CH, PeerId(i));
        }
        for i in 0..20 {
            t.deregister(CH, PeerId(i));
        }
        let mut rng = RngFactory::new(9).fork("boot");
        assert!(t
            .bootstrap(CH, PeerId(99), Isp::Telecom, 50, plain(), &mut rng)
            .is_empty());
    }

    #[test]
    fn bootstrap_when_only_the_joiner_remains_is_empty() {
        let mut t = Tracker::new();
        t.register(CH, PeerId(5), Isp::Netcom);
        let mut rng = RngFactory::new(10).fork("boot");
        let got = t.bootstrap(CH, PeerId(5), Isp::Netcom, 50, plain(), &mut rng);
        assert!(got.is_empty(), "joiner handed itself: {got:?}");
    }

    #[test]
    fn pathological_want_saturates_instead_of_overflowing() {
        // Regression: `want * 8` / `(want - out.len()) * 2` overflowed
        // in debug builds for huge requests; the request must degrade
        // to "everyone available" without panicking or allocating
        // `usize::MAX` capacity.
        let mut t = Tracker::new();
        for i in 0..7 {
            t.register(CH, PeerId(i), Isp::Telecom);
        }
        let mut rng = RngFactory::new(11).fork("boot");
        let got = t.bootstrap(CH, PeerId(0), Isp::Telecom, usize::MAX, plain(), &mut rng);
        assert_eq!(got.len(), 6);
        let locality = BootstrapPolicy {
            use_volunteers: false,
            locality_fraction: 0.9,
        };
        let got = t.bootstrap(CH, PeerId(0), Isp::Telecom, usize::MAX, locality, &mut rng);
        assert_eq!(got.len(), 6);
    }

    #[test]
    fn bootstrap_is_deterministic_in_seed() {
        let mut t = Tracker::new();
        for i in 0..500 {
            t.register(CH, PeerId(i), Isp::Telecom);
        }
        let a = t.bootstrap(
            CH,
            PeerId(0),
            Isp::Telecom,
            50,
            plain(),
            &mut RngFactory::new(6).fork("b"),
        );
        let b = t.bootstrap(
            CH,
            PeerId(0),
            Isp::Telecom,
            50,
            plain(),
            &mut RngFactory::new(6).fork("b"),
        );
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
    }

    #[test]
    fn locality_policy_biases_toward_joiner_isp() {
        let mut t = Tracker::new();
        // 100 Telecom members, 100 Netcom members.
        for i in 0..100 {
            t.register(CH, PeerId(i), Isp::Telecom);
        }
        for i in 100..200 {
            t.register(CH, PeerId(i), Isp::Netcom);
        }
        let mut rng = RngFactory::new(7).fork("boot");
        let policy = BootstrapPolicy {
            use_volunteers: false,
            locality_fraction: 0.7,
        };
        let got = t.bootstrap(CH, PeerId(0), Isp::Telecom, 40, policy, &mut rng);
        assert_eq!(got.len(), 40);
        let telecom = got.iter().filter(|p| p.0 < 100).count();
        assert!(
            telecom >= 28,
            "locality bootstrap gave only {telecom}/40 same-ISP partners"
        );
    }

    #[test]
    fn locality_falls_back_when_isp_is_thin() {
        let mut t = Tracker::new();
        // Joiner's ISP has only 2 members; the rest are elsewhere.
        t.register(CH, PeerId(0), Isp::Edu);
        t.register(CH, PeerId(1), Isp::Edu);
        for i in 2..50 {
            t.register(CH, PeerId(i), Isp::Telecom);
        }
        let mut rng = RngFactory::new(8).fork("boot");
        let policy = BootstrapPolicy {
            use_volunteers: false,
            locality_fraction: 0.9,
        };
        let got = t.bootstrap(CH, PeerId(0), Isp::Edu, 20, policy, &mut rng);
        assert_eq!(got.len(), 20, "fallback did not fill the request");
        assert!(got.contains(&PeerId(1)));
    }
}
