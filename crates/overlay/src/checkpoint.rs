//! Serialization of the simulator's complete deterministic state.
//!
//! [`SimCheckpoint`] is the plain-data image that
//! [`crate::OverlaySim::capture`] produces between ticks and
//! [`crate::OverlaySim::resume`] rebuilds from: the peer slab with
//! every partner link, the tracker's ordered lists, the address/ISP
//! tables, the crash-expiry queue, all five RNG stream states, the
//! join cursor, pending departures, and the running summary.
//!
//! The byte codec here is hand-rolled (the workspace's `serde` is a
//! marker-trait stub by design): fixed-width big-endian integers,
//! `f64` as IEEE-754 bits (bit-exact — a checkpointed EWMA must
//! resume to the very same double), length-prefixed vectors. The
//! envelope around these bytes — magic, version, fingerprint, CRC —
//! lives in [`magellan_trace::checkpoint`]; this module assumes the
//! envelope already vouched for integrity but still decodes
//! defensively, returning `None` rather than panicking on any
//! structural surprise (e.g. a body written by a different build).

use crate::peer::{PartnerLink, PeerId, PeerState};
use crate::sim::{FaultCounters, SimSummary};
use crate::tracker::{ChannelSnapshot, TrackerSnapshot};
use magellan_netsim::{AccessClass, Isp, LinkQuality, PeerAddr, PeerCapacity, SimTime};
use magellan_workload::ChannelId;
use std::collections::BTreeMap;

/// Version of the checkpoint *body* layout (the envelope carries its
/// own version; this one tracks the field layout below).
pub const BODY_VERSION: u32 = 1;

/// The complete deterministic state of a paused run.
#[derive(Debug, Clone)]
pub struct SimCheckpoint {
    /// The tick index the resumed run executes next.
    pub next_tick: u64,
    /// xoshiro256++ states of the five streams, in fork order:
    /// join, link, select, gossip, faults.
    pub rng_states: [[u64; 4]; 5],
    /// How many join events have been consumed.
    pub join_idx: u64,
    /// Pending departures `(time ms, slab index)`, sorted.
    pub departures: Vec<(u64, u32)>,
    /// Crashed peers the tracker has not yet expired:
    /// `(expiry tick, channel, slab index)`, FIFO order.
    pub crash_expiry: Vec<(u64, u16, u32)>,
    /// The peer slab, `None` for departed slots.
    pub peers: Vec<Option<PeerState>>,
    /// Peer addresses by slab index (kept past departure).
    pub addrs: Vec<PeerAddr>,
    /// Peer ISPs by slab index.
    pub isps: Vec<Isp>,
    /// Ordered tracker state.
    pub tracker: TrackerSnapshot,
    /// Live (non-server) population.
    pub live: u64,
    /// The summary accumulated so far.
    pub summary: SimSummary,
}

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_be_bytes());
}

fn isp_index(isp: Isp) -> u8 {
    // Position in the canonical order; ALL is tiny and total.
    Isp::ALL.iter().position(|&i| i == isp).unwrap_or(0) as u8
}

fn class_index(class: AccessClass) -> u8 {
    AccessClass::ALL
        .iter()
        .position(|&c| c == class)
        .unwrap_or(0) as u8
}

/// A bounds-checked big-endian reader over the body bytes.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u16(&mut self) -> Option<u16> {
        let b = self.take(2)?;
        Some(u16::from_be_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Option<u32> {
        let b = self.take(4)?;
        Some(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Option<u64> {
        let b = self.take(8)?;
        Some(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }

    /// Length prefix for a vector whose elements occupy at least
    /// `min_elem` bytes — bounds the claimed length against the bytes
    /// actually remaining so a corrupt prefix cannot trigger a huge
    /// allocation.
    fn len(&mut self, min_elem: usize) -> Option<usize> {
        let n = self.u32()? as usize;
        if n.checked_mul(min_elem.max(1))? > self.buf.len() - self.pos {
            return None;
        }
        Some(n)
    }

    fn isp(&mut self) -> Option<Isp> {
        Isp::ALL.get(self.u8()? as usize).copied()
    }

    fn class(&mut self) -> Option<AccessClass> {
        AccessClass::ALL.get(self.u8()? as usize).copied()
    }
}

fn encode_peer(out: &mut Vec<u8>, p: &PeerState) {
    put_u32(out, p.addr.as_u32());
    put_u8(out, isp_index(p.isp));
    put_f64(out, p.capacity.down_kbps);
    put_f64(out, p.capacity.up_kbps);
    put_u8(out, class_index(p.capacity.class));
    put_u16(out, p.channel.0);
    put_u64(out, p.joined.as_millis());
    put_u64(out, p.leaves.as_millis());
    put_u8(out, p.is_server as u8);
    put_u32(out, p.partners.len() as u32);
    for (id, l) in &p.partners {
        put_u32(out, id.0);
        put_f64(out, l.quality.rtt_ms);
        put_f64(out, l.quality.bandwidth_kbps);
        put_u8(out, l.supplier as u8);
        put_f64(out, l.est_recv_kbps);
        put_u64(out, l.sent_interval);
        put_u64(out, l.recv_interval);
        put_u64(out, l.since.as_millis());
        put_u32(out, l.stale_ticks);
    }
    put_f64(out, p.buffer_fill);
    put_f64(out, p.recv_kbps);
    put_f64(out, p.send_kbps);
    put_u32(out, p.underused_ticks);
    put_u32(out, p.starved_ticks);
    put_u8(out, p.volunteered as u8);
    match p.next_report {
        Some(t) => {
            put_u8(out, 1);
            put_u64(out, t.as_millis());
        }
        None => {
            put_u8(out, 0);
            put_u64(out, 0);
        }
    }
    put_u32(out, p.bootstrap_attempts);
    put_u64(out, p.next_bootstrap_tick);
}

fn decode_peer(d: &mut Dec<'_>) -> Option<PeerState> {
    let addr = PeerAddr::from_u32(d.u32()?);
    let isp = d.isp()?;
    let down_kbps = d.f64()?;
    let up_kbps = d.f64()?;
    let class = d.class()?;
    let channel = ChannelId(d.u16()?);
    let joined = SimTime::from_millis(d.u64()?);
    let leaves = SimTime::from_millis(d.u64()?);
    let is_server = d.u8()? != 0;
    let n_partners = d.len(45)?;
    let mut partners = BTreeMap::new();
    for _ in 0..n_partners {
        let id = PeerId(d.u32()?);
        let link = PartnerLink {
            quality: LinkQuality {
                rtt_ms: d.f64()?,
                bandwidth_kbps: d.f64()?,
            },
            supplier: d.u8()? != 0,
            est_recv_kbps: d.f64()?,
            sent_interval: d.u64()?,
            recv_interval: d.u64()?,
            since: SimTime::from_millis(d.u64()?),
            stale_ticks: d.u32()?,
        };
        partners.insert(id, link);
    }
    let buffer_fill = d.f64()?;
    let recv_kbps = d.f64()?;
    let send_kbps = d.f64()?;
    let underused_ticks = d.u32()?;
    let starved_ticks = d.u32()?;
    let volunteered = d.u8()? != 0;
    let has_report = d.u8()? != 0;
    let report_ms = d.u64()?;
    let next_report = has_report.then(|| SimTime::from_millis(report_ms));
    let bootstrap_attempts = d.u32()?;
    let next_bootstrap_tick = d.u64()?;
    Some(PeerState {
        addr,
        isp,
        capacity: PeerCapacity {
            down_kbps,
            up_kbps,
            class,
        },
        channel,
        joined,
        leaves,
        is_server,
        partners,
        buffer_fill,
        recv_kbps,
        send_kbps,
        underused_ticks,
        starved_ticks,
        volunteered,
        next_report,
        bootstrap_attempts,
        next_bootstrap_tick,
    })
}

fn encode_summary(out: &mut Vec<u8>, s: &SimSummary) {
    put_u64(out, s.joins);
    put_u64(out, s.leaves);
    put_u64(out, s.reports);
    put_u64(out, s.peak_concurrent as u64);
    put_u64(out, s.final_concurrent as u64);
    put_f64(out, s.segments);
    put_u64(out, s.ticks);
    let f = &s.faults;
    for v in [
        f.crashes,
        f.tracker_denied_joins,
        f.bootstrap_retries,
        f.bootstrap_recoveries,
        f.gossip_fallbacks,
        f.tracker_expirations,
        f.partner_timeouts,
        f.links_blocked,
        f.flows_blocked,
        f.reports_lost,
    ] {
        put_u64(out, v);
    }
}

fn decode_summary(d: &mut Dec<'_>) -> Option<SimSummary> {
    Some(SimSummary {
        joins: d.u64()?,
        leaves: d.u64()?,
        reports: d.u64()?,
        peak_concurrent: d.u64()? as usize,
        final_concurrent: d.u64()? as usize,
        segments: d.f64()?,
        ticks: d.u64()?,
        faults: FaultCounters {
            crashes: d.u64()?,
            tracker_denied_joins: d.u64()?,
            bootstrap_retries: d.u64()?,
            bootstrap_recoveries: d.u64()?,
            gossip_fallbacks: d.u64()?,
            tracker_expirations: d.u64()?,
            partner_timeouts: d.u64()?,
            links_blocked: d.u64()?,
            flows_blocked: d.u64()?,
            reports_lost: d.u64()?,
        },
    })
}

impl SimCheckpoint {
    /// Serializes the checkpoint body (wrap it in
    /// [`magellan_trace::checkpoint::encode_checkpoint`] before
    /// writing to disk).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(1024 + self.peers.len() * 256);
        put_u32(&mut out, BODY_VERSION);
        put_u64(&mut out, self.next_tick);
        for stream in &self.rng_states {
            for &word in stream {
                put_u64(&mut out, word);
            }
        }
        put_u64(&mut out, self.join_idx);
        put_u32(&mut out, self.departures.len() as u32);
        for &(t, id) in &self.departures {
            put_u64(&mut out, t);
            put_u32(&mut out, id);
        }
        put_u32(&mut out, self.crash_expiry.len() as u32);
        for &(due, ch, id) in &self.crash_expiry {
            put_u64(&mut out, due);
            put_u16(&mut out, ch);
            put_u32(&mut out, id);
        }
        put_u32(&mut out, self.peers.len() as u32);
        for slot in &self.peers {
            match slot {
                Some(p) => {
                    put_u8(&mut out, 1);
                    encode_peer(&mut out, p);
                }
                None => put_u8(&mut out, 0),
            }
        }
        put_u32(&mut out, self.addrs.len() as u32);
        for a in &self.addrs {
            put_u32(&mut out, a.as_u32());
        }
        put_u32(&mut out, self.isps.len() as u32);
        for &isp in &self.isps {
            put_u8(&mut out, isp_index(isp));
        }
        put_u32(&mut out, self.tracker.channels.len() as u32);
        for ch in &self.tracker.channels {
            put_u16(&mut out, ch.channel.0);
            put_u32(&mut out, ch.members.len() as u32);
            for m in &ch.members {
                put_u32(&mut out, m.0);
            }
            put_u32(&mut out, ch.volunteers.len() as u32);
            for v in &ch.volunteers {
                put_u32(&mut out, v.0);
            }
        }
        put_u32(&mut out, self.tracker.isps.len() as u32);
        for &(id, isp) in &self.tracker.isps {
            put_u32(&mut out, id.0);
            put_u8(&mut out, isp_index(isp));
        }
        put_u64(&mut out, self.live);
        encode_summary(&mut out, &self.summary);
        out
    }

    /// Decodes a checkpoint body. `None` means the bytes are not a
    /// complete version-[`BODY_VERSION`] body — the caller should
    /// fall back to an earlier checkpoint (or a cold start).
    pub fn decode(bytes: &[u8]) -> Option<SimCheckpoint> {
        let mut d = Dec { buf: bytes, pos: 0 };
        if d.u32()? != BODY_VERSION {
            return None;
        }
        let next_tick = d.u64()?;
        let mut rng_states = [[0u64; 4]; 5];
        for stream in &mut rng_states {
            for word in stream.iter_mut() {
                *word = d.u64()?;
            }
        }
        let join_idx = d.u64()?;
        let n = d.len(12)?;
        let mut departures = Vec::with_capacity(n);
        for _ in 0..n {
            departures.push((d.u64()?, d.u32()?));
        }
        let n = d.len(14)?;
        let mut crash_expiry = Vec::with_capacity(n);
        for _ in 0..n {
            crash_expiry.push((d.u64()?, d.u16()?, d.u32()?));
        }
        let n = d.len(1)?;
        let mut peers = Vec::with_capacity(n);
        for _ in 0..n {
            peers.push(match d.u8()? {
                0 => None,
                1 => Some(decode_peer(&mut d)?),
                _ => return None,
            });
        }
        let n = d.len(4)?;
        let mut addrs = Vec::with_capacity(n);
        for _ in 0..n {
            addrs.push(PeerAddr::from_u32(d.u32()?));
        }
        let n = d.len(1)?;
        let mut isps = Vec::with_capacity(n);
        for _ in 0..n {
            isps.push(d.isp()?);
        }
        let n = d.len(10)?;
        let mut channels = Vec::with_capacity(n);
        for _ in 0..n {
            let channel = ChannelId(d.u16()?);
            let m = d.len(4)?;
            let mut members = Vec::with_capacity(m);
            for _ in 0..m {
                members.push(PeerId(d.u32()?));
            }
            let v = d.len(4)?;
            let mut volunteers = Vec::with_capacity(v);
            for _ in 0..v {
                volunteers.push(PeerId(d.u32()?));
            }
            channels.push(ChannelSnapshot {
                channel,
                members,
                volunteers,
            });
        }
        let n = d.len(5)?;
        let mut tracker_isps = Vec::with_capacity(n);
        for _ in 0..n {
            tracker_isps.push((PeerId(d.u32()?), d.isp()?));
        }
        let live = d.u64()?;
        let summary = decode_summary(&mut d)?;
        if d.pos != bytes.len() {
            // Trailing bytes: a different layout wrote this body.
            return None;
        }
        Some(SimCheckpoint {
            next_tick,
            rng_states,
            join_idx,
            departures,
            crash_expiry,
            peers,
            addrs,
            isps,
            tracker: TrackerSnapshot {
                channels,
                isps: tracker_isps,
            },
            live,
            summary,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::tests::tiny_scenario;
    use crate::{OverlaySim, SimConfig};

    /// A checkpoint captured mid-run from a real simulation.
    fn mid_run_checkpoint() -> SimCheckpoint {
        let mut sim = OverlaySim::new(tiny_scenario(21), SimConfig::default());
        let mut state = sim.begin();
        let mut sink = |_r| {};
        let half = state.ticks_total() / 2;
        while state.next_tick() < half {
            sim.tick_once(&mut state, &mut sink).expect("tick");
        }
        sim.capture(&state)
    }

    #[test]
    fn body_reencodes_identically() {
        let ckpt = mid_run_checkpoint();
        assert!(ckpt.peers.iter().flatten().count() > 0, "empty capture");
        let bytes = ckpt.encode();
        let back = SimCheckpoint::decode(&bytes).expect("decodes");
        // PeerState carries floats; byte-for-byte re-encoding is the
        // equality that matters for deterministic resume.
        assert_eq!(back.encode(), bytes);
        assert_eq!(back.next_tick, ckpt.next_tick);
        assert_eq!(back.rng_states, ckpt.rng_states);
        assert_eq!(back.tracker, ckpt.tracker);
        assert_eq!(back.live, ckpt.live);
        assert_eq!(back.summary, ckpt.summary);
    }

    #[test]
    fn truncation_and_garbage_never_panic() {
        let bytes = mid_run_checkpoint().encode();
        for cut in 0..bytes.len().min(200) {
            assert!(SimCheckpoint::decode(&bytes[..cut]).is_none());
        }
        assert!(SimCheckpoint::decode(&bytes[..bytes.len() - 1]).is_none());
        let mut long = bytes.clone();
        long.push(7);
        assert!(SimCheckpoint::decode(&long).is_none());
        let garbage: Vec<u8> = (0..997u32).map(|i| (i * 31) as u8).collect();
        assert!(SimCheckpoint::decode(&garbage).is_none());
    }
}
