//! Per-peer protocol state: partner table, buffer occupancy,
//! throughput accounting, supplier selection, and report assembly.

use crate::config::SimConfig;
use magellan_netsim::{Isp, LinkQuality, PeerAddr, PeerCapacity, SimTime};
use magellan_trace::{BufferMap, PartnerRecord, PeerReport};
use magellan_workload::ChannelId;
use rand::RngExt as _;
use std::collections::BTreeMap;

/// Dense identifier of a peer within one [`crate::OverlaySim`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PeerId(pub u32);

impl PeerId {
    /// Index into the simulator's peer slab.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One entry of a peer's partner table.
#[derive(Debug, Clone)]
pub struct PartnerLink {
    /// Sampled path quality toward this partner.
    pub quality: LinkQuality,
    /// Whether this partner is currently in our supplier set (we
    /// request blocks from it).
    pub supplier: bool,
    /// EWMA estimate of the receive throughput from this partner
    /// (Kbps), seeded from the measured path ceiling — the protocol
    /// "measures the round-trip delay and TCP throughput of the
    /// connection".
    pub est_recv_kbps: f64,
    /// Segments sent to this partner since the last report.
    pub sent_interval: u64,
    /// Segments received from this partner since the last report.
    pub recv_interval: u64,
    /// When the connection was established.
    pub since: SimTime,
    /// Consecutive maintenance ticks this partner has been silent
    /// (its peer slot is gone — a crash or departure we were never
    /// told about). At `SimConfig::partner_timeout_ticks` the link is
    /// declared dead and removed; the delay models transfer-timeout
    /// discovery, since crashed peers send no leave message.
    pub stale_ticks: u32,
}

impl PartnerLink {
    /// The supplier-selection score: expected goodput discounted by
    /// latency (long RTTs hurt block scheduling in a sliding window).
    pub fn score(&self) -> f64 {
        self.est_recv_kbps / (1.0 + self.quality.rtt_ms / 200.0)
    }
}

/// The full state of one online peer (or streaming server).
#[derive(Debug, Clone)]
pub struct PeerState {
    /// Network identity.
    pub addr: PeerAddr,
    /// ISP (used by analysis only — the protocol never reads it).
    pub isp: Isp,
    /// Access capacities.
    pub capacity: PeerCapacity,
    /// Channel being watched (or served).
    pub channel: ChannelId,
    /// Join instant.
    pub joined: SimTime,
    /// Scheduled departure.
    pub leaves: SimTime,
    /// Whether this is a streaming server (content origin: buffer
    /// always full, never leaves, never reports).
    pub is_server: bool,
    /// Partner table.
    pub partners: BTreeMap<PeerId, PartnerLink>,
    /// Buffer occupancy: fraction of the sliding window held.
    pub buffer_fill: f64,
    /// Aggregate receive throughput last tick (Kbps).
    pub recv_kbps: f64,
    /// Aggregate send throughput last tick (Kbps).
    pub send_kbps: f64,
    /// Consecutive ticks with upload utilization below the volunteer
    /// threshold.
    pub underused_ticks: u32,
    /// Consecutive ticks with receive rate below the fallback
    /// threshold.
    pub starved_ticks: u32,
    /// Whether the peer is currently on the tracker's volunteer list.
    pub volunteered: bool,
    /// Next report due (none for servers).
    pub next_report: Option<SimTime>,
    /// Failed bootstrap attempts so far (tracker unreachable); drives
    /// the capped exponential retry backoff.
    pub bootstrap_attempts: u32,
    /// Earliest tick index at which the next bootstrap retry may run
    /// (0 = no retry pending).
    pub next_bootstrap_tick: u64,
}

impl PeerState {
    /// Creates a fresh ordinary peer.
    pub fn new_peer(
        addr: PeerAddr,
        isp: Isp,
        capacity: PeerCapacity,
        channel: ChannelId,
        joined: SimTime,
        leaves: SimTime,
    ) -> Self {
        PeerState {
            addr,
            isp,
            capacity,
            channel,
            joined,
            leaves,
            is_server: false,
            partners: BTreeMap::new(),
            buffer_fill: 0.0,
            recv_kbps: 0.0,
            send_kbps: 0.0,
            underused_ticks: 0,
            starved_ticks: 0,
            volunteered: false,
            next_report: Some(joined + magellan_trace::FIRST_REPORT_DELAY),
            bootstrap_attempts: 0,
            next_bootstrap_tick: 0,
        }
    }

    /// Creates a streaming server for `channel`.
    pub fn new_server(
        addr: PeerAddr,
        isp: Isp,
        up_kbps: f64,
        channel: ChannelId,
        now: SimTime,
        horizon: SimTime,
    ) -> Self {
        PeerState {
            addr,
            isp,
            capacity: PeerCapacity {
                down_kbps: up_kbps,
                up_kbps,
                class: magellan_netsim::AccessClass::Campus,
            },
            channel,
            joined: now,
            leaves: horizon,
            is_server: true,
            partners: BTreeMap::new(),
            buffer_fill: 1.0,
            recv_kbps: 0.0,
            send_kbps: 0.0,
            underused_ticks: 0,
            starved_ticks: 0,
            volunteered: false,
            next_report: None,
            bootstrap_attempts: 0,
            next_bootstrap_tick: 0,
        }
    }

    /// Adds a partner connection (no-op if already present). Returns
    /// whether it was new.
    pub fn add_partner(&mut self, id: PeerId, quality: LinkQuality, now: SimTime) -> bool {
        if self.partners.contains_key(&id) {
            return false;
        }
        self.partners.insert(
            id,
            PartnerLink {
                quality,
                supplier: false,
                est_recv_kbps: quality.bandwidth_kbps,
                sent_interval: 0,
                recv_interval: 0,
                since: now,
                stale_ticks: 0,
            },
        );
        true
    }

    /// Removes a partner (e.g. it departed).
    pub fn remove_partner(&mut self, id: PeerId) {
        self.partners.remove(&id);
    }

    /// Current supplier ids.
    pub fn suppliers(&self) -> impl Iterator<Item = PeerId> + '_ {
        self.partners
            .iter()
            .filter(|(_, l)| l.supplier)
            .map(|(&id, _)| id)
    }

    /// Re-selects the supplier set: the `target` best-scoring
    /// partners (or a uniformly random subset under the
    /// `random_selection` ablation).
    ///
    /// Servers never select suppliers.
    pub fn select_suppliers<R: rand::Rng + ?Sized>(
        &mut self,
        target: usize,
        random_selection: bool,
        rng: &mut R,
    ) {
        if self.is_server {
            return;
        }
        let mut scored: Vec<(PeerId, f64)> = self
            .partners
            .iter()
            .map(|(&id, l)| (id, l.score()))
            .collect(); // lint:allow(H2): scores this peer's own partner table, capped by the partner limit
        if random_selection {
            // Fisher–Yates prefix shuffle.
            let n = scored.len();
            for i in 0..n.min(target) {
                let j = rng.random_range(i..n);
                scored.swap(i, j);
            }
        } else {
            scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        }
        let mut chosen: Vec<PeerId> = scored.into_iter().take(target).map(|(id, _)| id).collect(); // lint:allow(H2): chosen-supplier list over the capped partner table
        chosen.sort_unstable();
        // lint:allow(H3): this peer's own capped partner table - the event's peer, not the population
        for (id, link) in self.partners.iter_mut() {
            link.supplier = chosen.binary_search(id).is_ok();
        }
    }

    /// Prunes the partner table down to `max` entries, dropping the
    /// lowest-scoring non-supplier links first.
    pub fn prune_partners(&mut self, max: usize) {
        if self.partners.len() <= max {
            return;
        }
        let mut victims: Vec<(PeerId, f64)> = self
            .partners
            .iter()
            .filter(|(_, l)| !l.supplier)
            .map(|(&id, l)| (id, l.score()))
            .collect(); // lint:allow(H2): victim list over the capped partner table, only when over the cap
        victims.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        let excess = self.partners.len() - max;
        for (id, _) in victims.into_iter().take(excess) {
            self.partners.remove(&id);
        }
    }

    /// Upload utilization over the last tick.
    pub fn upload_utilization(&self) -> f64 {
        if self.capacity.up_kbps <= 0.0 {
            return 1.0;
        }
        (self.send_kbps / self.capacity.up_kbps).min(1.0)
    }

    /// Assembles the §3.2 report at `now` and resets the per-interval
    /// segment counters. `resolve` maps partner ids to their IP
    /// addresses (the simulator owns that mapping).
    ///
    /// The bitmap is synthesized from the scalar occupancy (the
    /// simulator tracks fill, not individual segments): the window
    /// holds the leading `fill × len` segments. Analyses consume only
    /// the fill level.
    pub fn build_report<F>(&mut self, now: SimTime, window_segments: u32, resolve: F) -> PeerReport
    where
        F: Fn(PeerId) -> PeerAddr,
    {
        let len = window_segments.min(u16::MAX as u32) as u16;
        let held = (self.buffer_fill * len as f64).round() as u64;
        let start = now.as_millis() / 200; // 5 segments/s stream position
        let mut bm = BufferMap::new(start, len);
        for s in 0..held.min(len as u64) {
            bm.set(start + s);
        }
        let partners: Vec<PartnerRecord> = self
            .partners
            .iter()
            .map(|(id, l)| PartnerRecord {
                addr: resolve(*id),
                tcp_port: 16_800 + (id.0 % 1_000) as u16,
                udp_port: 26_800 + (id.0 % 1_000) as u16,
                segments_sent: l.sent_interval,
                segments_received: l.recv_interval,
            })
            .collect(); // lint:allow(H2): a report lists this peer's own capped partner table
                        // lint:allow(H3): interval-counter reset over this peer's own capped partner table
        for l in self.partners.values_mut() {
            l.sent_interval = 0;
            l.recv_interval = 0;
        }
        PeerReport {
            time: now,
            addr: self.addr,
            channel: self.channel,
            buffer_map: bm,
            download_capacity_kbps: self.capacity.down_kbps,
            upload_capacity_kbps: self.capacity.up_kbps,
            recv_throughput_kbps: self.recv_kbps,
            send_throughput_kbps: self.send_kbps,
            partners,
        }
    }

    /// Per-tick demand in segments: refill the window gap plus keep
    /// up with the stream, bounded by download capacity.
    pub fn demand_segments(&self, cfg: &SimConfig, rate_kbps: f64) -> f64 {
        if self.is_server {
            return 0.0;
        }
        let gap = (1.0 - self.buffer_fill) * cfg.window_segments as f64;
        let stream = cfg.stream_segments_per_tick(rate_kbps);
        (gap + stream).min(cfg.capacity_segments_per_tick(self.capacity.down_kbps))
    }

    /// Applies one tick's received segments: updates occupancy and
    /// the receive rate.
    ///
    /// A tick (minutes) is much longer than the sliding window
    /// (seconds), so the window turns over many times per tick and
    /// occupancy is governed by the *ratio* of delivery rate to
    /// stream rate: a peer receiving the full stream rate converges
    /// to a full window, one receiving half the rate to a half-full
    /// window. A geometric blend keeps a one-tick memory.
    pub fn apply_tick_delivery(&mut self, cfg: &SimConfig, rate_kbps: f64, delivered: f64) {
        if self.is_server {
            return;
        }
        let stream = cfg.stream_segments_per_tick(rate_kbps).max(1e-9);
        let ratio = (delivered / stream).min(1.0);
        self.buffer_fill = (0.25 * self.buffer_fill + 0.75 * ratio).clamp(0.0, 1.0);
        self.recv_kbps = cfg.segments_to_kbps(delivered).min(rate_kbps * 1.5);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magellan_netsim::{AccessClass, RngFactory};

    fn quality(bw: f64, rtt: f64) -> LinkQuality {
        LinkQuality {
            rtt_ms: rtt,
            bandwidth_kbps: bw,
        }
    }

    fn peer() -> PeerState {
        PeerState::new_peer(
            PeerAddr::from_u32(1),
            Isp::Telecom,
            PeerCapacity {
                down_kbps: 2_000.0,
                up_kbps: 512.0,
                class: AccessClass::Adsl,
            },
            ChannelId::CCTV1,
            SimTime::ORIGIN,
            SimTime::at(0, 2, 0),
        )
    }

    #[test]
    fn new_peer_schedules_first_report_after_twenty_minutes() {
        let p = peer();
        assert_eq!(
            p.next_report,
            Some(SimTime::ORIGIN + magellan_trace::FIRST_REPORT_DELAY)
        );
        assert!(!p.is_server);
        assert_eq!(p.buffer_fill, 0.0);
    }

    #[test]
    fn server_never_reports_and_is_full() {
        let s = PeerState::new_server(
            PeerAddr::from_u32(9),
            Isp::Telecom,
            10_000.0,
            ChannelId::CCTV1,
            SimTime::ORIGIN,
            SimTime::at(14, 0, 0),
        );
        assert!(s.is_server);
        assert_eq!(s.next_report, None);
        assert_eq!(s.buffer_fill, 1.0);
    }

    #[test]
    fn add_partner_is_idempotent() {
        let mut p = peer();
        assert!(p.add_partner(PeerId(5), quality(800.0, 30.0), SimTime::ORIGIN));
        assert!(!p.add_partner(PeerId(5), quality(100.0, 99.0), SimTime::ORIGIN));
        assert_eq!(p.partners.len(), 1);
        // Original quality retained.
        assert!((p.partners[&PeerId(5)].quality.bandwidth_kbps - 800.0).abs() < 1e-9);
    }

    #[test]
    fn selection_prefers_high_scores() {
        let mut p = peer();
        p.add_partner(PeerId(1), quality(1_500.0, 20.0), SimTime::ORIGIN);
        p.add_partner(PeerId(2), quality(100.0, 300.0), SimTime::ORIGIN);
        p.add_partner(PeerId(3), quality(900.0, 25.0), SimTime::ORIGIN);
        let mut rng = RngFactory::new(1).fork("sel");
        p.select_suppliers(2, false, &mut rng);
        let mut sel: Vec<u32> = p.suppliers().map(|i| i.0).collect();
        sel.sort();
        assert_eq!(sel, vec![1, 3]);
    }

    #[test]
    fn selection_caps_at_target() {
        let mut p = peer();
        for i in 0..50 {
            p.add_partner(PeerId(i), quality(500.0, 50.0), SimTime::ORIGIN);
        }
        let mut rng = RngFactory::new(2).fork("sel");
        p.select_suppliers(30, false, &mut rng);
        assert_eq!(p.suppliers().count(), 30);
    }

    #[test]
    fn random_selection_is_isp_blind_and_sized() {
        let mut p = peer();
        for i in 0..40 {
            p.add_partner(PeerId(i), quality(i as f64 * 10.0, 30.0), SimTime::ORIGIN);
        }
        let mut rng = RngFactory::new(3).fork("sel");
        p.select_suppliers(10, true, &mut rng);
        assert_eq!(p.suppliers().count(), 10);
    }

    #[test]
    fn servers_do_not_select() {
        let mut s = PeerState::new_server(
            PeerAddr::from_u32(9),
            Isp::Telecom,
            10_000.0,
            ChannelId::CCTV1,
            SimTime::ORIGIN,
            SimTime::at(14, 0, 0),
        );
        s.add_partner(PeerId(1), quality(1_000.0, 10.0), SimTime::ORIGIN);
        let mut rng = RngFactory::new(4).fork("sel");
        s.select_suppliers(30, false, &mut rng);
        assert_eq!(s.suppliers().count(), 0);
    }

    #[test]
    fn prune_keeps_suppliers_and_best() {
        let mut p = peer();
        for i in 0..10 {
            p.add_partner(PeerId(i), quality(100.0 * i as f64, 30.0), SimTime::ORIGIN);
        }
        let mut rng = RngFactory::new(5).fork("sel");
        p.select_suppliers(3, false, &mut rng);
        p.prune_partners(5);
        assert_eq!(p.partners.len(), 5);
        // All 3 suppliers survive.
        assert_eq!(p.suppliers().count(), 3);
    }

    #[test]
    fn report_resets_interval_counters() {
        let mut p = peer();
        p.add_partner(PeerId(2), quality(800.0, 40.0), SimTime::ORIGIN);
        p.partners.get_mut(&PeerId(2)).unwrap().sent_interval = 42;
        p.partners.get_mut(&PeerId(2)).unwrap().recv_interval = 17;
        let r = p.build_report(SimTime::at(0, 0, 30), 150, |id| {
            PeerAddr::from_u32(id.0 + 100)
        });
        assert_eq!(r.partners.len(), 1);
        assert_eq!(r.partners[0].addr, PeerAddr::from_u32(102));
        assert_eq!(r.partners[0].segments_sent, 42);
        assert_eq!(r.partners[0].segments_received, 17);
        let l = &p.partners[&PeerId(2)];
        assert_eq!(l.sent_interval, 0);
        assert_eq!(l.recv_interval, 0);
    }

    #[test]
    fn report_bitmap_reflects_fill() {
        let mut p = peer();
        p.buffer_fill = 0.5;
        let r = p.build_report(SimTime::at(0, 1, 0), 100, |id| PeerAddr::from_u32(id.0));
        assert!((r.buffer_map.fill_fraction() - 0.5).abs() < 0.02);
    }

    #[test]
    fn demand_shrinks_as_buffer_fills() {
        let cfg = SimConfig::default();
        let mut p = peer();
        let hungry = p.demand_segments(&cfg, 400.0);
        p.buffer_fill = 1.0;
        let sated = p.demand_segments(&cfg, 400.0);
        assert!(hungry > sated);
        // A full buffer still needs the stream advance.
        assert!((sated - cfg.stream_segments_per_tick(400.0)).abs() < 1e-9);
    }

    #[test]
    fn demand_is_capped_by_download_capacity() {
        let cfg = SimConfig::default();
        let mut p = peer();
        p.capacity.down_kbps = 100.0; // can't even sustain the stream
        let d = p.demand_segments(&cfg, 400.0);
        assert!((d - cfg.capacity_segments_per_tick(100.0)).abs() < 1e-9);
    }

    #[test]
    fn delivery_raises_fill_and_sets_rate() {
        let cfg = SimConfig::default();
        let mut p = peer();
        let stream = cfg.stream_segments_per_tick(400.0);
        p.apply_tick_delivery(&cfg, 400.0, stream);
        assert!((p.recv_kbps - 400.0).abs() < 1e-9);
        assert!(p.buffer_fill > 0.0);
    }

    #[test]
    fn starved_peer_fill_decays() {
        let cfg = SimConfig::default();
        let mut p = peer();
        p.buffer_fill = 0.8;
        p.apply_tick_delivery(&cfg, 400.0, 0.0);
        assert!(p.buffer_fill < 0.8);
        assert_eq!(p.recv_kbps, 0.0);
    }

    #[test]
    fn utilization_bounds() {
        let mut p = peer();
        p.send_kbps = 256.0;
        assert!((p.upload_utilization() - 0.5).abs() < 1e-9);
        p.send_kbps = 10_000.0;
        assert_eq!(p.upload_utilization(), 1.0);
    }

    #[test]
    fn score_penalizes_rtt() {
        let near = PartnerLink {
            quality: quality(500.0, 20.0),
            supplier: false,
            est_recv_kbps: 500.0,
            sent_interval: 0,
            recv_interval: 0,
            since: SimTime::ORIGIN,
            stale_ticks: 0,
        };
        let far = PartnerLink {
            quality: quality(500.0, 400.0),
            supplier: false,
            est_recv_kbps: 500.0,
            sent_interval: 0,
            recv_interval: 0,
            since: SimTime::ORIGIN,
            stale_ticks: 0,
        };
        assert!(near.score() > far.score());
    }
}
