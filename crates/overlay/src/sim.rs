//! The overlay simulation driver.
//!
//! [`OverlaySim`] binds a workload [`Scenario`] to the protocol: it
//! replays joins and departures, runs the per-tick maintenance loop
//! (supplier selection, gossip, volunteer/fallback logic, pruning),
//! executes block transfers, and emits [`PeerReport`]s on the §3.2
//! measurement schedule to a caller-provided sink.
//!
//! The sink-based design matters at scale: the real study collected
//! 120 GB of reports, and even scaled-down runs produce far more
//! report volume than should sit in memory. Analyses either stream
//! (the figure pipelines do) or collect into a
//! [`magellan_trace::TraceStore`] for small runs via
//! [`OverlaySim::run_collecting`].

use crate::checkpoint::SimCheckpoint;
use crate::config::SimConfig;
use crate::error::SimError;
use crate::peer::{PeerId, PeerState};
use crate::tracker::{BootstrapPolicy, Tracker};
use crate::transfer;
use magellan_netsim::{AddrAllocator, Isp, IspDatabase, PeerAddr, RngFactory, SimTime};
use magellan_trace::{PeerReport, ReportUplink, TraceServer, TraceStore, REPORT_INTERVAL};
use magellan_workload::{ChannelId, FaultPlan, JoinEvent, Scenario};
use rand::rngs::StdRng;
use rand::RngExt as _;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

/// Counters of injected faults and the resilience reactions they
/// triggered; all zero when the scenario's [`FaultPlan`] is empty.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Peers that crashed ungracefully (no leave message).
    pub crashes: u64,
    /// Joins that found the tracker down and got no bootstrap.
    pub tracker_denied_joins: u64,
    /// Bootstrap retry attempts made under the backoff schedule.
    pub bootstrap_retries: u64,
    /// Bootstrap retries that finally obtained partners.
    pub bootstrap_recoveries: u64,
    /// Starvation fallbacks served by gossip because the tracker was
    /// down.
    pub gossip_fallbacks: u64,
    /// Crashed peers the tracker expired after its liveness horizon.
    pub tracker_expirations: u64,
    /// Partner links declared dead by transfer timeout and removed.
    /// Nonzero even without faults: one-sided pruning leaves silent
    /// edges behind when the pruning side departs, and those are
    /// discovered exactly like crashes — by timeout.
    pub partner_timeouts: u64,
    /// Partner-link formations blocked by an active inter-ISP
    /// partition (at join, fallback, or gossip time).
    pub links_blocked: u64,
    /// Transfer flows skipped because the path was severed mid-link.
    pub flows_blocked: u64,
    /// Reports lost in flight to injected datagram loss.
    pub reports_lost: u64,
}

/// Aggregate statistics of one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimSummary {
    /// Peers that joined.
    pub joins: u64,
    /// Peers that departed before the window closed.
    pub leaves: u64,
    /// Reports emitted to the sink.
    pub reports: u64,
    /// Maximum concurrent (non-server) population observed.
    pub peak_concurrent: usize,
    /// Concurrent population at the final tick.
    pub final_concurrent: usize,
    /// Total segments transferred.
    pub segments: f64,
    /// Ticks executed.
    pub ticks: u64,
    /// Fault-injection and resilience accounting.
    pub faults: FaultCounters,
}

/// The loop state of a stepped run ([`OverlaySim::begin`] /
/// [`OverlaySim::tick_once`]): the five deterministic RNG streams,
/// the join schedule and its cursor, pending departures, the derived
/// channel-rate table, and the running summary. Together with the
/// simulator itself this is the *complete* state of a run — which is
/// what [`OverlaySim::capture`] serializes for crash-safe resume.
#[derive(Debug)]
pub struct RunState {
    pub(crate) join_rng: StdRng,
    pub(crate) link_rng: StdRng,
    pub(crate) sel_rng: StdRng,
    pub(crate) gossip_rng: StdRng,
    pub(crate) fault_rng: StdRng,
    pub(crate) faults: FaultPlan,
    pub(crate) joins: Vec<JoinEvent>,
    pub(crate) join_idx: usize,
    /// Max-heap over `Reverse(time)` → min-heap of departures.
    pub(crate) departures: BinaryHeap<std::cmp::Reverse<(SimTime, u32)>>,
    pub(crate) rates: BTreeMap<ChannelId, f64>,
    pub(crate) ticks_total: u64,
    pub(crate) next_tick: u64,
    pub(crate) summary: SimSummary,
}

impl RunState {
    /// The summary accumulated so far (final once
    /// [`OverlaySim::tick_once`] has returned `false`).
    pub fn summary(&self) -> &SimSummary {
        &self.summary
    }

    /// The tick index the next [`OverlaySim::tick_once`] call will
    /// execute.
    pub fn next_tick(&self) -> u64 {
        self.next_tick
    }

    /// Total ticks in the study window.
    pub fn ticks_total(&self) -> u64 {
        self.ticks_total
    }
}

/// The UUSee overlay simulator.
#[derive(Debug)]
pub struct OverlaySim {
    cfg: SimConfig,
    scenario: Scenario,
    peers: Vec<Option<PeerState>>,
    /// Peer addresses by slab index; survives departure so reports
    /// referencing recently-dead partners still resolve.
    addrs: Vec<PeerAddr>,
    /// Peer ISPs by slab index (analysis-side ground truth; the
    /// protocol itself never reads it).
    isps: Vec<Isp>,
    tracker: Tracker,
    allocator: AddrAllocator,
    db: IspDatabase,
    live: usize,
    /// FIFO of crashed peers the tracker has not yet noticed:
    /// `(expiry tick, channel, slab index)`. A crash sends no leave
    /// message, so the tracker keeps handing the peer out until its
    /// liveness horizon (`partner_timeout_ticks`) passes.
    crash_expiry: VecDeque<(u64, ChannelId, u32)>,
}

impl OverlaySim {
    /// Creates a simulator for `scenario` under `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`SimConfig::validate`]).
    pub fn new(scenario: Scenario, cfg: SimConfig) -> Self {
        // lint:allow(C1): a bad config is experiment-setup error; abort before any simulation work
        cfg.validate().expect("invalid simulator configuration");
        let db = IspDatabase::synthetic(cfg.isp_shares);
        let allocator = db.allocator();
        OverlaySim {
            cfg,
            scenario,
            peers: Vec::new(),
            addrs: Vec::new(),
            isps: Vec::new(),
            tracker: Tracker::new(),
            allocator,
            db,
            live: 0,
            crash_expiry: VecDeque::new(),
        }
    }

    /// The ISP database the run allocates addresses from (analyses
    /// need the same mapping).
    pub fn isp_database(&self) -> &IspDatabase {
        &self.db
    }

    /// Runs the whole study window, pushing every report into `sink`
    /// (called with the report's own timestamp order per tick).
    ///
    /// # Errors
    ///
    /// Fails when the transfer engine detects an inconsistency
    /// between the scenario's channel table and the live peers — see
    /// [`crate::TransferError`]. A scenario built through
    /// [`magellan_workload::Scenario`] cannot trigger this.
    pub fn run<F>(&mut self, mut sink: F) -> Result<SimSummary, SimError>
    where
        F: FnMut(PeerReport),
    {
        let mut state = self.begin();
        while self.tick_once(&mut state, &mut sink)? {}
        Ok(state.summary)
    }

    /// Initialises a stepped run: forks the RNG streams, generates
    /// the join schedule, spawns the channel servers, and returns the
    /// loop state that [`OverlaySim::tick_once`] advances. Equivalent
    /// to the setup [`OverlaySim::run`] performs — `run` is exactly
    /// `begin` plus a `tick_once` loop.
    pub fn begin(&mut self) -> RunState {
        let factory = RngFactory::new(self.scenario.seed);
        let join_rng = factory.fork("sim/join");
        let mut link_rng = factory.fork("sim/link");
        let sel_rng = factory.fork("sim/select");
        let gossip_rng = factory.fork("sim/gossip");
        // Dedicated stream for fault draws: a fault-free plan makes
        // zero draws from it, so enabling faults never perturbs the
        // join/link/select/gossip streams and a fault-free run is
        // byte-identical to one on a build without fault support.
        let fault_rng = factory.fork("sim/faults");
        let faults = self.scenario.faults.clone();

        let joins = self.scenario.generate_joins();

        let window_end = self.scenario.calendar.window_end();
        self.spawn_servers(&mut link_rng, window_end);

        let tick = self.cfg.tick;
        let ticks_total = window_end.as_millis() / tick.as_millis();
        let rates: BTreeMap<ChannelId, f64> = self
            .scenario
            .channels
            .iter()
            .map(|c| (c.id, c.rate_kbps))
            .collect();

        RunState {
            join_rng,
            link_rng,
            sel_rng,
            gossip_rng,
            fault_rng,
            faults,
            joins,
            join_idx: 0,
            departures: BinaryHeap::new(),
            rates,
            ticks_total,
            next_tick: 0,
            summary: SimSummary::default(),
        }
    }

    /// Advances one simulation tick. Returns `Ok(false)` once the
    /// study window is exhausted (the summary in `state` is then
    /// final, including `final_concurrent`).
    ///
    /// # Errors
    ///
    /// As [`OverlaySim::run`].
    pub fn tick_once<F>(&mut self, state: &mut RunState, sink: &mut F) -> Result<bool, SimError>
    where
        F: FnMut(PeerReport),
    {
        if state.next_tick >= state.ticks_total {
            state.summary.final_concurrent = self.live;
            return Ok(false);
        }
        let k = state.next_tick;
        let tick = self.cfg.tick;
        let tick_start = SimTime::from_millis(k * tick.as_millis());
        let tick_end = tick_start + tick;

        // 0. Tracker liveness expiry: crashed peers sent no
        //    leave message; the tracker notices after its
        //    liveness horizon and drops the stale entry.
        while let Some(&(due, ch, id)) = self.crash_expiry.front() {
            if due > k {
                break;
            }
            self.crash_expiry.pop_front();
            self.tracker.deregister(ch, PeerId(id));
            state.summary.faults.tracker_expirations += 1;
        }

        // 1. Departures scheduled before this tick. A crashed
        //    peer's scheduled departure finds the slot already
        //    empty and is not counted as a leave.
        while let Some(&std::cmp::Reverse((t, id))) = state.departures.peek() {
            if t >= tick_start {
                break;
            }
            state.departures.pop();
            if self.depart(PeerId(id)) {
                state.summary.leaves += 1;
            }
        }

        // 2. Joins landing in this tick.
        while state.join_idx < state.joins.len() && state.joins[state.join_idx].time < tick_end {
            let ev = state.joins[state.join_idx];
            state.join_idx += 1;
            let id = self.join(
                &ev,
                k,
                &state.faults,
                &mut state.summary.faults,
                &mut state.join_rng,
                &mut state.link_rng,
                &mut state.sel_rng,
            );
            state
                .departures
                .push(std::cmp::Reverse((ev.time + ev.duration, id.0)));
            state.summary.joins += 1;
        }

        // 2b. Ungraceful crash waves landing in this tick: each
        //     live viewer crashes with the wave's probability,
        //     drawn from the dedicated fault stream in slab
        //     order (deterministic per seed).
        for wave in state.faults.crash_waves_in(tick_start, tick_end) {
            // lint:allow(H3): a crash wave is population-scale by definition; slab order keeps it deterministic
            for i in 0..self.peers.len() {
                match &self.peers[i] {
                    Some(p) if !p.is_server => {}
                    _ => continue,
                }
                if state.fault_rng.random_range(0.0..1.0) < wave.fraction {
                    self.crash(PeerId(i as u32), k, &mut state.summary.faults);
                }
            }
        }

        // 3. Per-peer maintenance.
        self.maintenance_pass(
            k,
            tick_start,
            &state.rates,
            &state.faults,
            &mut state.summary.faults,
            &mut state.sel_rng,
            &mut state.gossip_rng,
        );

        // 4. Block transfers (skipping partition-severed paths).
        let rates_ref = &state.rates;
        let faults_ref = &state.faults;
        let outcome = transfer::run_tick(
            &mut self.peers,
            |ch| rates_ref.get(&ch).copied(),
            |a, b| faults_ref.path_open(a, b, tick_start),
            &self.cfg,
        )?;
        state.summary.segments += outcome.segments;
        state.summary.faults.flows_blocked += outcome.blocked_flows as u64;

        // 5. Reports due by the end of this tick.
        let emitted = self.emit_reports(
            tick_end,
            &state.faults,
            &mut state.fault_rng,
            &mut state.summary.faults,
            sink,
        );
        state.summary.reports += emitted;

        state.summary.peak_concurrent = state.summary.peak_concurrent.max(self.live);
        state.summary.ticks += 1;
        state.next_tick += 1;
        if state.next_tick >= state.ticks_total {
            state.summary.final_concurrent = self.live;
        }
        Ok(true)
    }

    /// Captures the complete deterministic state of a stepped run:
    /// the peer slab, tracker, address/ISP tables, crash-expiry
    /// queue, all five RNG stream states, the join cursor, pending
    /// departures, and the running summary. Everything else a resumed
    /// run needs (join schedule, channel rates, ISP database) is
    /// recomputed from the scenario and config, which the caller
    /// persists separately (fingerprinted — see
    /// [`magellan_trace::checkpoint`]).
    ///
    /// Must be called *between* ticks (never mid-tick); the capture
    /// then marks a point from which [`OverlaySim::resume`] continues
    /// byte-identically.
    pub fn capture(&self, state: &RunState) -> SimCheckpoint {
        let mut departures: Vec<(u64, u32)> = state
            .departures
            .iter()
            .map(|&std::cmp::Reverse((t, id))| (t.as_millis(), id))
            .collect();
        departures.sort_unstable();
        SimCheckpoint {
            next_tick: state.next_tick,
            rng_states: [
                state.join_rng.state(),
                state.link_rng.state(),
                state.sel_rng.state(),
                state.gossip_rng.state(),
                state.fault_rng.state(),
            ],
            join_idx: state.join_idx as u64,
            departures,
            crash_expiry: self
                .crash_expiry
                .iter()
                .map(|&(due, ch, id)| (due, ch.0, id))
                .collect(),
            peers: self.peers.clone(),
            addrs: self.addrs.clone(),
            isps: self.isps.clone(),
            tracker: self.tracker.snapshot(),
            live: self.live as u64,
            summary: state.summary,
        }
    }

    /// Rebuilds a simulator and its loop state from a checkpoint
    /// taken by [`OverlaySim::capture`], given the *same* scenario
    /// and config that produced it. Continuing the returned pair with
    /// [`OverlaySim::tick_once`] replays the remainder of the run
    /// byte-identically to one that was never interrupted.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`SimConfig::validate`]).
    pub fn resume(scenario: Scenario, cfg: SimConfig, ckpt: &SimCheckpoint) -> (Self, RunState) {
        // lint:allow(C1): a bad config is experiment-setup error; abort before any simulation work
        cfg.validate().expect("invalid simulator configuration");
        let db = IspDatabase::synthetic(cfg.isp_shares);
        let mut allocator = db.allocator();
        for &addr in &ckpt.addrs {
            allocator.mark_used(addr);
        }
        let sim = OverlaySim {
            cfg,
            scenario,
            peers: ckpt.peers.clone(),
            addrs: ckpt.addrs.clone(),
            isps: ckpt.isps.clone(),
            tracker: Tracker::restore(&ckpt.tracker),
            allocator,
            db,
            live: ckpt.live as usize,
            crash_expiry: ckpt
                .crash_expiry
                .iter()
                .map(|&(due, ch, id)| (due, ChannelId(ch), id))
                .collect(),
        };
        let joins = sim.scenario.generate_joins();
        let window_end = sim.scenario.calendar.window_end();
        let ticks_total = window_end.as_millis() / sim.cfg.tick.as_millis();
        let rates: BTreeMap<ChannelId, f64> = sim
            .scenario
            .channels
            .iter()
            .map(|c| (c.id, c.rate_kbps))
            .collect();
        let state = RunState {
            join_rng: StdRng::from_state(ckpt.rng_states[0]),
            link_rng: StdRng::from_state(ckpt.rng_states[1]),
            sel_rng: StdRng::from_state(ckpt.rng_states[2]),
            gossip_rng: StdRng::from_state(ckpt.rng_states[3]),
            fault_rng: StdRng::from_state(ckpt.rng_states[4]),
            faults: sim.scenario.faults.clone(),
            joins,
            join_idx: ckpt.join_idx as usize,
            departures: ckpt
                .departures
                .iter()
                .map(|&(t, id)| std::cmp::Reverse((SimTime::from_millis(t), id)))
                .collect(),
            rates,
            ticks_total,
            next_tick: ckpt.next_tick,
            summary: ckpt.summary,
        };
        (sim, state)
    }

    /// Convenience wrapper: run and collect everything through a
    /// validating [`TraceServer`] into a [`TraceStore`]. Use only at
    /// small scales; figure pipelines stream instead.
    ///
    /// The server honours the scenario's trace-server outage schedule;
    /// reports arriving during downtime ride a bounded
    /// store-and-forward uplink and are retransmitted (oldest first)
    /// once the server answers again, with a final drain after the
    /// window closes — so the archived trace stays complete across
    /// outages unless the buffer overflows.
    ///
    /// # Errors
    ///
    /// Fails on any [`OverlaySim::run`] failure, or when the
    /// validating server rejects a simulated report (a disagreement
    /// between the report builder and the §3.2 schema).
    pub fn run_collecting(&mut self) -> Result<(TraceStore, SimSummary), SimError> {
        let window_end = self.scenario.calendar.window_end();
        let mut server =
            TraceServer::with_downtime(window_end, self.scenario.faults.server_outages.clone());
        let mut uplink = ReportUplink::new(1 << 16);
        let summary = self.run(|r| {
            let now = r.time;
            uplink.send(r, now, &mut server);
        })?;
        // The real collector kept listening past the window: drain
        // whatever the last outage left buffered.
        uplink.flush(window_end, &mut server);
        if uplink.stats().rejected > 0 {
            return Err(SimError::ReportRejected {
                reason: "validating trace server rejected a simulated report".into(),
            });
        }
        Ok((server.into_store(), summary))
    }

    fn spawn_servers(&mut self, link_rng: &mut StdRng, horizon: SimTime) {
        let channels: Vec<(ChannelId, f64)> = self
            .scenario
            .channels
            .iter()
            .map(|c| (c.id, c.rate_kbps))
            .collect();
        for (ch, rate) in channels {
            for _ in 0..self.cfg.servers_per_channel {
                let addr = self.allocator.alloc_in(link_rng, Isp::Telecom);
                let isp = self.db.lookup(addr);
                let id = PeerId(self.peers.len() as u32);
                let server = PeerState::new_server(
                    addr,
                    isp,
                    rate * self.cfg.server_capacity_streams,
                    ch,
                    SimTime::ORIGIN,
                    horizon,
                );
                self.peers.push(Some(server));
                self.addrs.push(addr);
                self.isps.push(isp);
                self.tracker.register(ch, id, isp);
                self.tracker.volunteer(ch, id);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn join(
        &mut self,
        ev: &JoinEvent,
        tick_idx: u64,
        faults: &FaultPlan,
        counters: &mut FaultCounters,
        join_rng: &mut StdRng,
        link_rng: &mut StdRng,
        sel_rng: &mut StdRng,
    ) -> PeerId {
        let addr = self.allocator.alloc(join_rng);
        let isp = self.db.lookup(addr);
        let capacity = self.cfg.capacity_model.sample(join_rng, isp);
        let id = PeerId(self.peers.len() as u32);
        let mut peer = PeerState::new_peer(
            addr,
            isp,
            capacity,
            ev.channel,
            ev.time,
            ev.time + ev.duration,
        );

        if faults.tracker_down(ev.time) {
            // Tracker outage: no bootstrap and no registration. The
            // peer schedules its first retry under the capped
            // exponential backoff; until one succeeds it is unknown
            // to the rest of the overlay.
            counters.tracker_denied_joins += 1;
            peer.bootstrap_attempts = 1;
            peer.next_bootstrap_tick = tick_idx + self.backoff_ticks(1);
            self.peers.push(Some(peer));
            self.addrs.push(addr);
            self.isps.push(isp);
            self.live += 1;
            return id;
        }

        // Tracker bootstrap: up to 50 partners, volunteers first.
        let candidates = self.tracker.bootstrap(
            ev.channel,
            id,
            isp,
            self.cfg.max_bootstrap_partners,
            self.bootstrap_policy(),
            join_rng,
        );
        for cand in candidates {
            let Some(other) = self.peers[cand.index()].as_mut() else {
                continue;
            };
            if !faults.path_open(isp, other.isp, ev.time) {
                counters.links_blocked += 1;
                continue;
            }
            let quality = self.cfg.link_model.sample(link_rng, isp, other.isp);
            other.add_partner(id, quality, ev.time);
            peer.add_partner(cand, quality, ev.time);
        }
        peer.select_suppliers(
            self.cfg.target_suppliers,
            self.cfg.random_selection,
            sel_rng,
        );
        self.peers.push(Some(peer));
        self.addrs.push(addr);
        self.isps.push(isp);
        self.tracker.register(ev.channel, id, isp);
        self.live += 1;
        id
    }

    /// Shared borrow of slot `i`, which the caller has already
    /// verified live this tick. Concentrates the slab-liveness
    /// invariant in one place instead of ad-hoc `expect`s at every
    /// re-borrow.
    fn live_ref(&self, i: usize) -> &PeerState {
        // lint:allow(C1): slot verified live at the loop head; a None here is a simulator bug worth aborting on
        self.peers[i].as_ref().expect("slot verified live")
    }

    /// Exclusive borrow of slot `i`; see [`Self::live_ref`].
    fn live_mut(&mut self, i: usize) -> &mut PeerState {
        // lint:allow(C1): slot verified live at the loop head; a None here is a simulator bug worth aborting on
        self.peers[i].as_mut().expect("slot verified live")
    }

    /// Graceful departure: deregisters at the tracker and tears down
    /// both connection endpoints. Returns `false` when the slot was
    /// already empty (the peer crashed before its scheduled leave).
    fn depart(&mut self, id: PeerId) -> bool {
        let Some(peer) = self.peers[id.index()].take() else {
            return false;
        };
        self.live -= 1;
        self.tracker.deregister(peer.channel, id);
        // Tear down both connection endpoints.
        for &pid in peer.partners.keys() {
            if let Some(Some(other)) = self.peers.get_mut(pid.index()) {
                other.remove_partner(id);
            }
        }
        true
    }

    /// Ungraceful crash: the slot empties with no leave message — no
    /// tracker deregistration and no partner teardown. Partners
    /// discover the death via transfer timeout
    /// ([`SimConfig::partner_timeout_ticks`]); the tracker expires
    /// the stale entry on the same horizon via `crash_expiry`.
    fn crash(&mut self, id: PeerId, tick_idx: u64, counters: &mut FaultCounters) {
        let Some(peer) = self.peers[id.index()].take() else {
            return;
        };
        self.live -= 1;
        counters.crashes += 1;
        self.crash_expiry.push_back((
            tick_idx + u64::from(self.cfg.partner_timeout_ticks),
            peer.channel,
            id.0,
        ));
    }

    /// Retry delay after `attempts` failed bootstraps: capped
    /// exponential, base `bootstrap_retry_ticks` doubling per failure
    /// up to `bootstrap_retry_cap_ticks`.
    fn backoff_ticks(&self, attempts: u32) -> u64 {
        let base = u64::from(self.cfg.bootstrap_retry_ticks);
        let cap = u64::from(self.cfg.bootstrap_retry_cap_ticks);
        base.saturating_mul(1u64 << attempts.saturating_sub(1).min(16))
            .min(cap)
    }

    #[allow(clippy::too_many_arguments)]
    fn maintenance_pass(
        &mut self,
        tick_idx: u64,
        now: SimTime,
        rates: &BTreeMap<ChannelId, f64>,
        faults: &FaultPlan,
        counters: &mut FaultCounters,
        sel_rng: &mut StdRng,
        gossip_rng: &mut StdRng,
    ) {
        let n = self.peers.len();
        for i in 0..n {
            // Copy the per-peer reads out so the slot borrow ends
            // before the mutating phases below.
            let (id, channel, util, starving, retry_due) = {
                let Some(p) = &self.peers[i] else { continue };
                if p.is_server {
                    continue;
                }
                let rate = rates.get(&p.channel).copied().unwrap_or(400.0);
                (
                    PeerId(i as u32),
                    p.channel,
                    p.upload_utilization(),
                    p.recv_kbps < self.cfg.fallback_quality * rate && p.buffer_fill > 0.0,
                    p.next_bootstrap_tick != 0 && tick_idx >= p.next_bootstrap_tick,
                )
            };

            // Bootstrap retry: a peer denied at join (tracker
            // outage) keeps retrying on the capped exponential
            // schedule until a bootstrap lands.
            if retry_due {
                counters.bootstrap_retries += 1;
                if faults.tracker_down(now) {
                    let p = self.live_mut(i);
                    p.bootstrap_attempts = p.bootstrap_attempts.saturating_add(1);
                    let delay = self.backoff_ticks(self.live_ref(i).bootstrap_attempts);
                    self.live_mut(i).next_bootstrap_tick = tick_idx + delay;
                } else {
                    let my_isp = self.isps[i];
                    let candidates = self.tracker.bootstrap(
                        channel,
                        id,
                        my_isp,
                        self.cfg.max_bootstrap_partners,
                        self.bootstrap_policy(),
                        sel_rng,
                    );
                    let mut got = 0usize;
                    for cand in candidates {
                        if cand == id {
                            continue;
                        }
                        let Some(other) = self.peers[cand.index()].as_mut() else {
                            continue;
                        };
                        if !faults.path_open(my_isp, other.isp, now) {
                            counters.links_blocked += 1;
                            continue;
                        }
                        let quality = self.cfg.link_model.sample(sel_rng, my_isp, other.isp);
                        other.add_partner(id, quality, now);
                        self.live_mut(i).add_partner(cand, quality, now);
                        got += 1;
                    }
                    // Register regardless: even with an empty pool
                    // the peer becomes discoverable by later joins
                    // (register is idempotent across retries).
                    self.tracker.register(channel, id, my_isp);
                    let (target, random) = (self.cfg.target_suppliers, self.cfg.random_selection);
                    let p = self.live_mut(i);
                    if got > 0 {
                        p.bootstrap_attempts = 0;
                        p.next_bootstrap_tick = 0;
                        p.select_suppliers(target, random, sel_rng);
                        counters.bootstrap_recoveries += 1;
                    } else {
                        p.bootstrap_attempts = p.bootstrap_attempts.saturating_add(1);
                        let attempts = p.bootstrap_attempts;
                        let delay = self.backoff_ticks(attempts);
                        self.live_mut(i).next_bootstrap_tick = tick_idx + delay;
                    }
                }
            }

            // Volunteer / starvation accounting (reads, then writes).
            {
                let volunteer_util = self.cfg.volunteer_utilization;
                let p = self.live_mut(i);
                if util < volunteer_util {
                    p.underused_ticks += 1;
                } else {
                    p.underused_ticks = 0;
                }
                if starving {
                    p.starved_ticks += 1;
                } else {
                    p.starved_ticks = 0;
                }
            }

            // Volunteer list churn.
            let (underused, starved, volunteered) = {
                let p = self.live_ref(i);
                (p.underused_ticks, p.starved_ticks, p.volunteered)
            };
            if !self.cfg.disable_volunteer {
                if underused >= self.cfg.sustain_ticks && !volunteered {
                    self.tracker.volunteer(channel, id);
                    self.live_mut(i).volunteered = true;
                } else if volunteered && util > 0.95 {
                    self.tracker.unvolunteer(channel, id);
                    self.live_mut(i).volunteered = false;
                }
            }

            // Tracker fallback: playback not sustained → more
            // partners. When the tracker is down, fall back to an
            // extra gossip exchange instead — the only discovery
            // path that still works.
            if starved >= self.cfg.sustain_ticks {
                if faults.tracker_down(now) {
                    counters.gossip_fallbacks += 1;
                    self.gossip(i, now, faults, counters, sel_rng);
                    self.live_mut(i).starved_ticks = 0;
                } else {
                    let my_isp = self.isps[i];
                    let extra = self.tracker.bootstrap(
                        channel,
                        id,
                        my_isp,
                        self.cfg.fallback_partners,
                        self.bootstrap_policy(),
                        sel_rng,
                    );
                    for cand in extra {
                        if cand == id {
                            continue;
                        }
                        let other_isp = self.isps[cand.index()];
                        if !faults.path_open(my_isp, other_isp, now) {
                            counters.links_blocked += 1;
                            continue;
                        }
                        let quality = self.cfg.link_model.sample(sel_rng, my_isp, other_isp);
                        if let Some(other) = self.peers[cand.index()].as_mut() {
                            other.add_partner(id, quality, now);
                        } else {
                            continue;
                        }
                        self.live_mut(i).add_partner(cand, quality, now);
                    }
                    self.live_mut(i).starved_ticks = 0;
                }
            }

            // Gossip every third tick (staggered by id).
            if (tick_idx + i as u64) % 3 == 0 {
                self.gossip(i, now, faults, counters, gossip_rng);
            }

            // Transfer-timeout detection: a partner whose slot is
            // gone sends nothing; after `partner_timeout_ticks`
            // consecutive silent ticks the link is declared dead and
            // removed. Graceful departures tear down both ends
            // immediately — this path is how *crashed* peers are
            // discovered, since they send no leave message.
            {
                let timeout = self.cfg.partner_timeout_ticks;
                let dead: Vec<PeerId> = {
                    let p = self.live_ref(i);
                    p.partners
                        .keys()
                        .copied()
                        .filter(|pid| self.peers[pid.index()].is_none())
                        .collect() // lint:allow(H2): dead-partner list for one peer, capped by the partner limit
                };
                let p = self.live_mut(i);
                for pid in dead {
                    let expired = match p.partners.get_mut(&pid) {
                        Some(link) => {
                            link.stale_ticks += 1;
                            link.stale_ticks >= timeout
                        }
                        None => false,
                    };
                    if expired {
                        p.remove_partner(pid);
                        counters.partner_timeouts += 1;
                    }
                }
            }

            // Supplier re-selection every second tick (staggered),
            // i.e. every 10 minutes as buffer maps are exchanged.
            if (tick_idx + i as u64) % 2 == 0 {
                let (target, random, membership_target) = (
                    self.cfg.target_suppliers,
                    self.cfg.random_selection,
                    self.cfg.gossip_target_partners,
                );
                let p = self.live_mut(i);
                p.select_suppliers(target, random, sel_rng);
                // Prune to the membership *target*, not the hard cap:
                // passive link accumulation (every newcomer's
                // bootstrap touches ~50 existing peers) would
                // otherwise pile the partner-count distribution at
                // the cap, where the paper observes counts decaying
                // from the bootstrap 50.
                p.prune_partners(membership_target);
            }
        }
    }

    /// One gossip exchange for peer `i`: pick a random partner, adopt
    /// up to `gossip_fanout` of its partners ("neighboring peers also
    /// recommend known partners to each other, based on estimated
    /// availability" — recommendations prefer partners the
    /// recommender currently receives well from).
    fn gossip(
        &mut self,
        i: usize,
        now: SimTime,
        faults: &FaultPlan,
        counters: &mut FaultCounters,
        rng: &mut StdRng,
    ) {
        let (id, my_isp, partner_count) = {
            let Some(p) = &self.peers[i] else { return };
            (PeerId(i as u32), p.isp, p.partners.len())
        };
        // Demand-driven: peers solicit recommendations only while
        // below their membership target, so churn keeps partner
        // counts drifting *down* from the bootstrap 50 (Fig. 4A's
        // observation) instead of railing at the hard cap.
        if partner_count == 0 || partner_count >= self.cfg.gossip_target_partners {
            return;
        }
        // Pick a random live partner as the recommender.
        let recommender = {
            let p = self.live_ref(i);
            let k = rng.random_range(0..partner_count);
            // lint:allow(C1): k < partner_count == p.partners.len() by the range above
            p.partners
                .keys()
                .nth(k)
                .copied()
                .expect("k within partner count")
        };
        let Some(rec_state) = self.peers[recommender.index()].as_ref() else {
            return;
        };
        // Recommend the partners the recommender scores highest.
        // Under the locality extension the recommender additionally
        // prefers candidates in the requester's ISP (it sees the
        // requester's IP, so this needs no extra protocol state).
        let locality = self.cfg.tracker_locality_fraction > 0.0;
        let mut recs: Vec<(PeerId, f64, bool)> = rec_state
            .partners
            .iter()
            .filter(|(&pid, _)| pid != id)
            .map(|(&pid, l)| {
                let same_isp = self.isps.get(pid.index()).copied() == Some(my_isp);
                (pid, l.score(), same_isp)
            })
            .collect(); // lint:allow(H2): gossip candidates from one peer's capped partner table
        recs.sort_by(|a, b| {
            ((locality && b.2), b.1)
                .0
                .cmp(&(locality && a.2))
                .then(b.1.total_cmp(&a.1))
        });
        recs.truncate(self.cfg.gossip_fanout);
        // Partner-table keys iterate in ascending order, so the known
        // list is already sorted for the binary search below.
        let my_known: Vec<PeerId> = self.live_ref(i).partners.keys().copied().collect(); // lint:allow(H2): known-list of one peer's capped partner table
        for (cand, _, _) in recs {
            if my_known.binary_search(&cand).is_ok() || cand.index() >= self.peers.len() {
                continue;
            }
            let Some(other) = &self.peers[cand.index()] else {
                continue;
            };
            if other.channel != self.live_ref(i).channel {
                continue;
            }
            let other_isp = other.isp;
            if !faults.path_open(my_isp, other_isp, now) {
                counters.links_blocked += 1;
                continue;
            }
            let quality = self.cfg.link_model.sample(rng, my_isp, other_isp);
            self.live_mut(cand.index()).add_partner(id, quality, now);
            self.live_mut(i).add_partner(cand, quality, now);
        }
    }

    fn emit_reports<F>(
        &mut self,
        tick_end: SimTime,
        faults: &FaultPlan,
        fault_rng: &mut StdRng,
        counters: &mut FaultCounters,
        sink: &mut F,
    ) -> u64
    where
        F: FnMut(PeerReport),
    {
        let mut emitted = 0;
        let window = self.cfg.window_segments;
        // Split borrows: address table is read-only during the pass.
        let addrs = std::mem::take(&mut self.addrs);
        for slot in self.peers.iter_mut() {
            let Some(p) = slot else { continue };
            let Some(due) = p.next_report else { continue };
            if due >= tick_end {
                continue;
            }
            let report = p.build_report(due, window, |pid| addrs[pid.index()]);
            p.next_report = Some(due + REPORT_INTERVAL);
            // Injected datagram loss: the peer built and sent its
            // report either way, but it never arrives. Draw only
            // when loss is possible, so a fault-free plan makes zero
            // draws from the fault stream.
            let loss = faults.report_loss_prob(p.isp, due);
            if loss > 0.0 && fault_rng.random_range(0.0..1.0) < loss {
                counters.reports_lost += 1;
                continue;
            }
            sink(report);
            emitted += 1;
        }
        self.addrs = addrs;
        emitted
    }

    fn bootstrap_policy(&self) -> BootstrapPolicy {
        BootstrapPolicy {
            use_volunteers: !self.cfg.disable_volunteer,
            locality_fraction: self.cfg.tracker_locality_fraction,
        }
    }

    /// Verifies structural invariants of the current overlay state;
    /// used by tests and available to callers after (or between)
    /// runs. Checks that connections are mutual, supplier sets are
    /// within bounds, and the live count matches the slab.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut live = 0usize;
        for (i, slot) in self.peers.iter().enumerate() {
            let Some(p) = slot else { continue };
            if !p.is_server {
                live += 1;
            }
            // Servers accept every connection and never prune; the
            // membership cap applies to ordinary peers only.
            if !p.is_server
                && p.partners.len() > self.cfg.max_partners + self.cfg.max_bootstrap_partners
            {
                return Err(format!(
                    "peer {i} holds {} partners (cap {})",
                    p.partners.len(),
                    self.cfg.max_partners
                ));
            }
            let suppliers = p.suppliers().count();
            if suppliers > self.cfg.target_suppliers {
                return Err(format!(
                    "peer {i} selected {suppliers} suppliers (target {})",
                    self.cfg.target_suppliers
                ));
            }
            for &pid in p.partners.keys() {
                // Dead partners are purged lazily within one
                // selection round; they are tolerated here.
                if let Some(Some(other)) = self.peers.get(pid.index()) {
                    if !other.partners.contains_key(&PeerId(i as u32)) {
                        return Err(format!("connection {i} -> {} is not mutual", pid.index()));
                    }
                }
            }
        }
        if live != self.live {
            return Err(format!(
                "live count {} disagrees with slab ({live})",
                self.live
            ));
        }
        Ok(())
    }

    /// ISP of a peer address allocated in this run.
    pub fn isp_of(&self, addr: PeerAddr) -> Isp {
        self.db.lookup(addr)
    }

    /// Current live (non-server) population.
    pub fn live_peers(&self) -> usize {
        self.live
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use magellan_netsim::StudyCalendar;
    use magellan_workload::{DiurnalProfile, Scenario};

    /// A tiny scenario: ~40 concurrent peers, 6 hours. Fast enough
    /// for debug-mode tests while still exercising every mechanism.
    pub(crate) fn tiny_scenario(seed: u64) -> Scenario {
        let mut s = Scenario::builder(seed, 0.0004)
            .calendar(StudyCalendar { window_days: 1 })
            .diurnal(DiurnalProfile::flat())
            .flash_crowds(vec![])
            .build();
        s.channels = magellan_workload::ChannelDirectory::uusee(2);
        s
    }

    fn quick_cfg() -> SimConfig {
        SimConfig::default()
    }

    #[test]
    fn run_produces_reports_and_churn() {
        let mut sim = OverlaySim::new(tiny_scenario(1), quick_cfg());
        let (store, summary) = sim.run_collecting().expect("tiny run succeeds");
        assert!(summary.joins > 50, "joins = {}", summary.joins);
        assert!(summary.leaves > 0);
        assert!(summary.reports > 0, "no reports emitted");
        assert_eq!(store.len() as u64, summary.reports);
        assert!(summary.segments > 0.0);
        assert!(summary.peak_concurrent > 5);
    }

    #[test]
    fn runs_are_deterministic() {
        let run = |seed| {
            let mut sim = OverlaySim::new(tiny_scenario(seed), quick_cfg());
            sim.run_collecting().expect("tiny run succeeds")
        };
        let (store_a, sum_a) = run(7);
        let (store_b, sum_b) = run(7);
        assert_eq!(sum_a, sum_b);
        assert_eq!(store_a.reports(), store_b.reports());
        let (_, sum_c) = run(8);
        assert_ne!(sum_a, sum_c);
    }

    #[test]
    fn reports_follow_the_measurement_schedule() {
        let mut sim = OverlaySim::new(tiny_scenario(2), quick_cfg());
        let (store, _) = sim.run_collecting().expect("tiny run succeeds");
        // Group reports by reporter; check spacing is REPORT_INTERVAL.
        let mut by_peer: BTreeMap<PeerAddr, Vec<SimTime>> = BTreeMap::new();
        for r in store.reports() {
            by_peer.entry(r.addr).or_default().push(r.time);
        }
        let mut checked = 0;
        for times in by_peer.values() {
            for w in times.windows(2) {
                assert_eq!(
                    w[1].since(w[0]),
                    REPORT_INTERVAL,
                    "reports not 10 minutes apart"
                );
                checked += 1;
            }
        }
        assert!(checked > 10, "not enough multi-report peers ({checked})");
    }

    #[test]
    fn most_viewers_achieve_good_rates() {
        let mut sim = OverlaySim::new(tiny_scenario(3), quick_cfg());
        let (store, _) = sim.run_collecting().expect("tiny run succeeds");
        let total = store.len();
        assert!(total > 20);
        let good = store
            .reports()
            .iter()
            .filter(|r| r.recv_throughput_kbps >= 0.9 * 400.0)
            .count();
        let frac = good as f64 / total as f64;
        assert!(
            frac > 0.5,
            "only {frac:.2} of reports show satisfactory rates"
        );
    }

    #[test]
    fn partner_lists_are_populated_and_bounded() {
        let cfg = quick_cfg();
        let max = cfg.max_partners;
        let mut sim = OverlaySim::new(tiny_scenario(4), cfg);
        let (store, _) = sim.run_collecting().expect("tiny run succeeds");
        let mut nonempty = 0;
        for r in store.reports() {
            assert!(r.partners.len() <= max, "partner list over bound");
            if !r.partners.is_empty() {
                nonempty += 1;
            }
        }
        assert!(
            nonempty * 10 >= store.len() * 9,
            "too many empty partner lists: {nonempty}/{}",
            store.len()
        );
    }

    #[test]
    fn reports_validate_at_the_trace_server() {
        // run_collecting panics internally if the server rejects any
        // report; reaching here is the assertion.
        let mut sim = OverlaySim::new(tiny_scenario(5), quick_cfg());
        let (store, _) = sim.run_collecting().expect("tiny run succeeds");
        assert!(!store.is_empty());
    }

    #[test]
    fn active_links_exist_in_reports() {
        let mut sim = OverlaySim::new(tiny_scenario(6), quick_cfg());
        let (store, _) = sim.run_collecting().expect("tiny run succeeds");
        let active_links: u64 = store
            .reports()
            .iter()
            .map(|r| r.partners.iter().filter(|p| p.is_active()).count() as u64)
            .sum();
        assert!(active_links > 50, "active links = {active_links}");
    }

    #[test]
    fn invariants_hold_after_a_run() {
        let mut sim = OverlaySim::new(tiny_scenario(11), quick_cfg());
        sim.run(|_| {}).expect("tiny run succeeds");
        sim.check_invariants().expect("invariants violated");
    }

    #[test]
    fn no_fault_plan_means_zero_fault_counters() {
        let mut sim = OverlaySim::new(tiny_scenario(1), quick_cfg());
        let (_, summary) = sim.run_collecting().expect("tiny run succeeds");
        // partner_timeouts is legitimately nonzero without faults
        // (lazy discovery of one-sidedly pruned edges after the
        // pruner departs); every *injection* counter must be zero.
        let f = FaultCounters {
            partner_timeouts: summary.faults.partner_timeouts,
            ..FaultCounters::default()
        };
        assert_eq!(summary.faults, f);
    }

    #[test]
    fn crash_wave_kills_without_leave_messages() {
        use magellan_workload::CrashWave;
        let run = |faults: FaultPlan| {
            let mut s = tiny_scenario(9);
            s.faults = faults;
            let mut sim = OverlaySim::new(s, quick_cfg());
            let summary = sim.run_collecting().expect("run succeeds").1;
            sim.check_invariants().expect("invariants violated");
            summary
        };
        let clean = run(FaultPlan::default());
        let dirty = run(FaultPlan {
            crash_waves: vec![CrashWave {
                at: SimTime::at(0, 3, 0),
                fraction: 0.5,
            }],
            ..FaultPlan::default()
        });
        assert!(dirty.faults.crashes > 0, "no crashes injected");
        // Crashed peers send no leave message, so their scheduled
        // departures are never counted…
        assert!(
            dirty.leaves < clean.leaves,
            "leaves {} not below clean {}",
            dirty.leaves,
            clean.leaves
        );
        // …their partners discover the loss by transfer timeout, and
        // the tracker expires the stale entries.
        assert!(dirty.faults.partner_timeouts > 0);
        assert_eq!(dirty.faults.tracker_expirations, dirty.faults.crashes);
    }

    #[test]
    fn tracker_outage_denies_and_retries_bootstrap() {
        use magellan_netsim::FaultWindow;
        let mut s = tiny_scenario(10);
        s.faults = FaultPlan {
            tracker_outages: vec![FaultWindow::new(SimTime::at(0, 1, 0), SimTime::at(0, 2, 0))],
            ..FaultPlan::default()
        };
        let mut sim = OverlaySim::new(s, quick_cfg());
        let (_, summary) = sim.run_collecting().expect("run succeeds");
        assert!(summary.faults.tracker_denied_joins > 0, "{summary:?}");
        assert!(summary.faults.bootstrap_retries > 0, "{summary:?}");
        assert!(
            summary.faults.bootstrap_recoveries > 0,
            "nobody recovered after the outage: {summary:?}"
        );
        assert!(summary.reports > 0);
    }

    #[test]
    fn fault_runs_are_deterministic() {
        let run = || {
            let mut s = tiny_scenario(12);
            s.faults = FaultPlan::combined_stress(0);
            let mut sim = OverlaySim::new(s, quick_cfg());
            sim.run_collecting().expect("faulty run succeeds")
        };
        let (store_a, sum_a) = run();
        let (store_b, sum_b) = run();
        assert_eq!(sum_a, sum_b);
        assert_eq!(store_a.reports(), store_b.reports());
        // The combined schedule exercises every fault class.
        assert!(sum_a.faults.reports_lost > 0, "{:?}", sum_a.faults);
        assert!(sum_a.faults.crashes > 0, "{:?}", sum_a.faults);
        assert!(sum_a.faults.flows_blocked > 0, "{:?}", sum_a.faults);
    }

    /// Runs `scenario` to completion two ways — uninterrupted, and
    /// interrupted at `stop_tick` with a capture → encode → decode →
    /// resume round-trip — and asserts byte-identical reports and an
    /// identical summary.
    fn assert_resume_is_identical(scenario: Scenario, stop_tick_frac: (u64, u64)) {
        let mut clean_reports: Vec<Vec<u8>> = Vec::new();
        let mut sim = OverlaySim::new(scenario.clone(), quick_cfg());
        let mut state = sim.begin();
        let mut sink =
            |r: PeerReport| clean_reports.push(magellan_trace::wire::encode(&r).to_vec());
        while sim.tick_once(&mut state, &mut sink).expect("tick") {}
        let clean = state.summary;
        let clean_final = sim.capture(&state).encode();

        let mut resumed_reports: Vec<Vec<u8>> = Vec::new();
        let mut sink =
            |r: PeerReport| resumed_reports.push(magellan_trace::wire::encode(&r).to_vec());
        let mut sim = OverlaySim::new(scenario.clone(), quick_cfg());
        let mut state = sim.begin();
        let stop = state.ticks_total() * stop_tick_frac.0 / stop_tick_frac.1;
        while state.next_tick() < stop {
            sim.tick_once(&mut state, &mut sink).expect("tick");
        }
        // Simulated crash: everything but the checkpoint bytes dies.
        let bytes = sim.capture(&state).encode();
        drop((sim, state));
        let ckpt = crate::checkpoint::SimCheckpoint::decode(&bytes).expect("decodes");
        let (mut sim, mut state) = OverlaySim::resume(scenario, quick_cfg(), &ckpt);
        while sim.tick_once(&mut state, &mut sink).expect("tick") {}

        assert_eq!(state.summary, clean, "summaries diverged");
        assert_eq!(
            resumed_reports.len(),
            clean_reports.len(),
            "report counts diverged"
        );
        assert_eq!(resumed_reports, clean_reports, "report bytes diverged");
        // The strongest check: the complete end-of-run state (peer
        // slab, tracker, RNG streams, …) is byte-identical to the
        // uninterrupted run's.
        assert_eq!(
            sim.capture(&state).encode(),
            clean_final,
            "final captured state diverged"
        );
    }

    #[test]
    fn checkpoint_resume_is_byte_identical() {
        assert_resume_is_identical(tiny_scenario(13), (1, 2));
    }

    #[test]
    fn checkpoint_resume_is_byte_identical_under_faults() {
        let mut s = tiny_scenario(14);
        s.faults = FaultPlan::combined_stress(0);
        assert_resume_is_identical(s, (1, 3));
    }

    #[test]
    fn stepped_run_matches_run() {
        let mut a_reports = Vec::new();
        let mut sim = OverlaySim::new(tiny_scenario(15), quick_cfg());
        let a = sim.run(|r| a_reports.push(r)).expect("run succeeds");
        let mut b_reports = Vec::new();
        let mut sim = OverlaySim::new(tiny_scenario(15), quick_cfg());
        let mut state = sim.begin();
        let mut sink = |r: PeerReport| b_reports.push(r);
        while sim.tick_once(&mut state, &mut sink).expect("tick") {}
        assert_eq!(a, *state.summary());
        assert_eq!(a_reports, b_reports);
    }

    #[test]
    fn random_selection_ablation_still_runs() {
        let cfg = SimConfig {
            random_selection: true,
            ..quick_cfg()
        };
        let mut sim = OverlaySim::new(tiny_scenario(7), cfg);
        let (_, summary) = sim.run_collecting().expect("tiny run succeeds");
        assert!(summary.reports > 0);
    }

    #[test]
    fn disable_volunteer_ablation_still_runs() {
        let cfg = SimConfig {
            disable_volunteer: true,
            ..quick_cfg()
        };
        let mut sim = OverlaySim::new(tiny_scenario(8), cfg);
        let (_, summary) = sim.run_collecting().expect("tiny run succeeds");
        assert!(summary.reports > 0);
    }
}

#[cfg(test)]
mod debug_tests {
    use super::*;

    #[test]
    #[ignore]
    fn dump_rates() {
        let mut sim = OverlaySim::new(super::tests::tiny_scenario(3), SimConfig::default());
        let (store, summary) = sim.run_collecting().expect("tiny run succeeds");
        println!("summary: {summary:?}");
        let mut rates: Vec<f64> = store
            .reports()
            .iter()
            .map(|r| r.recv_throughput_kbps)
            .collect();
        rates.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = rates.len();
        println!(
            "n={n} p10={} p50={} p90={} max={}",
            rates[n / 10],
            rates[n / 2],
            rates[9 * n / 10],
            rates[n - 1]
        );
        let fills: Vec<f64> = store
            .reports()
            .iter()
            .map(|r| r.buffer_map.fill_fraction())
            .collect();
        println!("fill p50 = {}", {
            let mut f = fills.clone();
            f.sort_by(|a, b| a.partial_cmp(b).unwrap());
            f[f.len() / 2]
        });
        let pc: Vec<usize> = store.reports().iter().map(|r| r.partner_count()).collect();
        println!("partners p50 = {}", {
            let mut f = pc.clone();
            f.sort();
            f[f.len() / 2]
        });
        let ind: Vec<usize> = store
            .reports()
            .iter()
            .map(|r| r.active_indegree())
            .collect();
        println!("indegree p50 = {}", {
            let mut f = ind.clone();
            f.sort();
            f[f.len() / 2]
        });
        let send: Vec<f64> = store
            .reports()
            .iter()
            .map(|r| r.send_throughput_kbps)
            .collect();
        println!("send p50 = {}", {
            let mut f = send.clone();
            f.sort_by(|a, b| a.partial_cmp(b).unwrap());
            f[f.len() / 2]
        });
    }
}

#[cfg(test)]
mod locality_debug {
    use super::*;
    use crate::config::SimConfig;

    #[test]
    #[ignore]
    fn dump_pool_composition() {
        for locality in [0.0, 0.7] {
            let cfg = SimConfig {
                tracker_locality_fraction: locality,
                ..SimConfig::default()
            };
            let mut sim = OverlaySim::new(super::tests::tiny_scenario(5), cfg);
            let db = sim.isp_database().clone();
            let (store, _) = sim.run_collecting().expect("tiny run succeeds");
            // Pool intra fraction over all reports.
            let mut sum = 0.0;
            let mut n = 0;
            for r in store.reports() {
                if r.partners.is_empty() {
                    continue;
                }
                let my = db.lookup(r.addr);
                let same = r
                    .partners
                    .iter()
                    .filter(|p| db.lookup(p.addr) == my)
                    .count();
                sum += same as f64 / r.partners.len() as f64;
                n += 1;
            }
            println!(
                "locality {locality}: pool intra fraction = {:.3} over {n} reports",
                sum / n as f64
            );
        }
    }
}
