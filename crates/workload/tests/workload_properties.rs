//! Property tests over workload generation: arrival ordering, crowd
//! multiplier bounds, scenario determinism.

use magellan_netsim::{RngFactory, SimDuration, SimTime, StudyCalendar};
use magellan_workload::{
    generate_arrivals, ChannelDirectory, DiurnalProfile, FlashCrowd, Scenario, SessionModel,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn arrivals_sorted_in_window_for_any_seed(seed in any::<u64>(), rate in 1.0f64..500.0) {
        let mut rng = RngFactory::new(seed).fork("prop-arrivals");
        let start = SimTime::ORIGIN;
        let end = start + SimDuration::from_hours(6);
        let arrivals = generate_arrivals(&mut rng, start, end, rate, |_| rate);
        for w in arrivals.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        prop_assert!(arrivals.iter().all(|&t| t >= start && t < end));
    }

    #[test]
    fn diurnal_intensity_bounded_by_peak(day in 0u64..14, hour in 0u64..24, minute in 0u64..60) {
        let p = DiurnalProfile::default();
        let cal = StudyCalendar::default();
        let t = SimTime::at(day, hour, minute);
        let i = p.intensity(&cal, t);
        prop_assert!(i > 0.0);
        prop_assert!(i <= p.peak_intensity() + 1e-12);
    }

    #[test]
    fn crowd_multiplier_bounds(mins_offset in -600i64..600, magnitude in 1.0f64..10.0) {
        let mut crowd = FlashCrowd::mid_autumn(vec![]);
        crowd.magnitude = magnitude;
        let t = if mins_offset >= 0 {
            crowd.peak + SimDuration::from_mins(mins_offset as u64)
        } else {
            crowd.peak - SimDuration::from_mins((-mins_offset) as u64)
        };
        let m = crowd.multiplier(t);
        prop_assert!(m >= 1.0 - 1e-12);
        prop_assert!(m <= magnitude + 1e-12);
    }

    #[test]
    fn sessions_respect_bounds_for_any_seed(seed in any::<u64>()) {
        let m = SessionModel::default();
        let mut rng = RngFactory::new(seed).fork("prop-sessions");
        for _ in 0..100 {
            let d = m.sample(&mut rng);
            let mins = d.as_millis() as f64 / 60_000.0;
            prop_assert!(mins >= m.min_mins - 1e-9);
            prop_assert!(mins <= m.max_mins + 1e-9);
        }
    }

    #[test]
    fn survival_is_a_probability(mins in 0u64..10_000) {
        let m = SessionModel::default();
        let s = m.survival(SimDuration::from_mins(mins));
        prop_assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn channel_shares_sum_to_one(n in 2usize..100) {
        let dir = ChannelDirectory::uusee(n);
        let sum: f64 = (0..n).map(|i| dir.share(magellan_workload::ChannelId(i as u16))).sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn scenario_generation_is_deterministic(seed in any::<u64>()) {
        let build = || {
            Scenario::builder(seed, 0.0003)
                .calendar(StudyCalendar { window_days: 1 })
                .build()
                .generate_joins()
        };
        prop_assert_eq!(build(), build());
    }

    #[test]
    fn joins_stay_inside_the_window(seed in any::<u64>(), days in 1u64..4) {
        let s = Scenario::builder(seed, 0.0002)
            .calendar(StudyCalendar { window_days: days })
            .build();
        let end = s.calendar.window_end();
        for j in s.generate_joins() {
            prop_assert!(j.time < end);
            prop_assert!(j.duration > SimDuration::ZERO);
            prop_assert!((j.channel.0 as usize) < s.channels.len());
        }
    }
}
