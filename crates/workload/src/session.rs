//! Session-duration model.
//!
//! Viewing sessions are lognormal with a heavy upper tail: most
//! viewers zap away quickly, a backbone stays for hours. The paper's
//! measurement design keys on this: a peer only reports after 20
//! minutes online, and the reporting ("stable") peers turn out to be
//! roughly one third of the concurrent population (§3.2, §4.1.1).
//! Because long sessions are over-represented *time-wise*, a modest
//! per-session probability of exceeding 20 minutes yields exactly such
//! a concurrent share; `stable_concurrent_share` computes it in closed
//! form so tests can pin the calibration.

use magellan_netsim::rng::lognormal_median;
use magellan_netsim::SimDuration;
use serde::{Deserialize, Serialize};

/// The report latency that defines a "stable" peer: first report 20
/// minutes after joining (paper §3.2).
pub const STABLE_THRESHOLD: SimDuration = SimDuration::from_mins(20);

/// Lognormal session-duration model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SessionModel {
    /// Median session length in minutes.
    pub median_mins: f64,
    /// Sigma of the underlying normal.
    pub sigma: f64,
    /// Floor on sampled durations (channel-zapping lower bound).
    pub min_mins: f64,
    /// Cap on sampled durations (nobody streams for a month).
    pub max_mins: f64,
}

impl Default for SessionModel {
    fn default() -> Self {
        SessionModel {
            median_mins: 8.0,
            sigma: 1.15,
            min_mins: 0.5,
            max_mins: 12.0 * 60.0,
        }
    }
}

impl SessionModel {
    /// Draws one session duration.
    pub fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> SimDuration {
        let mins =
            lognormal_median(rng, self.median_mins, self.sigma).clamp(self.min_mins, self.max_mins);
        SimDuration::from_millis((mins * 60_000.0) as u64)
    }

    /// Probability that a single session exceeds `threshold`
    /// (per-session, not time-weighted), ignoring the clamp bounds.
    pub fn survival(&self, threshold: SimDuration) -> f64 {
        let t_mins = threshold.as_millis() as f64 / 60_000.0;
        if t_mins <= 0.0 {
            return 1.0;
        }
        let z = (t_mins / self.median_mins).ln() / self.sigma;
        0.5 * erfc(z / std::f64::consts::SQRT_2)
    }

    /// The expected share of the *concurrent* population that has
    /// been online at least [`STABLE_THRESHOLD`] in steady state.
    ///
    /// By renewal-reward, a session of length `d` spends
    /// `max(d − τ, 0)` of its life in the stable state, so the share
    /// is `E[max(d − τ, 0)] / E[d]`, evaluated numerically over the
    /// clamped lognormal.
    pub fn stable_concurrent_share(&self) -> f64 {
        // Numeric integration over the lognormal density in minutes.
        let tau = STABLE_THRESHOLD.as_millis() as f64 / 60_000.0;
        let mu = self.median_mins.ln();
        let steps = 4_000;
        let lo = self.min_mins.max(1e-3).ln();
        let hi = self.max_mins.ln();
        let dx = (hi - lo) / steps as f64;
        let mut num = 0.0;
        let mut den = 0.0;
        for i in 0..steps {
            let x = lo + (i as f64 + 0.5) * dx; // log-duration
            let d = x.exp();
            let pdf = (-0.5 * ((x - mu) / self.sigma).powi(2)).exp()
                / (self.sigma * (2.0 * std::f64::consts::PI).sqrt());
            // Change of variables: integrate over log-space.
            num += (d - tau).max(0.0) * pdf * dx;
            den += d * pdf * dx;
        }
        if den <= 0.0 {
            0.0
        } else {
            num / den
        }
    }
}

/// Complementary error function (Abramowitz–Stegun 7.1.26, |ε| ≤ 1.5e-7).
fn erfc(x: f64) -> f64 {
    let sign_neg = x < 0.0;
    let x_abs = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x_abs);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    let e = poly * (-x_abs * x_abs).exp();
    if sign_neg {
        2.0 - e
    } else {
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magellan_netsim::RngFactory;

    #[test]
    fn sampled_median_matches_parameter() {
        let m = SessionModel::default();
        let mut rng = RngFactory::new(1).fork("sessions");
        let mut mins: Vec<f64> = (0..40_001)
            .map(|_| m.sample(&mut rng).as_millis() as f64 / 60_000.0)
            .collect();
        mins.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = mins[20_000];
        assert!(
            (median - m.median_mins).abs() < 1.0,
            "median = {median}, want ≈ {}",
            m.median_mins
        );
    }

    #[test]
    fn samples_respect_bounds() {
        let m = SessionModel::default();
        let mut rng = RngFactory::new(2).fork("sessions");
        for _ in 0..20_000 {
            let d = m.sample(&mut rng);
            let mins = d.as_millis() as f64 / 60_000.0;
            assert!(mins >= m.min_mins - 1e-9);
            assert!(mins <= m.max_mins + 1e-9);
        }
    }

    #[test]
    fn survival_is_monotone() {
        let m = SessionModel::default();
        let s5 = m.survival(SimDuration::from_mins(5));
        let s20 = m.survival(SimDuration::from_mins(20));
        let s60 = m.survival(SimDuration::from_mins(60));
        assert!(s5 > s20 && s20 > s60);
        assert!((0.0..=1.0).contains(&s20));
    }

    #[test]
    fn survival_matches_empirical() {
        let m = SessionModel::default();
        let mut rng = RngFactory::new(3).fork("sessions");
        let n = 50_000;
        let over = (0..n)
            .filter(|_| m.sample(&mut rng) >= SimDuration::from_mins(20))
            .count();
        let got = over as f64 / n as f64;
        let want = m.survival(SimDuration::from_mins(20));
        assert!((got - want).abs() < 0.01, "got {got}, want {want}");
    }

    #[test]
    fn stable_share_is_near_one_third() {
        // The paper: stable peers ≈ 1/3 of concurrent peers.
        let share = SessionModel::default().stable_concurrent_share();
        assert!((0.28..=0.42).contains(&share), "stable share = {share}");
    }

    #[test]
    fn zero_threshold_survives_always() {
        let m = SessionModel::default();
        assert_eq!(m.survival(SimDuration::ZERO), 1.0);
    }

    #[test]
    fn erfc_reference_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157_299_2).abs() < 1e-6);
        assert!((erfc(-1.0) - 1.842_700_8).abs() < 1e-6);
        assert!(erfc(4.0) < 1e-7);
    }
}
