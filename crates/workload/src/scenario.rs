//! Scenario composition: everything the overlay simulator needs to
//! replay a study window.
//!
//! A [`Scenario`] bundles the calendar, the diurnal profile, the flash
//! crowds, the session model, the channel directory, and a population
//! scale, and turns them into a deterministic stream of
//! [`JoinEvent`]s. `scale = 1.0` reproduces the paper's ~100,000
//! concurrent peers; the default experiment scale is much smaller (the
//! figures are shape-, not size-, dependent) and every binary accepts
//! `--scale`.

use crate::arrivals::generate_arrivals;
use crate::channels::{ChannelDirectory, ChannelId};
use crate::diurnal::DiurnalProfile;
use crate::faults::FaultPlan;
use crate::flashcrowd::{combined_multiplier, FlashCrowd};
use crate::session::SessionModel;
use magellan_netsim::{RngFactory, SimDuration, SimTime, StudyCalendar};
use rand::RngExt as _;
use serde::{Deserialize, Serialize};

/// Arrival rate (joins per hour) that yields the paper's ~100k
/// concurrent peers at the evening peak when `scale = 1.0`, given the
/// default session model's ~16-minute mean session.
pub const FULL_SCALE_PEAK_RATE_PER_HOUR: f64 = 390_000.0;

/// One peer join handed to the overlay simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JoinEvent {
    /// When the peer joins.
    pub time: SimTime,
    /// How long it stays before leaving.
    pub duration: SimDuration,
    /// The channel it watches.
    pub channel: ChannelId,
}

/// A fully specified workload scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Experiment seed; every draw derives from it.
    pub seed: u64,
    /// Population scale relative to the real system (1.0 = ~100k
    /// concurrent at peak).
    pub scale: f64,
    /// The study calendar (window length, weekday mapping).
    pub calendar: StudyCalendar,
    /// Time-of-day intensity.
    pub diurnal: DiurnalProfile,
    /// Flash crowds (default: the Mid-Autumn gala).
    pub flash_crowds: Vec<FlashCrowd>,
    /// Session durations.
    pub sessions: SessionModel,
    /// Channel directory.
    pub channels: ChannelDirectory,
    /// Scheduled fault events (default: none).
    pub faults: FaultPlan,
}

impl Scenario {
    /// Starts a builder with the given seed and scale.
    pub fn builder(seed: u64, scale: f64) -> ScenarioBuilder {
        ScenarioBuilder::new(seed, scale)
    }

    /// The instantaneous arrival rate (joins/hour) at `t`.
    pub fn arrival_rate_per_hour(&self, t: SimTime) -> f64 {
        FULL_SCALE_PEAK_RATE_PER_HOUR
            * self.scale
            * self.diurnal.intensity(&self.calendar, t)
            * combined_multiplier(&self.flash_crowds, t)
    }

    /// Expected concurrent population at `t` (arrival rate × mean
    /// session length) — a Little's-law estimate used for calibration
    /// checks, not by the simulator itself.
    pub fn expected_concurrent(&self, t: SimTime) -> f64 {
        // Mean of the clamped lognormal, computed the same way the
        // session model integrates its stable share.
        let mean_mins = {
            let mu = self.sessions.median_mins.ln();
            let steps = 2_000;
            let lo = self.sessions.min_mins.max(1e-3).ln();
            let hi = self.sessions.max_mins.ln();
            let dx = (hi - lo) / steps as f64;
            let mut acc = 0.0;
            let mut mass = 0.0;
            for i in 0..steps {
                let x = lo + (i as f64 + 0.5) * dx;
                let pdf = (-0.5 * ((x - mu) / self.sessions.sigma).powi(2)).exp()
                    / (self.sessions.sigma * (2.0 * std::f64::consts::PI).sqrt());
                acc += x.exp() * pdf * dx;
                mass += pdf * dx;
            }
            acc / mass.max(1e-12)
        };
        self.arrival_rate_per_hour(t) * mean_mins / 60.0
    }

    /// A stable fingerprint over every field that shapes the
    /// generated workload. Checkpoint resume stores it alongside
    /// captured state and refuses state from a different scenario —
    /// resuming seed 7's study with seed 8's checkpoint would
    /// silently corrupt the archive. Hashes the canonical debug
    /// rendering (FNV-1a): exhaustive over fields by construction,
    /// deterministic within a build.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in format!("{self:?}").bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// Generates the deterministic join stream for the whole window.
    ///
    /// Channel choice follows directory popularity, except while a
    /// channel-targeted flash crowd is active: the *extra* arrivals it
    /// contributes head to its target channels, which is how the gala
    /// concentrated the Mid-Autumn crowd on CCTV (and why Fig. 3's
    /// CCTV4 quality spike is visible).
    pub fn generate_joins(&self) -> Vec<JoinEvent> {
        let factory = RngFactory::new(self.seed);
        let mut arr_rng = factory.fork("scenario/arrivals");
        let mut sess_rng = factory.fork("scenario/sessions");
        let mut chan_rng = factory.fork("scenario/channels");
        let end = self.calendar.window_end();
        let max_crowd: f64 = self
            .flash_crowds
            .iter()
            .map(|c| c.magnitude.max(1.0))
            .product();
        let majorant =
            FULL_SCALE_PEAK_RATE_PER_HOUR * self.scale * self.diurnal.peak_intensity() * max_crowd;
        let times = generate_arrivals(&mut arr_rng, SimTime::ORIGIN, end, majorant, |t| {
            self.arrival_rate_per_hour(t)
        });
        times
            .into_iter()
            .map(|time| {
                let duration = self.sessions.sample(&mut sess_rng);
                let channel = self.pick_channel(&mut chan_rng, time);
                JoinEvent {
                    time,
                    duration,
                    channel,
                }
            })
            .collect()
    }

    fn pick_channel<R: rand::Rng + ?Sized>(&self, rng: &mut R, t: SimTime) -> ChannelId {
        for crowd in &self.flash_crowds {
            if crowd.target_channels().is_empty() || !crowd.is_active(t) {
                continue;
            }
            let m = crowd.multiplier(t);
            // Of the m× arrivals, (m-1)× are crowd-driven: route that
            // fraction to the target channels.
            let crowd_fraction = (m - 1.0) / m;
            if rng.random_range(0.0..1.0) < crowd_fraction {
                let targets = crowd.target_channels();
                return targets[rng.random_range(0..targets.len())];
            }
        }
        self.channels.sample(rng)
    }
}

/// Builder for [`Scenario`].
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    scenario: Scenario,
}

impl ScenarioBuilder {
    /// Creates a builder with UUSee-like defaults: 14-day window,
    /// default diurnal profile, the Mid-Autumn flash crowd targeting
    /// CCTV1 and CCTV4, default sessions, a 20-channel directory.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not strictly positive.
    pub fn new(seed: u64, scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        ScenarioBuilder {
            scenario: Scenario {
                seed,
                scale,
                calendar: StudyCalendar::default(),
                diurnal: DiurnalProfile::default(),
                flash_crowds: vec![FlashCrowd::mid_autumn(vec![
                    ChannelId::CCTV1,
                    ChannelId::CCTV4,
                ])],
                sessions: SessionModel::default(),
                channels: ChannelDirectory::uusee(20),
                faults: FaultPlan::default(),
            },
        }
    }

    /// Replaces the calendar (e.g. a shorter window for tests).
    pub fn calendar(mut self, calendar: StudyCalendar) -> Self {
        self.scenario.calendar = calendar;
        self
    }

    /// Replaces the diurnal profile.
    pub fn diurnal(mut self, diurnal: DiurnalProfile) -> Self {
        self.scenario.diurnal = diurnal;
        self
    }

    /// Replaces the flash-crowd list (empty disables crowds).
    pub fn flash_crowds(mut self, crowds: Vec<FlashCrowd>) -> Self {
        self.scenario.flash_crowds = crowds;
        self
    }

    /// Replaces the session model.
    pub fn sessions(mut self, sessions: SessionModel) -> Self {
        self.scenario.sessions = sessions;
        self
    }

    /// Replaces the channel directory.
    pub fn channels(mut self, channels: ChannelDirectory) -> Self {
        self.scenario.channels = channels;
        self
    }

    /// Replaces the fault plan (default: no faults).
    ///
    /// # Panics
    ///
    /// Panics if the plan fails [`FaultPlan::validate`] — a fault
    /// schedule is experiment configuration, and a bad one should
    /// abort before any simulation work starts.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        faults.validate().expect("invalid fault plan");
        self.scenario.faults = faults;
        self
    }

    /// Finalizes the scenario.
    pub fn build(self) -> Scenario {
        self.scenario
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Scenario {
        // ~200 concurrent at peak: fast to generate, big enough to test.
        Scenario::builder(42, 0.002)
            .calendar(StudyCalendar { window_days: 2 })
            .build()
    }

    #[test]
    fn fingerprint_tracks_workload_fields() {
        let a = small();
        assert_eq!(a.fingerprint(), small().fingerprint());
        let mut b = small();
        b.seed = 43;
        assert_ne!(a.fingerprint(), b.fingerprint());
        let mut c = small();
        c.scale = 0.004;
        assert_ne!(a.fingerprint(), c.fingerprint());
        let mut d = small();
        d.channels = ChannelDirectory::uusee(3);
        assert_ne!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    fn joins_are_sorted_and_in_window() {
        let s = small();
        let joins = s.generate_joins();
        assert!(!joins.is_empty());
        for w in joins.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        let end = s.calendar.window_end();
        assert!(joins.iter().all(|j| j.time < end));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small().generate_joins();
        let b = small().generate_joins();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = small().generate_joins();
        let b = {
            let mut s = small();
            s.seed = 43;
            s.generate_joins()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn evening_attracts_more_joins_than_early_morning() {
        let s = small();
        let joins = s.generate_joins();
        let count_in = |h_lo: u64, h_hi: u64| {
            joins
                .iter()
                .filter(|j| j.time.hour() >= h_lo && j.time.hour() < h_hi)
                .count()
        };
        let evening = count_in(20, 23);
        let dawn = count_in(3, 6);
        assert!(evening > dawn * 2, "evening {evening} not ≫ dawn {dawn}");
    }

    #[test]
    fn little_law_estimate_is_in_the_right_ballpark() {
        let s = Scenario::builder(1, 1.0).build();
        // At 9 p.m. on a weekday the paper reports ~100k concurrent.
        let est = s.expected_concurrent(SimTime::at(2, 21, 0));
        assert!(
            (60_000.0..180_000.0).contains(&est),
            "peak concurrent estimate = {est}"
        );
    }

    #[test]
    fn flash_crowd_concentrates_on_gala_channels() {
        let mut s = Scenario::builder(7, 0.004).build();
        s.calendar = StudyCalendar { window_days: 7 }; // includes Oct 6
        let joins = s.generate_joins();
        let fc = s.calendar.flash_crowd_instant();
        let near = |j: &JoinEvent| {
            j.time >= fc - SimDuration::from_mins(30) && j.time <= fc + SimDuration::from_mins(30)
        };
        let during: Vec<_> = joins.iter().filter(|j| near(j)).collect();
        let gala_share = during
            .iter()
            .filter(|j| j.channel == ChannelId::CCTV1 || j.channel == ChannelId::CCTV4)
            .count() as f64
            / during.len().max(1) as f64;
        // Baseline CCTV1+CCTV4 share is 0.36; the crowd must push it up.
        assert!(
            gala_share > 0.5,
            "gala share during crowd = {gala_share} over {} joins",
            during.len()
        );
    }

    #[test]
    fn disabled_crowds_remove_the_spike() {
        let s = Scenario::builder(11, 0.002)
            .calendar(StudyCalendar { window_days: 7 })
            .flash_crowds(vec![])
            .build();
        let fc = s.calendar.flash_crowd_instant();
        let rate_at_peak = s.arrival_rate_per_hour(fc);
        let rate_day_before = s.arrival_rate_per_hour(fc - SimDuration::from_days(1));
        // Without the crowd, Friday 9 p.m. ≈ Thursday 9 p.m. (modulo weekend).
        assert!((rate_at_peak / rate_day_before - 1.0).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn rejects_non_positive_scale() {
        let _ = Scenario::builder(0, 0.0);
    }
}
