//! Flash-crowd intensity spikes.
//!
//! Fig. 1(A) of the paper shows a large flash crowd at 9 p.m. on
//! October 6th, 2006 — the Mid-Autumn Festival, when CCTV channels
//! broadcast a celebration gala. A [`FlashCrowd`] is a multiplicative
//! intensity bump with a fast ramp-up and a slower exponential decay,
//! optionally focused on a subset of channels (the gala aired on
//! specific CCTV channels).

use crate::channels::ChannelId;
use magellan_netsim::{SimDuration, SimTime, StudyCalendar};
use serde::{Deserialize, Serialize};

/// One flash-crowd event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlashCrowd {
    /// The instant of peak intensity.
    pub peak: SimTime,
    /// Ramp-up duration (linear climb to the peak).
    pub ramp_up: SimDuration,
    /// Exponential decay constant after the peak.
    pub decay: SimDuration,
    /// Arrival-rate multiplier at the peak (`>= 1`).
    pub magnitude: f64,
    /// When non-empty, the crowd targets only these channels; an
    /// empty list means overlay-wide.
    pub channels: Vec<ChannelId>,
}

impl FlashCrowd {
    /// The Mid-Autumn Festival crowd of the study window: 9 p.m.
    /// Friday Oct 6, one-hour ramp, two-hour decay, 2.2× peak
    /// arrivals, focused on the gala channels.
    pub fn mid_autumn(gala_channels: Vec<ChannelId>) -> Self {
        FlashCrowd {
            peak: StudyCalendar::default().flash_crowd_instant(),
            ramp_up: SimDuration::from_mins(60),
            decay: SimDuration::from_mins(90),
            magnitude: 2.2,
            channels: gala_channels,
        }
    }

    /// The arrival multiplier contributed by this crowd at `t`
    /// (1.0 far from the event).
    pub fn multiplier(&self, t: SimTime) -> f64 {
        let extra = self.magnitude - 1.0;
        if extra <= 0.0 {
            return 1.0;
        }
        let shape = if t <= self.peak {
            let lead = self.peak.since(t).as_millis() as f64;
            let ramp = self.ramp_up.as_millis().max(1) as f64;
            if lead >= ramp {
                0.0
            } else {
                1.0 - lead / ramp
            }
        } else {
            let lag = t.since(self.peak).as_millis() as f64;
            let tau = self.decay.as_millis().max(1) as f64;
            (-lag / tau).exp()
        };
        1.0 + extra * shape
    }

    /// Whether the crowd biases channel choice at `t` and toward
    /// which channels.
    pub fn target_channels(&self) -> &[ChannelId] {
        &self.channels
    }

    /// Whether this crowd is meaningfully active at `t` (multiplier
    /// above 1% of its peak extra).
    pub fn is_active(&self, t: SimTime) -> bool {
        self.multiplier(t) > 1.0 + (self.magnitude - 1.0) * 0.01
    }
}

/// Combined multiplier of several crowds (they compound).
pub fn combined_multiplier(crowds: &[FlashCrowd], t: SimTime) -> f64 {
    crowds.iter().map(|c| c.multiplier(t)).product()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crowd() -> FlashCrowd {
        FlashCrowd::mid_autumn(vec![])
    }

    #[test]
    fn peak_value_is_magnitude() {
        let c = crowd();
        assert!((c.multiplier(c.peak) - 2.2).abs() < 1e-12);
    }

    #[test]
    fn quiet_long_before_and_after() {
        let c = crowd();
        let before = c.peak - SimDuration::from_hours(3);
        let after = c.peak + SimDuration::from_hours(12);
        assert!((c.multiplier(before) - 1.0).abs() < 1e-9);
        assert!(c.multiplier(after) < 1.01);
        assert!(!c.is_active(before));
        assert!(c.is_active(c.peak));
    }

    #[test]
    fn ramp_is_monotone_up() {
        let c = crowd();
        let mut prev = 0.0;
        for m in 0..=60 {
            let t = c.peak - SimDuration::from_mins(60 - m);
            let v = c.multiplier(t);
            assert!(v >= prev, "ramp not monotone at minute {m}");
            prev = v;
        }
    }

    #[test]
    fn decay_is_monotone_down() {
        let c = crowd();
        let mut prev = f64::INFINITY;
        for m in 0..=240 {
            let t = c.peak + SimDuration::from_mins(m);
            let v = c.multiplier(t);
            assert!(v <= prev + 1e-12, "decay not monotone at minute {m}");
            prev = v;
        }
    }

    #[test]
    fn unit_magnitude_is_inert() {
        let mut c = crowd();
        c.magnitude = 1.0;
        assert_eq!(c.multiplier(c.peak), 1.0);
        assert!(!c.is_active(c.peak));
    }

    #[test]
    fn combined_multiplier_compounds() {
        let a = crowd();
        let mut b = crowd();
        b.magnitude = 1.5;
        let combined = combined_multiplier(&[a.clone(), b.clone()], a.peak);
        assert!((combined - 2.2 * 1.5).abs() < 1e-9);
    }

    #[test]
    fn empty_crowd_list_is_one() {
        assert_eq!(combined_multiplier(&[], SimTime::ORIGIN), 1.0);
    }
}
