//! # magellan-workload
//!
//! Workload and scenario generation for the Magellan reproduction: who
//! joins the streaming overlay, when, for how long, and to watch what.
//!
//! The models are calibrated to the population dynamics the paper
//! reports (§4.1): a diurnal curve with a main peak around 9 p.m. and
//! a secondary one around 1 p.m. (GMT+8), a slight weekend increase, a
//! large flash crowd at 9 p.m. on October 6th 2006 (the Mid-Autumn
//! Festival gala broadcast), lognormal session durations whose
//! long-lived tail forms the "stable peer" backbone (~1/3 of the
//! concurrent population), and a Zipf channel popularity with CCTV1
//! drawing about five times the viewers of CCTV4.

//!
//! ## Example
//!
//! ```
//! use magellan_workload::Scenario;
//! use magellan_netsim::StudyCalendar;
//!
//! // A miniature one-day scenario; joins are a pure function of the
//! // seed.
//! let scenario = Scenario::builder(42, 0.0001)
//!     .calendar(StudyCalendar { window_days: 1 })
//!     .build();
//! let joins = scenario.generate_joins();
//! assert!(!joins.is_empty());
//! assert!(joins.windows(2).all(|w| w[0].time <= w[1].time));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod arrivals;
pub mod channels;
pub mod diurnal;
pub mod faults;
pub mod flashcrowd;
pub mod scenario;
pub mod session;

pub use arrivals::generate_arrivals;
pub use channels::{Channel, ChannelDirectory, ChannelId};
pub use diurnal::DiurnalProfile;
pub use faults::{CrashWave, FaultPlan, FaultPlanError, LossSpike};
pub use flashcrowd::FlashCrowd;
pub use scenario::{JoinEvent, Scenario, ScenarioBuilder};
pub use session::SessionModel;
