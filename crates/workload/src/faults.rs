//! The fault-injection plan: which components fail, when, and how
//! badly.
//!
//! The paper measured a live commercial deployment where failure was
//! the norm: UDP reports vanished, peers crashed without leave
//! messages, the tracker and trace server had downtime, and inter-ISP
//! paths degraded. A [`FaultPlan`] captures a deterministic schedule
//! of such events. It is part of the [`Scenario`](crate::Scenario),
//! so two runs with the same seed and the same plan produce
//! byte-identical traces — every probabilistic fault draw happens in
//! the simulator from a dedicated fork of the scenario RNG, never
//! here.
//!
//! The plan only *describes* faults; the overlay simulator consumes
//! it (crashes, outage-aware bootstrap, partition filtering), the
//! trace layer honors server downtime and report loss, and the
//! analysis layer flags the measurement holes the plan creates.

use magellan_netsim::{FaultWindow, Isp, IspPartition, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A wave of ungraceful peer crashes at one instant.
///
/// Crashed peers send no leave message and never deregister from the
/// tracker by themselves; their partners only find out when transfers
/// time out, and the tracker only after its liveness horizon lapses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrashWave {
    /// The instant of the wave.
    pub at: SimTime,
    /// Fraction of the live population that crashes, in `[0, 1]`.
    pub fraction: f64,
}

/// A report-loss spike: extra datagram loss during a window,
/// optionally confined to reporters inside one ISP.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LossSpike {
    /// When the spike is active.
    pub window: FaultWindow,
    /// The affected reporter ISP (`None` = everyone).
    pub isp: Option<Isp>,
    /// Additional independent loss probability, in `[0, 1]`.
    pub prob: f64,
}

/// A deterministic schedule of fault events for one scenario.
///
/// The default plan is empty: nothing fails, and a simulator driven
/// by an empty plan draws nothing from its fault RNG stream, so
/// fault-free runs stay byte-identical with pre-fault builds.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Windows during which the tracker answers no bootstrap or
    /// membership request.
    pub tracker_outages: Vec<FaultWindow>,
    /// Windows during which the trace server accepts no report.
    pub server_outages: Vec<FaultWindow>,
    /// Ungraceful peer-crash waves.
    pub crash_waves: Vec<CrashWave>,
    /// Inter-ISP partitions severing cross-ISP links.
    pub partitions: Vec<IspPartition>,
    /// Baseline independent report-loss probability, in `[0, 1]`.
    pub base_report_loss: f64,
    /// Scheduled report-loss spikes on top of the baseline.
    pub loss_spikes: Vec<LossSpike>,
}

/// A fault plan failed validation.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultPlanError {
    /// A probability or fraction is outside `[0, 1]`.
    OutOfRange {
        /// Which field failed.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A partition's two sides share an ISP or one side is empty.
    BadPartition {
        /// What is wrong with it.
        what: &'static str,
    },
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::OutOfRange { what, value } => {
                write!(f, "fault plan {what} = {value} is outside [0, 1]")
            }
            FaultPlanError::BadPartition { what } => {
                write!(f, "fault plan has an invalid partition: {what}")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

fn unit_interval(what: &'static str, value: f64) -> Result<(), FaultPlanError> {
    if value.is_finite() && (0.0..=1.0).contains(&value) {
        Ok(())
    } else {
        Err(FaultPlanError::OutOfRange { what, value })
    }
}

impl FaultPlan {
    /// Whether the plan schedules nothing at all.
    pub fn is_empty(&self) -> bool {
        self.tracker_outages.is_empty()
            && self.server_outages.is_empty()
            && self.crash_waves.is_empty()
            && self.partitions.is_empty()
            && self.base_report_loss == 0.0
            && self.loss_spikes.is_empty()
    }

    /// Checks every probability, fraction, and partition for sanity.
    ///
    /// # Errors
    ///
    /// Returns the first [`FaultPlanError`] found.
    pub fn validate(&self) -> Result<(), FaultPlanError> {
        unit_interval("base_report_loss", self.base_report_loss)?;
        for w in &self.crash_waves {
            unit_interval("crash wave fraction", w.fraction)?;
        }
        for s in &self.loss_spikes {
            unit_interval("loss spike probability", s.prob)?;
        }
        for p in &self.partitions {
            if p.side_a.is_empty() || p.side_b.is_empty() {
                return Err(FaultPlanError::BadPartition {
                    what: "a side is empty",
                });
            }
            if p.side_a.iter().any(|i| p.side_b.contains(i)) {
                return Err(FaultPlanError::BadPartition {
                    what: "the sides share an ISP",
                });
            }
        }
        Ok(())
    }

    /// Whether the tracker is down at `t`.
    pub fn tracker_down(&self, t: SimTime) -> bool {
        self.tracker_outages.iter().any(|w| w.contains(t))
    }

    /// Whether the trace server is down at `t`.
    pub fn server_down(&self, t: SimTime) -> bool {
        self.server_outages.iter().any(|w| w.contains(t))
    }

    /// Whether the path between two ISPs is open at `t` (no active
    /// partition severs it).
    pub fn path_open(&self, x: Isp, y: Isp, t: SimTime) -> bool {
        !self.partitions.iter().any(|p| p.severs(x, y, t))
    }

    /// The independent report-loss probability for a reporter in
    /// `isp` at instant `t`: the baseline combined with every active
    /// spike that matches (losses compose as independent events).
    pub fn report_loss_prob(&self, isp: Isp, t: SimTime) -> f64 {
        let mut survive = 1.0 - self.base_report_loss;
        for s in &self.loss_spikes {
            let isp_matches = s.isp.map_or(true, |i| i == isp);
            if s.window.contains(t) && isp_matches {
                survive *= 1.0 - s.prob;
            }
        }
        (1.0 - survive).clamp(0.0, 1.0)
    }

    /// The crash waves scheduled in `[lo, hi)`, in schedule order.
    pub fn crash_waves_in(&self, lo: SimTime, hi: SimTime) -> impl Iterator<Item = &CrashWave> {
        self.crash_waves
            .iter()
            .filter(move |w| lo <= w.at && w.at < hi)
    }

    /// The combined stress schedule the degradation experiment uses,
    /// packed into day `day` of the window: a midday trace-server
    /// outage, an afternoon Telecom/Netcom partition, an evening
    /// Netcom loss spike, a prime-time tracker outage, a 15% crash
    /// wave right after it, and 10% baseline report loss throughout.
    pub fn combined_stress(day: u64) -> FaultPlan {
        FaultPlan {
            tracker_outages: vec![FaultWindow::new(
                SimTime::at(day, 20, 0),
                SimTime::at(day, 21, 0),
            )],
            server_outages: vec![FaultWindow::new(
                SimTime::at(day, 12, 0),
                SimTime::at(day, 13, 0),
            )],
            crash_waves: vec![CrashWave {
                at: SimTime::at(day, 21, 30),
                fraction: 0.15,
            }],
            partitions: vec![IspPartition {
                window: FaultWindow::new(SimTime::at(day, 14, 0), SimTime::at(day, 15, 0)),
                side_a: vec![Isp::Telecom, Isp::Unicom, Isp::Tietong],
                side_b: vec![Isp::Netcom],
            }],
            base_report_loss: 0.10,
            loss_spikes: vec![LossSpike {
                window: FaultWindow::new(SimTime::at(day, 18, 0), SimTime::at(day, 19, 0)),
                isp: Some(Isp::Netcom),
                prob: 0.30,
            }],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magellan_netsim::SimDuration;

    #[test]
    fn default_plan_is_empty_and_inert() {
        let p = FaultPlan::default();
        assert!(p.is_empty());
        p.validate().unwrap();
        let t = SimTime::at(0, 12, 0);
        assert!(!p.tracker_down(t));
        assert!(!p.server_down(t));
        assert!(p.path_open(Isp::Telecom, Isp::Netcom, t));
        assert_eq!(p.report_loss_prob(Isp::Telecom, t), 0.0);
        assert_eq!(
            p.crash_waves_in(SimTime::ORIGIN, SimTime::at(14, 0, 0))
                .count(),
            0
        );
    }

    #[test]
    fn combined_stress_is_valid_and_nonempty() {
        let p = FaultPlan::combined_stress(1);
        assert!(!p.is_empty());
        p.validate().unwrap();
        assert!(p.tracker_down(SimTime::at(1, 20, 30)));
        assert!(!p.tracker_down(SimTime::at(1, 21, 0)));
        assert!(p.server_down(SimTime::at(1, 12, 30)));
        assert!(!p.path_open(Isp::Telecom, Isp::Netcom, SimTime::at(1, 14, 30)));
        assert!(p.path_open(Isp::Telecom, Isp::Edu, SimTime::at(1, 14, 30)));
        assert_eq!(
            p.crash_waves_in(SimTime::at(1, 21, 0), SimTime::at(1, 22, 0))
                .count(),
            1
        );
    }

    #[test]
    fn loss_probabilities_compose_independently() {
        let p = FaultPlan::combined_stress(0);
        let in_spike = SimTime::at(0, 18, 30);
        let outside = SimTime::at(0, 2, 0);
        // Baseline everywhere.
        assert!((p.report_loss_prob(Isp::Telecom, outside) - 0.10).abs() < 1e-12);
        // Spike only hits Netcom: 1 - 0.9 * 0.7 = 0.37.
        assert!((p.report_loss_prob(Isp::Netcom, in_spike) - 0.37).abs() < 1e-12);
        assert!((p.report_loss_prob(Isp::Telecom, in_spike) - 0.10).abs() < 1e-12);
    }

    #[test]
    fn validate_rejects_bad_probabilities() {
        let mut p = FaultPlan {
            base_report_loss: 1.5,
            ..FaultPlan::default()
        };
        assert!(matches!(
            p.validate(),
            Err(FaultPlanError::OutOfRange { what, .. }) if what == "base_report_loss"
        ));
        p.base_report_loss = 0.0;
        p.crash_waves.push(CrashWave {
            at: SimTime::ORIGIN,
            fraction: -0.1,
        });
        assert!(p.validate().is_err());
        p.crash_waves.clear();
        p.loss_spikes.push(LossSpike {
            window: FaultWindow::starting_at(SimTime::ORIGIN, SimDuration::from_hours(1)),
            isp: None,
            prob: f64::NAN,
        });
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_degenerate_partitions() {
        let mut p = FaultPlan::default();
        p.partitions.push(IspPartition {
            window: FaultWindow::starting_at(SimTime::ORIGIN, SimDuration::from_hours(1)),
            side_a: vec![],
            side_b: vec![Isp::Netcom],
        });
        assert!(matches!(
            p.validate(),
            Err(FaultPlanError::BadPartition { .. })
        ));
        p.partitions[0].side_a = vec![Isp::Netcom];
        assert!(p.validate().is_err(), "shared ISP across the cut");
        p.partitions[0].side_a = vec![Isp::Telecom];
        p.validate().unwrap();
    }

    #[test]
    fn error_display_names_the_field() {
        let e = FaultPlanError::OutOfRange {
            what: "base_report_loss",
            value: 2.0,
        };
        assert!(e.to_string().contains("base_report_loss"));
        let b = FaultPlanError::BadPartition {
            what: "a side is empty",
        };
        assert!(b.to_string().contains("partition"));
    }
}
