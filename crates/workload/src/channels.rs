//! Channel directory and popularity.
//!
//! UUSee broadcast over 800 channels, mostly around 400 Kbps (§3.1).
//! The study's quality figure (Fig. 3) follows two of them: CCTV1,
//! with about 30,000 concurrent viewers, and CCTV4, with about 6,000 —
//! a 5:1 ratio out of ~100k total. The directory model pins those two
//! shares and spreads the rest of the audience over the remaining
//! channels with a Zipf tail.

use magellan_netsim::rng::weighted_index_iter;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a channel within a [`ChannelDirectory`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ChannelId(pub u16);

impl ChannelId {
    /// CCTV1 — the most popular channel in the study.
    pub const CCTV1: ChannelId = ChannelId(0);
    /// CCTV4 — the comparison channel of Fig. 3.
    pub const CCTV4: ChannelId = ChannelId(1);
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

/// One live channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Channel {
    /// Identifier (index into the directory).
    pub id: ChannelId,
    /// Display name.
    pub name: String,
    /// Stream rate in Kbps.
    pub rate_kbps: f64,
    /// Relative popularity weight (unnormalized).
    pub weight: f64,
}

/// The set of channels a scenario streams, with popularity weights.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelDirectory {
    channels: Vec<Channel>,
}

impl ChannelDirectory {
    /// Builds a UUSee-like directory of `n` channels (`n >= 2`):
    /// CCTV1 holds 30% of the audience, CCTV4 6%, and the remaining
    /// 64% follows a Zipf(0.9) tail over the other channels. All
    /// channels stream at 400 Kbps, matching §3.1.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn uusee(n: usize) -> Self {
        assert!(n >= 2, "need at least CCTV1 and CCTV4");
        let mut channels = Vec::with_capacity(n);
        channels.push(Channel {
            id: ChannelId::CCTV1,
            name: "CCTV1".to_owned(),
            rate_kbps: 400.0,
            weight: 0.30,
        });
        channels.push(Channel {
            id: ChannelId::CCTV4,
            name: "CCTV4".to_owned(),
            rate_kbps: 400.0,
            weight: 0.06,
        });
        let tail = n - 2;
        if tail > 0 {
            let raw: Vec<f64> = (1..=tail).map(|k| (k as f64).powf(-0.9)).collect();
            let raw_sum: f64 = raw.iter().sum();
            for (k, w) in raw.into_iter().enumerate() {
                channels.push(Channel {
                    id: ChannelId((k + 2) as u16),
                    name: format!("CH{}", k + 2),
                    rate_kbps: 400.0,
                    weight: 0.64 * w / raw_sum,
                });
            }
        }
        ChannelDirectory { channels }
    }

    /// Number of channels.
    pub fn len(&self) -> usize {
        self.channels.len()
    }

    /// Whether the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.channels.is_empty()
    }

    /// Looks up a channel.
    ///
    /// # Panics
    ///
    /// Panics if the id is not in this directory.
    pub fn get(&self, id: ChannelId) -> &Channel {
        &self.channels[id.0 as usize]
    }

    /// Iterates over all channels.
    pub fn iter(&self) -> impl Iterator<Item = &Channel> {
        self.channels.iter()
    }

    /// Normalized popularity share of `id`.
    pub fn share(&self, id: ChannelId) -> f64 {
        let total: f64 = self.channels.iter().map(|c| c.weight).sum();
        self.get(id).weight / total
    }

    /// Draws a channel according to popularity.
    pub fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> ChannelId {
        // On the per-join hot path: sum + draw straight off the
        // directory, no per-call scratch Vec.
        let total: f64 = self.channels.iter().map(|c| c.weight).sum();
        let i = weighted_index_iter(rng, total, self.channels.iter().map(|c| c.weight));
        ChannelId(i as u16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magellan_netsim::RngFactory;

    #[test]
    fn cctv1_to_cctv4_ratio_is_five() {
        let dir = ChannelDirectory::uusee(20);
        let ratio = dir.share(ChannelId::CCTV1) / dir.share(ChannelId::CCTV4);
        assert!((ratio - 5.0).abs() < 1e-9, "ratio = {ratio}");
    }

    #[test]
    fn shares_sum_to_one() {
        let dir = ChannelDirectory::uusee(50);
        let sum: f64 = (0..dir.len()).map(|i| dir.share(ChannelId(i as u16))).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_matches_shares() {
        let dir = ChannelDirectory::uusee(10);
        let mut rng = RngFactory::new(1).fork("channels");
        let n = 50_000;
        let cctv1 = (0..n)
            .filter(|_| dir.sample(&mut rng) == ChannelId::CCTV1)
            .count();
        let got = cctv1 as f64 / n as f64;
        assert!((got - 0.30).abs() < 0.01, "CCTV1 share = {got}");
    }

    #[test]
    fn tail_is_monotone_zipf() {
        let dir = ChannelDirectory::uusee(12);
        for k in 2..11 {
            let a = dir.share(ChannelId(k));
            let b = dir.share(ChannelId(k + 1));
            assert!(a >= b, "tail not monotone at {k}");
        }
    }

    #[test]
    fn minimal_directory_has_two_channels() {
        let dir = ChannelDirectory::uusee(2);
        assert_eq!(dir.len(), 2);
        assert_eq!(dir.get(ChannelId::CCTV1).name, "CCTV1");
        assert_eq!(dir.get(ChannelId::CCTV4).name, "CCTV4");
        assert!(!dir.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn rejects_tiny_directory() {
        let _ = ChannelDirectory::uusee(1);
    }

    #[test]
    fn all_channels_stream_at_400() {
        let dir = ChannelDirectory::uusee(8);
        assert!(dir.iter().all(|c| (c.rate_kbps - 400.0).abs() < 1e-9));
    }
}
