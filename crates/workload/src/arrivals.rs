//! Non-homogeneous Poisson arrival generation by thinning.
//!
//! Peer joins are modelled as a Poisson process whose rate is the
//! product of a base rate, the diurnal profile, and any flash-crowd
//! multipliers. Lewis–Shedler thinning against a constant majorant
//! turns this into an exact sampler.

use magellan_netsim::{SimDuration, SimTime};
use rand::RngExt as _;

/// Generates arrival instants in `[start, end)` for a rate function
/// `rate_per_hour(t)` bounded above by `max_rate_per_hour`.
///
/// The thinning algorithm is exact as long as the bound holds; the
/// function asserts it on every accepted candidate (debug builds).
///
/// # Panics
///
/// Panics if `max_rate_per_hour` is not strictly positive or
/// `end <= start`.
pub fn generate_arrivals<R, F>(
    rng: &mut R,
    start: SimTime,
    end: SimTime,
    max_rate_per_hour: f64,
    mut rate_per_hour: F,
) -> Vec<SimTime>
where
    R: rand::Rng + ?Sized,
    F: FnMut(SimTime) -> f64,
{
    assert!(max_rate_per_hour > 0.0, "majorant rate must be positive");
    assert!(end > start, "empty window");
    let mut out = Vec::new();
    let rate_per_ms = max_rate_per_hour / 3_600_000.0;
    let mut t = start;
    loop {
        // Exponential inter-arrival under the majorant.
        let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
        let step_ms = -u.ln() / rate_per_ms;
        if !step_ms.is_finite() || step_ms > (end.since(start).as_millis() as f64) * 2.0 + 1e9 {
            break;
        }
        t += SimDuration::from_millis(step_ms.ceil().max(1.0) as u64);
        if t >= end {
            break;
        }
        let r = rate_per_hour(t);
        debug_assert!(
            r <= max_rate_per_hour * (1.0 + 1e-9),
            "rate {r} exceeds majorant {max_rate_per_hour} at {t}"
        );
        let accept: f64 = rng.random_range(0.0..1.0);
        if accept < r / max_rate_per_hour {
            out.push(t);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use magellan_netsim::RngFactory;

    #[test]
    fn homogeneous_rate_matches_expectation() {
        let mut rng = RngFactory::new(1).fork("arrivals");
        let start = SimTime::ORIGIN;
        let end = start + SimDuration::from_hours(100);
        let arrivals = generate_arrivals(&mut rng, start, end, 50.0, |_| 50.0);
        let expect = 50.0 * 100.0;
        let got = arrivals.len() as f64;
        assert!(
            (got - expect).abs() < 4.0 * expect.sqrt(),
            "got {got}, expect {expect}"
        );
    }

    #[test]
    fn arrivals_are_sorted_and_in_window() {
        let mut rng = RngFactory::new(2).fork("arrivals");
        let start = SimTime::at(1, 0, 0);
        let end = SimTime::at(2, 0, 0);
        let arrivals = generate_arrivals(&mut rng, start, end, 100.0, |_| 100.0);
        for w in arrivals.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!(arrivals.iter().all(|&t| t >= start && t < end));
    }

    #[test]
    fn thinning_respects_shape() {
        // Rate = 200/h in the first half, 0 in the second.
        let mut rng = RngFactory::new(3).fork("arrivals");
        let start = SimTime::ORIGIN;
        let mid = start + SimDuration::from_hours(50);
        let end = start + SimDuration::from_hours(100);
        let arrivals = generate_arrivals(&mut rng, start, end, 200.0, |t| {
            if t < mid {
                200.0
            } else {
                0.0
            }
        });
        assert!(arrivals.iter().all(|&t| t < mid));
        let expect = 200.0 * 50.0;
        let got = arrivals.len() as f64;
        assert!((got - expect).abs() < 4.0 * expect.sqrt());
    }

    #[test]
    fn zero_rate_produces_nothing() {
        let mut rng = RngFactory::new(4).fork("arrivals");
        let arrivals = generate_arrivals(
            &mut rng,
            SimTime::ORIGIN,
            SimTime::at(0, 10, 0),
            10.0,
            |_| 0.0,
        );
        assert!(arrivals.is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let run = || {
            let mut rng = RngFactory::new(5).fork("arrivals");
            generate_arrivals(
                &mut rng,
                SimTime::ORIGIN,
                SimTime::at(0, 5, 0),
                120.0,
                |_| 60.0,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "majorant")]
    fn rejects_zero_majorant() {
        let mut rng = RngFactory::new(6).fork("arrivals");
        let _ = generate_arrivals(&mut rng, SimTime::ORIGIN, SimTime::at(0, 1, 0), 0.0, |_| {
            0.0
        });
    }

    #[test]
    #[should_panic(expected = "empty window")]
    fn rejects_empty_window() {
        let mut rng = RngFactory::new(7).fork("arrivals");
        let _ = generate_arrivals(
            &mut rng,
            SimTime::at(0, 1, 0),
            SimTime::at(0, 1, 0),
            10.0,
            |_| 10.0,
        );
    }
}
