//! Time-of-day arrival intensity.
//!
//! Fig. 1(A) of the paper shows ~100k concurrent peers with "a daily
//! peak around 9 p.m., and a second daily peak around 1 p.m." and
//! "only a slight number increase over the weekend". The profile here
//! is a base load plus two Gaussian bumps at those hours, times a
//! small weekend multiplier.

use magellan_netsim::{SimTime, StudyCalendar};
use serde::{Deserialize, Serialize};

/// Multiplicative intensity as a function of time of day and weekday.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiurnalProfile {
    /// Baseline (overnight trough) intensity.
    pub base: f64,
    /// Height of the 1 p.m. bump.
    pub noon_peak: f64,
    /// Center hour of the midday bump.
    pub noon_hour: f64,
    /// Width (std dev, hours) of the midday bump.
    pub noon_width: f64,
    /// Height of the 9 p.m. bump.
    pub evening_peak: f64,
    /// Center hour of the evening bump.
    pub evening_hour: f64,
    /// Width (std dev, hours) of the evening bump.
    pub evening_width: f64,
    /// Weekend multiplier (the paper's "slight increase").
    pub weekend_multiplier: f64,
}

impl Default for DiurnalProfile {
    fn default() -> Self {
        DiurnalProfile {
            base: 0.35,
            noon_peak: 0.35,
            noon_hour: 13.0,
            noon_width: 2.0,
            evening_peak: 0.65,
            evening_hour: 21.0,
            evening_width: 2.2,
            weekend_multiplier: 1.07,
        }
    }
}

fn gauss(x: f64, mu: f64, sigma: f64) -> f64 {
    // Wrap the hour distance around midnight so the 21:00 bump's tail
    // reaches into the small hours smoothly.
    let mut d = (x - mu).abs();
    if d > 12.0 {
        d = 24.0 - d;
    }
    (-0.5 * (d / sigma).powi(2)).exp()
}

impl DiurnalProfile {
    /// The intensity multiplier at `t` (relative to the profile's own
    /// peak; see [`DiurnalProfile::peak_intensity`]).
    pub fn intensity(&self, cal: &StudyCalendar, t: SimTime) -> f64 {
        let h = t.hour_f64();
        let shape = self.base
            + self.noon_peak * gauss(h, self.noon_hour, self.noon_width)
            + self.evening_peak * gauss(h, self.evening_hour, self.evening_width);
        if cal.is_weekend(t) {
            shape * self.weekend_multiplier
        } else {
            shape
        }
    }

    /// An upper bound of [`DiurnalProfile::intensity`] over all times
    /// — used as the majorant in Poisson thinning.
    pub fn peak_intensity(&self) -> f64 {
        (self.base + self.noon_peak + self.evening_peak) * self.weekend_multiplier.max(1.0)
    }

    /// A flat profile (intensity 1 always): useful for tests and
    /// ablations that need to isolate the diurnal effect.
    pub fn flat() -> Self {
        DiurnalProfile {
            base: 1.0,
            noon_peak: 0.0,
            noon_hour: 13.0,
            noon_width: 1.0,
            evening_peak: 0.0,
            evening_hour: 21.0,
            evening_width: 1.0,
            weekend_multiplier: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cal() -> StudyCalendar {
        StudyCalendar::default()
    }

    #[test]
    fn evening_peak_dominates() {
        let p = DiurnalProfile::default();
        let monday = 1; // Oct 2 was a Monday
        let evening = p.intensity(&cal(), SimTime::at(monday, 21, 0));
        let noon = p.intensity(&cal(), SimTime::at(monday, 13, 0));
        let night = p.intensity(&cal(), SimTime::at(monday, 4, 30));
        assert!(evening > noon, "evening {evening} <= noon {noon}");
        assert!(noon > night, "noon {noon} <= night {night}");
        // The paper's trough-to-peak swing is roughly 2x.
        assert!(evening / night > 1.8, "swing = {}", evening / night);
    }

    #[test]
    fn weekend_is_slightly_higher() {
        let p = DiurnalProfile::default();
        let sat = p.intensity(&cal(), SimTime::at(6, 21, 0));
        let fri = p.intensity(&cal(), SimTime::at(5, 21, 0));
        assert!(sat > fri);
        assert!(sat / fri < 1.15, "weekend bump too large: {}", sat / fri);
    }

    #[test]
    fn peak_intensity_is_an_upper_bound() {
        let p = DiurnalProfile::default();
        let bound = p.peak_intensity();
        for day in 0..14 {
            for hour in 0..24 {
                for minute in [0, 30] {
                    let i = p.intensity(&cal(), SimTime::at(day, hour, minute));
                    assert!(i <= bound + 1e-12, "intensity {i} exceeds bound {bound}");
                }
            }
        }
    }

    #[test]
    fn intensity_is_strictly_positive() {
        let p = DiurnalProfile::default();
        for hour in 0..24 {
            assert!(p.intensity(&cal(), SimTime::at(2, hour, 0)) > 0.0);
        }
    }

    #[test]
    fn flat_profile_is_constant_one() {
        let p = DiurnalProfile::flat();
        for day in [0, 3, 6] {
            for hour in [0, 9, 13, 21] {
                let i = p.intensity(&cal(), SimTime::at(day, hour, 0));
                assert!((i - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn evening_bump_wraps_past_midnight() {
        let p = DiurnalProfile::default();
        // 23:00 should still be noticeably above the 4 a.m. trough.
        let late = p.intensity(&cal(), SimTime::at(1, 23, 0));
        let trough = p.intensity(&cal(), SimTime::at(1, 4, 0));
        assert!(late > trough * 1.2);
    }
}
