//! Declares `loom` as an expected `--cfg` flag so the loom model
//! suite (`RUSTFLAGS="--cfg loom" cargo test -p magellan-par --test
//! loom`) builds without `unexpected_cfgs` warnings while ordinary
//! builds keep the lint armed for genuine typos.

fn main() {
    // Single-colon syntax: the workspace MSRV (1.75) predates the
    // `cargo::` form.
    println!("cargo:rustc-check-cfg=cfg(loom)");
}
